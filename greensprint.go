// Package greensprint is the public facade of the GreenSprint library:
// a reproduction of "GreenSprint: Effective Computational Sprinting in
// Green Data Centers" (IPDPS 2018).
//
// GreenSprint lets a power-constrained data center serve workload
// bursts by computational sprinting — activating dark-silicon cores
// and raising frequency past the sustainable envelope — powered by an
// on-site renewable supply and distributed server batteries instead of
// grid headroom.
//
// The facade re-exports the pieces a downstream user needs:
//
//   - Workload profiles (SPECjbb, Web-Search, Memcached) and their
//     QoS-constrained performance model.
//   - Table I green-provisioning options and the cluster topology.
//   - The five power-management strategies (Normal, Greedy, Parallel,
//     Pacing and the Q-learning Hybrid).
//   - The offline simulator (RunSimulation) used by the experiment
//     harness, and the online controller (Controller) used by the
//     greensprintd daemon.
//
// See the examples/ directory for runnable walkthroughs and DESIGN.md
// for the system inventory. The type aliases below intentionally point
// into internal packages: external importers get a stable, documented
// surface while the implementation remains free to reorganize.
package greensprint

import (
	"context"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/core"
	"greensprint/internal/loadgen"
	"greensprint/internal/profile"
	"greensprint/internal/server"
	"greensprint/internal/sim"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/tco"
	"greensprint/internal/trace"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// Physical quantities.
type (
	// Watt is electrical power.
	Watt = units.Watt
	// WattHour is electrical energy.
	WattHour = units.WattHour
	// MHz is CPU frequency.
	MHz = units.MHz
)

// Workloads (Table II).
type (
	// Workload describes one interactive application: QoS target,
	// peak sprinting power and performance-model parameters.
	Workload = workload.Profile
	// Burst is a workload burst in the paper's Int=N notation.
	Burst = workload.Burst
)

// SPECjbb returns the SPECjbb 2013 workload profile.
func SPECjbb() Workload { return workload.SPECjbb() }

// WebSearch returns the CloudSuite Web-Search profile.
func WebSearch() Workload { return workload.WebSearch() }

// Memcached returns the Memcached profile.
func Memcached() Workload { return workload.Memcached() }

// Workloads returns the three evaluation workloads.
func Workloads() []Workload { return workload.All() }

// Server knob space.
type (
	// ServerConfig is a sprinting intensity: active cores and
	// frequency.
	ServerConfig = server.Config
)

// NormalMode returns S0: 6 cores at 1.2 GHz.
func NormalMode() ServerConfig { return server.Normal() }

// MaxSprintMode returns Sr: 12 cores at 2.0 GHz.
func MaxSprintMode() ServerConfig { return server.MaxSprint() }

// KnobSpace enumerates all 63 sprinting intensities.
func KnobSpace() []ServerConfig { return server.Configs() }

// Green provisioning (Table I).
type (
	// GreenConfig is a Table I green-provisioning option.
	GreenConfig = cluster.GreenConfig
)

// REBatt returns the RE-Batt option (3 panels, 10 Ah per server).
func REBatt() GreenConfig { return cluster.REBatt() }

// REOnly returns the battery-less option.
func REOnly() GreenConfig { return cluster.REOnly() }

// RESBatt returns the small-battery option (3.2 Ah).
func RESBatt() GreenConfig { return cluster.RESBatt() }

// SRESBatt returns the small-array, small-battery option.
func SRESBatt() GreenConfig { return cluster.SRESBatt() }

// Renewable supply.
type (
	// Availability is the renewable availability class (Min, Med,
	// Max).
	Availability = solar.Availability
)

// Availability classes.
const (
	MinAvailability = solar.Min
	MedAvailability = solar.Med
	MaxAvailability = solar.Max
)

// Strategies.
type (
	// Strategy decides a per-server sprinting intensity each epoch.
	Strategy = strategy.Strategy
	// ProfileTable is the a-priori LoadPower(L,S) profiling table.
	ProfileTable = profile.Table
)

// BuildProfile profiles a workload over the knob space.
func BuildProfile(w Workload) (*ProfileTable, error) {
	return profile.Build(w, profile.DefaultLevels)
}

// NewStrategy builds a strategy by its paper name (Normal, Greedy,
// Parallel, Pacing, Hybrid).
func NewStrategy(name string, w Workload, t *ProfileTable) (Strategy, error) {
	return strategy.ByName(name, w, t)
}

// Simulation.
type (
	// Simulation configures one offline run.
	Simulation = sim.Config
	// SimulationResult is its outcome.
	SimulationResult = sim.Result
)

// RunSimulation executes an offline simulation to completion.
func RunSimulation(cfg Simulation) (*SimulationResult, error) {
	return sim.Run(context.Background(), cfg)
}

// RunSimulationContext executes an offline simulation, stopping at the
// next epoch boundary if ctx is cancelled.
func RunSimulationContext(ctx context.Context, cfg Simulation) (*SimulationResult, error) {
	return sim.Run(ctx, cfg)
}

// SimulationEngine is the steppable simulation engine (one epoch per
// Step); SimulationCheckpoint is its serializable mid-run state.
type (
	SimulationEngine     = sim.Engine
	SimulationCheckpoint = sim.Checkpoint
)

// NewSimulation builds a steppable engine for epoch-by-epoch control,
// checkpointing, and resumption.
func NewSimulation(cfg Simulation) (*SimulationEngine, error) { return sim.New(cfg) }

// SupplyTrace is a renewable power time series.
type SupplyTrace = trace.Trace

// SynthesizeSupply produces a canonical renewable supply window for an
// availability class, long enough to cover the burst, at one-minute
// resolution (deterministic: a fixed seed).
func SynthesizeSupply(level Availability, cfg GreenConfig, burst Burst) *SupplyTrace {
	return solar.Synthesize(level, burst.Duration, time.Minute, float64(cfg.PeakGreen()), 42)
}

// Online controller.
type (
	// Controller is the online Figure 3 control plane.
	Controller = core.Controller
	// ControllerOptions configures a Controller.
	ControllerOptions = core.Options
	// Telemetry is one epoch's measurements.
	Telemetry = core.Telemetry
	// Decision is the controller's per-epoch output.
	Decision = core.Decision
)

// NewController builds the online controller.
func NewController(opts ControllerOptions) (*Controller, error) { return core.New(opts) }

// Load generation.
type (
	// LoadGenerator offers open-loop request streams to a workload
	// model and measures per-request latency (the Faban role).
	LoadGenerator = loadgen.Generator
)

// NewLoadGenerator creates a deterministic load generator.
func NewLoadGenerator(w Workload, seed int64) (*LoadGenerator, error) {
	return loadgen.New(w, seed)
}

// TCO.
type (
	// TCOModel is the §IV-F cost model.
	TCOModel = tco.Model
)

// DefaultTCO returns the paper's TCO constants.
func DefaultTCO() TCOModel { return tco.Default() }
