// Command greensprint-bench regenerates every table and figure of the
// paper's evaluation against the simulated testbed and prints them as
// aligned text tables (optionally also writing CSV files for
// plotting).
//
// Usage:
//
//	greensprint-bench [-fig all|1|5|6|7|8|9|10a|10b|11|day|tables|headline] [-out DIR] [-parallel] [-workers N]
//	                  [-windows N] [-events FILE]
//
// -windows splits the -fig day replay into N contiguous time shards
// chained through checkpoint hand-off (matching examples/nrel-replay
// -windows); the stitched result is bit-identical to -windows=1.
// -events streams the day replay's per-epoch JSONL observability
// records to FILE; the stream is identical whatever the window count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"greensprint/internal/experiments"
	"greensprint/internal/obs"
	"greensprint/internal/report"
	"greensprint/internal/sweep"
)

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate")
	out := flag.String("out", "", "directory for CSV outputs (optional)")
	parallel := flag.Bool("parallel", true,
		"fan independent figure cells out across CPUs (results are bit-identical to -parallel=false)")
	workers := flag.Int("workers", 0,
		"cap the sweep worker pool at N (0 = GOMAXPROCS; overrides -parallel when set)")
	windows := flag.Int("windows", 1,
		"split the -fig day replay into N checkpoint-chained time shards (result is bit-identical to 1)")
	eventsPath := flag.String("events", "",
		"stream the -fig day replay's per-epoch JSONL observability records to this file")
	flag.Parse()
	switch {
	case *workers > 0:
		sweep.SetDefaultWorkers(*workers)
	case !*parallel:
		sweep.SetDefaultWorkers(1)
	}
	if *windows < 1 {
		fmt.Fprintln(os.Stderr, "greensprint-bench: -windows must be >= 1")
		os.Exit(1)
	}
	var sink obs.Sink
	if *eventsPath != "" {
		//greensprint:allow(atomicwrite) JSONL event stream: appended live, partial output is useful, never reloaded as state
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greensprint-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = obs.NewJSONL(f)
	}
	if err := run(os.Stdout, *fig, *out, *windows, sink); err != nil {
		fmt.Fprintln(os.Stderr, "greensprint-bench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig, outDir string, windows int, sink obs.Sink) error {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	all := fig == "all"
	ran := false
	runStep := func(name string, f func() error) error {
		if !all && fig != name {
			return nil
		}
		ran = true
		fmt.Fprintf(w, "==== %s ====\n", name)
		return f()
	}

	steps := []struct {
		name string
		f    func() error
	}{
		{"tables", func() error { return tables(w) }},
		{"headline", func() error { return headline(w) }},
		{"1", func() error { return seriesFigure(w, outDir, "fig1", "hours", experiments.Fig1) }},
		{"5", func() error { return seriesFigure(w, outDir, "fig5", "hours", experiments.Fig5) }},
		{"6", func() error { return grid(w, outDir, experiments.Fig6) }},
		{"7", func() error { return grid(w, outDir, experiments.Fig7) }},
		{"8", func() error { return grid(w, outDir, experiments.Fig8) }},
		{"9", func() error { return grid(w, outDir, experiments.Fig9) }},
		{"10a", func() error { return grid(w, outDir, experiments.Fig10a) }},
		{"10b", func() error { return fig10b(w) }},
		{"11", func() error { return fig11(w, outDir) }},
		{"day", func() error { return dayInLife(w, windows, sink) }},
	}
	for _, s := range steps {
		if err := runStep(s.name, s.f); err != nil {
			return fmt.Errorf("fig %s: %w", s.name, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func tables(w io.Writer) error {
	if err := experiments.TableI().WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return experiments.TableII().WriteText(w)
}

func headline(w io.Writer) error {
	gains, err := experiments.HeadlineGains()
	if err != nil {
		return err
	}
	t := report.NewTable("Headline: max performance gain with sufficient renewable supply",
		"workload", "gain (x Normal)", "paper")
	paper := map[string]string{"SPECjbb": "4.8", "Web-Search": "4.1", "Memcached": "4.7"}
	for _, name := range []string{"SPECjbb", "Web-Search", "Memcached"} {
		t.Add(name, report.FormatFloat(gains[name], 2), paper[name])
	}
	return t.WriteText(w)
}

func seriesFigure(w io.Writer, outDir, name, xLabel string, f func() ([]report.Series, error)) error {
	series, err := f()
	if err != nil {
		return err
	}
	for _, s := range series {
		st := struct{ min, max float64 }{s.Y[0], s.Y[0]}
		for _, v := range s.Y {
			if v < st.min {
				st.min = v
			}
			if v > st.max {
				st.max = v
			}
		}
		fmt.Fprintf(w, "%-22s n=%-5d min=%-10s max=%s\n",
			s.Name, len(s.Y), report.FormatFloat(st.min, 3), report.FormatFloat(st.max, 3))
	}
	return writeSeriesCSV(outDir, name, xLabel, series)
}

func writeSeriesCSV(outDir, name, xLabel string, series []report.Series) error {
	if outDir == "" {
		return nil
	}
	//greensprint:allow(atomicwrite) CSV export stream for plots, not reloaded state
	f, err := os.Create(filepath.Join(outDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.WriteSeriesCSV(f, xLabel, series...)
}

func grid(w io.Writer, outDir string, f func() (*experiments.FigureGrid, error)) error {
	g, err := f()
	if err != nil {
		return err
	}
	for _, t := range g.Tables() {
		if err := t.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if outDir != "" {
		for _, level := range g.Levels {
			name := fmt.Sprintf("%s_%s", g.ID, level)
			if err := writeSeriesCSV(outDir, name, "burst_minutes", g.Series(level)); err != nil {
				return err
			}
		}
	}
	return nil
}

func fig10b(w io.Writer) error {
	vals, err := experiments.Fig10b()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig10b: strategies at Int=9, Min availability, 10-minute burst")
	max := 0.0
	order := []string{"Greedy", "Parallel", "Pacing", "Hybrid"}
	for _, s := range order {
		if vals[s] > max {
			max = vals[s]
		}
	}
	for _, s := range order {
		fmt.Fprintln(w, report.Bar(s, vals[s], max, 40))
	}
	return nil
}

func dayInLife(w io.Writer, windows int, sink obs.Sink) error {
	d, err := experiments.DayInTheLifeWithSink(context.Background(), windows, sink)
	if err != nil {
		return err
	}
	if windows > 1 {
		fmt.Fprintf(w, "(replayed as %d checkpoint-chained windows)\n", windows)
	}
	fmt.Fprintln(w, "Day in the life (Figure 1 load + partly-cloudy solar day, SPECjbb, RE-Batt):")
	fmt.Fprintln(w, " ", d)
	return nil
}

func fig11(w io.Writer, outDir string) error {
	pts, crossover := experiments.Fig11()
	t := report.NewTable(
		fmt.Sprintf("Fig11: profit of investment (crossover ≈ %s h/yr; paper: ~14)",
			report.FormatFloat(crossover, 1)),
		"sprint hours/yr", "benefit ($/kW/yr)", "profitable")
	for _, p := range pts {
		if int(p.SprintHours)%4 != 0 {
			continue
		}
		t.Add(report.FormatFloat(p.SprintHours, 0), report.FormatFloat(p.Benefit, 1),
			fmt.Sprintf("%v", p.Profitable))
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	if outDir != "" {
		s := report.Series{Name: "benefit_usd_per_kw_year"}
		for _, p := range pts {
			s.X = append(s.X, p.SprintHours)
			s.Y = append(s.Y, p.Benefit)
		}
		return writeSeriesCSV(outDir, "fig11", "sprint_hours_per_year", []report.Series{s})
	}
	return nil
}
