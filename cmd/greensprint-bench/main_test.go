package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greensprint/internal/obs"
)

func TestRunTables(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tables", "", 1, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "RE-Batt", "SPECjbb", "635.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunHeadline(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "headline", "", 1, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4.8") {
		t.Errorf("headline output missing paper reference:\n%s", buf.String())
	}
}

func TestRunFig11WithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "11", dir, 1, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") {
		t.Error("fig11 output missing crossover")
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig11.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "sprint_hours_per_year,benefit_usd_per_kw_year") {
		t.Errorf("csv header: %q", strings.SplitN(string(b), "\n", 2)[0])
	}
}

func TestRunFig10b(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "10b", "", 1, nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"Greedy", "Parallel", "Pacing", "Hybrid"} {
		if !strings.Contains(buf.String(), s) {
			t.Errorf("missing %s bar", s)
		}
	}
}

func TestRunFig1CSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "1", dir, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1.csv")); err != nil {
		t.Errorf("fig1.csv not written: %v", err)
	}
	if !strings.Contains(buf.String(), "workload_intensity") {
		t.Error("summary missing series name")
	}
}

func TestRunUnknownFig(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", "", 1, nil); err == nil {
		t.Error("unknown figure should error")
	}
}

// TestRunDaySharded checks -windows flag parity with examples/nrel-replay:
// the day replay split into checkpoint-chained windows reports the same
// summary and emits a byte-identical -events stream as the sequential run.
func TestRunDaySharded(t *testing.T) {
	day := func(windows int) (summary, events string) {
		var out, ev bytes.Buffer
		if err := run(&out, "day", "", windows, obs.NewJSONL(&ev)); err != nil {
			t.Fatalf("windows=%d: %v", windows, err)
		}
		return out.String(), ev.String()
	}
	seqOut, seqEvents := day(1)
	if !strings.Contains(seqOut, "sprint") {
		t.Fatalf("day summary missing:\n%s", seqOut)
	}
	if n := strings.Count(seqEvents, "\n"); n != 288 {
		t.Errorf("events = %d lines, want 288 (5-minute epochs over 24 h)", n)
	}
	shardOut, shardEvents := day(3)
	if !strings.Contains(shardOut, "replayed as 3 checkpoint-chained windows") {
		t.Errorf("sharded run missing window notice:\n%s", shardOut)
	}
	if shardEvents != seqEvents {
		t.Error("sharded event stream differs from sequential")
	}
	// The summary line itself must match too (ignore the window notice).
	if !strings.Contains(shardOut, strings.TrimPrefix(seqOut, "==== day ====\n")) {
		t.Errorf("sharded summary differs:\nseq:\n%s\nsharded:\n%s", seqOut, shardOut)
	}
}
