package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tables", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "RE-Batt", "SPECjbb", "635.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunHeadline(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "headline", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4.8") {
		t.Errorf("headline output missing paper reference:\n%s", buf.String())
	}
}

func TestRunFig11WithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "11", dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") {
		t.Error("fig11 output missing crossover")
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig11.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "sprint_hours_per_year,benefit_usd_per_kw_year") {
		t.Errorf("csv header: %q", strings.SplitN(string(b), "\n", 2)[0])
	}
}

func TestRunFig10b(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "10b", ""); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"Greedy", "Parallel", "Pacing", "Hybrid"} {
		if !strings.Contains(buf.String(), s) {
			t.Errorf("missing %s bar", s)
		}
	}
}

func TestRunFig1CSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "1", dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1.csv")); err != nil {
		t.Errorf("fig1.csv not written: %v", err)
	}
	if !strings.Contains(buf.String(), "workload_intensity") {
		t.Error("summary missing series name")
	}
}

func TestRunUnknownFig(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", ""); err == nil {
		t.Error("unknown figure should error")
	}
}
