package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/config"
	"greensprint/internal/obs"
	"greensprint/internal/solar"
)

func smallConfig() config.Config {
	cfg := config.Default()
	cfg.BurstDuration = config.Duration(10 * time.Minute)
	return cfg
}

func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, smallConfig(), nil, false, "", false, nil, "", 0, -1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Schedule", "SPECjbb", "RE-Batt", "Hybrid", "mean burst performance", "battery wear"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, smallConfig(), nil, true, "", false, nil, "", 0, -1); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "epoch,burst,case,config") {
		t.Errorf("csv header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestRunAllStrategiesAndWorkloads(t *testing.T) {
	for _, s := range []string{"Normal", "Greedy", "Parallel", "Pacing", "Hybrid"} {
		cfg := smallConfig()
		cfg.Strategy = s
		var buf bytes.Buffer
		if err := run(context.Background(), &buf, cfg, nil, false, "", false, nil, "", 0, -1); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	for _, w := range []string{"Web-Search", "Memcached"} {
		cfg := smallConfig()
		cfg.Workload = w
		var buf bytes.Buffer
		if err := run(context.Background(), &buf, cfg, nil, false, "", false, nil, "", 0, -1); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
}

func TestLoadSupplySynthetic(t *testing.T) {
	cfg := smallConfig()
	cfg.Lead = config.Duration(5 * time.Minute)
	tr, err := loadSupply(cfg, cluster.REBatt(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 15 {
		t.Errorf("len = %d, want lead+burst minutes", tr.Len())
	}
	cfg.Availability = "Banana"
	if _, err := loadSupply(cfg, cluster.REBatt(), nil); err == nil {
		t.Error("bad availability should error")
	}
}

func TestLoadSupplyFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "supply.csv")
	tr := solar.Synthesize(solar.Med, 10*time.Minute, time.Minute, 635.25, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := smallConfig()
	cfg.SupplyTrace = path
	got, err := loadSupply(cfg, cluster.REBatt(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("len = %d", got.Len())
	}
	// Replayed trace drives a full run.
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, cfg, nil, false, "", false, nil, "", 0, -1); err != nil {
		t.Fatal(err)
	}
	// Missing file errors.
	cfg.SupplyTrace = filepath.Join(dir, "missing.csv")
	if _, err := loadSupply(cfg, cluster.REBatt(), nil); err == nil {
		t.Error("missing trace should error")
	}
}

// TestRunEvents checks the -events sink: one parseable JSONL record
// per epoch, and a byte-identical stream when the run repeats.
func TestRunEvents(t *testing.T) {
	capture := func() string {
		var out, events bytes.Buffer
		if err := run(context.Background(), &out, smallConfig(), nil, false, "", false, obs.NewJSONL(&events), "", 0, -1); err != nil {
			t.Fatal(err)
		}
		return events.String()
	}
	first := capture()
	lines := strings.Split(strings.TrimRight(first, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("events = %d lines, want 2 (one per epoch)", len(lines))
	}
	for i, ln := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Epoch != i {
			t.Errorf("line %d has epoch %d", i, ev.Epoch)
		}
		if ev.Time == "" || ev.Case == "" || ev.Config == "" {
			t.Errorf("line %d missing fields: %+v", i, ev)
		}
	}
	if second := capture(); second != first {
		t.Error("event stream is not deterministic across identical runs")
	}
}

// TestRunChaos drives the -chaos-profile path end to end: the resolved
// timeline is announced, chaos events land on the JSONL stream, the
// run stays deterministic, and an interrupted chaos run resumed with
// the same flags reproduces the uninterrupted schedule exactly.
func TestRunChaos(t *testing.T) {
	cfg := smallConfig()
	cfg.BurstDuration = config.Duration(30 * time.Minute) // 6 epochs

	capture := func(ctx context.Context, ckpt string, resume bool) (string, string, error) {
		var out, events bytes.Buffer
		err := run(ctx, &out, cfg, nil, true, ckpt, resume, obs.NewJSONL(&events), "heavy", 3, -1)
		return out.String(), events.String(), err
	}

	out, events, err := capture(context.Background(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `chaos: profile "heavy" seed 3 resolved to`) {
		t.Errorf("missing chaos resolution notice:\n%s", out)
	}
	if !strings.Contains(events, `"chaos":"fault"`) {
		t.Errorf("no chaos fault on the event stream:\n%s", events)
	}
	if _, again, err := capture(context.Background(), "", false); err != nil || again != events {
		t.Errorf("chaos event stream is not deterministic (err %v)", err)
	}

	// Interrupt mid-run, resume with the same chaos flags: bit-identical.
	ckpt := filepath.Join(t.TempDir(), "state.json")
	if _, _, err := capture(newCheckCountCtx(3), ckpt, false); err != context.Canceled {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	resumedOut, _, err := capture(context.Background(), ckpt, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumedOut, "resumed from") || !strings.HasSuffix(resumedOut, lastLines(out, 6)) {
		t.Errorf("resumed chaos run differs from uninterrupted:\nwant tail:\n%s\ngot:\n%s",
			lastLines(out, 6), resumedOut)
	}

	// Resuming without the chaos flags must be refused, not silently
	// continued fault-free.
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, cfg, nil, true, ckpt, true, nil, "", 0, -1); err == nil ||
		!strings.Contains(err.Error(), "chaos") {
		t.Errorf("resume without chaos flags = %v, want chaos mismatch error", err)
	}
}

// lastLines returns the final n lines of s (with trailing newline).
func lastLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n") + "\n"
}

// checkCountCtx reports cancellation after its Done channel has been
// consulted a fixed number of times; run checks ctx once per epoch, so
// this interrupts the loop at a deterministic epoch boundary.
type checkCountCtx struct {
	context.Context
	remaining int
	closed    chan struct{}
}

func newCheckCountCtx(n int) *checkCountCtx {
	ch := make(chan struct{})
	close(ch)
	return &checkCountCtx{Context: context.Background(), remaining: n, closed: ch}
}

func (c *checkCountCtx) Done() <-chan struct{} {
	c.remaining--
	if c.remaining < 0 {
		return c.closed
	}
	return nil
}

func (c *checkCountCtx) Err() error {
	if c.remaining < 0 {
		return context.Canceled
	}
	return nil
}

// TestRunFleet drives the -fleet path end to end: the spec file loads
// and validates, the topology census is announced, the run completes
// with per-class stats on the event stream, and chaos resolves against
// the generated topology instead of the flat rack.
func TestRunFleet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	specJSON := `{
		"name": "clitest",
		"total_servers": 40,
		"rack_size": 8,
		"zones": 2,
		"seed": 11,
		"templates": [
			{"name": "web", "weight": 3, "battery_ah": 10, "panels": 3},
			{"name": "batch", "weight": 1, "battery_ah": 3.2, "panels": 2}
		]
	}`
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := loadFleetSpec(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallConfig()
	var out, events bytes.Buffer
	if err := run(context.Background(), &out, cfg, spec, false, "", false, obs.NewJSONL(&events), "", 0, -1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `fleet "clitest": 40 servers`) {
		t.Errorf("missing fleet summary:\n%s", out.String())
	}
	if !strings.Contains(events.String(), `"classes":[`) ||
		!strings.Contains(events.String(), `"name":"web"`) {
		t.Errorf("no per-class stats on the event stream:\n%s", events.String())
	}

	// Chaos resolves against the generated topology and the run accepts
	// the schedule (a flat-rack resolution would be refused by sim.New).
	out.Reset()
	if err := run(context.Background(), &out, cfg, spec, false, "", false, nil, "heavy", 3, -1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `chaos: profile "heavy" seed 3 resolved to`) {
		t.Errorf("missing chaos resolution notice:\n%s", out.String())
	}

	// Invalid specs are rejected at load time, before any run starts.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","total_servers":0,"templates":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFleetSpec(bad); err == nil {
		t.Error("invalid spec should error")
	}
	typo := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(typo, []byte(`{"name":"x","total_server":40}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFleetSpec(typo); err == nil {
		t.Error("unknown spec field should error")
	}
	if _, err := loadFleetSpec(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing spec file should error")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.json")
	cfg := smallConfig()
	cfg.BurstDuration = config.Duration(30 * time.Minute) // 6 epochs

	// Reference: the uninterrupted run.
	var ref bytes.Buffer
	if err := run(context.Background(), &ref, cfg, nil, true, "", false, nil, "", 0, -1); err != nil {
		t.Fatal(err)
	}

	// Interrupt after three epochs; the per-epoch checkpoint survives.
	var interrupted bytes.Buffer
	err := run(newCheckCountCtx(3), &interrupted, cfg, nil, true, ckpt, false, nil, "", 0, -1)
	if err != context.Canceled {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	if !strings.Contains(interrupted.String(), "interrupted at epoch 3/") {
		t.Errorf("missing interruption notice:\n%s", interrupted.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not persisted: %v", err)
	}

	// Resume: picks up at epoch 3 and reproduces the reference output
	// exactly (everything after the resume notice is bit-identical).
	var resumed bytes.Buffer
	if err := run(context.Background(), &resumed, cfg, nil, true, ckpt, true, nil, "", 0, -1); err != nil {
		t.Fatal(err)
	}
	out := resumed.String()
	if !strings.Contains(out, "resumed from "+ckpt+" at epoch 3/") {
		t.Errorf("missing resume notice:\n%s", out)
	}
	if !strings.HasSuffix(out, ref.String()) {
		t.Errorf("resumed schedule differs from uninterrupted run:\nwant suffix:\n%s\ngot:\n%s", ref.String(), out)
	}

	// -resume with no checkpoint file on disk is a fresh start.
	var freshStart bytes.Buffer
	missing := filepath.Join(t.TempDir(), "absent.json")
	if err := run(context.Background(), &freshStart, cfg, nil, true, missing, true, nil, "", 0, -1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(freshStart.String(), "resumed") {
		t.Error("fresh start claimed to resume")
	}
	if freshStart.String() != ref.String() {
		t.Error("fresh start with -resume differs from the plain run")
	}
}
