package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/config"
	"greensprint/internal/solar"
)

func smallConfig() config.Config {
	cfg := config.Default()
	cfg.BurstDuration = config.Duration(10 * time.Minute)
	return cfg
}

func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smallConfig(), false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Schedule", "SPECjbb", "RE-Batt", "Hybrid", "mean burst performance", "battery wear"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smallConfig(), true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "epoch,burst,case,config") {
		t.Errorf("csv header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestRunAllStrategiesAndWorkloads(t *testing.T) {
	for _, s := range []string{"Normal", "Greedy", "Parallel", "Pacing", "Hybrid"} {
		cfg := smallConfig()
		cfg.Strategy = s
		var buf bytes.Buffer
		if err := run(&buf, cfg, false); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	for _, w := range []string{"Web-Search", "Memcached"} {
		cfg := smallConfig()
		cfg.Workload = w
		var buf bytes.Buffer
		if err := run(&buf, cfg, false); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
}

func TestLoadSupplySynthetic(t *testing.T) {
	cfg := smallConfig()
	cfg.Lead = config.Duration(5 * time.Minute)
	tr, err := loadSupply(cfg, cluster.REBatt())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 15 {
		t.Errorf("len = %d, want lead+burst minutes", tr.Len())
	}
	cfg.Availability = "Banana"
	if _, err := loadSupply(cfg, cluster.REBatt()); err == nil {
		t.Error("bad availability should error")
	}
}

func TestLoadSupplyFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "supply.csv")
	tr := solar.Synthesize(solar.Med, 10*time.Minute, time.Minute, 635.25, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := smallConfig()
	cfg.SupplyTrace = path
	got, err := loadSupply(cfg, cluster.REBatt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("len = %d", got.Len())
	}
	// Replayed trace drives a full run.
	var buf bytes.Buffer
	if err := run(&buf, cfg, false); err != nil {
		t.Fatal(err)
	}
	// Missing file errors.
	cfg.SupplyTrace = filepath.Join(dir, "missing.csv")
	if _, err := loadSupply(cfg, cluster.REBatt()); err == nil {
		t.Error("missing trace should error")
	}
}
