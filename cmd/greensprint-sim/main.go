// Command greensprint-sim runs one configured GreenSprint simulation:
// a workload burst served by a green-provisioned rack under a chosen
// strategy, printing the per-epoch schedule and a summary.
//
// Usage:
//
//	greensprint-sim [-config FILE] [-workload W] [-green G]
//	                [-strategy S] [-intensity N] [-duration D]
//	                [-availability Min|Med|Max] [-trace FILE] [-csv]
//	                [-checkpoint FILE] [-resume] [-events FILE]
//	                [-chaos-profile P] [-chaos-seed N] [-fleet FILE] [-batch N]
//
// Flags override the config file. With -fleet the run replaces the
// flat -green rack with a generated heterogeneous fleet: FILE is a
// fleet spec (see internal/fleet) whose weighted server-class
// templates are stamped into racks deterministically under the spec's
// seed. The synthetic supply is sized to the generated fleet's PV
// peak, chaos profiles resolve against the generated topology (zone
// outages strike generated zones), and checkpoints record the
// topology fingerprint so -resume refuses a different fleet. With -checkpoint the simulator
// persists its full state (battery, PSS, predictors, strategy) to FILE
// after every epoch, atomically; an interrupted run restarted with
// -resume continues from the last completed epoch and produces the
// same schedule the uninterrupted run would have. With -events the
// run streams one JSONL observability record per epoch (telemetry in,
// decision out, power-source split); for a fixed seed the stream is
// bit-identical across runs.
//
// With -chaos-profile the run injects seeded failures: the profile (a
// preset name like "light" or "heavy", or a spec such as
// "crash=2,solar=1:3-6") is resolved under -chaos-seed into a fixed
// fault timeline before the run starts, so the same flags always
// produce the same failures — including across -checkpoint/-resume,
// which therefore require the same chaos flags on the resuming run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/config"
	"greensprint/internal/fleet"
	"greensprint/internal/obs"
	"greensprint/internal/profile"
	"greensprint/internal/report"
	"greensprint/internal/sim"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/trace"
	"greensprint/internal/workload"
)

func main() {
	cfgPath := flag.String("config", "", "JSON config file (optional)")
	wl := flag.String("workload", "", "workload: SPECjbb, Web-Search, Memcached")
	green := flag.String("green", "", "green config: RE-Batt, REOnly, RE-SBatt, SRE-SBatt")
	strat := flag.String("strategy", "", "strategy: Normal, Greedy, Parallel, Pacing, Hybrid")
	intensity := flag.Int("intensity", 0, "burst intensity Int=N (1-12)")
	duration := flag.Duration("duration", 0, "burst duration (e.g. 30m)")
	avail := flag.String("availability", "", "renewable availability: Min, Med, Max")
	tracePath := flag.String("trace", "", "CSV supply trace to replay instead of synthetic availability")
	csvOut := flag.Bool("csv", false, "emit the epoch schedule as CSV instead of a text table")
	ckptPath := flag.String("checkpoint", "", "persist engine state to this file after every epoch")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file if it exists")
	eventsPath := flag.String("events", "", "stream one JSONL observability record per epoch to this file")
	chaosProfile := flag.String("chaos-profile", "", "failure profile enabling chaos injection: light, heavy, or key=weight[:MIN-MAX] spec")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed resolving the -chaos-profile failure timeline")
	fleetPath := flag.String("fleet", "", "fleet spec JSON file replacing -green with a generated heterogeneous fleet")
	batch := flag.Int("batch", -1, "epochs per engine batch: >1 amortizes per-epoch overheads and checkpoints once per batch, 1 steps per epoch, -1 auto (large batches for -fleet runs, per-epoch otherwise)")
	flag.Parse()

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		if cfg, err = config.Load(*cfgPath); err != nil {
			fatal(err)
		}
	}
	if *wl != "" {
		cfg.Workload = *wl
	}
	if *green != "" {
		cfg.Green = *green
	}
	if *strat != "" {
		cfg.Strategy = *strat
	}
	if *intensity != 0 {
		cfg.BurstIntensity = *intensity
	}
	if *duration != 0 {
		cfg.BurstDuration = config.Duration(*duration)
	}
	if *avail != "" {
		cfg.Availability = *avail
	}
	if *tracePath != "" {
		cfg.SupplyTrace = *tracePath
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	var fleetSpec *fleet.Spec
	if *fleetPath != "" {
		spec, err := loadFleetSpec(*fleetPath)
		if err != nil {
			fatal(err)
		}
		fleetSpec = spec
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	// Ctrl-C / SIGTERM stop the run at the next epoch boundary, after
	// the epoch's checkpoint has been persisted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var sink obs.Sink
	if *eventsPath != "" {
		//greensprint:allow(atomicwrite) JSONL event stream: appended live, partial output is useful, never reloaded as state
		f, err := os.Create(*eventsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = obs.NewJSONL(f)
	}
	if err := run(ctx, os.Stdout, cfg, fleetSpec, *csvOut, *ckptPath, *resume, sink, *chaosProfile, *chaosSeed, *batch); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "greensprint-sim:", err)
	os.Exit(1)
}

func run(ctx context.Context, w io.Writer, cfg config.Config, fleetSpec *fleet.Spec, csvOut bool, ckptPath string, resume bool, sink obs.Sink, chaosProfile string, chaosSeed int64, batch int) error {
	p, err := cfg.WorkloadProfile()
	if err != nil {
		return err
	}
	green, err := cfg.GreenConfig()
	if err != nil {
		return err
	}
	// A fleet spec overrides the flat rack: generate the topology once
	// here so the supply sizing, chaos resolution and the engine all
	// agree on it (Generate is deterministic, so the engine's own
	// regeneration yields the identical topology).
	var topo *fleet.Topology
	if fleetSpec != nil {
		if topo, err = fleetSpec.Generate(); err != nil {
			return err
		}
		fmt.Fprintln(w, topo.Summary())
	}
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return err
	}
	strat, err := strategy.ByName(cfg.Strategy, p, tab)
	if err != nil {
		return err
	}
	supply, err := loadSupply(cfg, green, topo)
	if err != nil {
		return err
	}
	sched, err := resolveChaos(w, cfg, green, topo, chaosProfile, chaosSeed)
	if err != nil {
		return err
	}
	eng, err := sim.New(sim.Config{
		Workload: p,
		Green:    green,
		Fleet:    fleetSpec,
		Strategy: strat,
		Table:    tab,
		Burst:    workload.Burst{Intensity: cfg.BurstIntensity, Duration: cfg.BurstDuration.Std()},
		Supply:   supply,
		Lead:     cfg.Lead.Std(),
		Tail:     cfg.Tail.Std(),
		Epoch:    cfg.Epoch.Std(),
		Sink:     sink,
		Chaos:    sched,
	})
	if err != nil {
		return err
	}
	if resume {
		cp, err := sim.ReadCheckpointFile(ckptPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume from: run from the start.
		case err != nil:
			return err
		default:
			if err := eng.Restore(cp); err != nil {
				return err
			}
			fmt.Fprintf(w, "resumed from %s at epoch %d/%d\n", ckptPath, eng.EpochIndex(), eng.TotalEpochs())
		}
	}
	// Batch size: fleet replays default to large batches (the engine's
	// StepN fast path makes whole-year fleet runs practical); flat runs
	// default to per-epoch stepping, preserving the historical
	// checkpoint-per-epoch cadence. StepN(1) is bit-identical to Step,
	// so one loop serves both.
	if batch < 0 {
		if fleetSpec != nil {
			batch = 4096
		} else {
			batch = 1
		}
	}
	if batch < 1 {
		batch = 1
	}
	for {
		select {
		case <-ctx.Done():
			if ckptPath != "" {
				fmt.Fprintf(w, "interrupted at epoch %d/%d; state saved to %s\n",
					eng.EpochIndex(), eng.TotalEpochs(), ckptPath)
			}
			return ctx.Err()
		default:
		}
		ran, err := eng.StepN(batch)
		if err != nil {
			return err
		}
		if ran == 0 {
			break
		}
		if ckptPath != "" {
			cp, err := eng.Checkpoint()
			if err != nil {
				return err
			}
			if err := cp.WriteFile(ckptPath); err != nil {
				return err
			}
		}
	}
	res := eng.Result()

	t := report.NewTable(
		fmt.Sprintf("Schedule: %s on %s, %s strategy, Int=%d for %v",
			p.Name, green.Name, strat.Name(), cfg.BurstIntensity, cfg.BurstDuration.Std()),
		"epoch", "burst", "case", "config", "supply(W)", "green(W)", "batt(W)", "grid(W)",
		"perf(x)", "latency(ms)", "SoC")
	for i, rec := range res.Records {
		t.Add(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%v", rec.InBurst),
			rec.Case.String(),
			rec.Config.String(),
			report.FormatFloat(float64(rec.Supply), 1),
			report.FormatFloat(float64(rec.Green), 1),
			report.FormatFloat(float64(rec.Battery), 1),
			report.FormatFloat(float64(rec.Grid), 1),
			report.FormatFloat(rec.NormPerf, 2),
			report.FormatFloat(rec.Latency*1000, 1),
			report.FormatFloat(rec.SoC, 3),
		)
	}
	if csvOut {
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	} else if err := t.WriteText(w); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nmean burst performance: %sx over Normal\n", report.FormatFloat(res.MeanNormPerf, 2))
	acct := res.Account
	fmt.Fprintf(w, "energy: green %s, battery %s, grid %s (green fraction %s)\n",
		acct.Green, acct.Battery, acct.Grid, report.FormatFloat(acct.GreenFraction(), 3))
	fmt.Fprintf(w, "battery wear: %s equivalent cycles\n", report.FormatFloat(res.BatteryCycles, 3))
	return nil
}

// resolveChaos turns -chaos-profile/-chaos-seed into a fixed fault
// timeline for the configured run, or nil when chaos is off. The
// resolution happens before the run starts and depends only on the
// flags and the run's topology, so a resumed run passing the same
// flags replays the exact same failures.
func resolveChaos(w io.Writer, cfg config.Config, green cluster.GreenConfig, topo *fleet.Topology, spec string, seed int64) (*chaos.Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	prof, err := chaos.ParseProfile(spec)
	if err != nil {
		return nil, err
	}
	epoch := cfg.Epoch.Std()
	if epoch == 0 {
		epoch = sim.DefaultEpoch
	}
	// Mirror Engine.TotalEpochs: the horizon spans lead + burst + tail,
	// rounded up to whole epochs.
	total := cfg.Lead.Std() + cfg.BurstDuration.Std() + cfg.Tail.Std()
	epochs := int(total / epoch)
	if time.Duration(epochs)*epoch < total {
		epochs++
	}
	var sched *chaos.Schedule
	if topo != nil {
		// Fleet run: draw targets from the generated topology so zone
		// outages strike generated zones, not the legacy two-way split.
		sched, err = prof.ResolveFor(seed, epochs, topo.ChaosTopology())
	} else {
		bank, berr := green.NewBank()
		if berr != nil {
			return nil, berr
		}
		sched, err = prof.Resolve(seed, epochs, green.GreenServers, bank.Size())
	}
	if err != nil {
		return nil, err
	}
	sched.Source = spec
	fmt.Fprintf(w, "chaos: profile %q seed %d resolved to %d faults over %d epochs\n",
		spec, seed, len(sched.Faults), epochs)
	return sched, nil
}

// loadFleetSpec reads and validates a fleet spec JSON file.
func loadFleetSpec(path string) (*fleet.Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load fleet spec: %w", err)
	}
	var spec fleet.Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("fleet spec %s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("fleet spec %s: %w", path, err)
	}
	return &spec, nil
}

// loadSupply replays the configured CSV trace, or synthesizes the
// canonical window for the configured availability class, sized to the
// generated fleet's PV peak when a fleet topology is in effect.
func loadSupply(cfg config.Config, green cluster.GreenConfig, topo *fleet.Topology) (*trace.Trace, error) {
	if cfg.SupplyTrace != "" {
		f, err := os.Open(cfg.SupplyTrace)
		if err != nil {
			return nil, fmt.Errorf("open supply trace: %w", err)
		}
		defer f.Close()
		return trace.ReadCSV(f)
	}
	level, err := cfg.AvailabilityLevel()
	if err != nil {
		return nil, err
	}
	peak := float64(green.PeakGreen())
	if topo != nil {
		peak = float64(topo.PeakGreen())
	}
	total := cfg.Lead.Std() + cfg.BurstDuration.Std() + cfg.Tail.Std()
	return solar.Synthesize(level, total, time.Minute, peak, 42), nil
}
