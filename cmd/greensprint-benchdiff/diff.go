package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metric is one benchmark's recorded or measured numbers. Bytes and
// allocs are pointers so "not reported" (a benchmark run without
// -benchmem, or a budget that never recorded them) is distinguishable
// from zero.
type metric struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// budgetFile is the subset of the repo's BENCH_*.json schema the tool
// consumes: the result map is the budget, and the optional allocs cap
// rides along.
type budgetFile struct {
	Result                 map[string]metric `json:"result"`
	EngineStepAllocsBudget *float64          `json:"engine_step_allocs_budget"`
}

// budgetSet is the merged view across all budget files.
type budgetSet struct {
	metrics    map[string]metric
	allocsCaps map[string]float64 // benchmark name -> allocs/op cap
}

// loadBudgets reads and merges the budget files into the trajectory
// view: a benchmark budgeted in several files keeps the tightest
// (lowest ns/op) record, and the BenchmarkEngineStep allocs cap is the
// minimum across files. Budgets therefore only ever ratchet down — a
// later PR can add faster numbers, but re-recording a slower result
// cannot silently loosen an earlier PR's achievement.
func loadBudgets(paths []string) (*budgetSet, error) {
	set := &budgetSet{metrics: map[string]metric{}, allocsCaps: map[string]float64{}}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var f budgetFile
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if len(f.Result) == 0 {
			return nil, fmt.Errorf("%s: no result map", p)
		}
		for name, m := range f.Result {
			if prev, ok := set.metrics[name]; ok && prev.NsPerOp <= m.NsPerOp {
				continue
			}
			set.metrics[name] = m
		}
		if f.EngineStepAllocsBudget != nil {
			if prev, ok := set.allocsCaps["BenchmarkEngineStep"]; !ok || *f.EngineStepAllocsBudget < prev {
				set.allocsCaps["BenchmarkEngineStep"] = *f.EngineStepAllocsBudget
			}
		}
	}
	return set, nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkEngineStep-8   117740   10300 ns/op   69 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBenchOutput extracts {name -> metric} from go test -bench text.
// Non-benchmark lines (goos/pkg headers, PASS, ok) are skipped; a
// benchmark that appears twice keeps its last run.
func parseBenchOutput(out string) (map[string]metric, error) {
	fresh := map[string]metric{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		var met metric
		sawNs := false
		for i := 1; i < len(rest); i++ {
			v, err := strconv.ParseFloat(rest[i-1], 64)
			if err != nil {
				continue
			}
			switch rest[i] {
			case "ns/op":
				met.NsPerOp, sawNs = v, true
			case "B/op":
				met.BytesPerOp = &v
			case "allocs/op":
				met.AllocsPerOp = &v
			}
		}
		if !sawNs {
			return nil, fmt.Errorf("benchmark line without ns/op: %q", line)
		}
		fresh[name] = met
	}
	if len(fresh) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	return fresh, nil
}

// row is one benchmark's comparison.
type row struct {
	name     string
	old, new float64 // ns/op
	delta    float64 // (new-old)/old
	verdict  string
}

// report is the full comparison outcome.
type report struct {
	rows     []row
	missing  []string
	failures []string
}

// diff compares fresh results against the merged budgets.
func diff(budget *budgetSet, fresh map[string]metric, threshold float64) *report {
	rep := &report{}
	names := make([]string, 0, len(budget.metrics))
	for name := range budget.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := budget.metrics[name]
		got, ok := fresh[name]
		if !ok {
			rep.missing = append(rep.missing, name)
			continue
		}
		r := row{name: name, old: want.NsPerOp, new: got.NsPerOp}
		if want.NsPerOp > 0 {
			r.delta = (got.NsPerOp - want.NsPerOp) / want.NsPerOp
		}
		switch {
		case r.delta > threshold:
			r.verdict = "REGRESSION"
			rep.failures = append(rep.failures, fmt.Sprintf(
				"%s ns/op regressed %+.1f%% (budget %s, got %s, threshold +%.0f%%)",
				name, r.delta*100, fmtNs(r.old), fmtNs(r.new), threshold*100))
		case r.delta < -threshold:
			r.verdict = "improved"
		default:
			r.verdict = "ok"
		}
		if cap, capped := budget.allocsCaps[name]; capped {
			if got.AllocsPerOp == nil {
				rep.failures = append(rep.failures, fmt.Sprintf(
					"%s has an allocs/op budget (%.0f) but the run lacks -benchmem output", name, cap))
			} else if *got.AllocsPerOp > cap {
				r.verdict = "OVER ALLOC BUDGET"
				rep.failures = append(rep.failures, fmt.Sprintf(
					"%s allocs/op = %.0f, budget %.0f", name, *got.AllocsPerOp, cap))
			}
		}
		rep.rows = append(rep.rows, r)
	}
	return rep
}

// fmtNs renders a nanosecond quantity with a human unit, benchstat
// style.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.3gns", ns)
	}
}

// table renders the benchstat-style comparison.
func (r *report) table() string {
	var b strings.Builder
	w := len("name")
	for _, row := range r.rows {
		if len(row.name) > w {
			w = len(row.name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s  %s\n", w, "name", "budget", "fresh", "delta", "verdict")
	for _, row := range r.rows {
		fmt.Fprintf(&b, "%-*s  %12s  %12s  %+7.1f%%  %s\n",
			w, row.name, fmtNs(row.old), fmtNs(row.new), row.delta*100, row.verdict)
	}
	return b.String()
}
