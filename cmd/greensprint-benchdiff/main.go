// Command greensprint-benchdiff compares a fresh `go test -bench` run
// against the budgets committed in the repo's BENCH_*.json files and
// fails on regressions — a self-contained, stdlib-only stand-in for
// benchstat that understands this repo's budget schema.
//
// Usage:
//
//	go test -run=X -bench . -benchmem ./... | tee bench.txt
//	greensprint-benchdiff -budgets BENCH_PR4.json,BENCH_PR7.json,BENCH_PR9.json bench.txt
//
// Each budgets file is the JSON this repo commits per optimization PR:
// the "result" object maps benchmark names to their recorded
// {ns_per_op, bytes_per_op, allocs_per_op}, and an optional
// "engine_step_allocs_budget" caps BenchmarkEngineStep's allocs/op.
// The files form a trajectory: a benchmark recorded in several PRs is
// compared against its tightest (lowest ns/op) budget, and the allocs
// cap is the minimum across files, so a later re-recording can never
// silently loosen an earlier PR's achievement. The tool prints a
// benchstat-style table (old time, new time, delta) and exits non-zero
// when
//
//   - a benchmark's ns/op regresses more than -threshold (default
//     15%) past its recorded budget,
//   - BenchmarkEngineStep exceeds the allocs/op budget, or
//   - a budgeted benchmark is missing from the fresh run (so a
//     deleted benchmark cannot silently retire its budget; pass
//     -allow-missing during partial local runs).
//
// Improvements are reported but never fail: budgets are ratchets, not
// pins.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		budgets      = flag.String("budgets", "", "comma-separated BENCH_*.json budget files (required)")
		threshold    = flag.Float64("threshold", 0.15, "max tolerated ns/op regression as a fraction (0.15 = +15%)")
		allowMissing = flag.Bool("allow-missing", false, "tolerate budgeted benchmarks absent from the fresh run")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: greensprint-benchdiff -budgets a.json[,b.json] [flags] bench.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *budgets == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var files []string
	for _, f := range strings.Split(*budgets, ",") {
		if f = strings.TrimSpace(f); f != "" {
			files = append(files, f)
		}
	}
	budget, err := loadBudgets(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greensprint-benchdiff:", err)
		os.Exit(1)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "greensprint-benchdiff:", err)
		os.Exit(1)
	}
	fresh, err := parseBenchOutput(string(raw))
	if err != nil {
		fmt.Fprintln(os.Stderr, "greensprint-benchdiff:", err)
		os.Exit(1)
	}

	report := diff(budget, fresh, *threshold)
	fmt.Print(report.table())
	for _, f := range report.failures {
		fmt.Fprintln(os.Stderr, "FAIL:", f)
	}
	if len(report.missing) > 0 && !*allowMissing {
		for _, name := range report.missing {
			fmt.Fprintf(os.Stderr, "FAIL: budgeted benchmark %s missing from the fresh run\n", name)
		}
		os.Exit(1)
	}
	if len(report.failures) > 0 {
		os.Exit(1)
	}
}
