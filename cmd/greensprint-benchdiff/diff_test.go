package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: greensprint/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineStep-8        	  117740	     10300 ns/op	      69 B/op	       0 allocs/op
BenchmarkFleetDay10k-8       	     166	   7538971 ns/op	 1134776 B/op	     429 allocs/op
BenchmarkGoodputCached-8     	41683478	     28.42 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	greensprint/internal/sim	3.544s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(benchText)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	step := got["BenchmarkEngineStep"]
	if step.NsPerOp != 10300 || step.BytesPerOp == nil || *step.BytesPerOp != 69 ||
		step.AllocsPerOp == nil || *step.AllocsPerOp != 0 {
		t.Errorf("EngineStep = %+v", step)
	}
	if got["BenchmarkGoodputCached"].NsPerOp != 28.42 {
		t.Errorf("fractional ns/op parsed as %v", got["BenchmarkGoodputCached"].NsPerOp)
	}
	if _, err := parseBenchOutput("PASS\nok x 1s\n"); err == nil {
		t.Error("benchmark-free input accepted")
	}
}

func writeBudget(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadBudgetsMerge(t *testing.T) {
	a := writeBudget(t, "a.json", `{"engine_step_allocs_budget": 8,
		"result": {"BenchmarkEngineStep": {"ns_per_op": 10000, "allocs_per_op": 0},
		           "BenchmarkOld": {"ns_per_op": 50},
		           "BenchmarkPinned": {"ns_per_op": 30, "bytes_per_op": 64}}}`)
	b := writeBudget(t, "b.json", `{"engine_step_allocs_budget": 0,
		"result": {"BenchmarkOld": {"ns_per_op": 40},
		"BenchmarkPinned": {"ns_per_op": 45},
		"BenchmarkFleetDay10k": {"ns_per_op": 7538971}}}`)
	set, err := loadBudgets([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.metrics) != 4 {
		t.Fatalf("merged %d budgets, want 4", len(set.metrics))
	}
	// The trajectory keeps the tightest record per benchmark, in
	// either direction: a later faster number ratchets the budget
	// down, a later slower re-recording cannot loosen it.
	if set.metrics["BenchmarkOld"].NsPerOp != 40 {
		t.Errorf("tighter later budget did not win: %v", set.metrics["BenchmarkOld"].NsPerOp)
	}
	if m := set.metrics["BenchmarkPinned"]; m.NsPerOp != 30 || m.BytesPerOp == nil || *m.BytesPerOp != 64 {
		t.Errorf("slower re-recording loosened the budget: %+v", m)
	}
	if cap, ok := set.allocsCaps["BenchmarkEngineStep"]; !ok || cap != 0 {
		t.Errorf("allocs cap = %v, %v; want the minimum (0) across files", cap, ok)
	}
}

func TestDiffVerdicts(t *testing.T) {
	set := &budgetSet{
		metrics: map[string]metric{
			"BenchmarkOK":      {NsPerOp: 100},
			"BenchmarkSlow":    {NsPerOp: 100},
			"BenchmarkFast":    {NsPerOp: 100},
			"BenchmarkGone":    {NsPerOp: 100},
			"BenchmarkOverCap": {NsPerOp: 100},
		},
		allocsCaps: map[string]float64{"BenchmarkOverCap": 8},
	}
	nine := 9.0
	fresh := map[string]metric{
		"BenchmarkOK":      {NsPerOp: 110},
		"BenchmarkSlow":    {NsPerOp: 120},
		"BenchmarkFast":    {NsPerOp: 50},
		"BenchmarkOverCap": {NsPerOp: 100, AllocsPerOp: &nine},
	}
	rep := diff(set, fresh, 0.15)
	if len(rep.missing) != 1 || rep.missing[0] != "BenchmarkGone" {
		t.Errorf("missing = %v", rep.missing)
	}
	if len(rep.failures) != 2 {
		t.Fatalf("failures = %v, want ns/op regression + allocs cap", rep.failures)
	}
	verdicts := map[string]string{}
	for _, r := range rep.rows {
		verdicts[r.name] = r.verdict
	}
	for name, want := range map[string]string{
		"BenchmarkOK":      "ok",
		"BenchmarkSlow":    "REGRESSION",
		"BenchmarkFast":    "improved",
		"BenchmarkOverCap": "OVER ALLOC BUDGET",
	} {
		if verdicts[name] != want {
			t.Errorf("%s verdict = %q, want %q", name, verdicts[name], want)
		}
	}
	table := rep.table()
	for _, frag := range []string{"BenchmarkSlow", "+20.0%", "REGRESSION"} {
		if !strings.Contains(table, frag) {
			t.Errorf("table lacks %q:\n%s", frag, table)
		}
	}
}

// TestDiffAgainstCommittedBudgets is the end-to-end check CI relies
// on: the repo's own BENCH_PR4.json + BENCH_PR7.json parse, and a
// fresh run matching the recorded numbers passes clean.
func TestDiffAgainstCommittedBudgets(t *testing.T) {
	root := "../.."
	set, err := loadBudgets([]string{
		filepath.Join(root, "BENCH_PR4.json"),
		filepath.Join(root, "BENCH_PR7.json"),
		filepath.Join(root, "BENCH_PR9.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.metrics["BenchmarkFleetDay10k"]; !ok {
		t.Fatal("BENCH_PR7.json lacks BenchmarkFleetDay10k")
	}
	if _, ok := set.metrics["BenchmarkYearSingleCell"]; !ok {
		t.Fatal("BENCH_PR9.json lacks BenchmarkYearSingleCell")
	}
	if cap, ok := set.allocsCaps["BenchmarkEngineStep"]; !ok || cap != 0 {
		t.Fatalf("trajectory allocs cap = %v, %v; BENCH_PR9.json ratchets it to 0", cap, ok)
	}
	rep := diff(set, set.metrics, 0.15)
	if len(rep.failures) != 0 || len(rep.missing) != 0 {
		t.Errorf("self-diff fails: %v %v", rep.failures, rep.missing)
	}
}
