// Command greensprint-lint runs the repository's invariant analyzer
// (internal/lint) over the module: determinism (nondeterm, maprange),
// crash-safe persistence (atomicwrite), checkpoint completeness
// (snapshotpair, statecov, wiretag), the single-threaded,
// zero-allocation Step hot path (nogoroutine, allocfree) and
// mutex-guarded access in the concurrent control plane (lockguard).
// It is stdlib-only and loads packages from source, so it runs
// anywhere the Go toolchain's GOROOT sources are installed.
//
// Usage:
//
//	greensprint-lint [-json] [-C dir] [-rules] [-audit] [packages]
//
// Packages default to ./... relative to the module root found by
// walking up from -C (default: the working directory). Diagnostics
// print one per line as file:line: rule: message; with -json a
// machine-readable report ({count, diagnostics}) is written instead,
// for CI artifacts. The exit status is 1 when any diagnostic fires,
// 2 on usage or load errors.
//
// Intentional violations are suppressed in source with
//
//	//greensprint:allow(rule1,rule2) justification
//
// on the offending line or the line above it.
//
// -audit switches from checking to justifying: instead of reporting
// violations, it lists every live allow directive (file:line, rule,
// justification) and flags stale exemptions — directives whose rule no
// longer fires on the covered lines, names an unknown rule, or lacks a
// justification. Stale exemptions exit 1: each one either documents a
// violation that was since fixed (delete it) or silently pre-approves
// a future regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"greensprint/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("greensprint-lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit a JSON report instead of vet-style lines")
	dir := fs.String("C", "", "directory to resolve the module root from (default: cwd)")
	listRules := fs.Bool("rules", false, "print the rule catalog and exit")
	audit := fs.Bool("audit", false, "list every //greensprint:allow directive and flag stale exemptions")
	fs.Parse(os.Args[1:])

	if *listRules {
		for _, r := range lint.DefaultRules() {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return
	}
	code, err := run(*dir, *jsonOut, *audit, fs.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greensprint-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// report is the JSON artifact shape consumed by CI.
type report struct {
	Count       int               `json:"count"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

// auditReport is the JSON artifact shape for -audit.
type auditReport struct {
	Count      int               `json:"count"`
	Stale      int               `json:"stale"`
	Directives []lint.AuditEntry `json:"directives"`
}

// run executes the lint pass and returns the process exit code: 0 for
// a clean tree, 1 when diagnostics fired.
func run(dir string, jsonOut, audit bool, patterns []string, stdout io.Writer) (int, error) {
	if dir == "" {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			return 0, err
		}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return 0, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.LoadAll(patterns)
	if err != nil {
		return 0, err
	}
	if audit {
		return runAudit(pkgs, jsonOut, stdout)
	}
	diags := lint.Run(pkgs, lint.DefaultRules())
	if jsonOut {
		rep := report{Count: len(diags), Diagnostics: diags}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 0, err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// runAudit executes the exemption audit and returns the exit code: 0
// when every directive is live and justified, 1 when any is stale.
func runAudit(pkgs []*lint.Package, jsonOut bool, stdout io.Writer) (int, error) {
	entries := lint.Audit(pkgs, lint.DefaultRules())
	stale := 0
	for _, e := range entries {
		if !e.Live {
			stale++
		}
	}
	if jsonOut {
		rep := auditReport{Count: len(entries), Stale: stale, Directives: entries}
		if rep.Directives == nil {
			rep.Directives = []lint.AuditEntry{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 0, err
		}
	} else {
		for _, e := range entries {
			fmt.Fprintln(stdout, e)
		}
		fmt.Fprintf(stdout, "%d directives, %d stale\n", len(entries), stale)
	}
	if stale > 0 {
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
