package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunCleanPackages(t *testing.T) {
	var buf bytes.Buffer
	code, err := run("", false, []string{"./internal/pmk", "./internal/atomicfile"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d on a clean subtree; output:\n%s", code, buf.String())
	}
	if buf.Len() != 0 {
		t.Errorf("unexpected output on clean subtree:\n%s", buf.String())
	}
}

// TestRunJSONOnViolations builds a scratch module containing one
// deterministic-domain violation and checks the full driver path:
// module-root discovery, package loading, JSON report shape and the
// non-zero exit code CI keys off.
func TestRunJSONOnViolations(t *testing.T) {
	dir := t.TempDir()
	simDir := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(simDir, 0o755); err != nil {
		t.Fatal(err)
	}
	gomod := "module greensprint\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package sim

import "time"

// Epoch leaks the wall clock into the deterministic domain.
func Epoch() int64 { return time.Now().Unix() }
`
	if err := os.WriteFile(filepath.Join(simDir, "sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	code, err := run(dir, true, []string{"./..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a violating tree; output:\n%s", code, buf.String())
	}
	var rep struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Rule string `json:"rule"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, buf.String())
	}
	if rep.Count != 1 || len(rep.Diagnostics) != 1 {
		t.Fatalf("count = %d, diagnostics = %d, want 1 each:\n%s", rep.Count, len(rep.Diagnostics), buf.String())
	}
	d := rep.Diagnostics[0]
	if d.Rule != "nondeterm" || d.File != "internal/sim/sim.go" || d.Line != 6 {
		t.Errorf("diagnostic = %+v, want nondeterm at internal/sim/sim.go:6", d)
	}
}

func TestFindModuleRoot(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("found root %s without go.mod: %v", root, err)
	}
	if _, err := findModuleRoot(t.TempDir()); err == nil {
		t.Error("want error when no go.mod exists above the directory")
	}
}
