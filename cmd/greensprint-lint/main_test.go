package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunCleanPackages(t *testing.T) {
	var buf bytes.Buffer
	code, err := run("", false, false, []string{"./internal/pmk", "./internal/atomicfile"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d on a clean subtree; output:\n%s", code, buf.String())
	}
	if buf.Len() != 0 {
		t.Errorf("unexpected output on clean subtree:\n%s", buf.String())
	}
}

// TestRunJSONOnViolations builds a scratch module containing one
// deterministic-domain violation and checks the full driver path:
// module-root discovery, package loading, JSON report shape and the
// non-zero exit code CI keys off.
func TestRunJSONOnViolations(t *testing.T) {
	dir := t.TempDir()
	simDir := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(simDir, 0o755); err != nil {
		t.Fatal(err)
	}
	gomod := "module greensprint\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package sim

import "time"

// Epoch leaks the wall clock into the deterministic domain.
func Epoch() int64 { return time.Now().Unix() }
`
	if err := os.WriteFile(filepath.Join(simDir, "sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	code, err := run(dir, true, false, []string{"./..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a violating tree; output:\n%s", code, buf.String())
	}
	var rep struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Rule string `json:"rule"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, buf.String())
	}
	if rep.Count != 1 || len(rep.Diagnostics) != 1 {
		t.Fatalf("count = %d, diagnostics = %d, want 1 each:\n%s", rep.Count, len(rep.Diagnostics), buf.String())
	}
	d := rep.Diagnostics[0]
	if d.Rule != "nondeterm" || d.File != "internal/sim/sim.go" || d.Line != 6 {
		t.Errorf("diagnostic = %+v, want nondeterm at internal/sim/sim.go:6", d)
	}
}

// TestRunAudit builds a scratch module with one live exemption (an
// os.Getenv the directive genuinely excuses), one stale exemption (a
// directive over code that violates nothing) and one naming an unknown
// rule, and checks the audit lists all three, flags the two stale ones
// and exits 1.
func TestRunAudit(t *testing.T) {
	dir := t.TempDir()
	simDir := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(simDir, 0o755); err != nil {
		t.Fatal(err)
	}
	gomod := "module greensprint\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package sim

import "os"

//greensprint:allow(nondeterm) test override knob, read once at init
var A = os.Getenv("A")

//greensprint:allow(nondeterm) nothing on this line violates nondeterm
var B = 2

//greensprint:allow(nosuchrule) rule was renamed away
var C = 3
`
	if err := os.WriteFile(filepath.Join(simDir, "sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	code, err := run(dir, true, true, []string{"./..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1 with stale exemptions; output:\n%s", code, buf.String())
	}
	var rep struct {
		Count      int `json:"count"`
		Stale      int `json:"stale"`
		Directives []struct {
			Line   int    `json:"line"`
			Rule   string `json:"rule"`
			Live   bool   `json:"live"`
			Reason string `json:"reason"`
		} `json:"directives"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("JSON audit does not parse: %v\n%s", err, buf.String())
	}
	if rep.Count != 3 || rep.Stale != 2 || len(rep.Directives) != 3 {
		t.Fatalf("count = %d, stale = %d, directives = %d, want 3/2/3:\n%s",
			rep.Count, rep.Stale, len(rep.Directives), buf.String())
	}
	for _, d := range rep.Directives {
		switch d.Line {
		case 5:
			if !d.Live {
				t.Errorf("line 5 (genuine exemption) audited stale: %+v", d)
			}
		case 8:
			if d.Live || d.Reason == "" {
				t.Errorf("line 8 (nothing fires) audited live: %+v", d)
			}
		case 11:
			if d.Live || d.Reason != "unknown rule" {
				t.Errorf("line 11 (unknown rule) = %+v, want stale with reason", d)
			}
		default:
			t.Errorf("unexpected audit entry: %+v", d)
		}
	}
}

// TestRepoAuditClean is the repo-wide half of the audit: every
// committed //greensprint:allow directive must still be live — a
// directive whose violation was since fixed has to be deleted, not
// left to pre-approve a future regression.
func TestRepoAuditClean(t *testing.T) {
	var buf bytes.Buffer
	code, err := run("", false, true, []string{"./..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("repo audit found stale exemptions:\n%s", buf.String())
	}
}

func TestFindModuleRoot(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("found root %s without go.mod: %v", root, err)
	}
	if _, err := findModuleRoot(t.TempDir()); err == nil {
		t.Error("want error when no go.mod exists above the directory")
	}
}
