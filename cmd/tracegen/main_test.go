package main

import (
	"os"
	"path/filepath"
	"testing"

	"greensprint/internal/solar"
)

func TestGenerateSolar(t *testing.T) {
	tr, err := generate("solar", 2, 3, 1, "clear,overcast", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2*24*60 {
		t.Errorf("len = %d", tr.Len())
	}
	if tr.Max() > 635.25+1e-9 {
		t.Errorf("max = %v", tr.Max())
	}
}

func TestGenerateDiurnal(t *testing.T) {
	tr, err := generate("diurnal", 0, 0, 0, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 24*60 {
		t.Errorf("len = %d", tr.Len())
	}
	if tr.Max() <= 1 {
		t.Errorf("diurnal pattern should spike above 1, max = %v", tr.Max())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("nope", 1, 1, 1, "", "", ""); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := generate("solar", 0, 3, 1, "", "", ""); err == nil {
		t.Error("zero days should error")
	}
	if _, err := generate("solar", 1, 3, 1, "sunny", "", ""); err == nil {
		t.Error("unknown sky should error")
	}
}

func TestParseSkies(t *testing.T) {
	skies, err := parseSkies("clear, partly ,overcast")
	if err != nil {
		t.Fatal(err)
	}
	want := []solar.Sky{solar.Clear, solar.PartlyCloudy, solar.Overcast}
	if len(skies) != len(want) {
		t.Fatalf("len = %d", len(skies))
	}
	for i := range want {
		if skies[i] != want[i] {
			t.Errorf("sky %d = %v", i, skies[i])
		}
	}
}

func TestGenerateWind(t *testing.T) {
	tr, err := generate("wind", 1, 0, 1, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 24*60 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestGenerateNREL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "midc.csv")
	csv := "DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,12:00,500\n05/01/2018,12:01,600\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := generate("nrel", 0, 3, 0, "", path, "Global")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Samples[0] != 3*211.75*0.5 {
		t.Errorf("power = %v", tr.Samples[0])
	}
	if _, err := generate("nrel", 0, 3, 0, "", "", ""); err == nil {
		t.Error("missing -in should error")
	}
	if _, err := generate("nrel", 0, 3, 0, "", filepath.Join(dir, "missing.csv"), "Global"); err == nil {
		t.Error("missing file should error")
	}
}
