// Command tracegen generates the input traces GreenSprint consumes:
// synthetic NREL-style solar production traces (one-minute AC power of
// a panel array) and the diurnal workload-intensity pattern of
// Figure 1.
//
// Usage:
//
//	tracegen -kind solar  [-days 7] [-panels 3] [-seed 1]
//	         [-skies clear,partly,overcast] [-o solar.csv]
//	tracegen -kind wind    [-o wind.csv]
//	tracegen -kind diurnal [-o load.csv]
//	tracegen -kind nrel -in midc.csv [-column Global] [-panels 3] [-o power.csv]
//
// The nrel kind converts a downloaded NREL MIDC daily-export CSV into
// the AC power trace of a panel array, replaying real irradiance the
// way the paper's prototype did.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"greensprint/internal/nrel"
	"greensprint/internal/solar"
	"greensprint/internal/trace"
	"greensprint/internal/wind"
	"greensprint/internal/workload"
)

func main() {
	kind := flag.String("kind", "solar", "trace kind: solar, wind, diurnal or nrel")
	days := flag.Int("days", 7, "days of solar trace")
	panels := flag.Int("panels", 3, "PV panels in the array (3 = RE, 2 = SRE)")
	seed := flag.Int64("seed", 1, "random seed for stochastic processes")
	skies := flag.String("skies", "", "comma-separated per-day skies: clear, partly, overcast")
	in := flag.String("in", "", "input NREL MIDC CSV (kind=nrel)")
	column := flag.String("column", "Global", "irradiance column substring (kind=nrel)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		//greensprint:allow(atomicwrite) CSV trace export stream, regenerable from the seed
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	tr, err := generate(*kind, *days, *panels, *seed, *skies, *in, *column)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func generate(kind string, days, panels int, seed int64, skies, in, column string) (*trace.Trace, error) {
	switch kind {
	case "solar":
		cfg := solar.DefaultGeneratorConfig()
		cfg.Days = days
		cfg.Array.Panels = panels
		cfg.Seed = seed
		if skies != "" {
			parsed, err := parseSkies(skies)
			if err != nil {
				return nil, err
			}
			cfg.Skies = parsed
		}
		return solar.Generate(cfg)
	case "wind":
		cfg := wind.DefaultGeneratorConfig()
		cfg.Duration = time.Duration(days) * 24 * time.Hour
		cfg.Seed = seed
		return wind.Generate(cfg)
	case "diurnal":
		return workload.DiurnalPattern(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC), time.Minute), nil
	case "nrel":
		if in == "" {
			return nil, fmt.Errorf("kind=nrel requires -in FILE")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		irr, err := nrel.ParseIrradiance(f, column)
		if err != nil {
			return nil, err
		}
		array := solar.Array{Panel: solar.DefaultPanel(), Panels: panels}
		return nrel.ToPower(irr, array), nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want solar, wind, diurnal or nrel)", kind)
	}
}

func parseSkies(s string) ([]solar.Sky, error) {
	var out []solar.Sky
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "clear":
			out = append(out, solar.Clear)
		case "partly":
			out = append(out, solar.PartlyCloudy)
		case "overcast":
			out = append(out, solar.Overcast)
		default:
			return nil, fmt.Errorf("unknown sky %q", part)
		}
	}
	return out, nil
}
