// Command greensprintd runs the GreenSprint controller as a daemon: an
// epoch ticker drives the Monitor → Predictor → PSS → PMK loop while
// an HTTP API serves status, history, metrics and manual telemetry
// injection.
//
// Two actuation backends are available:
//
//   - -backend sim (default): simulated knobs, with telemetry
//     synthesized from a replayed (or generated) solar trace and the
//     configured workload burst — a self-contained demonstration of
//     the full control loop.
//   - -backend sysfs: applies decisions to the local Linux host
//     through CPU online masks and cpufreq caps (requires root and a
//     -sysfs-root; telemetry must then be POSTed to /step by an
//     external monitor, and the internal ticker is disabled).
//
// Usage:
//
//	greensprintd [-addr :8479] [-config FILE] [-backend sim|sysfs]
//	             [-sysfs-root DIR] [-epoch 5m] [-once N]
//	             [-checkpoint FILE] [-resume] [-checkpoint-keep N]
//	             [-qtable FILE] [-events FILE] [-pprof]
//	             [-chaos-profile P] [-chaos-seed N] [-fleet FILE]
//	             [-catchup N]
//
// With -catchup N a resumed daemon first replays up to N missed
// epochs as one batched controller step (core.Controller.StepN) —
// telemetry synthesized exactly as the live loop would have measured
// it, one checkpoint for the whole batch — before settling into
// real-time ticking.
//
// With -fleet FILE (sim backend only) the daemon manages a generated
// heterogeneous fleet instead of the flat Table I rack: FILE is a
// fleet spec (see internal/fleet) stamped deterministically into
// racks, classes and zones. The control plane then sees the fleet's
// aggregate census — total servers, fleet-level PV peak, a
// class-indexed battery bank — and chaos profiles resolve against the
// generated topology, so zone outages strike generated zones.
//
// With -checkpoint the daemon persists the full controller state
// (battery model, PSS accounting, predictors, decision history and the
// Hybrid Q-table) after every epoch and on shutdown; -resume restores
// it on startup so the control loop continues where it left off, and
// -checkpoint-keep N additionally retains the N most recent
// epoch-numbered checkpoint snapshots for long-haul runs. The older
// -qtable flag persists only the Q-table and is kept for
// compatibility.
//
// Observability: GET /metrics serves the Prometheus text-format
// catalog (always on), -events FILE appends one JSONL record per
// epoch (telemetry in, decision out, power-source split), and -pprof
// mounts net/http/pprof under /debug/pprof/.
//
// With -chaos-profile (sim backend only) the resolved failure timeline
// is handed to the controller itself (core.Options.Chaos): every epoch
// the controller advances the injector under its own lock, so crashed
// servers shrink the live census behind budget division and knob
// actuation, a stuck PSS is welded to the utility feed, battery faults
// degrade the bank, breaker trips force the PDU breaker open, and
// every fault and recovery is emitted as a chaos event on the
// observability stream. The tick loop keeps synthesizing fault-free,
// full-fleet telemetry — the controller applies solar dropouts and
// alive-fraction degradation itself. The timeline depends only on the
// flags, so a daemon restarted with the same flags and -resume (which
// restores the injector's replay position from the checkpoint) replays
// the same failures.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"greensprint/internal/atomicfile"
	"greensprint/internal/battery"
	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/config"
	"greensprint/internal/core"
	"greensprint/internal/fleet"
	"greensprint/internal/httpapi"
	"greensprint/internal/loadgen"
	"greensprint/internal/obs"
	"greensprint/internal/pmk"
	"greensprint/internal/server"
	"greensprint/internal/solar"
	"greensprint/internal/units"
)

// options collects the daemon's flag-derived configuration.
type options struct {
	addr      string
	backend   string
	sysfsRoot string
	epoch     time.Duration
	once      int
	qtable    string
	ckpt      string
	ckptKeep  int
	resume    bool
	events    string
	pprof     bool
	chaos     string
	chaosSeed int64
	catchup   int
	fleetSpec *fleet.Spec
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8479", "HTTP listen address")
	cfgPath := flag.String("config", "", "JSON config file (optional)")
	flag.StringVar(&o.backend, "backend", "sim", "actuation backend: sim or sysfs")
	flag.StringVar(&o.sysfsRoot, "sysfs-root", "", "sysfs CPU root for the sysfs backend")
	flag.DurationVar(&o.epoch, "epoch", 0, "override the scheduling epoch (e.g. 2s for demos)")
	flag.IntVar(&o.once, "once", 0, "run N epochs and exit (0 = serve forever)")
	flag.StringVar(&o.qtable, "qtable", "", "file persisting the Hybrid Q-table across restarts")
	flag.StringVar(&o.ckpt, "checkpoint", "", "file persisting the full controller state after every epoch")
	flag.IntVar(&o.ckptKeep, "checkpoint-keep", 0, "retain the N most recent epoch-numbered checkpoint snapshots (0 = only the live file)")
	flag.BoolVar(&o.resume, "resume", false, "restore controller state from the -checkpoint file on startup")
	flag.StringVar(&o.events, "events", "", "append one JSONL observability record per epoch to this file")
	flag.BoolVar(&o.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.StringVar(&o.chaos, "chaos-profile", "", "failure profile enabling chaos injection: light, heavy, or key=weight[:MIN-MAX] spec (sim backend)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed resolving the -chaos-profile failure timeline")
	flag.IntVar(&o.catchup, "catchup", 0, "with -resume: replay up to N missed epochs as one batched controller step before real-time ticking")
	fleetPath := flag.String("fleet", "", "fleet spec JSON file replacing the flat rack with a generated heterogeneous fleet (sim backend)")
	flag.Parse()
	if o.resume && o.ckpt == "" {
		log.Fatal("greensprintd: -resume requires -checkpoint")
	}
	if o.chaos != "" && o.backend != "sim" {
		log.Fatal("greensprintd: -chaos-profile requires -backend sim")
	}
	if *fleetPath != "" {
		if o.backend != "sim" {
			log.Fatal("greensprintd: -fleet requires -backend sim")
		}
		spec, err := loadFleetSpec(*fleetPath)
		if err != nil {
			log.Fatalf("greensprintd: %v", err)
		}
		o.fleetSpec = spec
	}
	if o.ckptKeep > 0 && o.ckpt == "" {
		log.Fatal("greensprintd: -checkpoint-keep requires -checkpoint")
	}

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		if cfg, err = config.Load(*cfgPath); err != nil {
			log.Fatalf("greensprintd: %v", err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, o); err != nil {
		log.Fatalf("greensprintd: %v", err)
	}
}

// run builds the controller stack for cfg and serves until ctx is
// cancelled (or -once epochs have run).
func run(ctx context.Context, cfg config.Config, o options) error {
	ctrl, collector, ticker, err := buildController(cfg, o)
	if err != nil {
		return err
	}
	return serve(ctx, ctrl, collector, ticker, cfg, o)
}

// buildController assembles the controller, its observability sinks
// and the actuation backend. ticker reports whether the internal epoch
// loop should drive the controller (false for sysfs, where an external
// monitor POSTs /step).
func buildController(cfg config.Config, o options) (ctrl *core.Controller, collector *obs.Collector, ticker bool, err error) {
	p, err := cfg.WorkloadProfile()
	if err != nil {
		return nil, nil, false, err
	}
	green, topo, err := fleetView(cfg, o)
	if err != nil {
		return nil, nil, false, err
	}
	epoch := o.epoch
	if epoch == 0 {
		epoch = cfg.Epoch.Std()
	}

	var knobs *pmk.Fleet
	var bank battery.Store
	ticker = true
	switch o.backend {
	case "sim":
		knobs = pmk.NewSimFleet(green.GreenServers)
		if topo != nil {
			// Fleet run: the controller's battery view is the
			// class-indexed bank of the generated topology instead of
			// the flat per-unit bank green.NewBank would build.
			cb, err := battery.NewClassBank(topo.BatteryClasses())
			if err != nil {
				return nil, nil, false, err
			}
			bank = cb
			log.Printf("greensprintd: %s", topo.Summary())
		}
	case "sysfs":
		ks := make([]pmk.Knob, green.GreenServers)
		for i := range ks {
			ks[i] = pmk.NewSysfs(o.sysfsRoot)
		}
		knobs = pmk.NewFleet(ks...)
		ticker = false // external monitor drives /step
	default:
		return nil, nil, false, fmt.Errorf("unknown backend %q", o.backend)
	}

	inj, err := buildInjector(cfg, green, topo, epoch, o)
	if err != nil {
		return nil, nil, false, err
	}

	collector = obs.NewCollector()
	ctrl, err = core.New(core.Options{
		Workload:     p,
		Green:        green,
		StrategyName: cfg.Strategy,
		Epoch:        epoch,
		Fleet:        knobs,
		Bank:         bank,
		Sink:         collector, // the JSONL sink joins in serve, where the file is owned
		Chaos:        inj,
	})
	if err != nil {
		return nil, nil, false, err
	}

	if o.qtable != "" {
		if err := loadQTable(ctrl, o.qtable); err != nil {
			log.Printf("greensprintd: qtable: %v (starting fresh)", err)
		}
	}
	if o.resume {
		if err := loadCheckpoint(ctrl, o.ckpt); err != nil {
			return nil, nil, false, fmt.Errorf("resume: %w", err)
		}
	}
	return ctrl, collector, ticker, nil
}

// serve runs the HTTP API and (for ticker backends) the epoch loop
// until ctx is cancelled, then persists final state. The tick loop is
// joined through a done channel before the final Q-table/checkpoint
// save: an in-flight Step can neither race the save (the Q-table has
// no lock of its own) nor land after it and be lost.
func serve(ctx context.Context, ctrl *core.Controller, collector *obs.Collector, ticker bool, cfg config.Config, o options) error {
	green, _, err := fleetView(cfg, o)
	if err != nil {
		return err
	}
	p, err := cfg.WorkloadProfile()
	if err != nil {
		return err
	}
	epoch := ctrl.Epoch()

	sink := obs.Sink(collector)
	if o.events != "" {
		f, err := os.OpenFile(o.events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("events: %w", err)
		}
		defer f.Close()
		sink = obs.Multi(collector, obs.NewJSONL(f))
		ctrl.SetSink(sink)
	}

	apiOpts := []httpapi.Option{httpapi.WithMetrics(collector)}
	if o.pprof {
		apiOpts = append(apiOpts, httpapi.WithPprof())
	}
	srv := &http.Server{Addr: o.addr, Handler: httpapi.New(ctrl, apiOpts...)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("greensprintd: serving on %s (workload=%s green=%s strategy=%s epoch=%v backend=%s)",
			o.addr, p.Name, green.Name, cfg.Strategy, epoch, o.backend)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tickDone := make(chan struct{})
	if ticker {
		go func() {
			defer close(tickDone)
			tickLoop(ctx, ctrl, cfg, green, epoch, o, cancel)
		}()
	} else {
		close(tickDone)
	}

	var srvErr error
	select {
	case <-ctx.Done():
	case srvErr = <-errCh:
		cancel()
	}
	// Join the tick loop before persisting: the last in-flight Step
	// must be in the final save, and nothing may mutate the Q-table
	// while it is serialized.
	<-tickDone

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if o.qtable != "" {
		if err := saveQTable(ctrl, o.qtable); err != nil {
			log.Printf("greensprintd: qtable: %v", err)
		}
	}
	if o.ckpt != "" {
		if err := saveCheckpoint(ctrl, o.ckpt); err != nil {
			log.Printf("greensprintd: checkpoint: %v", err)
		}
	}
	if srvErr != nil {
		srv.Shutdown(shutdownCtx)
		return srvErr
	}
	return srv.Shutdown(shutdownCtx)
}

// fleetView resolves the run's effective green view. For flat runs it
// is the configured Table I option and a nil topology. For -fleet runs
// the spec is generated (deterministically — every caller sees the
// identical topology) and the green config becomes the fleet's
// aggregate census: total servers and fleet-level panel count, so the
// control plane's per-server budgeting and the synthesized supply are
// both sized to the generated fleet. The class-indexed battery bank is
// built separately from the topology (see buildController).
func fleetView(cfg config.Config, o options) (cluster.GreenConfig, *fleet.Topology, error) {
	green, err := cfg.GreenConfig()
	if err != nil {
		return cluster.GreenConfig{}, nil, err
	}
	if o.fleetSpec == nil {
		return green, nil, nil
	}
	topo, err := o.fleetSpec.Generate()
	if err != nil {
		return cluster.GreenConfig{}, nil, err
	}
	green.Name = topo.Spec.Name
	green.GreenServers = topo.Servers
	green.Panels = topo.Panels
	return green, topo, nil
}

// loadFleetSpec reads and validates a fleet spec JSON file.
func loadFleetSpec(path string) (*fleet.Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load fleet spec: %w", err)
	}
	var spec fleet.Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("fleet spec %s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("fleet spec %s: %w", path, err)
	}
	return &spec, nil
}

// loadQTable restores a persisted Hybrid Q-table, if the controller
// runs a Hybrid strategy and the file exists.
func loadQTable(ctrl *core.Controller, path string) error {
	h, ok := ctrl.HybridStrategy()
	if !ok {
		return fmt.Errorf("strategy %q has no Q-table", ctrl.Strategy())
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil // first run
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := h.LoadQ(f); err != nil {
		return err
	}
	log.Printf("greensprintd: restored Q-table from %s", path)
	return nil
}

// saveQTable persists the learned Q-table on shutdown: serialized
// under the controller lock and written through the shared atomic
// tmp+rename helper, so a crash mid-write cannot truncate a previously
// learned table.
func saveQTable(ctrl *core.Controller, path string) error {
	b, ok, err := ctrl.QTableJSON()
	if !ok {
		return nil
	}
	if err != nil {
		return err
	}
	if err := atomicfile.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	log.Printf("greensprintd: saved Q-table to %s", path)
	return nil
}

// loadCheckpoint restores the full controller state from a checkpoint
// file written by a previous run; a missing file means a first run.
func loadCheckpoint(ctrl *core.Controller, path string) error {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil // first run
	}
	if err != nil {
		return err
	}
	cp, err := core.DecodeCheckpoint(b)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := ctrl.Restore(cp); err != nil {
		return err
	}
	log.Printf("greensprintd: resumed from %s at epoch %d", path, cp.Count)
	return nil
}

// saveCheckpoint atomically persists the full controller state through
// the shared tmp+rename writer, so a crash mid-write never truncates
// the previous checkpoint.
func saveCheckpoint(ctrl *core.Controller, path string) error {
	cp, err := ctrl.Checkpoint()
	if err != nil {
		return err
	}
	b, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(path, b, 0o644)
}

// rotateCheckpoints snapshots the live checkpoint as path.NNNNNNNN
// (zero-padded epoch) and prunes numbered snapshots beyond keep, so
// long-haul runs can roll back past a bad epoch without the directory
// growing without bound.
func rotateCheckpoints(path string, epoch, keep int) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := atomicfile.WriteFile(fmt.Sprintf("%s.%08d", path, epoch), b, 0o644); err != nil {
		return err
	}
	dir, base := filepath.Dir(path), filepath.Base(path)+"."
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var snaps []string
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, base) || strings.Contains(name, ".tmp") {
			continue
		}
		if suf := name[len(base):]; len(suf) == 8 && strings.Trim(suf, "0123456789") == "" {
			snaps = append(snaps, name)
		}
	}
	sort.Strings(snaps) // zero-padded: lexicographic == numeric
	for len(snaps) > keep {
		if err := os.Remove(filepath.Join(dir, snaps[0])); err != nil {
			return err
		}
		snaps = snaps[1:]
	}
	return nil
}

// buildInjector resolves -chaos-profile/-chaos-seed into a chaos
// injector for the tick loop, or nil when chaos is off. The timeline
// covers the same window the synthesized supply trace does; ticks past
// it simply see no further faults.
func buildInjector(cfg config.Config, green cluster.GreenConfig, topo *fleet.Topology, epoch time.Duration, o options) (*chaos.Injector, error) {
	if o.chaos == "" {
		return nil, nil
	}
	prof, err := chaos.ParseProfile(o.chaos)
	if err != nil {
		return nil, err
	}
	window := cfg.BurstDuration.Std() + time.Hour
	epochs := int(window / epoch)
	if time.Duration(epochs)*epoch < window {
		epochs++
	}
	var sched *chaos.Schedule
	if topo != nil {
		// Fleet run: draw fault targets from the generated topology so
		// zone outages strike generated zone membership.
		sched, err = prof.ResolveFor(o.chaosSeed, epochs, topo.ChaosTopology())
	} else {
		bank, berr := green.NewBank()
		if berr != nil {
			return nil, berr
		}
		sched, err = prof.Resolve(o.chaosSeed, epochs, green.GreenServers, bank.Size())
	}
	if err != nil {
		return nil, err
	}
	sched.Source = o.chaos
	inj, err := chaos.NewInjector(sched)
	if err != nil {
		return nil, err
	}
	log.Printf("greensprintd: chaos profile %q seed %d resolved to %d faults over %d epochs",
		o.chaos, o.chaosSeed, len(sched.Faults), epochs)
	return inj, nil
}

// tickLoop drives the controller each epoch: an open-loop load
// generator (the Faban role) offers requests to the current server
// setting, its measured latencies flow through the Monitor, and the
// resulting telemetry steps the control loop. The loop always
// synthesizes fault-free, full-fleet telemetry — the controller owns
// the chaos injector, applying solar dropouts and alive-fraction
// degradation itself and emitting fault transitions on the event
// stream. The epoch index is seeded from the controller's (possibly
// restored) epoch count, so a resumed daemon continues the supply
// trace, the burst schedule and the chaos timeline where the previous
// run stopped instead of replaying them from zero.
func tickLoop(ctx context.Context, ctrl *core.Controller, cfg config.Config,
	green cluster.GreenConfig, epoch time.Duration, o options, stop func()) {

	level, err := cfg.AvailabilityLevel()
	if err != nil {
		log.Printf("greensprintd: %v; assuming Med", err)
		level = solar.Med
	}
	burst := cfg.BurstDuration.Std()
	supply := solar.Synthesize(level, burst+time.Hour, time.Minute, float64(green.PeakGreen()), 42)
	p, _ := cfg.WorkloadProfile()
	offered := p.IntensityRate(cfg.BurstIntensity)
	gen, err := loadgen.New(p, 42)
	if err != nil {
		log.Printf("greensprintd: loadgen: %v", err)
		stop()
		return
	}
	mon := core.NewMonitor(p)
	// synth measures one epoch's synthetic telemetry: green production
	// from the trace at the absolute epoch index, request latencies
	// from the load generator run against the currently applied
	// setting. Shared by the live tick below and the batched catch-up
	// replay.
	synth := func(i int, current server.Config) (core.Telemetry, error) {
		at := supply.Start.Add(time.Duration(i) * epoch)
		rate := offered
		if time.Duration(i)*epoch >= burst {
			rate = 0.6 * offered
		}
		load, err := gen.Run(current, rate, epoch)
		if err != nil {
			return core.Telemetry{}, err
		}
		load.FeedMonitor(mon.RecordLatency)
		mon.RecordGreenPower(units.Watt(supply.At(at)))
		mon.RecordServerPower(p.LoadPower(current, rate))
		tel := mon.Close(epoch)
		tel.OfferedRate = rate
		tel.Goodput = load.Goodput()
		return tel, nil
	}
	start := ctrl.Snapshot().Epoch
	if start > 0 {
		log.Printf("greensprintd: tick loop continuing at epoch %d", start)
	}
	if o.catchup > 0 && start > 0 {
		// Replay the missed epochs back to back under one controller
		// lock acquisition — telemetry for each is synthesized against
		// the previous epoch's applied config, exactly as the live
		// loop would have measured it — then checkpoint once for the
		// whole batch.
		var synthErr error
		ds, err := ctrl.StepN(o.catchup, func(i int, last core.Decision) (core.Telemetry, bool) {
			current := last.Config
			if !current.Valid() {
				current = server.Normal()
			}
			tel, err := synth(i, current)
			if err != nil {
				synthErr = err
				return core.Telemetry{}, false
			}
			return tel, true
		})
		var se *core.SinkError
		if err != nil && !errors.As(err, &se) {
			log.Printf("greensprintd: catch-up: %v", err)
			stop()
			return
		}
		if se != nil {
			log.Printf("greensprintd: catch-up event sink: %v", se.Err)
		}
		if synthErr != nil {
			log.Printf("greensprintd: catch-up loadgen: %v", synthErr)
			stop()
			return
		}
		if len(ds) > 0 {
			start = ctrl.Snapshot().Epoch
			if o.ckpt != "" {
				if err := saveCheckpoint(ctrl, o.ckpt); err != nil {
					log.Printf("greensprintd: checkpoint: %v", err)
				} else if o.ckptKeep > 0 {
					if err := rotateCheckpoints(o.ckpt, ds[len(ds)-1].Epoch, o.ckptKeep); err != nil {
						log.Printf("greensprintd: checkpoint rotate: %v", err)
					}
				}
			}
			log.Printf("greensprintd: caught up %d missed epochs in one batch (now at epoch %d)", len(ds), start)
		}
	}
	// Last chaos state logged, so operators see transitions without
	// tailing the event stream.
	prevAlive, prevStuck, prevTripped := green.GreenServers, false, false

	t := time.NewTicker(epoch)
	defer t.Stop()
	for k := 0; ; k++ {
		if o.once > 0 && k >= o.once {
			stop()
			return
		}
		// Measure the epoch that just ended: green production from
		// the trace, request latencies from the load generator run
		// against the currently applied setting. i is the absolute
		// epoch index across restarts; k counts this process's ticks
		// (-once budgets the session, not the lifetime).
		i := start + k
		current := ctrl.Snapshot().Last.Config
		if !current.Valid() {
			current = server.Normal() // before the first decision
		}
		tel, err := synth(i, current)
		if err != nil {
			log.Printf("greensprintd: loadgen: %v", err)
			stop()
			return
		}

		d, err := ctrl.Step(tel)
		var se *core.SinkError
		if err != nil && !errors.As(err, &se) {
			// The step itself failed: nothing was decided or applied,
			// so there is nothing to persist for this epoch.
			log.Printf("greensprintd: step: %v", err)
		} else {
			if se != nil {
				// A sink failure loses an observation, not an epoch:
				// the decision was applied and recorded, so the
				// checkpoint and the epoch log still happen.
				log.Printf("greensprintd: event sink: %v", se.Err)
			}
			if o.ckpt != "" {
				if err := saveCheckpoint(ctrl, o.ckpt); err != nil {
					log.Printf("greensprintd: checkpoint: %v", err)
				} else if o.ckptKeep > 0 {
					if err := rotateCheckpoints(o.ckpt, d.Epoch, o.ckptKeep); err != nil {
						log.Printf("greensprintd: checkpoint rotate: %v", err)
					}
				}
			}
			log.Printf("epoch %d: config=%v case=%v budget=%v sprint=%.0f%% goodput=%.0f/s p%v=%.0fms",
				d.Epoch, d.Config, d.Case, d.Budget, d.SprintFraction*100,
				tel.Goodput, p.Quantile*100, tel.Latency*1000)
			if o.chaos != "" {
				if st := ctrl.Snapshot(); st.Alive != prevAlive || st.PSSStuck != prevStuck || st.BreakerTripped != prevTripped {
					log.Printf("greensprintd: chaos state: alive=%d/%d pss_stuck=%v breaker_tripped=%v",
						st.Alive, green.GreenServers, st.PSSStuck, st.BreakerTripped)
					prevAlive, prevStuck, prevTripped = st.Alive, st.PSSStuck, st.BreakerTripped
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
