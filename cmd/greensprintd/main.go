// Command greensprintd runs the GreenSprint controller as a daemon: an
// epoch ticker drives the Monitor → Predictor → PSS → PMK loop while
// an HTTP API serves status, history and manual telemetry injection.
//
// Two actuation backends are available:
//
//   - -backend sim (default): simulated knobs, with telemetry
//     synthesized from a replayed (or generated) solar trace and the
//     configured workload burst — a self-contained demonstration of
//     the full control loop.
//   - -backend sysfs: applies decisions to the local Linux host
//     through CPU online masks and cpufreq caps (requires root and a
//     -sysfs-root; telemetry must then be POSTed to /step by an
//     external monitor, and the internal ticker is disabled).
//
// Usage:
//
//	greensprintd [-addr :8479] [-config FILE] [-backend sim|sysfs]
//	             [-sysfs-root DIR] [-epoch 5m] [-once N]
//	             [-checkpoint FILE] [-resume] [-qtable FILE]
//
// With -checkpoint the daemon persists the full controller state
// (battery model, PSS accounting, predictors, decision history and the
// Hybrid Q-table) after every epoch and on shutdown; -resume restores
// it on startup so the control loop continues where it left off. The
// older -qtable flag persists only the Q-table and is kept for
// compatibility.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"greensprint/internal/config"
	"greensprint/internal/core"
	"greensprint/internal/httpapi"
	"greensprint/internal/loadgen"
	"greensprint/internal/pmk"
	"greensprint/internal/server"
	"greensprint/internal/solar"
	"greensprint/internal/units"
)

func main() {
	addr := flag.String("addr", ":8479", "HTTP listen address")
	cfgPath := flag.String("config", "", "JSON config file (optional)")
	backend := flag.String("backend", "sim", "actuation backend: sim or sysfs")
	sysfsRoot := flag.String("sysfs-root", "", "sysfs CPU root for the sysfs backend")
	epoch := flag.Duration("epoch", 0, "override the scheduling epoch (e.g. 2s for demos)")
	once := flag.Int("once", 0, "run N epochs and exit (0 = serve forever)")
	qtable := flag.String("qtable", "", "file persisting the Hybrid Q-table across restarts")
	ckpt := flag.String("checkpoint", "", "file persisting the full controller state after every epoch")
	resume := flag.Bool("resume", false, "restore controller state from the -checkpoint file on startup")
	flag.Parse()
	if *resume && *ckpt == "" {
		log.Fatal("greensprintd: -resume requires -checkpoint")
	}

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		if cfg, err = config.Load(*cfgPath); err != nil {
			log.Fatalf("greensprintd: %v", err)
		}
	}
	if err := run(cfg, *addr, *backend, *sysfsRoot, *epoch, *once, *qtable, *ckpt, *resume); err != nil {
		log.Fatalf("greensprintd: %v", err)
	}
}

func run(cfg config.Config, addr, backend, sysfsRoot string, epoch time.Duration, once int, qtablePath, ckptPath string, resume bool) error {
	p, err := cfg.WorkloadProfile()
	if err != nil {
		return err
	}
	green, err := cfg.GreenConfig()
	if err != nil {
		return err
	}
	if epoch == 0 {
		epoch = cfg.Epoch.Std()
	}

	var fleet *pmk.Fleet
	ticker := true
	switch backend {
	case "sim":
		fleet = pmk.NewSimFleet(green.GreenServers)
	case "sysfs":
		knobs := make([]pmk.Knob, green.GreenServers)
		for i := range knobs {
			knobs[i] = pmk.NewSysfs(sysfsRoot)
		}
		fleet = pmk.NewFleet(knobs...)
		ticker = false // external monitor drives /step
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	ctrl, err := core.New(core.Options{
		Workload:     p,
		Green:        green,
		StrategyName: cfg.Strategy,
		Epoch:        epoch,
		Fleet:        fleet,
	})
	if err != nil {
		return err
	}

	if qtablePath != "" {
		if err := loadQTable(ctrl, qtablePath); err != nil {
			log.Printf("greensprintd: qtable: %v (starting fresh)", err)
		}
	}
	if resume {
		if err := loadCheckpoint(ctrl, ckptPath); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	}

	srv := &http.Server{Addr: addr, Handler: httpapi.New(ctrl)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("greensprintd: serving on %s (workload=%s green=%s strategy=%s epoch=%v backend=%s)",
			addr, p.Name, green.Name, cfg.Strategy, epoch, backend)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if ticker {
		go tickLoop(ctx, ctrl, cfg, green.PeakGreen(), epoch, once, ckptPath, stop)
	}

	select {
	case <-ctx.Done():
	case err := <-errCh:
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if qtablePath != "" {
		if err := saveQTable(ctrl, qtablePath); err != nil {
			log.Printf("greensprintd: qtable: %v", err)
		}
	}
	if ckptPath != "" {
		if err := saveCheckpoint(ctrl, ckptPath); err != nil {
			log.Printf("greensprintd: checkpoint: %v", err)
		}
	}
	return srv.Shutdown(shutdownCtx)
}

// loadQTable restores a persisted Hybrid Q-table, if the controller
// runs a Hybrid strategy and the file exists.
func loadQTable(ctrl *core.Controller, path string) error {
	h, ok := ctrl.HybridStrategy()
	if !ok {
		return fmt.Errorf("strategy %q has no Q-table", ctrl.Strategy())
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil // first run
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := h.LoadQ(f); err != nil {
		return err
	}
	log.Printf("greensprintd: restored Q-table from %s", path)
	return nil
}

// saveQTable persists the learned Q-table on shutdown.
func saveQTable(ctrl *core.Controller, path string) error {
	h, ok := ctrl.HybridStrategy()
	if !ok {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := h.SaveQ(f); err != nil {
		return err
	}
	log.Printf("greensprintd: saved Q-table to %s", path)
	return nil
}

// loadCheckpoint restores the full controller state from a checkpoint
// file written by a previous run; a missing file means a first run.
func loadCheckpoint(ctrl *core.Controller, path string) error {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil // first run
	}
	if err != nil {
		return err
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if err := ctrl.Restore(&cp); err != nil {
		return err
	}
	log.Printf("greensprintd: resumed from %s at epoch %d", path, cp.Count)
	return nil
}

// saveCheckpoint atomically persists the full controller state: a
// temporary file in the destination directory renamed into place, so a
// crash mid-write never truncates the previous checkpoint.
func saveCheckpoint(ctrl *core.Controller, path string) error {
	cp, err := ctrl.Checkpoint()
	if err != nil {
		return err
	}
	b, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// tickLoop drives the controller each epoch: an open-loop load
// generator (the Faban role) offers requests to the current server
// setting, its measured latencies flow through the Monitor, and the
// resulting telemetry steps the control loop. The green supply comes
// from the configured availability window.
func tickLoop(ctx context.Context, ctrl *core.Controller, cfg config.Config,
	peak units.Watt, epoch time.Duration, once int, ckptPath string, stop func()) {

	level, err := cfg.AvailabilityLevel()
	if err != nil {
		log.Printf("greensprintd: %v; assuming Med", err)
		level = solar.Med
	}
	burst := cfg.BurstDuration.Std()
	supply := solar.Synthesize(level, burst+time.Hour, time.Minute, float64(peak), 42)
	p, _ := cfg.WorkloadProfile()
	offered := p.IntensityRate(cfg.BurstIntensity)
	gen, err := loadgen.New(p, 42)
	if err != nil {
		log.Printf("greensprintd: loadgen: %v", err)
		stop()
		return
	}
	mon := core.NewMonitor(p)

	t := time.NewTicker(epoch)
	defer t.Stop()
	for i := 0; ; i++ {
		if once > 0 && i >= once {
			stop()
			return
		}
		// Measure the epoch that just ended: green production from
		// the trace, request latencies from the load generator run
		// against the currently applied setting.
		at := supply.Start.Add(time.Duration(i) * epoch)
		rate := offered
		if time.Duration(i)*epoch >= burst {
			rate = 0.6 * offered
		}
		current := ctrl.Snapshot().Last.Config
		if !current.Valid() {
			current = server.Normal() // before the first decision
		}
		load, err := gen.Run(current, rate, epoch)
		if err != nil {
			log.Printf("greensprintd: loadgen: %v", err)
			stop()
			return
		}
		load.FeedMonitor(mon.RecordLatency)
		mon.RecordGreenPower(units.Watt(supply.At(at)))
		mon.RecordServerPower(p.LoadPower(current, rate))
		tel := mon.Close(epoch)
		tel.OfferedRate = rate
		tel.Goodput = load.Goodput()

		d, err := ctrl.Step(tel)
		if err != nil {
			log.Printf("greensprintd: step: %v", err)
		} else {
			if ckptPath != "" {
				if err := saveCheckpoint(ctrl, ckptPath); err != nil {
					log.Printf("greensprintd: checkpoint: %v", err)
				}
			}
			log.Printf("epoch %d: config=%v case=%v budget=%v sprint=%.0f%% goodput=%.0f/s p%v=%.0fms",
				d.Epoch, d.Config, d.Case, d.Budget, d.SprintFraction*100,
				tel.Goodput, p.Quantile*100, tel.Latency*1000)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
