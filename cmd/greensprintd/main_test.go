package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"greensprint/internal/config"
	"greensprint/internal/core"
	"greensprint/internal/obs"
)

func demoConfig() config.Config {
	cfg := config.Default()
	cfg.BurstDuration = config.Duration(10 * time.Minute)
	return cfg
}

func runWith(t *testing.T, ctx context.Context, cfg config.Config, o options) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, o) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}
}

// TestRunOnce boots the daemon with a millisecond epoch and a bounded
// tick count; it must serve, step the controller N times, then shut
// down cleanly.
func TestRunOnce(t *testing.T) {
	runWith(t, context.Background(), demoConfig(),
		options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond, once: 4})
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	if err := run(context.Background(), config.Default(),
		options{addr: "127.0.0.1:0", backend: "warp", epoch: time.Second, once: 1}); err == nil {
		t.Error("unknown backend should error")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := config.Default()
	cfg.Workload = "nope"
	if err := run(context.Background(), cfg,
		options{addr: "127.0.0.1:0", backend: "sim", epoch: time.Second, once: 1}); err == nil {
		t.Error("bad workload should error")
	}
}

// TestQTablePersistence runs the daemon twice against the same Q-table
// file: the first run creates it, the second restores it.
func TestQTablePersistence(t *testing.T) {
	cfg := demoConfig()
	path := filepath.Join(t.TempDir(), "q.json")
	for i := 0; i < 2; i++ {
		runWith(t, context.Background(), cfg,
			options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond, once: 3, qtable: path})
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("run %d left no Q-table: %v", i, err)
		}
	}
}

// TestShutdownJoinsTickLoop is the regression test for the shutdown
// race: cancelling the daemon mid-epoch must join the tick loop before
// the final Q-table/checkpoint save. Before the fix, the final save
// could serialize the Q-table while an in-flight Step's Learn mutated
// it (a data race this test exposes under -race), and the final
// persisted checkpoint could miss — or be overwritten by — the last
// epoch. After run returns, the file must hold exactly the epochs the
// controller stepped.
func TestShutdownJoinsTickLoop(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "ck.json")
	qPath := filepath.Join(dir, "q.json")
	cfg := demoConfig()
	o := options{addr: "127.0.0.1:0", backend: "sim", epoch: time.Millisecond,
		qtable: qPath, ckpt: ckptPath}

	ctrl, collector, ticker, err := buildController(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if !ticker {
		t.Fatal("sim backend should tick")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ctrl, collector, ticker, cfg, o) }()

	// Let some epochs tick, then cancel — with a 1 ms epoch the
	// cancellation lands while a Step/save is in flight.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after cancel")
	}

	stepped := ctrl.Snapshot().Epoch
	if stepped == 0 {
		t.Fatal("no epochs ran before cancellation")
	}
	// The join guarantees quiescence: once serve has returned, no
	// in-flight Step may still commit (an unjoined tick loop would
	// step again within a few epoch lengths and overwrite the final
	// checkpoint behind our back).
	time.Sleep(150 * time.Millisecond)
	if after := ctrl.Snapshot().Epoch; after != stepped {
		t.Fatalf("controller stepped %d→%d after serve returned — tick loop not joined", stepped, after)
	}
	b, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		t.Fatalf("final checkpoint corrupt: %v", err)
	}
	if cp.Count != stepped {
		t.Errorf("final checkpoint at epoch %d, controller stepped %d — final epoch lost", cp.Count, stepped)
	}
	if _, err := os.Stat(qPath); err != nil {
		t.Errorf("no Q-table saved: %v", err)
	}
}

// TestEventLog checks the -events JSONL stream: one parseable record
// per epoch, in order.
func TestEventLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	runWith(t, context.Background(), demoConfig(),
		options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond, once: 3, events: path})

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.Epoch != n {
			t.Errorf("line %d has epoch %d", n, ev.Epoch)
		}
		if ev.Strategy == "" || ev.Config == "" || ev.Case == "" {
			t.Errorf("line %d missing decision fields: %+v", n, ev)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("events = %d, want 3", n)
	}
}

// TestRunFleet boots the daemon over a generated heterogeneous fleet:
// the spec file loads and validates, the control plane sees the
// fleet's aggregate census on every event, and chaos resolves against
// the generated topology.
func TestRunFleet(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "fleet.json")
	specJSON := `{
		"name": "daemonfleet",
		"total_servers": 40,
		"rack_size": 8,
		"seed": 5,
		"templates": [
			{"name": "web", "weight": 3, "battery_ah": 10, "panels": 3},
			{"name": "batch", "weight": 1, "battery_ah": 3.2, "panels": 2}
		]
	}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := loadFleetSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	events := filepath.Join(dir, "events.jsonl")
	runWith(t, context.Background(), demoConfig(),
		options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond,
			once: 3, events: events, fleetSpec: spec, chaos: "light", chaosSeed: 2})

	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.Chaos != "" {
			continue // fault/recovery transitions ride along
		}
		if ev.Servers != 40 {
			t.Errorf("event %d sees %d servers, want the fleet's 40", n, ev.Servers)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("epoch events = %d, want 3", n)
	}

	// A fleet spec on a non-sim backend is refused by flag validation in
	// main; the helper itself rejects malformed specs.
	if _, err := loadFleetSpec(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing spec file should error")
	}
}

// TestCheckpointRotation verifies -checkpoint-keep retains only the N
// newest epoch-numbered snapshots beside the live checkpoint.
func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	runWith(t, context.Background(), demoConfig(),
		options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond,
			once: 5, ckpt: path, ckptKeep: 2})

	if _, err := os.Stat(path); err != nil {
		t.Fatalf("live checkpoint missing: %v", err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		snap := fmt.Sprintf("%s.%08d", path, epoch)
		if _, err := os.Stat(snap); !os.IsNotExist(err) {
			t.Errorf("old snapshot %s not pruned (err=%v)", filepath.Base(snap), err)
		}
	}
	for epoch := 3; epoch < 5; epoch++ {
		snap := fmt.Sprintf("%s.%08d", path, epoch)
		if _, err := os.Stat(snap); err != nil {
			t.Errorf("snapshot %s missing: %v", filepath.Base(snap), err)
		}
	}
	// Rotated snapshots must be valid, restorable checkpoints.
	b, err := os.ReadFile(fmt.Sprintf("%s.%08d", path, 4))
	if err != nil {
		t.Fatal(err)
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		t.Fatalf("rotated snapshot corrupt: %v", err)
	}
	if cp.Count != 5 {
		t.Errorf("snapshot 4 at epoch count %d, want 5", cp.Count)
	}
}

// TestResumeFromCheckpoint runs, stops, then resumes: the second run
// must continue from the persisted epoch count.
func TestResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	cfg := demoConfig()
	runWith(t, context.Background(), cfg,
		options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond, once: 3, ckpt: path})
	runWith(t, context.Background(), cfg,
		options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond, once: 2, ckpt: path, resume: true})

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Count != 5 {
		t.Errorf("resumed run ended at epoch %d, want 5", cp.Count)
	}
}

// readEvents parses a JSONL event file.
func readEvents(t *testing.T, path string) []obs.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []obs.Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", len(out), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResumeContinuesSchedule is the regression test for the resume
// desync: the tick loop used to restart its epoch index at zero while
// the restored controller continued from the checkpointed count, so a
// resumed daemon replayed the burst schedule and the supply trace from
// the beginning. With a burst spanning epochs 0-4, the epochs after
// resume (6, 7) must carry the post-burst offered rate — before the
// fix they carried the in-burst rate of tick indices 0 and 1.
func TestResumeContinuesSchedule(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	events := filepath.Join(dir, "events.jsonl")
	cfg := demoConfig()
	cfg.BurstDuration = config.Duration(25 * time.Millisecond) // epochs 0-4 at 5 ms
	o := options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond,
		ckpt: ckpt, events: events}

	first := o
	first.once = 6
	runWith(t, context.Background(), cfg, first)
	second := o
	second.once = 2
	second.resume = true
	runWith(t, context.Background(), cfg, second)

	evs := readEvents(t, events)
	if len(evs) != 8 {
		t.Fatalf("events = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		if ev.Epoch != i {
			t.Fatalf("event %d has epoch %d — numbering not continuous across resume", i, ev.Epoch)
		}
	}
	inBurst := evs[0].OfferedRate
	if inBurst <= 0 {
		t.Fatalf("epoch 0 offered rate = %v", inBurst)
	}
	post := 0.6 * inBurst
	for _, ev := range evs[5:] {
		if ev.OfferedRate != post {
			t.Errorf("epoch %d offered rate = %v, want post-burst %v — resumed tick loop replayed the schedule from zero",
				ev.Epoch, ev.OfferedRate, post)
		}
	}
}

// TestChaosResumeReplaysTimeline stops a chaos daemon mid-run and
// resumes it with the same flags: the controller-owned injector
// restores its replay position from the v2 checkpoint, the combined
// event stream keeps gap-free epoch numbering, and its fault/recovery
// timeline is bit-identical to an uninterrupted run with the same
// flags.
func TestChaosResumeReplaysTimeline(t *testing.T) {
	dir := t.TempDir()
	cfg := demoConfig()
	base := options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond,
		chaos: "crash=400000,solar=300000,stuck=200000,degrade=200000,breaker=200000", chaosSeed: 7}

	// Uninterrupted reference: 9 epochs in one run.
	ref := base
	ref.once = 9
	ref.events = filepath.Join(dir, "ref.jsonl")
	runWith(t, context.Background(), cfg, ref)

	// Split run: 6 epochs, SIGINT-equivalent shutdown, resume for 3.
	split := base
	split.once = 6
	split.events = filepath.Join(dir, "split.jsonl")
	split.ckpt = filepath.Join(dir, "ck.json")
	runWith(t, context.Background(), cfg, split)
	b, err := os.ReadFile(split.ckpt)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Chaos == nil {
		t.Fatal("chaos daemon checkpoint carries no injector state")
	}
	resumed := split
	resumed.once = 3
	resumed.resume = true
	runWith(t, context.Background(), cfg, resumed)

	refEvs := readEvents(t, ref.events)
	splitEvs := readEvents(t, split.events)

	type transition struct {
		Epoch  int
		Kind   string
		Mode   string
		Target int
	}
	timeline := func(evs []obs.Event) (faults []transition, epochs []int) {
		for _, ev := range evs {
			if ev.Chaos != "" {
				faults = append(faults, transition{ev.Epoch, ev.Chaos, ev.ChaosMode, ev.ChaosTarget})
				continue
			}
			epochs = append(epochs, ev.Epoch)
		}
		return
	}
	refFaults, refEpochs := timeline(refEvs)
	splitFaults, splitEpochs := timeline(splitEvs)

	if len(refFaults) == 0 {
		t.Fatal("reference run injected no faults; raise the profile weights")
	}
	if len(splitEpochs) != 9 {
		t.Fatalf("split run epochs = %d, want 9", len(splitEpochs))
	}
	for i, e := range splitEpochs {
		if e != i {
			t.Fatalf("split epoch record %d numbered %d — gap across resume", i, e)
		}
	}
	if len(refEpochs) != 9 {
		t.Fatalf("reference run epochs = %d, want 9", len(refEpochs))
	}
	if len(splitFaults) != len(refFaults) {
		t.Fatalf("split run timeline has %d transitions, reference %d:\nsplit %+v\nref   %+v",
			len(splitFaults), len(refFaults), splitFaults, refFaults)
	}
	for i := range refFaults {
		if splitFaults[i] != refFaults[i] {
			t.Errorf("transition %d diverged: split %+v, reference %+v", i, splitFaults[i], refFaults[i])
		}
	}
}

// TestCatchupMatchesLiveTicking proves the -catchup batch is
// equivalent to live ticking through the same epochs: after a
// checkpointed 6-epoch run, resuming with -catchup 2 -once 1 must
// produce byte-identical events 6-8 to resuming with three live ticks,
// because the catch-up callback synthesizes telemetry exactly as the
// tick loop measures it and Controller.StepN replays the same
// per-epoch step under one lock.
func TestCatchupMatchesLiveTicking(t *testing.T) {
	dir := t.TempDir()
	cfg := demoConfig()
	cfg.BurstDuration = config.Duration(25 * time.Millisecond) // epochs 0-4 at 5 ms

	seedCkpt := filepath.Join(dir, "seed.json")
	seed := options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond,
		once: 6, ckpt: seedCkpt}
	runWith(t, context.Background(), cfg, seed)
	ck, err := os.ReadFile(seedCkpt)
	if err != nil {
		t.Fatal(err)
	}
	liveCkpt := filepath.Join(dir, "live.json")
	batCkpt := filepath.Join(dir, "bat.json")
	for _, p := range []string{liveCkpt, batCkpt} {
		if err := os.WriteFile(p, ck, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	liveEvents := filepath.Join(dir, "live.jsonl")
	live := options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond,
		once: 3, ckpt: liveCkpt, resume: true, events: liveEvents}
	runWith(t, context.Background(), cfg, live)

	batEvents := filepath.Join(dir, "bat.jsonl")
	bat := options{addr: "127.0.0.1:0", backend: "sim", epoch: 5 * time.Millisecond,
		once: 1, catchup: 2, ckpt: batCkpt, resume: true, events: batEvents}
	runWith(t, context.Background(), cfg, bat)

	lb, err := os.ReadFile(liveEvents)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(batEvents)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) == 0 {
		t.Fatal("live resume emitted no events")
	}
	if string(lb) != string(bb) {
		t.Errorf("catch-up events differ from live ticking:\nlive:\n%s\nbatched:\n%s", lb, bb)
	}
	evs := readEvents(t, batEvents)
	if len(evs) != 3 {
		t.Fatalf("batched resume events = %d, want 3 (2 caught up + 1 live)", len(evs))
	}
	for i, ev := range evs {
		if ev.Epoch != 6+i {
			t.Errorf("event %d has epoch %d, want %d", i, ev.Epoch, 6+i)
		}
	}
	b, err := os.ReadFile(batCkpt)
	if err != nil {
		t.Fatal(err)
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Count != 9 {
		t.Errorf("batched resume ended at epoch %d, want 9", cp.Count)
	}
}
