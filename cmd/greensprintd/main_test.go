package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"greensprint/internal/config"
)

// TestRunOnce boots the daemon with a millisecond epoch and a bounded
// tick count; it must serve, step the controller N times, then shut
// down cleanly.
func TestRunOnce(t *testing.T) {
	cfg := config.Default()
	cfg.BurstDuration = config.Duration(10 * time.Minute)
	done := make(chan error, 1)
	go func() {
		done <- run(cfg, "127.0.0.1:0", "sim", "", 5*time.Millisecond, 4, "", "", false)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after -once ticks")
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	cfg := config.Default()
	if err := run(cfg, "127.0.0.1:0", "warp", "", time.Second, 1, "", "", false); err == nil {
		t.Error("unknown backend should error")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := config.Default()
	cfg.Workload = "nope"
	if err := run(cfg, "127.0.0.1:0", "sim", "", time.Second, 1, "", "", false); err == nil {
		t.Error("bad workload should error")
	}
}

// TestQTablePersistence runs the daemon twice against the same Q-table
// file: the first run creates it, the second restores it.
func TestQTablePersistence(t *testing.T) {
	cfg := config.Default()
	cfg.BurstDuration = config.Duration(10 * time.Minute)
	path := filepath.Join(t.TempDir(), "q.json")
	for i := 0; i < 2; i++ {
		done := make(chan error, 1)
		go func() {
			done <- run(cfg, "127.0.0.1:0", "sim", "", 5*time.Millisecond, 3, path, "", false)
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("run %d did not exit", i)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("run %d left no Q-table: %v", i, err)
		}
	}
}
