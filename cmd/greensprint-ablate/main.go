// Command greensprint-ablate runs the design-choice ablations that go
// beyond the paper's published figures: EWMA smoothing factor,
// Q-learning power quantization, reward shaping, battery
// depth-of-discharge, renewable source (solar vs wind) and distributed
// vs centralized renewable integration, plus two failure injections.
//
// Usage:
//
//	greensprint-ablate [-which all|ewma|quant|reward|dod|source|integration|calibration|overdraw|failures] [-parallel] [-workers N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"greensprint/internal/ablation"
	"greensprint/internal/report"
	"greensprint/internal/sim"
	"greensprint/internal/sweep"
)

func main() {
	which := flag.String("which", "all", "ablation to run")
	parallel := flag.Bool("parallel", true,
		"fan independent sweep cells out across CPUs (results are bit-identical to -parallel=false)")
	workers := flag.Int("workers", 0,
		"cap the sweep worker pool at N (0 = GOMAXPROCS; overrides -parallel when set)")
	flag.Parse()
	switch {
	case *workers > 0:
		sweep.SetDefaultWorkers(*workers)
	case !*parallel:
		sweep.SetDefaultWorkers(1)
	}
	if err := run(os.Stdout, *which); err != nil {
		fmt.Fprintln(os.Stderr, "greensprint-ablate:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, which string) error {
	all := which == "all"
	ran := false
	step := func(name string, f func() error) error {
		if !all && which != name {
			return nil
		}
		ran = true
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w)
		return nil
	}
	steps := []struct {
		name string
		f    func() error
	}{
		{"ewma", func() error { return ewma(w) }},
		{"quant", func() error { return quant(w) }},
		{"reward", func() error { return reward(w) }},
		{"dod", func() error { return dod(w) }},
		{"source", func() error { return source(w) }},
		{"integration", func() error { return integration(w) }},
		{"calibration", func() error { return calibration(w) }},
		{"overdraw", func() error { return overdraw(w) }},
		{"failures", func() error { return failures(w) }},
	}
	for _, s := range steps {
		if err := step(s.name, s.f); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown ablation %q", which)
	}
	return nil
}

func ewma(w io.Writer) error {
	pts, err := ablation.EWMASweep([]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9})
	if err != nil {
		return err
	}
	t := report.NewTable("EWMA smoothing factor (paper: α=0.3; α=0 is the persistence baseline) — one-step solar prediction error",
		"alpha", "RMSE (W)", "MAPE")
	for _, p := range pts {
		t.AddFloats(report.FormatFloat(p.Alpha, 1), 2, p.RMSE, p.MAPE)
	}
	return t.WriteText(w)
}

func quant(w io.Writer) error {
	pts, err := ablation.QuantizationSweep([]float64{0.025, 0.05, 0.10})
	if err != nil {
		return err
	}
	t := report.NewTable("Q-table power quantization (paper: 5%) — SPECjbb Med/30m",
		"step", "levels", "perf (x)", "Q states")
	for _, p := range pts {
		t.Add(report.FormatFloat(p.Step*100, 1)+"%",
			fmt.Sprintf("%d", p.Levels),
			report.FormatFloat(p.Perf, 2),
			fmt.Sprintf("%d", p.QStates))
	}
	return t.WriteText(w)
}

func reward(w io.Writer) error {
	shaped, literal, naive, err := ablation.RewardAblation()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Hybrid on SPECjbb Med/60m:\n")
	fmt.Fprintf(w, "  shaped reward + goodput safeguard   %sx (shipped)\n", report.FormatFloat(shaped, 2))
	fmt.Fprintf(w, "  literal Alg.1 + goodput safeguard   %sx (safeguard rescues it)\n", report.FormatFloat(literal, 2))
	fmt.Fprintf(w, "  literal Alg.1, pure greedy-Q        %sx (collapses; see DESIGN.md §5)\n", report.FormatFloat(naive, 2))
	return nil
}

func dod(w io.Writer) error {
	pts, err := ablation.DoDSweep([]float64{0.2, 0.4, 0.6, 0.8})
	if err != nil {
		return err
	}
	t := report.NewTable("Battery depth of discharge (paper: 40%) — SPECjbb Min/30m",
		"max DoD", "perf (x)", "cycles used", "lifetime (cycles)")
	for _, p := range pts {
		t.Add(report.FormatFloat(p.MaxDoD*100, 0)+"%",
			report.FormatFloat(p.Perf, 2),
			report.FormatFloat(p.Cycles, 3),
			report.FormatFloat(p.LifetimeCycles, 0))
	}
	return t.WriteText(w)
}

func source(w io.Writer) error {
	s, wd, err := ablation.SourceComparison(30 * time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SPECjbb 30m burst at matched mean supply: solar %sx vs wind %sx\n",
		report.FormatFloat(s, 2), report.FormatFloat(wd, 2))
	return nil
}

func integration(w io.Writer) error {
	dist, cent, err := ablation.IntegrationComparison()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Renewable integration at peak supply: distributed (per-PDU) %sx vs centralized %sx\n",
		report.FormatFloat(dist, 2), report.FormatFloat(cent, 2))
	return nil
}

func calibration(w io.Writer) error {
	pts, err := ablation.CalibrationSensitivity()
	if err != nil {
		return err
	}
	t := report.NewTable("Calibration sensitivity — SPECjbb max-sprint gain under ±20% knob perturbations",
		"knob", "delta", "gain (x)")
	for _, p := range pts {
		t.Add(p.Knob, report.FormatFloat(p.Delta*100, 0)+"%", report.FormatFloat(p.Gain, 2))
	}
	return t.WriteText(w)
}

func overdraw(w io.Writer) error {
	plain, boosted, err := ablation.OverdrawComparison()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Green-supply dip on REOnly (no batteries), SPECjbb 30m burst:\n")
	fmt.Fprintf(w, "  without breaker overdraw  %sx\n", report.FormatFloat(plain, 2))
	fmt.Fprintf(w, "  with bounded overdraw     %sx (the §III-A last resort)\n", report.FormatFloat(boosted, 2))
	return nil
}

func failures(w io.Writer) error {
	for _, k := range []ablation.FailureKind{ablation.CloudTransient, ablation.BatteryDead} {
		res, err := ablation.InjectFailure(k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s mean perf %sx, min epoch perf %sx (service never drops below Normal)\n",
			k, report.FormatFloat(res.MeanNormPerf, 2), report.FormatFloat(minPerf(res), 2))
	}
	return nil
}

func minPerf(res *sim.Result) float64 {
	min := 0.0
	for i, rec := range res.BurstRecords() {
		if i == 0 || rec.NormPerf < min {
			min = rec.NormPerf
		}
	}
	return min
}
