package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunIntegration(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "integration"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "distributed") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestRunDoD(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "dod"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"40%", "1300", "depth of discharge"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunFailures(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "failures"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cloud-transient") || !strings.Contains(out, "battery-dead") {
		t.Errorf("output: %s", out)
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope"); err == nil {
		t.Error("unknown ablation should error")
	}
}
