package main

import (
	"bytes"
	"strings"
	"testing"

	"greensprint/internal/profile"
)

func TestRunTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "SPECjbb", 10, "table", -1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SPECjbb profiling table", "12c@2GHz", "6c@1.2GHz", "LoadPower"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// 63 settings + title + header + separator.
	if lines := strings.Count(out, "\n"); lines != 66 {
		t.Errorf("lines = %d", lines)
	}
}

func TestRunJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "Memcached", 5, "json", -1); err != nil {
		t.Fatal(err)
	}
	tab, err := profile.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Workload != "Memcached" || tab.Levels != 5 {
		t.Errorf("table = %s/%d", tab.Workload, tab.Levels)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 10, "table", -1); err == nil {
		t.Error("unknown workload should fail")
	}
	if err := run(&buf, "SPECjbb", 0, "table", -1); err == nil {
		t.Error("zero levels should fail")
	}
	if err := run(&buf, "SPECjbb", 10, "xml", -1); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run(&buf, "SPECjbb", 10, "table", 99); err == nil {
		t.Error("out-of-range level should fail")
	}
}
