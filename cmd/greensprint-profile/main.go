// Command greensprint-profile builds and inspects the a-priori
// profiling tables of §III-B: LoadPower(L,S) and the QoS-constrained
// goodput for every workload-intensity level and server setting. The
// tables drive every strategy at run time; this tool exports them for
// offline analysis or pre-seeds a deployment.
//
// Usage:
//
//	greensprint-profile -workload SPECjbb [-levels 10] [-format json|table] [-level N] [-o FILE]
//
// With -format table and -level N it prints the level's power/goodput
// frontier; with -format json it writes the full table as the JSON the
// library re-loads via profile.ReadJSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"greensprint/internal/profile"
	"greensprint/internal/report"
	"greensprint/internal/workload"
)

func main() {
	wl := flag.String("workload", "SPECjbb", "workload: SPECjbb, Web-Search, Memcached")
	levels := flag.Int("levels", profile.DefaultLevels, "number of intensity levels (L1..Lw)")
	format := flag.String("format", "table", "output format: json or table")
	level := flag.Int("level", -1, "intensity level to print (-1 = highest) for -format table")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		//greensprint:allow(atomicwrite) table/JSON export stream, regenerable offline
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *wl, *levels, *format, *level); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "greensprint-profile:", err)
	os.Exit(1)
}

func run(w io.Writer, wl string, levels int, format string, level int) error {
	p, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	tab, err := profile.Build(p, levels)
	if err != nil {
		return err
	}
	switch format {
	case "json":
		return tab.WriteJSON(w)
	case "table":
		if level < 0 {
			level = tab.Levels - 1
		}
		if level >= tab.Levels {
			return fmt.Errorf("level %d out of range [0,%d)", level, tab.Levels)
		}
		entries := tab.LevelEntries(level)
		if len(entries) == 0 {
			return fmt.Errorf("no entries at level %d", level)
		}
		t := report.NewTable(
			fmt.Sprintf("%s profiling table, level %d of %d (offered %s %s/s per server)",
				p.Name, level, tab.Levels,
				report.FormatFloat(entries[0].OfferedRate, 1), p.MetricName),
			"setting", "LoadPower (W)", "goodput", "perf (x Normal)")
		for _, e := range entries {
			t.Add(e.Config().String(),
				report.FormatFloat(float64(e.Power), 1),
				report.FormatFloat(e.Goodput, 1),
				report.FormatFloat(e.NormPerf, 2))
		}
		return t.WriteText(w)
	default:
		return fmt.Errorf("unknown format %q (want json or table)", format)
	}
}
