// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to
// end and reports headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises the harness and prints the reproduced numbers next to
// the paper's. The per-figure CSV/text rendering lives in
// cmd/greensprint-bench; these benches measure the experiment cost and
// pin the reproduced values into the benchmark output.
package greensprint

import (
	"testing"
	"time"

	"greensprint/internal/ablation"
	"greensprint/internal/experiments"
	"greensprint/internal/solar"
	"greensprint/internal/sweep"
)

func BenchmarkFig01_DiurnalPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkFig05_PowerProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 2 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func benchGrid(b *testing.B, f func() (*experiments.FigureGrid, error), metric string,
	pick func(*experiments.FigureGrid) float64) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		g, err := f()
		if err != nil {
			b.Fatal(err)
		}
		last = pick(g)
	}
	b.ReportMetric(last, metric)
}

func BenchmarkFig06_SPECjbb_REBatt(b *testing.B) {
	benchGrid(b, experiments.Fig6, "max_gain_x", func(g *experiments.FigureGrid) float64 {
		return g.Value(10*time.Minute, solar.Max, "Hybrid") // paper: ~4.8
	})
}

func BenchmarkFig07_GreenConfigs(b *testing.B) {
	benchGrid(b, experiments.Fig7, "REOnly_Med60m_x", func(g *experiments.FigureGrid) float64 {
		return g.Value(60*time.Minute, solar.Med, "REOnly") // paper: ~2.2 at Med
	})
}

func BenchmarkFig08_WebSearch_RESBatt(b *testing.B) {
	benchGrid(b, experiments.Fig8, "max_gain_x", func(g *experiments.FigureGrid) float64 {
		return g.Value(10*time.Minute, solar.Max, "Hybrid") // paper: ~4.1
	})
}

func BenchmarkFig09_Memcached_RESBatt(b *testing.B) {
	benchGrid(b, experiments.Fig9, "max_gain_x", func(g *experiments.FigureGrid) float64 {
		return g.Value(10*time.Minute, solar.Max, "Hybrid") // paper: ~4.7
	})
}

func BenchmarkFig10a_BurstIntensity(b *testing.B) {
	benchGrid(b, experiments.Fig10a, "Int7_10m_x", func(g *experiments.FigureGrid) float64 {
		return g.Value(10*time.Minute, solar.Med, "Int=7") // paper: ~2.6
	})
}

func BenchmarkFig10b_StrategiesAtInt9(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		vals, err := experiments.Fig10b()
		if err != nil {
			b.Fatal(err)
		}
		gap = vals["Hybrid"] - vals["Greedy"] // paper: Greedy worst
	}
	b.ReportMetric(gap, "hybrid_minus_greedy_x")
}

func BenchmarkFig11_TCO(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		_, crossover = experiments.Fig11()
	}
	b.ReportMetric(crossover, "crossover_h") // paper: ~14
}

func BenchmarkTableI_GreenProvision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.TableI(); len(t.Rows) != 4 {
			b.Fatal("Table I rows")
		}
	}
}

func BenchmarkTableII_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.TableII(); len(t.Rows) != 3 {
			b.Fatal("Table II rows")
		}
	}
}

func BenchmarkHeadlineGains(b *testing.B) {
	var gains map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		gains, err = experiments.HeadlineGains()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gains["SPECjbb"], "specjbb_x")
	b.ReportMetric(gains["Web-Search"], "websearch_x")
	b.ReportMetric(gains["Memcached"], "memcached_x")
}

// benchDoDSweep runs the 8-point DoD ablation with the sweep engine
// pinned to the given worker count (0 = GOMAXPROCS-wide pool). The
// Serial/Parallel pair tracks the engine's speedup in the bench
// trajectory; results are bit-identical between the two by the golden
// determinism tests.
func benchDoDSweep(b *testing.B, workers int) {
	b.Helper()
	prev := sweep.SetDefaultWorkers(workers)
	defer sweep.SetDefaultWorkers(prev)
	dods := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	var last float64
	for i := 0; i < b.N; i++ {
		pts, err := ablation.DoDSweep(dods)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(dods) {
			b.Fatalf("points = %d", len(pts))
		}
		last = pts[3].Perf // the paper's 40% DoD operating point
	}
	b.ReportMetric(last, "dod40_perf_x")
}

func BenchmarkDoDSweep8Serial(b *testing.B)   { benchDoDSweep(b, 1) }
func BenchmarkDoDSweep8Parallel(b *testing.B) { benchDoDSweep(b, 0) }

func BenchmarkDayInTheLife(b *testing.B) {
	var sprintHours float64
	for i := 0; i < b.N; i++ {
		d, err := experiments.DayInTheLife()
		if err != nil {
			b.Fatal(err)
		}
		sprintHours = d.SprintHours
	}
	b.ReportMetric(sprintHours, "sprint_h_per_day")
}
