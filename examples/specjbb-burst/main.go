// SPECjbb burst walkthrough (the Figure 6 scenario).
//
// The paper's core experiment: a saturating SPECjbb burst served by
// the RE-Batt rack, swept across renewable availability (Min/Med/Max),
// burst duration (10-60 minutes) and all four sprinting strategies.
// The output mirrors the four subfigures of Figure 6, plus the
// interplay analysis of §IV-E: how battery size changes the Min
// availability story.
//
//	go run ./examples/specjbb-burst
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/profile"
	"greensprint/internal/report"
	"greensprint/internal/sim"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/workload"
)

func main() {
	app := workload.SPECjbb()
	table, err := profile.Build(app, profile.DefaultLevels)
	if err != nil {
		log.Fatal(err)
	}
	strategies := []string{"Greedy", "Parallel", "Pacing", "Hybrid"}

	for _, d := range workload.Durations() {
		t := report.NewTable(
			fmt.Sprintf("SPECjbb, RE-Batt, %d-minute burst (performance normalized to Normal)", int(d.Minutes())),
			append([]string{"availability"}, strategies...)...)
		for _, level := range solar.Levels() {
			var vals []float64
			for _, name := range strategies {
				vals = append(vals, runOne(app, table, cluster.REBatt(), name, level, d))
			}
			t.AddFloats(level.String(), 2, vals...)
		}
		if err := t.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// §IV-E observation (3)/(4): batteries carry short bursts alone
	// but are unsatisfactory for long ones; bigger batteries help.
	fmt.Println("Battery interplay at minimum availability (Hybrid):")
	for _, g := range []cluster.GreenConfig{cluster.REBatt(), cluster.RESBatt(), cluster.REOnly()} {
		short := runOne(app, table, g, "Hybrid", solar.Min, 10*time.Minute)
		long := runOne(app, table, g, "Hybrid", solar.Min, 60*time.Minute)
		fmt.Printf("  %-9s (%sAh): 10min %.2fx, 60min %.2fx\n",
			g.Name, report.FormatFloat(float64(g.BatteryAh), 1), short, long)
	}
}

func runOne(app workload.Profile, table *profile.Table, green cluster.GreenConfig,
	stratName string, level solar.Availability, d time.Duration) float64 {

	strat, err := strategy.ByName(stratName, app, table)
	if err != nil {
		log.Fatal(err)
	}
	supply := solar.Synthesize(level, d, time.Minute, float64(green.PeakGreen()), 42)
	res, err := sim.Run(context.Background(), sim.Config{
		Workload: app,
		Green:    green,
		Strategy: strat,
		Table:    table,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.MeanNormPerf
}
