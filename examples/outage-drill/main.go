// Outage drill: a utility failure in the middle of a sprint.
//
// Figure 2's power hierarchy in action: the substation feed dies
// mid-burst, the ATS cranks the diesel generator (batteries bridge the
// ten-second gap — their classic UPS role), the generator carries the
// Normal-mode load, and the green bus keeps the green servers
// sprinting the whole time because renewable power never touches the
// dirty side.
//
//	go run ./examples/outage-drill
package main

import (
	"fmt"
	"log"

	"greensprint/internal/battery"
	"greensprint/internal/cluster"
	"greensprint/internal/core"
	"greensprint/internal/power"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

func main() {
	app := workload.SPECjbb()
	green := cluster.REBatt()
	ctrl, err := core.New(core.Options{
		Workload:     app,
		Green:        green,
		StrategyName: "Hybrid",
	})
	if err != nil {
		log.Fatal(err)
	}
	pdu, err := power.NewPDU(power.DefaultATS())
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := battery.NewBank(battery.ServerBattery(), cluster.DefaultServers)
	if err != nil {
		log.Fatal(err)
	}

	sun := units.Watt(600) // a sunny afternoon on the 3-panel array
	rate := app.IntensityRate(12)
	epoch := ctrl.Epoch()

	fmt.Println("epoch  dirty-feed  dirty(W)  green(W)  green-servers  note")
	for e := 0; e < 8; e++ {
		note := ""
		switch e {
		case 3:
			pdu.ATS.FailUtility()
			note = "UTILITY FAILS: ATS cranks the diesel generator"
			// The crank gap is seconds; the per-server batteries
			// carry the whole cluster's Normal load through it.
			crank := power.DefaultATS().DieselStart
			took, err := bridge.Discharge(units.Watt(10*100), crank)
			if err != nil || took < crank {
				log.Fatalf("batteries failed to bridge the crank: %v %v", took, err)
			}
		case 6:
			pdu.ATS.RestoreUtility()
			note = "utility restored: ATS transfers back"
		}
		feed := pdu.Feed(sun, epoch)

		lastCfg := ctrl.Snapshot().Last.Config
		if !lastCfg.Valid() {
			lastCfg = server.Normal() // before the first decision
		}
		tel := core.Telemetry{
			GreenPower:  feed.Green,
			OfferedRate: rate,
			Goodput:     app.Goodput(lastCfg, rate),
			Latency:     app.Deadline * 0.8,
			ServerPower: app.LoadPower(lastCfg, rate),
		}
		d, err := ctrl.Step(tel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-10s  %8.0f  %8.0f  %-13s  %s\n",
			e, feed.Source, float64(feed.Dirty), float64(feed.Green), d.Config, note)
	}
	fmt.Println("\nthe green servers never stopped sprinting: the renewable bus is independent of the ATS")
}
