// TCO analysis: when does green sprinting capacity pay for itself?
//
// Reproduces the paper's §IV-F reasoning (Figure 11) and extends it
// with sensitivity sweeps: how the break-even point moves as PV prices
// fall or revenue density changes — the "is this worth building"
// question a datacenter operator would actually ask.
//
//	go run ./examples/tco-analysis
package main

import (
	"fmt"
	"os"

	"greensprint/internal/report"
	"greensprint/internal/tco"
)

func main() {
	m := tco.Default()

	fmt.Printf("Paper constants: revenue $%.2f/kW/min, PV $%.2f/W over %.0f years, battery $%.0f/kW/yr\n",
		m.RevenuePerKWMin, m.PVCostPerWatt, m.PVLifetimeYears, m.BatteryCostPerKWYear)
	fmt.Printf("Amortized cost: $%.1f/kW/yr → break-even at %.1f sprinting hours per year\n\n",
		m.AnnualCostPerKW(), m.CrossoverHours())

	// Figure 11: the profit-of-investment curve.
	t := report.NewTable("Figure 11: profit of investment",
		"sprint h/yr", "benefit $/kW/yr", "verdict")
	for _, h := range []float64{6, 12, 14, 18, 24, 36, 48} {
		verdict := "loses money"
		if m.Benefit(h) > 0 {
			verdict = "profitable"
		}
		t.Add(report.FormatFloat(h, 0), report.FormatFloat(m.Benefit(h), 1), verdict)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Sensitivity: PV price decline (the paper cites 2012 pricing;
	// panels got much cheaper).
	fmt.Println("\nSensitivity: break-even hours vs PV capacity price")
	for _, price := range []float64{4.74, 3.0, 2.0, 1.0, 0.5} {
		s := m
		s.PVCostPerWatt = price
		fmt.Printf("  PV $%.2f/W → crossover %.1f h/yr\n", price, s.CrossoverHours())
	}

	// Sensitivity: revenue density.
	fmt.Println("\nSensitivity: break-even hours vs revenue density")
	for _, rev := range []float64{0.14, 0.28, 0.56} {
		s := m
		s.RevenuePerKWMin = rev
		fmt.Printf("  $%.2f/kW/min → crossover %.1f h/yr\n", rev, s.CrossoverHours())
	}

	// How much yearly sprinting does the paper's workload pattern
	// imply? Figure 1 shows ~4 spikes/day; at 15-60 minutes each,
	// that is 24-365 hours/year — far beyond the ~14 h break-even,
	// which is the paper's argument that the investment is
	// worthwhile.
	fmt.Println("\nImplied sprinting demand from the Figure 1 diurnal pattern:")
	for _, perDay := range []float64{0.25, 1, 4} {
		hours := perDay * 365
		fmt.Printf("  %.2f h/day of bursts → %.0f h/yr → benefit $%.0f/kW/yr\n",
			perDay, hours, m.Benefit(hours))
	}

	// Battery wear changes the story for battery-heavy operation:
	// each minimum-availability sprint costs roughly one 40%-DoD
	// cycle (the simulator's accounting), and cycling past the
	// 1300-cycle life forces early replacements.
	fmt.Println("\nWear-adjusted benefit at 1 h/day of sprinting (365 h/yr):")
	for _, cyclesPerDay := range []float64{0.2, 1, 3} {
		cy := cyclesPerDay * 365
		fmt.Printf("  %.1f battery cycles/day → $%.0f/kW/yr (base model: $%.0f)\n",
			cyclesPerDay, m.BenefitWithWear(365, cy, 1300), m.Benefit(365))
	}
}
