// Web-Search cluster: driving the online controller.
//
// Instead of the offline simulator, this example runs the paper's
// Figure 3 control loop the way greensprintd does: a core.Controller
// (Monitor → Predictor → PSS → PMK) is stepped epoch by epoch with
// telemetry synthesized from a generated solar day, while a Web-Search
// burst arrives mid-day. It demonstrates the public controller API —
// Telemetry in, Decision out — and prints how the PSS shifts among
// green, battery and grid across the day.
//
//	go run ./examples/websearch-cluster
package main

import (
	"fmt"
	"log"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/core"
	"greensprint/internal/solar"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

func main() {
	app := workload.WebSearch()
	green := cluster.RESBatt()

	ctrl, err := core.New(core.Options{
		Workload:     app,
		Green:        green,
		StrategyName: "Hybrid",
	})
	if err != nil {
		log.Fatal(err)
	}

	// A generated partly-cloudy day at one-minute resolution.
	gen := solar.DefaultGeneratorConfig()
	gen.Days = 1
	gen.Skies = []solar.Sky{solar.PartlyCloudy}
	gen.Array = green.Array()
	sun, err := solar.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}

	// The burst: Int=12 from 11:00 to 12:00; background load
	// otherwise.
	burstFrom := gen.Start.Add(11 * time.Hour)
	burstTo := burstFrom.Add(time.Hour)
	burstRate := app.IntensityRate(12)
	idleRate := 0.5 * app.IntensityRate(6)

	epoch := ctrl.Epoch()
	fmt.Println("hour   supply(W)  case           config     sprint%  budget(W)")
	for at := gen.Start; at.Before(gen.Start.Add(24 * time.Hour)); at = at.Add(epoch) {
		rate := idleRate
		if !at.Before(burstFrom) && at.Before(burstTo) {
			rate = burstRate
		}
		lastCfg := ctrl.Snapshot().Last.Config
		tel := core.Telemetry{
			GreenPower:  units.Watt(sun.At(at)),
			OfferedRate: rate,
			Goodput:     app.Goodput(lastCfg, rate),
			Latency:     app.Deadline * 0.8,
			ServerPower: app.LoadPower(lastCfg, rate),
		}
		d, err := ctrl.Step(tel)
		if err != nil {
			log.Fatal(err)
		}
		// Print one line per half hour, plus every burst epoch.
		inBurst := !at.Before(burstFrom) && at.Before(burstTo)
		if at.Minute()%30 == 0 || inBurst {
			marker := " "
			if inBurst {
				marker = "*"
			}
			fmt.Printf("%s%s  %8.1f  %-13s  %-9s  %5.0f%%  %8.1f\n",
				at.Format("15:04"), marker, sun.At(at), d.Case, d.Config,
				d.SprintFraction*100, float64(d.Budget))
		}
	}

	st := ctrl.Snapshot()
	fmt.Printf("\nend of day: battery SoC %.2f, %.3f equivalent cycles\n",
		st.BatterySoC, st.BatteryCycle)
	fmt.Printf("energy delivered: green %s, battery %s, grid %s (green fraction %.2f)\n",
		st.Account.Green, st.Account.Battery, st.Account.Grid, st.Account.GreenFraction())
}
