// Quickstart: the smallest end-to-end GreenSprint run.
//
// One SPECjbb workload burst hits a green-provisioned rack (RE-Batt:
// 3 servers on a 3-panel solar array with 10 Ah server batteries). We
// compare the Hybrid strategy against never sprinting, then peek at
// what the controller decided epoch by epoch.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/profile"
	"greensprint/internal/sim"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/workload"
)

func main() {
	// 1. Pick a workload (Table II) and a green-provisioning option
	//    (Table I).
	app := workload.SPECjbb()
	green := cluster.REBatt()

	// 2. Profile the workload over the knob space — the a-priori
	//    LoadPower(L,S) table every strategy consults.
	table, err := profile.Build(app, profile.DefaultLevels)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A 30-minute Int=12 burst under medium solar availability.
	burst := workload.Burst{Intensity: 12, Duration: 30 * time.Minute}
	supply := solar.Synthesize(solar.Med, burst.Duration, time.Minute,
		float64(green.PeakGreen()), 42)

	// 4. Run it once with Hybrid, once with the Normal baseline.
	for _, name := range []string{"Hybrid", "Normal"} {
		strat, err := strategy.ByName(name, app, table)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background(), sim.Config{
			Workload: app,
			Green:    green,
			Strategy: strat,
			Table:    table,
			Burst:    burst,
			Supply:   supply,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s mean performance %.2fx over Normal  (green %.0f Wh, battery %.0f Wh)\n",
			name, res.MeanNormPerf, float64(res.Account.Green), float64(res.Account.Battery))
		if name == "Hybrid" {
			for _, rec := range res.BurstRecords() {
				fmt.Printf("  %s  %-13s %-10s supply=%6.1fW perf=%.2fx SoC=%.2f\n",
					rec.Start.Format("15:04"), rec.Case, rec.Config,
					float64(rec.Supply), rec.NormPerf, rec.SoC)
			}
		}
	}
}
