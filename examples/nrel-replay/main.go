// NREL trace replay: driving a sprint from real-format irradiance.
//
// The paper replays one-minute NREL MIDC irradiance traces scaled to
// its panel array. This example does the same end to end: parse a
// MIDC daily-export CSV (a bundled 3-hour partly-cloudy sample around
// noon), convert it to the RE array's AC output, and serve a
// 60-minute Memcached burst from it under the Hybrid strategy. The
// passing clouds in the sample force the controller through all three
// PSS cases within one burst.
//
//	go run ./examples/nrel-replay [-windows N] [midc.csv]
//
// With -windows N the replay is split into N contiguous time shards
// chained through sim.Checkpoint hand-off (sweep.ShardedRun); the
// stitched schedule is bit-identical to the sequential run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/nrel"
	"greensprint/internal/profile"
	"greensprint/internal/sim"
	"greensprint/internal/strategy"
	"greensprint/internal/sweep"
	"greensprint/internal/workload"
)

func main() {
	windows := flag.Int("windows", 1, "split the replay into N checkpoint-chained time shards")
	flag.Parse()
	path := filepath.Join("examples", "nrel-replay", "midc_sample.csv")
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open MIDC file: %v (run from the repository root, or pass a path)", err)
	}
	defer f.Close()

	irr, err := nrel.ParseIrradiance(f, "Global")
	if err != nil {
		log.Fatal(err)
	}
	green := cluster.REBatt()
	supply := nrel.ToPower(irr, green.Array())
	fmt.Printf("replaying %s: %d one-minute samples, array output %.0f-%.0f W\n",
		path, supply.Len(), supply.Stats().Min, supply.Stats().Max)

	app := workload.Memcached()
	table, err := profile.Build(app, profile.DefaultLevels)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := strategy.NewHybrid(app, table)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sweep.ShardedRun(context.Background(), sim.Config{
		Workload: app,
		Green:    green,
		Strategy: strat,
		Table:    table,
		Burst:    workload.Burst{Intensity: 12, Duration: 60 * time.Minute},
		Supply:   supply,
		Lead:     30 * time.Minute, // charge batteries from the morning sun
	}, *windows)
	if err != nil {
		log.Fatal(err)
	}

	for _, rec := range res.Records {
		marker := " "
		if rec.InBurst {
			marker = "*"
		}
		fmt.Printf("%s%s %-13s %-10s supply=%6.1fW green=%5.1fW batt=%5.1fW perf=%.2fx SoC=%.2f\n",
			rec.Start.Format("15:04"), marker, rec.Case, rec.Config,
			float64(rec.Supply), float64(rec.Green), float64(rec.Battery), rec.NormPerf, rec.SoC)
	}
	fmt.Printf("\nmean burst performance: %.2fx over Normal (green fraction %.2f)\n",
		res.MeanNormPerf, res.Account.GreenFraction())
}
