package greensprint

import (
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart describes it.
func TestFacadeEndToEnd(t *testing.T) {
	app := SPECjbb()
	green := REBatt()
	table, err := BuildProfile(app)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := NewStrategy("Hybrid", app, table)
	if err != nil {
		t.Fatal(err)
	}
	burst := Burst{Intensity: 12, Duration: 10 * time.Minute}
	res, err := RunSimulation(Simulation{
		Workload: app,
		Green:    green,
		Strategy: strat,
		Table:    table,
		Burst:    burst,
		Supply:   SynthesizeSupply(MaxAvailability, green, burst),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanNormPerf < 4.5 {
		t.Errorf("facade run perf = %.2f, want ~4.8", res.MeanNormPerf)
	}
}

func TestFacadeWorkloadsAndKnobs(t *testing.T) {
	if len(Workloads()) != 3 {
		t.Error("three workloads")
	}
	if len(KnobSpace()) != 63 {
		t.Error("63 knob settings")
	}
	if NormalMode().IsSprinting() {
		t.Error("Normal is not sprinting")
	}
	if !MaxSprintMode().IsSprinting() {
		t.Error("max sprint sprints")
	}
	for _, g := range []GreenConfig{REBatt(), REOnly(), RESBatt(), SRESBatt()} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestFacadeController(t *testing.T) {
	ctrl, err := NewController(ControllerOptions{
		Workload:     WebSearch(),
		Green:        RESBatt(),
		StrategyName: "Pacing",
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctrl.Step(Telemetry{GreenPower: 400, OfferedRate: 100, Goodput: 90, Latency: 0.3, ServerPower: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 0 {
		t.Errorf("decision = %+v", d)
	}
}

func TestFacadeTCO(t *testing.T) {
	m := DefaultTCO()
	if h := m.CrossoverHours(); h < 13 || h > 16 {
		t.Errorf("crossover = %v", h)
	}
}
