package thermal

import (
	"math"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := DefaultPackage().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Package){
		func(p *Package) { p.Conductance = 0 },
		func(p *Package) { p.Capacitance = 0 },
		func(p *Package) { p.MeltPoint = p.Ambient },
		func(p *Package) { p.TripLimit = p.MeltPoint },
		func(p *Package) { p.LatentHeat = -1 },
	}
	for i, mut := range bad {
		p := DefaultPackage()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
		if _, err := NewState(p, 100); err == nil {
			t.Errorf("case %d: NewState should reject", i)
		}
	}
}

func TestSteadyTemp(t *testing.T) {
	p := DefaultPackage()
	// Normal mode (100 W): steady state below the melt point — PCM
	// untouched outside sprints.
	if got := p.SteadyTemp(100); got >= p.MeltPoint {
		t.Errorf("Normal steady temp %v should sit below melt point %v", got, p.MeltPoint)
	}
	// Max sprint (155 W): steady state above the trip limit — the
	// sprint is thermally bounded, which is the whole premise.
	if got := p.SteadyTemp(155); got <= p.TripLimit {
		t.Errorf("sprint steady temp %v should exceed trip limit %v", got, p.TripLimit)
	}
}

func TestNormalModeNeverTrips(t *testing.T) {
	st, err := NewState(DefaultPackage(), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24*60; i++ {
		st.Step(100, time.Minute)
	}
	if st.Tripped() {
		t.Error("Normal mode tripped")
	}
	if st.PCMFraction() > 0 {
		t.Errorf("PCM melted at Normal mode: %v", st.PCMFraction())
	}
}

// TestPCMDelaysThermalLimitByHours reproduces the §II claim (citing
// Skach et al.): the PCM buffer delays the onset of thermal limits by
// hours, which is why the 10-60 minute sprints in the evaluation never
// hit the thermal wall.
func TestPCMDelaysThermalLimitByHours(t *testing.T) {
	p := DefaultPackage()
	budget, err := p.SprintBudget(155, 100)
	if err != nil {
		t.Fatal(err)
	}
	if budget < 2*time.Hour {
		t.Errorf("PCM sprint budget = %v, want hours", budget)
	}
	// Without PCM, the same sprint trips in minutes.
	bare := p
	bare.LatentHeat = 0
	bareBudget, err := bare.SprintBudget(155, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bareBudget >= 30*time.Minute {
		t.Errorf("bare sprint budget = %v, want minutes", bareBudget)
	}
	if budget < 4*bareBudget {
		t.Errorf("PCM should extend the budget several-fold: %v vs %v", budget, bareBudget)
	}
}

func TestSustainablePowerIsUnbounded(t *testing.T) {
	p := DefaultPackage()
	// A power whose steady state is below the trip limit can run
	// forever.
	budget, err := p.SprintBudget(120, 100)
	if err != nil {
		t.Fatal(err)
	}
	if budget != time.Duration(math.MaxInt64) {
		t.Errorf("120W budget = %v, want unbounded", budget)
	}
}

func TestMeltPlateauAndRefreeze(t *testing.T) {
	p := DefaultPackage()
	st, err := NewState(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Sprint until the PCM engages.
	for i := 0; i < 60 && st.Temp < p.MeltPoint; i++ {
		st.Step(155, time.Minute)
	}
	if st.Temp < p.MeltPoint-1 {
		t.Fatalf("never reached melt point: %v", st.Temp)
	}
	// During melting the temperature plateaus at the melt point.
	st.Step(155, 10*time.Minute)
	if math.Abs(st.Temp-p.MeltPoint) > 0.5 {
		t.Errorf("temperature off the melt plateau: %v", st.Temp)
	}
	melted := st.PCMFraction()
	if melted <= 0 {
		t.Fatal("no PCM melted")
	}
	// Back to Normal mode: spare cooling refreezes the PCM.
	for i := 0; i < 6*60; i++ {
		st.Step(100, time.Minute)
	}
	if st.PCMFraction() >= melted {
		t.Errorf("PCM did not refreeze: %v -> %v", melted, st.PCMFraction())
	}
	if st.Temp > p.MeltPoint {
		t.Errorf("temperature above melt point after cooldown: %v", st.Temp)
	}
}

func TestTrippedLatches(t *testing.T) {
	p := DefaultPackage()
	p.LatentHeat = 0
	st, err := NewState(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 240 && !st.Tripped(); i++ {
		st.Step(155, time.Minute)
	}
	if !st.Tripped() {
		t.Fatal("bare package never tripped at sprint power")
	}
	// Cooling afterwards does not clear the latch (the server was
	// forced out of the sprint).
	st.Step(80, time.Hour)
	if !st.Tripped() {
		t.Error("trip latch cleared")
	}
}

func TestPCMFractionEdge(t *testing.T) {
	p := DefaultPackage()
	p.LatentHeat = 0
	st, _ := NewState(p, 100)
	if st.PCMFraction() != 1 {
		t.Error("zero-latent package reports fully melted")
	}
}
