// Package thermal models the chip/server-level thermal constraint that
// bounds computational sprinting, and the phase-change-material (PCM)
// heat buffer that GreenSprint assumes (§II "Thermal concerns at the
// chip level", citing Skach et al.'s thermal time shifting): sprinting
// dissipates more heat than the steady-state cooling can remove; the
// excess melts the PCM, which stores it as latent heat and releases it
// during non-sprinting periods when there is spare cooling capacity.
// The paper's claim — "PCM can delay the onset of thermal limits by
// hours" — is reproduced as a model property here, which justifies the
// simulator treating thermals as non-binding for its 10-60 minute
// bursts.
//
// The model is a lumped thermal capacitance with a latent-heat
// plateau: below the melt point, temperature rises with sensible heat;
// at the melt point, excess heat melts PCM at constant temperature
// until the buffer is exhausted; then temperature climbs again toward
// the trip limit.
package thermal

import (
	"fmt"
	"math"
	"time"

	"greensprint/internal/units"
)

// Package models a server's thermal package with a PCM buffer.
type Package struct {
	// Ambient is the inlet/ambient temperature (°C).
	Ambient float64
	// Conductance is the steady-state heat removal per degree above
	// ambient (W/°C): cooling capacity = Conductance·(T−Ambient).
	Conductance float64
	// Capacitance is the sensible heat capacity (J/°C) of the
	// server masses below the melt point.
	Capacitance float64
	// MeltPoint is the PCM phase-change temperature (°C); chosen
	// just above the Normal-mode steady state so the PCM only
	// engages while sprinting.
	MeltPoint float64
	// LatentHeat is the PCM's total latent storage (J).
	LatentHeat float64
	// TripLimit is the temperature at which the server must stop
	// sprinting (°C).
	TripLimit float64
}

// DefaultPackage returns a paraffin-wax package sized like Skach et
// al.'s per-server retrofit: a few kilograms of wax (≈200 kJ/kg) on a
// server whose steady-state cooling comfortably absorbs Normal-mode
// power.
func DefaultPackage() Package {
	return Package{
		Ambient:     25,
		Conductance: 2.4, // 100 W Normal mode → ~67 °C steady state
		Capacitance: 2e3,
		MeltPoint:   70,
		LatentHeat:  600e3, // 3 kg × 200 kJ/kg
		TripLimit:   85,
	}
}

// Validate reports configuration errors.
func (p Package) Validate() error {
	switch {
	case p.Conductance <= 0:
		return fmt.Errorf("thermal: non-positive conductance %v", p.Conductance)
	case p.Capacitance <= 0:
		return fmt.Errorf("thermal: non-positive capacitance %v", p.Capacitance)
	case p.MeltPoint <= p.Ambient:
		return fmt.Errorf("thermal: melt point %v at or below ambient %v", p.MeltPoint, p.Ambient)
	case p.TripLimit <= p.MeltPoint:
		return fmt.Errorf("thermal: trip limit %v at or below melt point %v", p.TripLimit, p.MeltPoint)
	case p.LatentHeat < 0:
		return fmt.Errorf("thermal: negative latent heat %v", p.LatentHeat)
	}
	return nil
}

// State is a server's thermal state.
type State struct {
	pkg Package
	// Temp is the lumped temperature (°C).
	Temp float64
	// Melted is the latent heat absorbed so far (J).
	Melted float64
	// tripped latches once the trip limit is reached.
	tripped bool
}

// NewState returns a state at the steady-state temperature of the
// given idle/normal power.
func NewState(pkg Package, steadyPower units.Watt) (*State, error) {
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	return &State{pkg: pkg, Temp: pkg.SteadyTemp(steadyPower)}, nil
}

// SteadyTemp returns the steady-state temperature at constant power.
func (p Package) SteadyTemp(power units.Watt) float64 {
	return p.Ambient + float64(power)/p.Conductance
}

// Tripped reports whether the thermal limit has been reached.
func (s *State) Tripped() bool { return s.tripped }

// PCMFraction returns the melted share of the PCM buffer in [0,1].
func (s *State) PCMFraction() float64 {
	if s.pkg.LatentHeat == 0 {
		return 1
	}
	return s.Melted / s.pkg.LatentHeat
}

// Step advances the state by dt under the given power draw. It uses
// sub-stepping for stability and returns the new temperature.
func (s *State) Step(power units.Watt, dt time.Duration) float64 {
	const maxSub = 10 * time.Second
	remaining := dt
	for remaining > 0 {
		step := remaining
		if step > maxSub {
			step = maxSub
		}
		s.sub(float64(power), step.Seconds())
		remaining -= step
	}
	if s.Temp >= s.pkg.TripLimit {
		s.tripped = true
	}
	return s.Temp
}

func (s *State) sub(power, dt float64) {
	cooling := s.pkg.Conductance * (s.Temp - s.pkg.Ambient)
	net := power - cooling // W = J/s
	switch {
	case net > 0 && s.Temp >= s.pkg.MeltPoint && s.Melted < s.pkg.LatentHeat:
		// Excess heat melts PCM at constant temperature.
		s.Melted += net * dt
		if over := s.Melted - s.pkg.LatentHeat; over > 0 {
			// Buffer exhausted mid-step: the overflow heats the
			// sensible mass.
			s.Melted = s.pkg.LatentHeat
			s.Temp += over / s.pkg.Capacitance
		}
		s.Temp = math.Max(s.Temp, s.pkg.MeltPoint)
	case net < 0 && s.Melted > 0 && s.Temp <= s.pkg.MeltPoint:
		// Spare cooling refreezes PCM at constant temperature.
		s.Melted += net * dt // net is negative
		if s.Melted < 0 {
			s.Temp += s.Melted / s.pkg.Capacitance
			s.Melted = 0
		}
		s.Temp = math.Min(s.Temp, s.pkg.MeltPoint)
	default:
		s.Temp += net / s.pkg.Capacitance * dt
		// Crossing the melt point clamps at it; the next sub-step
		// takes the latent branch.
		if net > 0 && s.Temp > s.pkg.MeltPoint && s.Melted < s.pkg.LatentHeat {
			s.Temp = s.pkg.MeltPoint
		}
	}
}

// SprintBudget returns how long the package can sustain a constant
// sprinting power before tripping, starting from the Normal-mode
// steady state. It returns a very large duration when the power is
// sustainable indefinitely (steady state below the trip limit).
func (p Package) SprintBudget(sprintPower, normalPower units.Watt) (time.Duration, error) {
	st, err := NewState(p, normalPower)
	if err != nil {
		return 0, err
	}
	if p.SteadyTemp(sprintPower) < p.TripLimit {
		return time.Duration(math.MaxInt64), nil
	}
	const step = time.Second
	for elapsed := time.Duration(0); elapsed < 48*time.Hour; elapsed += step {
		st.Step(sprintPower, step)
		if st.Tripped() {
			return elapsed + step, nil
		}
	}
	return time.Duration(math.MaxInt64), nil
}
