package rl

import (
	"strings"
	"testing"
)

// FuzzReadJSON hardens the Q-table loader: arbitrary input must yield
// an error or a structurally valid table.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"alpha":0.7,"gamma":0.9,"actions":63,"first_action":"6c@1.2GHz","last_action":"12c@2GHz","states":[]}`)
	f.Add(`{"alpha":0.7,"gamma":0.9,"actions":63,"first_action":"6c@1.2GHz","last_action":"12c@2GHz","states":[{"power_level":1,"load_level":2,"q":[1]}]}`)
	f.Add(`{bad`)
	f.Add(`{"alpha":9,"gamma":0.9,"actions":63}`)
	f.Fuzz(func(t *testing.T, in string) {
		tab, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(tab.Actions()) != 63 {
			t.Fatalf("accepted table with %d actions", len(tab.Actions()))
		}
	})
}
