package rl

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tab, _ := NewTable(0.7, 0.9)
	s1 := State{PowerLevel: 3, LoadLevel: 2}
	s2 := State{PowerLevel: 10, LoadLevel: 9}
	tab.Seed(s1, 5, 2.5)
	tab.Seed(s2, 62, -1.25)
	tab.Update(s1, 7, 1.0, s2)

	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.States() != tab.States() {
		t.Errorf("states = %d, want %d", back.States(), tab.States())
	}
	for _, s := range []State{s1, s2} {
		for a := 0; a < len(tab.Actions()); a++ {
			if back.Q(s, a) != tab.Q(s, a) {
				t.Fatalf("Q(%v,%d) = %v, want %v", s, a, back.Q(s, a), tab.Q(s, a))
			}
		}
	}
	// The restored table keeps learning.
	before := back.Q(s1, 7)
	back.Update(s1, 7, 5, s2)
	if back.Q(s1, 7) == before {
		t.Error("restored table should keep learning")
	}
}

func TestTableJSONDeterministic(t *testing.T) {
	tab, _ := NewTable(0.7, 0.9)
	for pl := 0; pl < 5; pl++ {
		tab.Seed(State{PowerLevel: pl, LoadLevel: pl % 3}, pl, float64(pl))
	}
	var a, b bytes.Buffer
	if err := tab.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization not deterministic")
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []string{
		`{bad`,
		`{"alpha":0,"gamma":0.9,"actions":63,"first_action":"6c@1.2GHz","last_action":"12c@2GHz"}`,
		`{"alpha":0.7,"gamma":0.9,"actions":10,"first_action":"6c@1.2GHz","last_action":"12c@2GHz"}`,
		`{"alpha":0.7,"gamma":0.9,"actions":63,"first_action":"1c@1GHz","last_action":"12c@2GHz"}`,
		`{"alpha":0.7,"gamma":0.9,"actions":63,"first_action":"6c@1.2GHz","last_action":"12c@2GHz",
		  "states":[{"power_level":0,"load_level":0,"q":[1,2]}]}`,
	}
	for i, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
