// Package rl implements the tabular Q-learning machinery behind the
// paper's Hybrid strategy (§III-B). The power-management problem is an
// MDP whose state is the (quantized) power supply and workload
// intensity measured during the previous epoch, whose actions are the
// server settings S (core count × frequency), and whose reward is the
// paper's Algorithm 1, combining a power reward (supply vs. demand)
// and a QoS reward (target vs. achieved latency).
package rl

import (
	"fmt"
	"math"

	"greensprint/internal/server"
	"greensprint/internal/units"
)

// The paper's hyper-parameters.
const (
	// DefaultLearningRate is Algorithm 1's α (0.7: learn quickly).
	DefaultLearningRate = 0.7
	// DefaultDiscount is γ (0.9: balance short-term and future).
	DefaultDiscount = 0.9
	// DefaultPowerStep is the supply-quantization step: 5% of the
	// idle-to-max-sprint power range.
	DefaultPowerStep = 0.05
)

// State is the MDP state c_t: quantized power supply and workload
// intensity level, both as measured during the previous epoch.
// It is serialized inside the Hybrid strategy's wire state (the last
// (state, action) pair), so the json tags pin its historical wire
// names.
type State struct {
	// PowerLevel indexes the quantized supply from 0 (≤ idle power)
	// to 1/step (≥ max sprint power).
	PowerLevel int `json:"PowerLevel"`
	// LoadLevel is the workload intensity level L.
	LoadLevel int `json:"LoadLevel"`
	// Degraded is the quantized degraded-capacity level: 0 for a
	// healthy fleet (every pre-chaos state), rising as crashed
	// servers or faded batteries shrink the rack's effective
	// capacity. Keeping it a separate dimension lets the policy
	// learn fault-mode behaviour without forgetting healthy-mode
	// estimates.
	Degraded int `json:"Degraded"`
}

// DegradedLevels is the number of degraded-capacity buckets (0 =
// healthy .. DegradedLevels-1 = mostly lost).
const DegradedLevels = 4

// DegradedLevel quantizes an effective-capacity fraction (alive
// fraction × battery health) into a State.Degraded bucket. Fractions
// at or above 1 map to the healthy bucket 0; non-positive fractions
// (everything lost) to the worst bucket. Callers with no degradation
// signal pass 1, never 0.
func DegradedLevel(frac float64) int {
	if frac >= 1 {
		return 0
	}
	if frac <= 0 {
		return DegradedLevels - 1
	}
	lvl := int((1 - frac) * DegradedLevels)
	if lvl >= DegradedLevels {
		lvl = DegradedLevels - 1
	}
	return lvl
}

// Quantizer maps a raw power supply onto PowerLevel indices. The range
// runs "from the point of idle server power to the point of maximum
// sprinting power" (§III-B).
type Quantizer struct {
	Min  units.Watt
	Max  units.Watt
	Step float64 // fraction of the range per level, e.g. 0.05
}

// NewQuantizer builds the paper's quantizer for a per-server power
// range with the default 5% step.
func NewQuantizer(idle, maxSprint units.Watt) Quantizer {
	return Quantizer{Min: idle, Max: maxSprint, Step: DefaultPowerStep}
}

// Levels returns the number of quantization levels.
func (q Quantizer) Levels() int {
	if q.Step <= 0 {
		return 1
	}
	return int(math.Round(1/q.Step)) + 1
}

// Level quantizes a power value.
func (q Quantizer) Level(p units.Watt) int {
	if q.Max <= q.Min || q.Step <= 0 {
		return 0
	}
	frac := float64(p-q.Min) / float64(q.Max-q.Min)
	lvl := int(math.Round(frac / q.Step))
	if lvl < 0 {
		lvl = 0
	}
	if max := q.Levels() - 1; lvl > max {
		lvl = max
	}
	return lvl
}

// Reward computes Algorithm 1's reward r_t.
//
//	Rpower = PowerSupp / PowerCurr
//	Rqos   = QoStarget / QoScurrent
//	if Rpower > 1:
//	    if Rqos > 1: r = Rpower + Rqos + 1
//	    else:        r = Rpower - Rqos + 1
//	else:            r = -Rpower - 1
//
// powerCurr and qosCurrent at or below zero are treated as barely
// passing (ratio clamped high) to keep the arithmetic total.
func Reward(powerSupp, powerCurr units.Watt, qosTarget, qosCurrent float64) float64 {
	rPower := ratio(float64(powerSupp), float64(powerCurr))
	rQoS := ratio(qosTarget, qosCurrent)
	if rPower > 1 {
		if rQoS > 1 {
			return rPower + rQoS + 1
		}
		return rPower - rQoS + 1
	}
	return -rPower - 1
}

// ShapedReward is the reward signal the Hybrid strategy actually
// learns from. Algorithm 1's violated-QoS branch (r = Rpower − Rqos + 1)
// decreases in Rqos, which — taken literally as an argmax target —
// would teach the controller to prefer settings that serve the burst
// *worse* whenever no affordable setting fully meets the SLA, and the
// controller would collapse to Normal mode under medium supply. That
// contradicts the paper's own results (Hybrid dominates at medium
// availability), so the shaped variant keeps Algorithm 1's structure
// and feasibility gating but makes reward monotone in delivered QoS:
//
//	Rpower ≤ 1 (supply violated): r = −Rpower − 1        (as Alg. 1)
//	Rpower > 1, QoS met:          r = Rpower + QoSWeight·Rqos + 1
//	Rpower > 1, QoS violated:     r = Rpower + QoSWeight·Rqos − 1
//
// The QoS term is additionally capped slightly above 1: once the SLA
// is met with margin, extra latency headroom earns nothing more, so the
// power term decides and the policy converges to the *cheapest* setting
// that serves the load (the paper's Figure 10b insight that maximal
// sprinting is wasteful at low burst intensity). QoSWeight > 1 makes
// service quality dominate power frugality below the cap — the paper's
// Eq. 3 objective under its power-safety constraint. DESIGN.md §5
// records this substitution.
func ShapedReward(powerSupp, powerCurr units.Watt, qosTarget, qosCurrent float64) float64 {
	const (
		qosWeight = 4
		qosCap    = 1.05
	)
	rPower := ratio(float64(powerSupp), float64(powerCurr))
	rQoS := ratio(qosTarget, qosCurrent)
	if rPower <= 1 {
		return -rPower - 1
	}
	met := rQoS > 1
	if rQoS > qosCap {
		rQoS = qosCap
	}
	r := qosWeight*rQoS + rPower
	if met {
		return r + 1
	}
	return r - 1
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		// No demand / no measured latency: supply trivially covers
		// it. Cap to keep rewards bounded.
		return 10
	}
	r := num / den
	if r > 10 {
		r = 10
	}
	return r
}

// Table is the Q lookup table R(c, a). Actions are indices into
// server.Configs().
type Table struct {
	alpha, gamma float64
	actions      []server.Config
	q            map[State][]float64
}

// NewTable creates a Q-table over the full knob space with the paper's
// hyper-parameters. It returns an error for out-of-range parameters.
func NewTable(alpha, gamma float64) (*Table, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("rl: learning rate %v outside (0,1]", alpha)
	}
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("rl: discount %v outside [0,1)", gamma)
	}
	return &Table{
		alpha:   alpha,
		gamma:   gamma,
		actions: server.Configs(),
		q:       make(map[State][]float64),
	}, nil
}

// Actions returns the action set (the knob space).
func (t *Table) Actions() []server.Config { return t.actions }

// row returns (allocating if needed) the Q row for a state. Only the
// write paths (Update, Seed, ReadJSON) materialize rows; the read
// paths treat a missing row as all-zero so the per-epoch Decide loop
// never allocates and never bloats the persisted table with untouched
// states.
func (t *Table) row(s State) []float64 {
	r, ok := t.q[s]
	if !ok {
		//greensprint:allow(allocfree) materializes a Q row once per newly visited state; revisits (the steady state) never reach this
		r = make([]float64, len(t.actions))
		t.q[s] = r
	}
	return r
}

// Row returns a read-only view of the Q row for s, or nil when the
// state has never been written (every action's estimate is then 0).
// It never allocates; callers iterating many actions of one state
// fetch the row once instead of paying a map lookup per action.
// Callers must not modify the returned slice.
func (t *Table) Row(s State) []float64 { return t.q[s] }

// Q returns the current estimate R(s, a).
func (t *Table) Q(s State, action int) float64 {
	if action < 0 || action >= len(t.actions) {
		return 0
	}
	if r, ok := t.q[s]; ok {
		return r[action]
	}
	return 0
}

// maxQ returns max_a R(s,a).
func (t *Table) maxQ(s State) float64 {
	row, ok := t.q[s]
	if !ok {
		return 0 // all-zero row
	}
	best := math.Inf(-1)
	for _, v := range row {
		if v > best {
			best = v
		}
	}
	return best
}

// Best returns the greedy action for s: argmax_a R(s,a), with ties
// broken toward the lowest-power (earliest) action. An untrained state
// returns the last action (the maximum sprint), matching the paper's
// optimistic initial behaviour of sprinting when nothing is known.
func (t *Table) Best(s State) (int, server.Config) {
	row, ok := t.q[s]
	if !ok {
		idx := len(t.actions) - 1
		return idx, t.actions[idx]
	}
	bestIdx, bestVal := len(row)-1, math.Inf(-1)
	allZero := true
	for i, v := range row {
		if v != 0 {
			allZero = false
		}
		if v > bestVal {
			bestIdx, bestVal = i, v
		}
	}
	if allZero {
		bestIdx = len(row) - 1
	}
	return bestIdx, t.actions[bestIdx]
}

// Update applies the paper's line 15:
//
//	R(c,a) ← R(c,a) + α[r + γ·max_a' R(c',a') − R(c,a)]
func (t *Table) Update(s State, action int, reward float64, next State) {
	if action < 0 || action >= len(t.actions) {
		return
	}
	row := t.row(s)
	row[action] += t.alpha * (reward + t.gamma*t.maxQ(next) - row[action])
}

// Seed initializes R(s,a) directly; used to bootstrap the table from
// the Parallel/Pacing profiling data as §III-B describes.
func (t *Table) Seed(s State, action int, value float64) {
	if action < 0 || action >= len(t.actions) {
		return
	}
	t.row(s)[action] = value
}

// States returns the number of states materialized so far.
func (t *Table) States() int { return len(t.q) }
