package rl

import (
	"bytes"
	"testing"
)

// TestDegradedLevel pins the fraction→bucket mapping: full capacity is
// the healthy bucket, zero capacity is the worst bucket, and the
// quartiles in between land monotonically.
func TestDegradedLevel(t *testing.T) {
	cases := []struct {
		frac float64
		want int
	}{
		{1.0, 0}, {1.5, 0}, // ≥ 1 is healthy (never negative buckets)
		{0.9, 0}, // mild loss rounds down into the healthy bucket
		{0.7, 1},
		{0.45, 2},
		{0.2, 3},
		{0.0, DegradedLevels - 1}, // everything lost is the worst bucket
		{-0.5, DegradedLevels - 1},
	}
	for _, tc := range cases {
		if got := DegradedLevel(tc.frac); got != tc.want {
			t.Errorf("DegradedLevel(%v) = %d, want %d", tc.frac, got, tc.want)
		}
	}
	// Monotone: less capacity never maps to a healthier bucket.
	prev := 0
	for f := 1.0; f >= 0; f -= 0.01 {
		lvl := DegradedLevel(f)
		if lvl < prev {
			t.Fatalf("DegradedLevel not monotone: f=%v → %d after %d", f, lvl, prev)
		}
		prev = lvl
	}
}

// TestDegradedStatePersistence round-trips a table holding both
// healthy and degraded rows: the Degraded dimension must survive
// serialization, and a table written without degraded rows stays in
// the pre-chaos wire format (no "degraded" keys).
func TestDegradedStatePersistence(t *testing.T) {
	tab, err := NewTable(DefaultLearningRate, DefaultDiscount)
	if err != nil {
		t.Fatal(err)
	}
	healthy := State{PowerLevel: 1, LoadLevel: 2}
	degraded := State{PowerLevel: 1, LoadLevel: 2, Degraded: 3}
	tab.Update(healthy, 0, 1.5, healthy)
	tab.Update(degraded, 0, -2.5, degraded)
	if tab.Q(healthy, 0) == tab.Q(degraded, 0) {
		t.Fatal("healthy and degraded rows share a Q estimate — states collide")
	}

	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"degraded": 3`)) {
		t.Errorf("serialized table lost the degraded dimension: %s", buf.Bytes())
	}
	restored, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Q(degraded, 0), tab.Q(degraded, 0); got != want {
		t.Errorf("restored degraded Q = %v, want %v", got, want)
	}
	if got, want := restored.Q(healthy, 0), tab.Q(healthy, 0); got != want {
		t.Errorf("restored healthy Q = %v, want %v", got, want)
	}

	// A purely healthy table keeps the pre-chaos wire format.
	plain, err := NewTable(DefaultLearningRate, DefaultDiscount)
	if err != nil {
		t.Fatal(err)
	}
	plain.Update(healthy, 0, 1, healthy)
	var buf2 bytes.Buffer
	if err := plain.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf2.Bytes(), []byte(`"degraded"`)) {
		t.Errorf("healthy-only table emits degraded keys: %s", buf2.Bytes())
	}
}
