package rl_test

import (
	"fmt"

	"greensprint/internal/rl"
)

// ExampleReward walks Algorithm 1's three branches.
func ExampleReward() {
	// Power satisfied (Rpower = 2) and QoS satisfied (Rqos = 2).
	fmt.Println(rl.Reward(200, 100, 0.5, 0.25))
	// Power satisfied but QoS violated (Rqos = 0.5).
	fmt.Println(rl.Reward(200, 100, 0.5, 1.0))
	// Power violated (Rpower = 0.5).
	fmt.Println(rl.Reward(100, 200, 0.5, 0.25))
	// Output:
	// 5
	// 2.5
	// -1.5
}

// ExampleQuantizer shows the paper's 5% power-state quantization over
// the idle-to-max-sprint range.
func ExampleQuantizer() {
	q := rl.NewQuantizer(76, 155)
	fmt.Println(q.Levels(), "levels")
	fmt.Println("idle ->", q.Level(76))
	fmt.Println("115.5W ->", q.Level(115.5))
	fmt.Println("max ->", q.Level(155))
	// Output:
	// 21 levels
	// idle -> 0
	// 115.5W -> 10
	// max -> 20
}
