package rl

import (
	"math"
	"testing"
	"testing/quick"

	"greensprint/internal/server"
	"greensprint/internal/units"
)

func TestQuantizer(t *testing.T) {
	q := NewQuantizer(76, 155)
	if q.Levels() != 21 {
		t.Fatalf("levels = %d, want 21 (5%% steps)", q.Levels())
	}
	if got := q.Level(76); got != 0 {
		t.Errorf("idle level = %d", got)
	}
	if got := q.Level(155); got != 20 {
		t.Errorf("max level = %d", got)
	}
	// Below/above range clamps.
	if got := q.Level(0); got != 0 {
		t.Errorf("below range = %d", got)
	}
	if got := q.Level(500); got != 20 {
		t.Errorf("above range = %d", got)
	}
	// Midpoint.
	mid := q.Level(115.5)
	if mid != 10 {
		t.Errorf("mid level = %d, want 10", mid)
	}
	// Degenerate quantizers collapse to a single level.
	bad := Quantizer{Min: 100, Max: 100, Step: 0.05}
	if bad.Level(500) != 0 {
		t.Error("degenerate range should map to 0")
	}
	if (Quantizer{Step: 0}).Levels() != 1 {
		t.Error("zero step should yield one level")
	}
}

func TestRewardAlgorithm1(t *testing.T) {
	tests := []struct {
		name                  string
		supp, curr            float64
		qosTarget, qosCurrent float64
		want                  float64
	}{
		// Power satisfied, QoS satisfied: Rpower+Rqos+1.
		{"both good", 200, 100, 0.5, 0.25, 2 + 2 + 1},
		// Power satisfied, QoS violated: Rpower-Rqos+1.
		{"qos bad", 200, 100, 0.5, 1.0, 2 - 0.5 + 1},
		// Power violated: -Rpower-1.
		{"power bad", 100, 200, 0.5, 0.25, -0.5 - 1},
	}
	for _, tt := range tests {
		got := Reward(wattOf(tt.supp), wattOf(tt.curr), tt.qosTarget, tt.qosCurrent)
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: reward = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRewardOrdering(t *testing.T) {
	// A setting that meets both power and QoS must always out-reward
	// one that violates power.
	good := Reward(150, 120, 0.5, 0.3)
	bad := Reward(100, 150, 0.5, 0.3)
	if good <= bad {
		t.Errorf("good %v should exceed bad %v", good, bad)
	}
	// Meeting QoS beats violating it at the same power margin.
	met := Reward(150, 120, 0.5, 0.3)
	missed := Reward(150, 120, 0.5, 0.9)
	if met <= missed {
		t.Errorf("QoS met %v should exceed missed %v", met, missed)
	}
}

func TestRewardDegenerateInputs(t *testing.T) {
	// Zero current power / latency: clamped, not NaN or Inf.
	for _, r := range []float64{
		Reward(100, 0, 0.5, 0.2),
		Reward(100, 50, 0.5, 0),
		Reward(0, 50, 0.5, 0.2),
	} {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			t.Errorf("degenerate reward = %v", r)
		}
	}
}

func TestNewTableValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.9}, {1.5, 0.9}, {0.7, 1}, {0.7, -0.1}} {
		if _, err := NewTable(bad[0], bad[1]); err == nil {
			t.Errorf("alpha=%v gamma=%v should fail", bad[0], bad[1])
		}
	}
	tab, err := NewTable(DefaultLearningRate, DefaultDiscount)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Actions()) != 63 {
		t.Errorf("actions = %d, want 63", len(tab.Actions()))
	}
}

func TestBestUntrainedIsMaxSprint(t *testing.T) {
	tab, _ := NewTable(0.7, 0.9)
	_, cfg := tab.Best(State{PowerLevel: 5, LoadLevel: 2})
	if cfg != server.MaxSprint() {
		t.Errorf("untrained best = %v, want max sprint", cfg)
	}
}

func TestSeedAndBest(t *testing.T) {
	tab, _ := NewTable(0.7, 0.9)
	s := State{PowerLevel: 3, LoadLevel: 1}
	tab.Seed(s, 5, 2.0)
	tab.Seed(s, 10, 3.0)
	idx, _ := tab.Best(s)
	if idx != 10 {
		t.Errorf("best = %d, want 10", idx)
	}
	if got := tab.Q(s, 5); got != 2.0 {
		t.Errorf("Q = %v", got)
	}
	// Out-of-range actions are ignored.
	tab.Seed(s, -1, 99)
	tab.Seed(s, 1000, 99)
	if got := tab.Q(s, -1); got != 0 {
		t.Errorf("out-of-range Q = %v", got)
	}
}

func TestUpdateRule(t *testing.T) {
	tab, _ := NewTable(0.7, 0.9)
	s := State{PowerLevel: 1, LoadLevel: 1}
	next := State{PowerLevel: 1, LoadLevel: 2}
	tab.Seed(next, 3, 2.0) // max_a' R(next, a') = 2.0
	tab.Update(s, 0, 1.0, next)
	// R = 0 + 0.7*(1 + 0.9*2 - 0) = 1.96
	if got := tab.Q(s, 0); math.Abs(got-1.96) > 1e-12 {
		t.Errorf("Q after update = %v, want 1.96", got)
	}
	// Second update converges toward the target.
	tab.Update(s, 0, 1.0, next)
	want := 1.96 + 0.7*(1+0.9*2-1.96)
	if got := tab.Q(s, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Q after second update = %v, want %v", got, want)
	}
	// Out-of-range update is a no-op.
	tab.Update(s, 99, 5, next)
	if tab.States() != 2 {
		t.Errorf("states = %d", tab.States())
	}
}

func TestQLearningConvergesToBestAction(t *testing.T) {
	// One-state MDP where action 7 always yields reward 5 and all
	// others yield 1: greedy choice must converge to 7.
	tab, _ := NewTable(0.7, 0.9)
	s := State{}
	for i := 0; i < 200; i++ {
		for a := range tab.Actions() {
			r := 1.0
			if a == 7 {
				r = 5.0
			}
			tab.Update(s, a, r, s)
		}
	}
	idx, _ := tab.Best(s)
	if idx != 7 {
		t.Errorf("converged best = %d, want 7", idx)
	}
	// Value should approach r/(1-γ) = 50.
	if got := tab.Q(s, 7); math.Abs(got-50) > 1 {
		t.Errorf("Q(7) = %v, want ~50", got)
	}
}

// Property: quantizer levels are within range and monotone in power.
func TestQuantizerMonotoneProperty(t *testing.T) {
	q := NewQuantizer(76, 155)
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw % 300)
		b := float64(bRaw % 300)
		if a > b {
			a, b = b, a
		}
		la, lb := q.Level(wattOf(a)), q.Level(wattOf(b))
		return la <= lb && la >= 0 && lb < q.Levels()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rewards are always finite and bounded.
func TestRewardBoundedProperty(t *testing.T) {
	f := func(s, c uint16, qt, qc uint16) bool {
		r := Reward(wattOf(float64(s)), wattOf(float64(c)), float64(qt)/1000, float64(qc)/1000)
		return !math.IsNaN(r) && r >= -11 && r <= 21
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func wattOf(v float64) units.Watt { return units.Watt(v) }

func TestShapedRewardInfeasiblePower(t *testing.T) {
	// Supply below demand: same as Algorithm 1's violated branch.
	got := ShapedReward(100, 200, 0.5, 0.3)
	want := Reward(100, 200, 0.5, 0.3)
	if got != want {
		t.Errorf("infeasible shaped = %v, literal = %v", got, want)
	}
}

func TestShapedRewardMonotoneInQoS(t *testing.T) {
	// Unlike the literal Algorithm 1, the shaped reward never
	// prefers worse service below the SLA.
	better := ShapedReward(150, 120, 0.5, 0.7) // closer to target
	worse := ShapedReward(150, 120, 0.5, 2.0)  // far over target
	if better <= worse {
		t.Errorf("shaped reward not monotone: better=%v worse=%v", better, worse)
	}
}

func TestShapedRewardCapsQoSHeadroom(t *testing.T) {
	// Once the SLA is met with margin, a cheaper setting must win
	// over extra latency headroom (the Figure 10b behaviour).
	frugal := ShapedReward(150, 100, 0.5, 0.45) // just meets, low power
	lavish := ShapedReward(150, 149, 0.5, 0.05) // huge margin, high power
	if frugal <= lavish {
		t.Errorf("frugal %v should beat lavish %v", frugal, lavish)
	}
}

func TestShapedRewardMetBeatsMissed(t *testing.T) {
	met := ShapedReward(150, 120, 0.5, 0.49)
	missed := ShapedReward(150, 120, 0.5, 0.51)
	if met <= missed {
		t.Errorf("met %v should beat missed %v", met, missed)
	}
}
