package rl

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"greensprint/internal/server"
)

// Persistence: a learned Q-table survives controller restarts by
// round-tripping through JSON. The serialized form pins the action
// space (the knob-space size and endpoints) so a table trained against
// one knob space cannot be silently loaded into another.

// tableJSON is the serialized form.
type tableJSON struct {
	Alpha   float64     `json:"alpha"`
	Gamma   float64     `json:"gamma"`
	Actions int         `json:"actions"`
	First   string      `json:"first_action"`
	Last    string      `json:"last_action"`
	States  []stateJSON `json:"states"`
}

type stateJSON struct {
	PowerLevel int `json:"power_level"`
	LoadLevel  int `json:"load_level"`
	// Degraded is the degraded-capacity level; omitted while zero so
	// tables written before (or without) chaos stay byte-identical.
	Degraded int       `json:"degraded,omitempty"`
	Q        []float64 `json:"q"`
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	out := tableJSON{
		Alpha:   t.alpha,
		Gamma:   t.gamma,
		Actions: len(t.actions),
		First:   t.actions[0].String(),
		Last:    t.actions[len(t.actions)-1].String(),
	}
	for s, row := range t.q {
		q := make([]float64, len(row))
		copy(q, row)
		out.States = append(out.States, stateJSON{
			PowerLevel: s.PowerLevel,
			LoadLevel:  s.LoadLevel,
			Degraded:   s.Degraded,
			Q:          q,
		})
	}
	// Deterministic output for diffable snapshots.
	sort.Slice(out.States, func(i, j int) bool {
		a, b := out.States[i], out.States[j]
		if a.PowerLevel != b.PowerLevel {
			return a.PowerLevel < b.PowerLevel
		}
		if a.LoadLevel != b.LoadLevel {
			return a.LoadLevel < b.LoadLevel
		}
		return a.Degraded < b.Degraded
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a table written by WriteJSON. It fails if the
// serialized action space does not match the current knob space.
func ReadJSON(r io.Reader) (*Table, error) {
	var in tableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("rl: decode table: %w", err)
	}
	t, err := NewTable(in.Alpha, in.Gamma)
	if err != nil {
		return nil, fmt.Errorf("rl: stored table invalid: %w", err)
	}
	if in.Actions != len(t.actions) ||
		in.First != server.Normal().String() ||
		in.Last != server.MaxSprint().String() {
		return nil, fmt.Errorf("rl: stored action space (%d, %s..%s) does not match the knob space (%d, %s..%s)",
			in.Actions, in.First, in.Last,
			len(t.actions), server.Normal(), server.MaxSprint())
	}
	for _, s := range in.States {
		if len(s.Q) != len(t.actions) {
			return nil, fmt.Errorf("rl: state (%d,%d) has %d Q values, want %d",
				s.PowerLevel, s.LoadLevel, len(s.Q), len(t.actions))
		}
		row := t.row(State{PowerLevel: s.PowerLevel, LoadLevel: s.LoadLevel, Degraded: s.Degraded})
		copy(row, s.Q)
	}
	return t, nil
}
