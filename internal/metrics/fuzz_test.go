package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzHistogram hardens the latency histogram against arbitrary
// observation streams: percentiles must be monotone in q, Count/Mean
// must stay consistent with the stream, and clamped extremes (values
// outside [min,max], infinities) must neither panic nor corrupt the
// counters. NaNs are dropped by contract.
func FuzzHistogram(f *testing.F) {
	f.Add(int64(1), uint16(10), 0.001, 5.0)
	f.Add(int64(42), uint16(1000), 1e-9, 1e12)
	f.Add(int64(7), uint16(0), -3.0, 0.0)
	f.Add(int64(99), uint16(300), math.Inf(1), math.Inf(-1))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, a, b float64) {
		h, err := NewHistogram(100e-6, 100, 64)
		if err != nil {
			t.Fatal(err)
		}
		// A reproducible stream mixing in-range samples with the two
		// fuzzed extremes (which may be huge, negative, or infinite).
		rng := rand.New(rand.NewSource(seed))
		var want uint64
		var wantSum float64
		observe := func(v float64) {
			h.Observe(v)
			if !math.IsNaN(v) {
				want++
				wantSum += v
			}
		}
		observe(a)
		observe(b)
		observe(math.NaN()) // must be ignored
		for i := 0; i < int(n)%512; i++ {
			observe(math.Exp(rng.Float64()*30 - 15)) // ~1e-7 .. 1e6 seconds
		}

		if h.Count() != want {
			t.Fatalf("Count = %d, want %d", h.Count(), want)
		}
		wantMean := 0.0
		if want > 0 {
			wantMean = wantSum / float64(want)
		}
		if got := h.Mean(); math.Float64bits(got) != math.Float64bits(wantMean) {
			t.Fatalf("Mean = %v, want %v", got, wantMean)
		}

		// Percentile monotonicity over a q ladder, and every quantile
		// within the bucket range.
		prev := math.Inf(-1)
		for q := 0.01; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("Quantile(%v) = %v < Quantile(prev) = %v", q, v, prev)
			}
			prev = v
		}
		if want > 0 {
			if hi := h.Quantile(1); hi > h.max*(1+1e-9) {
				t.Fatalf("Quantile(1) = %v beyond histogram max %v", hi, h.max)
			}
			if lo := h.Quantile(0.01); lo <= 0 {
				t.Fatalf("Quantile(0.01) = %v not positive", lo)
			}
		}
		// q outside (0,1] clamps rather than panicking.
		if h.Quantile(0) != 0 {
			t.Fatal("Quantile(0) != 0")
		}
		_ = h.Quantile(2)

		// FractionBelow is monotone in the deadline.
		prevFrac := -1.0
		for _, d := range []float64{1e-6, 1e-3, 1, 10, 1e6} {
			fr := h.FractionBelow(d)
			if fr < 0 || fr > 1 {
				t.Fatalf("FractionBelow(%v) = %v out of [0,1]", d, fr)
			}
			if fr < prevFrac {
				t.Fatalf("FractionBelow(%v) = %v < previous %v", d, fr, prevFrac)
			}
			prevFrac = fr
		}

		// Reset really clears.
		h.Reset()
		if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
			t.Fatal("Reset left residual state")
		}
	})
}
