// Package metrics provides the measurement primitives behind
// GreenSprint's Monitor component: latency histograms with percentile
// estimation, throughput counters, and QoS accounting against an SLA
// (deadline at a percentile).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a log-bucketed latency histogram. Buckets grow
// geometrically from Min to Max; values outside the range clamp into
// the first/last bucket. The zero value is not usable; construct with
// NewHistogram. Methods are safe for concurrent use: a scrape may
// render the histogram while observers record into it.
type Histogram struct {
	min, max float64
	growth   float64

	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    float64
}

// NewHistogram creates a histogram covering [min,max] seconds with the
// given number of geometric buckets. It returns an error for
// non-positive bounds or buckets.
func NewHistogram(min, max float64, buckets int) (*Histogram, error) {
	if min <= 0 || max <= min {
		return nil, fmt.Errorf("metrics: invalid histogram range [%v,%v]", min, max)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("metrics: need at least one bucket, got %d", buckets)
	}
	return &Histogram{
		min:    min,
		max:    max,
		growth: math.Pow(max/min, 1/float64(buckets)),
		counts: make([]uint64, buckets),
	}, nil
}

// DefaultLatencyHistogram covers 100 µs to 100 s with ~1.5% resolution,
// suitable for all three workloads' SLAs.
func DefaultLatencyHistogram() *Histogram {
	h, err := NewHistogram(100e-6, 100, 920)
	if err != nil {
		panic(err) // static arguments; cannot fail
	}
	return h
}

// DefaultGoodputHistogram covers 0.1 to 1e6 requests/s with ~1.5%
// resolution: idle trickles through a full Int=12 sprint across all
// three workloads' service rates.
func DefaultGoodputHistogram() *Histogram {
	h, err := NewHistogram(0.1, 1e6, 1080)
	if err != nil {
		panic(err) // static arguments; cannot fail
	}
	return h
}

// Observe records one latency sample in seconds.
func (h *Histogram) Observe(seconds float64) {
	if math.IsNaN(seconds) {
		return
	}
	h.mu.Lock()
	h.counts[h.bucketOf(seconds)]++
	h.total++
	h.sum += seconds
	h.mu.Unlock()
}

func (h *Histogram) bucketOf(v float64) int {
	if v <= h.min {
		return 0
	}
	if v >= h.max {
		return len(h.counts) - 1
	}
	i := int(math.Log(v/h.min) / math.Log(h.growth))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// bucketUpper returns the upper bound of bucket i.
func (h *Histogram) bucketUpper(i int) float64 {
	return h.min * math.Pow(h.growth, float64(i+1))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of recorded samples in seconds, the companion to
// Count for Prometheus histogram export.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// CountBelow returns the number of samples whose bucket lies entirely
// at or below d seconds — the cumulative count behind a Prometheus
// `le` bucket. Like FractionBelow it is conservative: a bucket
// straddling d is not counted.
func (h *Histogram) CountBelow(d float64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i := range h.counts {
		if h.bucketUpper(i) > d {
			break
		}
		cum += h.counts[i]
	}
	return cum
}

// Mean returns the mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q ≤ 1). Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.bucketUpper(i)
		}
	}
	return h.max
}

// FractionBelow returns the fraction of samples at or below d seconds
// (1 for an empty histogram, which violates nothing).
func (h *Histogram) FractionBelow(d float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 1
	}
	var cum uint64
	for i := range h.counts {
		if h.bucketUpper(i) > d {
			break
		}
		cum += h.counts[i]
	}
	return float64(cum) / float64(h.total)
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum = 0, 0
}

// Merge adds the samples of o (same shape required) into h. The source
// histogram must not be observed into concurrently.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.counts) != len(o.counts) || h.min != o.min || h.max != o.max {
		return fmt.Errorf("metrics: histogram shape mismatch")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	return nil
}

// QoS is a latency SLA: the Quantile of latencies must be at or below
// Deadline.
type QoS struct {
	Deadline time.Duration
	Quantile float64
}

// Met reports whether the histogram satisfies the SLA. Empty
// histograms trivially satisfy it.
func (q QoS) Met(h *Histogram) bool {
	if h.Count() == 0 {
		return true
	}
	return h.Quantile(q.Quantile) <= q.Deadline.Seconds()
}

// Window accumulates throughput and QoS statistics for one scheduling
// epoch.
type Window struct {
	// Completed counts requests finished in the window.
	Completed uint64
	// Compliant counts requests that met the deadline.
	Compliant uint64
	// Elapsed is the window length.
	Elapsed time.Duration
}

// Throughput returns completed requests per second.
func (w Window) Throughput() float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	return float64(w.Completed) / w.Elapsed.Seconds()
}

// Goodput returns QoS-compliant requests per second — the paper's
// performance metric.
func (w Window) Goodput() float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	return float64(w.Compliant) / w.Elapsed.Seconds()
}

// ComplianceRatio returns Compliant/Completed (1 when idle).
func (w Window) ComplianceRatio() float64 {
	if w.Completed == 0 {
		return 1
	}
	return float64(w.Compliant) / float64(w.Completed)
}

// Add merges another window.
func (w *Window) Add(o Window) {
	w.Completed += o.Completed
	w.Compliant += o.Compliant
	if o.Elapsed > w.Elapsed {
		w.Elapsed = o.Elapsed
	}
}

// Percentile returns the p-quantile (0..100) of a float slice using
// linear interpolation; it is the exact companion to the histogram's
// bucketed estimate, used where samples are few (per-epoch power
// readings).
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
