package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewHistogramErrors(t *testing.T) {
	cases := []struct {
		min, max float64
		buckets  int
	}{
		{0, 1, 10},
		{-1, 1, 10},
		{1, 1, 10},
		{2, 1, 10},
		{0.001, 1, 0},
	}
	for i, c := range cases {
		if _, err := NewHistogram(c.min, c.max, c.buckets); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := DefaultLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Error("empty histogram should be zeros")
	}
	for _, v := range []float64{0.001, 0.002, 0.003, 0.004} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-0.0025) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	h.Observe(math.NaN())
	if h.Count() != 4 {
		t.Error("NaN should be ignored")
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset should clear")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := DefaultLatencyHistogram()
	rng := rand.New(rand.NewSource(7))
	// Exponential latencies with mean 50 ms.
	n := 100000
	var exact []float64
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64() * 0.050
		exact = append(exact, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := Percentile(exact, q*100)
		got := h.Quantile(q)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("q=%v: histogram %v vs exact %v", q, got, want)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h, err := NewHistogram(0.001, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(1e-9) // below min
	h.Observe(50)   // above max
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(1); q < 1 {
		t.Errorf("max quantile = %v, want >= 1", q)
	}
}

func TestFractionBelow(t *testing.T) {
	h, _ := NewHistogram(0.001, 10, 400)
	if got := h.FractionBelow(1); got != 1 {
		t.Errorf("empty = %v", got)
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.01)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	got := h.FractionBelow(0.1)
	if math.Abs(got-0.9) > 0.01 {
		t.Errorf("FractionBelow(0.1) = %v, want ~0.9", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(0.001, 1, 50)
	b, _ := NewHistogram(0.001, 1, 50)
	a.Observe(0.01)
	b.Observe(0.02)
	b.Observe(0.03)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 {
		t.Errorf("merged count = %d", a.Count())
	}
	c, _ := NewHistogram(0.002, 1, 50)
	if err := a.Merge(c); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestQoSMet(t *testing.T) {
	h := DefaultLatencyHistogram()
	sla := QoS{Deadline: 500 * time.Millisecond, Quantile: 0.99}
	if !sla.Met(h) {
		t.Error("empty histogram meets any SLA")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(0.050)
	}
	if !sla.Met(h) {
		t.Error("50ms latencies meet a 500ms p99")
	}
	for i := 0; i < 200; i++ {
		h.Observe(2.0)
	}
	if sla.Met(h) {
		t.Error("17% of samples at 2s must violate a 500ms p99")
	}
}

func TestWindow(t *testing.T) {
	w := Window{Completed: 3000, Compliant: 2700, Elapsed: time.Minute}
	if got := w.Throughput(); math.Abs(got-50) > 1e-12 {
		t.Errorf("throughput = %v", got)
	}
	if got := w.Goodput(); math.Abs(got-45) > 1e-12 {
		t.Errorf("goodput = %v", got)
	}
	if got := w.ComplianceRatio(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("compliance = %v", got)
	}
	var zero Window
	if zero.Throughput() != 0 || zero.Goodput() != 0 || zero.ComplianceRatio() != 1 {
		t.Error("zero window conventions")
	}
	w.Add(Window{Completed: 1000, Compliant: 500, Elapsed: 2 * time.Minute})
	if w.Completed != 4000 || w.Compliant != 3200 || w.Elapsed != 2*time.Minute {
		t.Errorf("after Add: %+v", w)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	tests := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {87.5, 4.5},
	}
	for _, tt := range tests {
		if got := Percentile(s, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile = 0")
	}
	// Input must not be mutated.
	s2 := []float64{3, 1, 2}
	Percentile(s2, 50)
	if s2[0] != 3 || s2[1] != 1 || s2[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

// Property: Quantile is monotone in q and bounded by the histogram
// range.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint16, q1Raw, q2Raw uint8) bool {
		h, err := NewHistogram(0.001, 10, 200)
		if err != nil {
			return false
		}
		for _, v := range vals {
			h.Observe(float64(v) / 6553.5)
		}
		q1 := float64(q1Raw)/255*0.99 + 0.005
		q2 := float64(q2Raw)/255*0.99 + 0.005
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := h.Quantile(q1), h.Quantile(q2)
		return a <= b+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FractionBelow is monotone in the threshold.
func TestFractionBelowMonotoneProperty(t *testing.T) {
	f := func(vals []uint16, d1Raw, d2Raw uint16) bool {
		h, err := NewHistogram(0.001, 10, 200)
		if err != nil {
			return false
		}
		for _, v := range vals {
			h.Observe(float64(v) / 6553.5)
		}
		d1 := float64(d1Raw) / 6553.5
		d2 := float64(d2Raw) / 6553.5
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return h.FractionBelow(d1) <= h.FractionBelow(d2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumAndCountBelow(t *testing.T) {
	h := DefaultLatencyHistogram()
	samples := []float64{0.001, 0.002, 0.05, 0.2, 1.5}
	want := 0.0
	for _, s := range samples {
		h.Observe(s)
		want += s
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	// CountBelow must agree with FractionBelow times Count exactly.
	for _, d := range []float64{0.0005, 0.003, 0.1, 1, 10, 200} {
		got := h.CountBelow(d)
		want := uint64(h.FractionBelow(d)*float64(h.Count()) + 0.5)
		if got != want {
			t.Errorf("CountBelow(%v) = %d, FractionBelow implies %d", d, got, want)
		}
	}
	if h.CountBelow(1000) != h.Count() {
		t.Errorf("CountBelow above max = %d, want total %d", h.CountBelow(1000), h.Count())
	}
}
