package loadgen

import (
	"math"
	"testing"
	"time"

	"greensprint/internal/core"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

const epoch = 5 * time.Minute

func TestNewValidates(t *testing.T) {
	if _, err := New(workload.Profile{}, 1); err == nil {
		t.Error("invalid profile should fail")
	}
	if _, err := New(workload.SPECjbb(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	g, _ := New(workload.SPECjbb(), 1)
	if _, err := g.Run(server.Config{Cores: 1, Freq: 1200}, 100, epoch); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := g.Run(server.Normal(), -1, epoch); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := g.Run(server.Normal(), 100, 0); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestRunIdle(t *testing.T) {
	g, _ := New(workload.SPECjbb(), 1)
	e, err := g.Run(server.Normal(), 0, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if e.Goodput() != 0 || len(e.Latencies) != 0 || e.Shed != 0 {
		t.Errorf("idle epoch = %+v", e)
	}
}

func TestRunUnderload(t *testing.T) {
	p := workload.SPECjbb()
	g, _ := New(p, 1)
	offered := 0.5 * p.MaxGoodput(server.MaxSprint())
	e, err := g.Run(server.MaxSprint(), offered, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shed != 0 {
		t.Errorf("underload shed = %v", e.Shed)
	}
	// Nearly everything meets the SLA.
	if ratio := e.Window.ComplianceRatio(); ratio < 0.99 {
		t.Errorf("compliance = %v", ratio)
	}
	// Goodput ≈ offered.
	if math.Abs(e.Goodput()-offered)/offered > 0.02 {
		t.Errorf("goodput = %v, offered %v", e.Goodput(), offered)
	}
	if len(e.Latencies) == 0 {
		t.Fatal("no latency samples")
	}
}

func TestRunOverloadSheds(t *testing.T) {
	p := workload.SPECjbb()
	g, _ := New(p, 1)
	offered := p.IntensityRate(12) // saturates Normal mode by far
	e, err := g.Run(server.Normal(), offered, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shed <= 0 {
		t.Error("overload should shed")
	}
	// Goodput is far below offered but positive.
	if e.Goodput() <= 0 || e.Goodput() >= offered/2 {
		t.Errorf("overload goodput = %v of %v", e.Goodput(), offered)
	}
}

// TestGoodputMatchesAnalyticModel ties the request-level generator
// back to the analytic QoS-constrained throughput the figures use: at
// the QoS-max rate the generator's measured goodput is close to the
// analytic MaxGoodput.
func TestGoodputMatchesAnalyticModel(t *testing.T) {
	p := workload.SPECjbb()
	g, _ := New(p, 7)
	c := server.MaxSprint()
	max := p.MaxGoodput(c)
	e, err := g.Run(c, max, epoch)
	if err != nil {
		t.Fatal(err)
	}
	// At the analytic QoS-max rate, the SLA quantile of measured
	// latencies sits near the deadline...
	if lat := quantile(e.Latencies, p.Quantile); lat > p.Deadline*1.25 || lat < p.Deadline*0.5 {
		t.Errorf("p99 at MaxGoodput = %v, want near %v", lat, p.Deadline)
	}
	// ...and goodput is within 10% of offered.
	if e.Goodput() < 0.9*max {
		t.Errorf("goodput %v << analytic max %v", e.Goodput(), max)
	}
}

func TestFeedMonitor(t *testing.T) {
	p := workload.SPECjbb()
	g, _ := New(p, 3)
	mon := core.NewMonitor(p)
	offered := p.IntensityRate(12)
	e, err := g.Run(server.Normal(), offered, epoch)
	if err != nil {
		t.Fatal(err)
	}
	e.FeedMonitor(mon.RecordLatency)
	mon.RecordGreenPower(units.Watt(300))
	tel := mon.Close(epoch)
	// Overload on Normal mode: the measured SLA percentile blows
	// through the deadline because shed requests are observed as
	// violations.
	if tel.Latency <= p.Deadline {
		t.Errorf("monitored latency = %v, want > deadline", tel.Latency)
	}
	if tel.GreenPower != 300 {
		t.Errorf("green power = %v", tel.GreenPower)
	}
}

func TestEpochsDifferButAreReproducible(t *testing.T) {
	p := workload.Memcached()
	offered := 0.8 * p.MaxGoodput(server.MaxSprint())
	g1, _ := New(p, 5)
	a, err := g1.Run(server.MaxSprint(), offered, epoch)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g1.Run(server.MaxSprint(), offered, epoch)
	if a.Latencies[0] == b.Latencies[0] {
		t.Error("consecutive epochs should differ")
	}
	// Same seed, fresh generator: identical first epoch.
	g2, _ := New(p, 5)
	a2, _ := g2.Run(server.MaxSprint(), offered, epoch)
	if a.Latencies[0] != a2.Latencies[0] {
		t.Error("same seed should reproduce")
	}
}

func TestSubsamplingKeepsMemcachedCheap(t *testing.T) {
	p := workload.Memcached()
	g, _ := New(p, 1)
	offered := 0.9 * p.MaxGoodput(server.MaxSprint()) // tens of thousands of rps
	start := time.Now()
	e, err := g.Run(server.MaxSprint(), offered, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("subsampling failed: epoch too expensive")
	}
	// The full epoch's counts are scaled, not truncated.
	if e.Window.Completed < uint64(offered*epoch.Seconds()*0.99) {
		t.Errorf("completed = %d, want ~%v", e.Window.Completed, offered*epoch.Seconds())
	}
	if len(e.Latencies) > 120000 {
		t.Errorf("sampled %d latencies", len(e.Latencies))
	}
}

func quantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	cp := append([]float64(nil), s...)
	// insertion sort is fine for test sizes; use sort for clarity
	sortFloats(cp)
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	return cp[idx]
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
