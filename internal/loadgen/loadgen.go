// Package loadgen is an open-loop interactive load generator in the
// role Faban played for the paper's prototype: it offers a Poisson
// request stream at a target rate to a served workload and records
// per-request latencies and QoS compliance. In this reproduction the
// "server under test" is the workload's M/M/c model, exercised through
// the request-level discrete-event simulator, with admission control
// shedding load beyond capacity the way an overloaded interactive
// service does.
//
// The generator subsamples long epochs: it simulates a bounded number
// of requests at the exact offered rate (steady-state sampling) and
// scales the counters to the epoch length, so Memcached-scale rates
// (thousands of requests per second over five-minute epochs) stay
// cheap while the latency distribution remains faithful.
package loadgen

import (
	"fmt"
	"math"
	"time"

	"greensprint/internal/metrics"
	"greensprint/internal/server"
	"greensprint/internal/workload"
)

// maxSimulatedRequests bounds the per-epoch discrete-event sample.
const maxSimulatedRequests = 120000

// warmupFraction of the simulated requests are discarded to remove the
// empty-queue transient.
const warmupFraction = 0.3

// Generator produces epoch-sized load samples for one workload.
type Generator struct {
	profile workload.Profile
	seed    int64
	epoch   int64
}

// New creates a generator. The seed makes every epoch's sample
// deterministic while still differing between epochs.
func New(p workload.Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{profile: p, seed: seed}, nil
}

// Epoch is one epoch's measured load.
type Epoch struct {
	// Offered is the offered request rate (req/s).
	Offered float64
	// Shed is the rate dropped by admission control.
	Shed float64
	// Latencies are the sampled per-request sojourn times (s).
	Latencies []float64
	// Window is the scaled throughput/compliance accounting for the
	// full epoch (shed requests count as completed-but-violating:
	// the client saw an error or timeout).
	Window metrics.Window

	// violationLatency is the latency attributed to shed requests
	// when feeding a monitor (a client-side timeout, well past the
	// SLA deadline).
	violationLatency float64
}

// Goodput returns the epoch's QoS-compliant rate.
func (e Epoch) Goodput() float64 { return e.Window.Goodput() }

// Run offers `offered` req/s to the workload at server setting c for
// duration d and returns the measured epoch.
func (g *Generator) Run(c server.Config, offered float64, d time.Duration) (*Epoch, error) {
	if !c.Valid() {
		return nil, fmt.Errorf("loadgen: invalid config %v", c)
	}
	if offered < 0 {
		return nil, fmt.Errorf("loadgen: negative offered rate %v", offered)
	}
	if d <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive duration %v", d)
	}
	g.epoch++
	out := &Epoch{
		Offered:          offered,
		Window:           metrics.Window{Elapsed: d},
		violationLatency: 20 * g.profile.Deadline,
	}
	if offered == 0 {
		return out, nil
	}

	station := g.profile.Station(c)
	// QoS-aware admission control: an interactive service measured
	// by SLA-constrained throughput (the paper's jops/ops/rps
	// metrics) sheds offered load beyond the rate at which its SLA
	// percentile sits at the deadline — admitting more would violate
	// the SLA for everyone. The raw-capacity bound is a backstop for
	// unreachable deadlines.
	admitted := offered
	if qosMax := station.MaxRate(g.profile.Deadline, g.profile.Quantile); admitted > qosMax {
		admitted = qosMax
	}
	if cap := 0.98 * station.Capacity(); admitted > cap {
		admitted = cap
	}
	out.Shed = offered - admitted
	if admitted <= 0 {
		out.Window.Completed = uint64(offered * d.Seconds())
		return out, nil
	}

	total := offered * d.Seconds()
	admittedTotal := admitted * d.Seconds()
	simReqs := int(math.Min(admittedTotal, maxSimulatedRequests))
	if simReqs < 1 {
		simReqs = 1
	}
	res, err := station.Simulate(admitted, simReqs, g.seed+g.epoch)
	if err != nil {
		return nil, fmt.Errorf("loadgen: simulate: %w", err)
	}
	res.Discard(int(warmupFraction * float64(len(res.Sojourns))))
	out.Latencies = res.Sojourns

	// Scale the sampled compliance to the full epoch.
	compliantFrac := res.GoodputFraction(g.profile.Deadline)
	out.Window.Completed = uint64(total)
	out.Window.Compliant = uint64(compliantFrac * admittedTotal)
	return out, nil
}

// FeedMonitor replays the epoch's sampled latencies (plus one
// violating observation per shed-rate unit, so shedding degrades the
// measured percentile) into a monitor-style latency sink.
func (e *Epoch) FeedMonitor(record func(seconds float64)) {
	for _, l := range e.Latencies {
		record(l)
	}
	if e.Shed > 0 && e.Offered > 0 && len(e.Latencies) > 0 {
		// Shed requests are observed by clients as violations;
		// inject them in proportion to the sampled population.
		n := int(float64(len(e.Latencies)) * e.Shed / e.Offered)
		for i := 0; i < n; i++ {
			record(e.violationLatency)
		}
	}
}
