// Golden resilience suite: one fixture chaos.Schedule and one expected
// JSONL event stream per failure mode under testdata/, regenerated with
// -update. The suite mirrors sweep.TestEventStreamGolden for chaos
// runs: the stream must be bit-identical across repeated runs, across
// GOMAXPROCS 1/4/8, and across 2/4-window sharded resume through
// sweep.ShardedRun — and the sharded Result must equal the sequential
// one field for field.
//
// The file is an external test (package sim_test) so it can drive
// sweep.ShardedRun without an import cycle while keeping the fixtures
// in internal/sim/testdata as the engine's own contract.
package sim_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/obs"
	"greensprint/internal/profile"
	"greensprint/internal/sim"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/sweep"
	"greensprint/internal/trace"
	"greensprint/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the chaos golden fixtures under testdata/")

// resilienceCases pins one golden per failure mode. Most run under
// Pacing (whose EWMA predictor carries state across shard boundaries);
// server-crash runs under the Q-learning Hybrid so the golden also
// covers learning state surviving a crash-recovery cycle.
var resilienceCases = []struct {
	name     string
	spec     string
	mode     chaos.Mode
	strat    string
	recovers bool
}{
	{"server-crash", "crash=5", chaos.ServerCrash, "Hybrid", true},
	{"pss-stuck", "stuck=5", chaos.PSSStuck, "Pacing", true},
	{"battery-degrade", "degrade=5", chaos.BatteryDegrade, "Pacing", false},
	{"solar-dropout", "solar=5:2-5", chaos.SolarDropout, "Pacing", true},
	{"breaker-trip", "breaker=5", chaos.BreakerTrip, "Pacing", true},
	{"zone-outage", "zone=5", chaos.ZoneOutage, "Pacing", true},
}

var (
	resilienceProfile = workload.SPECjbb()
	resilienceTable   *profile.Table
)

func init() {
	var err error
	resilienceTable, err = profile.Build(resilienceProfile, profile.DefaultLevels)
	if err != nil {
		panic(err)
	}
}

// resilienceConfig mirrors the sweep package's shardConfig — the RE-
// Batt rack (3 green servers, 3 battery units), a 10 m lead / 60 m
// burst / 15 m tail replay (17 epochs), seeded synthetic solar — with
// the chaos schedule attached. Each call builds a fresh strategy
// instance: sharded and sequential runs must not share mutable state.
func resilienceConfig(t *testing.T, strat string, sched *chaos.Schedule) sim.Config {
	t.Helper()
	d := 60 * time.Minute
	lead, tail := 10*time.Minute, 15*time.Minute
	green := cluster.REBatt()
	supply := solar.Synthesize(solar.Med, lead+d+tail, time.Minute, float64(green.PeakGreen()), 42)
	cfg := sim.Config{
		Workload: resilienceProfile,
		Green:    green,
		Table:    resilienceTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
		Chaos:    sched,
	}
	switch strat {
	case "Hybrid":
		h, err := strategy.NewHybrid(resilienceProfile, resilienceTable)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Strategy = h
	case "Pacing":
		cfg.Strategy = strategy.Pacing{}
		peak := resilienceProfile.IntensityRate(12)
		n := int((lead + d + tail) / time.Minute)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = peak * (0.4 + 0.6*float64(i)/float64(n-1))
		}
		cfg.Offered = trace.New("offered", supply.Start, time.Minute, samples)
	default:
		t.Fatalf("unknown strategy %q", strat)
	}
	return cfg
}

const resilienceEpochs = 17 // (10 m lead + 60 m burst + 15 m tail) / 5 m epoch

// searchResilienceSchedule deterministically searches seeds for a
// single-mode timeline whose first fault strikes a few epochs in and —
// when the mode recovers at all — heals before the run ends, so the
// golden pins a complete fault→recovery cycle. Only -update runs it;
// normal runs load the committed fixture.
func searchResilienceSchedule(t *testing.T, spec string, mode chaos.Mode, recovers bool) *chaos.Schedule {
	t.Helper()
	p, err := chaos.ParseProfile(spec)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed < 1000; seed++ {
		s, err := p.Resolve(seed, resilienceEpochs, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range s.Faults {
			if f.Mode != mode || f.Cascade {
				continue
			}
			if f.Epoch < 1 || f.Epoch > resilienceEpochs-4 {
				continue
			}
			if recovers && (f.Recover == 0 || f.Recover > resilienceEpochs-1) {
				continue
			}
			return s
		}
	}
	t.Fatalf("no seed under 1000 yields a usable %v fault", mode)
	return nil
}

// runResilience runs one replay with a JSONL sink — sequentially,
// sharded, or (windows == batchedRun) as a single whole-run StepN
// batch — and returns the byte stream plus the Result.
func runResilience(t *testing.T, cfg sim.Config, windows int) ([]byte, *sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Sink = obs.NewJSONL(&buf)
	var (
		res *sim.Result
		err error
	)
	switch {
	case windows == batchedRun:
		var e *sim.Engine
		if e, err = sim.New(cfg); err == nil {
			_, err = e.StepN(e.TotalEpochs())
			res = e.Result()
		}
	case windows <= 1:
		res, err = sim.Run(context.Background(), cfg)
	default:
		res, err = sweep.ShardedRun(context.Background(), cfg, windows)
	}
	if err != nil {
		t.Fatalf("windows=%d: %v", windows, err)
	}
	return buf.Bytes(), res
}

// batchedRun is the runResilience windows sentinel selecting the
// single-batch StepN path.
const batchedRun = -1

func resilienceFixture(name string) (schedule, events string) {
	return filepath.Join("testdata", "chaos_"+name+".json"),
		filepath.Join("testdata", "chaos_"+name+".events.jsonl")
}

// TestChaosGoldenResilience is the per-mode golden recovery regression.
func TestChaosGoldenResilience(t *testing.T) {
	for _, tc := range resilienceCases {
		t.Run(tc.name, func(t *testing.T) {
			schedPath, eventsPath := resilienceFixture(tc.name)

			var sched *chaos.Schedule
			if *updateGolden {
				sched = searchResilienceSchedule(t, tc.spec, tc.mode, tc.recovers)
				sched.Source = tc.spec
				b, err := json.MarshalIndent(sched, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(schedPath, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				b, err := os.ReadFile(schedPath)
				if err != nil {
					t.Fatalf("%v (regenerate with go test -run TestChaosGoldenResilience -update)", err)
				}
				sched = new(chaos.Schedule)
				if err := json.Unmarshal(b, sched); err != nil {
					t.Fatal(err)
				}
			}
			if err := sched.Validate(); err != nil {
				t.Fatalf("fixture schedule invalid: %v", err)
			}
			if sched.Epochs != resilienceEpochs || sched.Servers != 3 || sched.Units != 3 {
				t.Fatalf("fixture resolved for %d epochs / %d servers / %d units, want %d/3/3",
					sched.Epochs, sched.Servers, sched.Units, resilienceEpochs)
			}

			mkCfg := func() sim.Config {
				cfg := resilienceConfig(t, tc.strat, sched)
				if tc.mode == chaos.BreakerTrip {
					cfg.AllowBreakerOverdraw = true
				}
				return cfg
			}

			stream, seq := runResilience(t, mkCfg(), 1)
			if *updateGolden {
				if err := os.WriteFile(eventsPath, stream, 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				want, err := os.ReadFile(eventsPath)
				if err != nil {
					t.Fatalf("%v (regenerate with go test -run TestChaosGoldenResilience -update)", err)
				}
				if !bytes.Equal(stream, want) {
					t.Fatalf("event stream differs from golden %s", eventsPath)
				}
			}
			assertChaosStream(t, stream, tc.mode, tc.recovers)

			// Bit-identity: repeated run, then across GOMAXPROCS.
			if again, _ := runResilience(t, mkCfg(), 1); !bytes.Equal(again, stream) {
				t.Error("repeated sequential run emitted a different stream")
			}
			for _, procs := range []int{1, 4, 8} {
				prev := runtime.GOMAXPROCS(procs)
				got, _ := runResilience(t, mkCfg(), 1)
				runtime.GOMAXPROCS(prev)
				if !bytes.Equal(got, stream) {
					t.Errorf("GOMAXPROCS=%d: stream differs from golden", procs)
				}
			}

			// Whole-run StepN batch: the idle fast path and buffered
			// event flush must reproduce the golden bytes exactly.
			if got, res := runResilience(t, mkCfg(), batchedRun); !bytes.Equal(got, stream) {
				t.Error("batched StepN run emitted a different stream")
			} else {
				assertEqualResults(t, batchedRun, seq, res)
			}

			// Sharded resume: same bytes and the same Result.
			for _, windows := range []int{2, 4} {
				got, res := runResilience(t, mkCfg(), windows)
				if !bytes.Equal(got, stream) {
					t.Errorf("%d windows: sharded stream differs from sequential", windows)
				}
				assertEqualResults(t, windows, seq, res)
			}
		})
	}
}

// assertChaosStream checks the golden's shape: interleaved chaos lines
// of the right mode (at least one fault, and a recovery when the mode
// recovers), plus exactly one record per epoch in order.
func assertChaosStream(t *testing.T, stream []byte, mode chaos.Mode, recovers bool) {
	t.Helper()
	var epochs, faults, recoveries int
	sc := bufio.NewScanner(bytes.NewReader(stream))
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Chaos {
		case "":
			if ev.Epoch != epochs {
				t.Errorf("epoch record %d arrived at position %d", ev.Epoch, epochs)
			}
			epochs++
		case "fault":
			if ev.ChaosMode == mode.String() {
				faults++
			}
		case "recover":
			if ev.ChaosMode == mode.String() {
				recoveries++
			}
		default:
			t.Errorf("unknown chaos kind %q", ev.Chaos)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if epochs != resilienceEpochs {
		t.Errorf("epoch records = %d, want %d", epochs, resilienceEpochs)
	}
	if faults == 0 {
		t.Errorf("golden has no %v fault line", mode)
	}
	if recovers && recoveries == 0 {
		t.Errorf("golden has no %v recovery line", mode)
	}
}

// assertEqualResults compares the full Result surface the sharding
// contract promises: every EpochRecord and each aggregate.
func assertEqualResults(t *testing.T, windows int, seq, got *sim.Result) {
	t.Helper()
	if len(got.Records) != len(seq.Records) {
		t.Fatalf("%d windows: records = %d, want %d", windows, len(got.Records), len(seq.Records))
	}
	for i := range seq.Records {
		if got.Records[i] != seq.Records[i] {
			t.Errorf("%d windows: record %d differs:\nseq   %+v\nshard %+v",
				windows, i, seq.Records[i], got.Records[i])
		}
	}
	if got.MeanNormPerf != seq.MeanNormPerf {
		t.Errorf("%d windows: MeanNormPerf = %v, want %v", windows, got.MeanNormPerf, seq.MeanNormPerf)
	}
	if got.Account != seq.Account {
		t.Errorf("%d windows: Account = %+v, want %+v", windows, got.Account, seq.Account)
	}
	if got.BatteryCycles != seq.BatteryCycles {
		t.Errorf("%d windows: BatteryCycles = %v, want %v", windows, got.BatteryCycles, seq.BatteryCycles)
	}
}
