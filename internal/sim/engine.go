package sim

import (
	"context"
	"fmt"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/obs"
	"greensprint/internal/pmk"
	"greensprint/internal/predictor"
	"greensprint/internal/profile"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// GridRechargePower is the grid power budget for topping up the
// battery bank during non-sprinting epochs once the DoD recharge
// trigger fires (§III-A Case 3: "we charge the battery with grid power
// in anticipation of future sprints"). The paper keeps this small —
// recharge rides spare grid-budget headroom, it never competes with
// serving load.
const GridRechargePower units.Watt = 100

// Engine is the steppable form of the simulator: New builds the full
// controller stack (Predictor + PSS + strategy + PMK) for a config,
// Step advances one scheduling epoch, and Result aggregates what has
// run so far. Run wraps the three for the common run-to-completion
// case; callers that need mid-run control — checkpointing, sharded
// replays, epoch-by-epoch inspection — drive the Engine directly.
type Engine struct {
	cfg      Config
	epoch    time.Duration
	tab      *profile.Table
	selector *pss.Selector
	fleet    *pmk.Fleet
	breaker  *cluster.Breaker
	loadPred *predictor.EWMA
	n        int

	// kernel memoizes the per-config queueing constants (max rates,
	// service rates) so the per-epoch hot path runs without bisections;
	// latMemo caches effective-latency results per (config, offered)
	// pair. Both are derived data rebuilt identically by New/Restore
	// and never checkpointed.
	kernel  *workload.Kernel
	latMemo map[latKey]float64
	// sprintFrac is the SprintFraction closure handed to the strategy
	// each burst epoch; it reads predGreen instead of capturing a fresh
	// value, so it is allocated once instead of once per epoch.
	// fracMemo caches its results within one epoch (the strategy probes
	// the same candidate powers in more than one pass and the selector
	// state is fixed until after Decide); runBurstEpoch clears it at
	// every epoch boundary.
	sprintFrac func(units.Watt) float64
	fracMemo   map[units.Watt]float64
	predGreen  units.Watt
	// timeBuf backs the RFC3339Nano timestamp formatting in event(),
	// reused across epochs.
	timeBuf []byte

	normalPower  units.Watt
	baseGoodput  float64
	burstStart   time.Time
	burstEnd     time.Time
	runEnd       time.Time
	offeredBurst float64
	offeredIdle  float64

	at           time.Time
	epochIndex   int
	records      []EpochRecord
	burstPerfSum float64
	burstEpochs  int
}

// New validates cfg and builds an Engine positioned at the first
// epoch. The setup matches what Run has always done: the supply
// predictor is primed with the pre-run observation and the workload
// predictor with the first offered-rate window when a trace is
// replayed.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	tab := cfg.Table
	if tab == nil {
		var err error
		// BuildCached: runs whose callers did not pre-build a table
		// (sweep cells, CLI one-offs) share one immutable profiling
		// table per workload instead of re-profiling per Engine.
		if tab, err = profile.BuildCached(cfg.Workload, profile.DefaultLevels); err != nil {
			return nil, err
		}
	}
	bank, err := cfg.Green.NewBank()
	if err != nil {
		return nil, err
	}
	selector := pss.New(bank)
	n := cfg.Green.GreenServers
	if n == 0 {
		return nil, fmt.Errorf("sim: no green servers in config %q", cfg.Green.Name)
	}
	fleet := pmk.NewSimFleet(n)
	var breaker *cluster.Breaker
	if cfg.AllowBreakerOverdraw {
		cl, err := cluster.New(cfg.Green)
		if err != nil {
			return nil, err
		}
		breaker = cluster.NewBreaker(cl.GridBudget)
	}

	// One kernel per Engine: the per-config QoS bisections run once at
	// construction, and parallel sweep cells share nothing by design.
	kernel := workload.NewKernel(cfg.Workload)
	baseGoodput := kernel.MaxGoodput(server.Normal())
	burstStart := cfg.Supply.Start.Add(cfg.Lead)
	e := &Engine{
		cfg:      cfg,
		epoch:    epoch,
		tab:      tab,
		selector: selector,
		fleet:    fleet,
		breaker:  breaker,
		loadPred: predictor.NewEWMA(predictor.DefaultAlpha),
		n:        n,
		kernel:   kernel,
		latMemo:  make(map[latKey]float64),

		normalPower:  kernel.LoadPower(server.Normal(), cfg.Burst.Rate(cfg.Workload)),
		baseGoodput:  baseGoodput,
		burstStart:   burstStart,
		burstEnd:     burstStart.Add(cfg.Burst.Duration),
		offeredBurst: cfg.Burst.Rate(cfg.Workload),
		// Outside the burst the rack serves a comfortable background
		// load, as SquareTrace models.
		offeredIdle: 0.6 * baseGoodput,

		at: cfg.Supply.Start,
	}
	e.runEnd = e.burstEnd.Add(cfg.Tail)
	// The horizon is fixed at construction, so the record slice can be
	// sized once instead of growing by doubling across the run.
	e.records = make([]EpochRecord, 0, e.TotalEpochs())
	e.fracMemo = make(map[units.Watt]float64)
	e.sprintFrac = func(perServer units.Watt) float64 {
		if v, ok := e.fracMemo[perServer]; ok {
			return v
		}
		v := e.selector.SustainFraction(units.Watt(float64(perServer)*float64(e.n)), e.predGreen, e.epoch)
		e.fracMemo[perServer] = v
		return v
	}

	// Prime the supply predictor with the pre-run observation so the
	// first epoch has a sensible forecast (the paper's predictor has
	// been running continuously before any burst).
	selector.ObserveSupply(units.Watt(cfg.Supply.At(cfg.Supply.Start)))
	// Workload predictor (the paper's L_pre EWMA); only used when an
	// offered-rate trace is replayed.
	if cfg.Offered != nil {
		e.loadPred.Observe(meanWindow(cfg.Offered, cfg.Supply.Start, epoch))
	}
	return e, nil
}

// Step advances the simulation by one scheduling epoch. It returns the
// epoch's record and true while the run is in progress, and a zero
// record and false once the configured horizon has been consumed.
func (e *Engine) Step() (EpochRecord, bool, error) {
	if !e.at.Before(e.runEnd) {
		return EpochRecord{}, false, nil
	}
	at := e.at
	inBurst := !at.Before(e.burstStart) && at.Before(e.burstEnd)
	offered := e.offeredIdle
	if inBurst {
		offered = e.offeredBurst
	}
	predicted := offered
	if e.cfg.Offered != nil {
		offered = meanWindow(e.cfg.Offered, at, e.epoch)
		predicted = e.loadPred.Predict()
	}
	greenObserved := units.Watt(meanWindow(e.cfg.Supply, at, e.epoch))

	var rec EpochRecord
	rec.Start = at
	rec.InBurst = inBurst
	rec.Supply = greenObserved
	rec.Offered = offered

	if inBurst {
		rec = e.runBurstEpoch(rec, greenObserved, offered, predicted, at)
	} else {
		rec = e.runIdleEpoch(rec, greenObserved, offered)
		if e.breaker != nil {
			// Non-burst epochs stay within the budget and cool the
			// breaker.
			e.breaker.Step(0, e.epoch)
		}
	}

	if e.baseGoodput > 0 {
		rec.NormPerf = rec.Goodput / e.baseGoodput
	}
	rec.SoC = e.selector.Bank().SoC()
	e.selector.ObserveSupply(greenObserved)
	e.loadPred.Observe(offered)
	e.records = append(e.records, rec)
	if inBurst {
		e.burstPerfSum += rec.NormPerf
		e.burstEpochs++
	}
	index := e.epochIndex
	e.at = at.Add(e.epoch)
	e.epochIndex++
	if e.cfg.Sink != nil {
		if err := e.cfg.Sink.Emit(e.event(index, rec)); err != nil {
			return rec, true, fmt.Errorf("sim: event sink: %w", err)
		}
	}
	return rec, true, nil
}

// event flattens one epoch record into the observability schema. The
// record's per-server power split and the simulation clock make the
// stream deterministic for a fixed-seed replay.
func (e *Engine) event(index int, rec EpochRecord) obs.Event {
	// AppendFormat into a reused buffer: same bytes as Format, one
	// string allocation instead of Format's intermediate buffer.
	e.timeBuf = rec.Start.UTC().AppendFormat(e.timeBuf[:0], time.RFC3339Nano)
	ev := obs.Event{
		Epoch:          index,
		Time:           string(e.timeBuf),
		EpochSeconds:   e.epoch.Seconds(),
		Strategy:       e.cfg.Strategy.Name(),
		Servers:        e.n,
		InBurst:        rec.InBurst,
		GreenSupplyW:   float64(rec.Supply),
		OfferedRate:    rec.Offered,
		Goodput:        rec.Goodput,
		LatencySec:     rec.Latency,
		Case:           rec.Case.String(),
		Config:         rec.Config.String(),
		Sprinting:      rec.Config.IsSprinting(),
		SprintFraction: rec.SprintFraction,
		GreenW:         float64(rec.Green),
		BatteryW:       float64(rec.Battery),
		GridW:          float64(rec.Grid),
		SoC:            rec.SoC,
		BatteryCycles:  e.selector.Bank().EquivalentCycles(),
		QoSViolation:   e.cfg.Workload.Deadline > 0 && rec.Latency > e.cfg.Workload.Deadline,
	}
	if e.breaker != nil {
		ev.BreakerStress = e.breaker.Stress()
	}
	return ev
}

// Done reports whether the configured horizon has been consumed.
func (e *Engine) Done() bool { return !e.at.Before(e.runEnd) }

// Result aggregates the epochs run so far. It may be called at any
// point; after the final Step it is the same Result Run returns.
func (e *Engine) Result() *Result {
	res := &Result{Fleet: e.fleet}
	res.Records = append(res.Records, e.records...)
	if e.burstEpochs > 0 {
		res.MeanNormPerf = e.burstPerfSum / float64(e.burstEpochs)
	}
	res.Account = e.selector.Account()
	res.BatteryCycles = e.selector.Bank().EquivalentCycles()
	return res
}

// Epoch returns the resolved scheduling-epoch length.
func (e *Engine) Epoch() time.Duration { return e.epoch }

// EpochIndex returns how many epochs have been stepped so far.
func (e *Engine) EpochIndex() int { return e.epochIndex }

// TotalEpochs returns the number of epochs the configured horizon
// spans (the run covers [Supply.Start, burst end + tail)).
func (e *Engine) TotalEpochs() int {
	d := e.runEnd.Sub(e.cfg.Supply.Start)
	if d <= 0 {
		return 0
	}
	n := int(d / e.epoch)
	if time.Duration(n)*e.epoch < d {
		n++
	}
	return n
}

// Breaker exposes the PDU breaker model, or nil when the run does not
// allow overdraw. Tests assert on its stress accounting.
func (e *Engine) Breaker() *cluster.Breaker { return e.breaker }

// Run executes the simulation to completion. It is a thin wrapper over
// New/Step/Result whose output is identical to driving the Engine by
// hand; ctx is checked between epochs, so cancellation stops the run
// at an epoch boundary and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		_, ok, err := e.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			return e.Result(), nil
		}
	}
}
