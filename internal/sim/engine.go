package sim

import (
	"context"
	"fmt"
	"time"

	"greensprint/internal/battery"
	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/fleet"
	"greensprint/internal/obs"
	"greensprint/internal/pmk"
	"greensprint/internal/predictor"
	"greensprint/internal/profile"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// GridRechargePower is the grid power budget for topping up the
// battery bank during non-sprinting epochs once the DoD recharge
// trigger fires (§III-A Case 3: "we charge the battery with grid power
// in anticipation of future sprints"). The paper keeps this small —
// recharge rides spare grid-budget headroom, it never competes with
// serving load.
const GridRechargePower units.Watt = 100

// Engine is the steppable form of the simulator: New builds the full
// controller stack (Predictor + PSS + strategy + PMK) for a config,
// Step advances one scheduling epoch, and Result aggregates what has
// run so far. Run wraps the three for the common run-to-completion
// case; callers that need mid-run control — checkpointing, sharded
// replays, epoch-by-epoch inspection — drive the Engine directly.
type Engine struct {
	cfg      Config
	epoch    time.Duration
	tab      *profile.Table
	selector *pss.Selector
	fleet    *pmk.Fleet
	breaker  *cluster.Breaker
	loadPred *predictor.EWMA
	n        int

	// injector replays the chaos schedule (nil for fault-free runs:
	// every fault-free code path below is bit-identical to the
	// pre-chaos engine). alive tracks the green servers not currently
	// crashed; it equals n whenever injector is nil.
	injector *chaos.Injector
	alive    int //greensprint:allow(statecov) derived: Restore recounts it from the restored injector's ref-counts (n when chaos is off)

	// Fleet-scale (structure-of-arrays) state, all nil for the
	// paper's flat single-rack configs: topo is the generated
	// topology, cfleet the class-indexed knob herd replacing fleet,
	// classes the per-class runtime (profiling table, kernel, Normal
	// draw), classAlive the per-class alive census, classEnergyWh the
	// cumulative per-class server energy (checkpointed so resumed
	// streams continue the counters), and classEv the reused event
	// buffer. perAliveGoodput is the epoch's per-alive-server goodput
	// before alive-fraction scaling, feeding per-class event stats.
	topo            *fleet.Topology
	cfleet          *pmk.ClassFleet
	classes         []classRT
	classAlive      []int //greensprint:allow(statecov) derived: Restore rebuilds the census via recomputeClassAlive from the injector and topology
	classEnergyWh   []float64
	classEv         []obs.ClassStat //greensprint:allow(statecov) per-epoch scratch: truncated and refilled before every event emission
	perAliveGoodput float64         //greensprint:allow(statecov) per-epoch intermediate: written by every epoch before any read

	// kernel memoizes the per-config queueing constants (max rates,
	// service rates) so the per-epoch hot path runs without bisections;
	// latMemo caches effective-latency results per (config, offered)
	// pair. Both are derived data rebuilt identically by New/Restore
	// and never checkpointed.
	kernel  *workload.Kernel
	latMemo map[latKey]float64 //greensprint:allow(statecov) derived memo: entries recompute bit-identically from (config, offered) on demand
	// sprintFrac is the SprintFraction closure handed to the strategy
	// each burst epoch; it reads predGreen instead of capturing a fresh
	// value, so it is allocated once instead of once per epoch.
	// fracMemo caches its results within one epoch (the strategy probes
	// the same candidate powers in more than one pass and the selector
	// state is fixed until after Decide); runBurstEpoch clears it at
	// every epoch boundary.
	sprintFrac func(units.Watt) float64
	fracMemo   map[units.Watt]float64
	predGreen  units.Watt //greensprint:allow(statecov) per-epoch intermediate: runBurstEpoch writes it before the strategy can probe sprintFrac
	// timeBuf backs the RFC3339Nano timestamp formatting in event(),
	// reused across epochs.
	timeBuf []byte //greensprint:allow(statecov) formatting arena: overwritten from scratch at each use, carries no run state

	// Batched-stepping state (StepN). While batching is set, emit
	// appends events to evBuf instead of calling the sink per epoch;
	// the buffer is flushed once per StepN call, preserving emission
	// order, so the sink receives the exact byte stream a sequential
	// Step loop would have produced. classArena backs deep copies of
	// the per-event class stats (the classEv buffer is reused across
	// epochs, so buffered events must not alias it). Both are arenas:
	// grown once, truncated to length zero per batch.
	batching   bool            //greensprint:allow(statecov) StepN-scoped: set and cleared within one call; checkpoints are cut between calls
	evBuf      []obs.Event     //greensprint:allow(statecov) batching arena: flushed and truncated before StepN returns
	classArena []obs.ClassStat //greensprint:allow(statecov) batching arena: truncated with evBuf before StepN returns

	normalPower  units.Watt
	baseGoodput  float64
	burstStart   time.Time
	burstEnd     time.Time
	runEnd       time.Time
	offeredBurst float64
	offeredIdle  float64

	at           time.Time //greensprint:allow(statecov) derived: always start + epochIndex*epoch; Restore recomputes it from the checkpointed EpochIndex
	epochIndex   int
	records      []EpochRecord
	burstPerfSum float64
	burstEpochs  int
}

// classRT is one server class's engine-side runtime: its census and
// the derived per-class lookup structures (profiling table, queueing
// kernel, Normal-mode draw at the burst rate). Derived data: rebuilt
// identically by New/Restore, never checkpointed.
type classRT struct {
	name        string
	count       int
	tab         *profile.Table
	kernel      *workload.Kernel
	normalPower units.Watt
}

// New validates cfg and builds an Engine positioned at the first
// epoch. The setup matches what Run has always done: the supply
// predictor is primed with the pre-run observation and the workload
// predictor with the first offered-rate window when a trace is
// replayed.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	var err error
	tab := cfg.Table
	if tab == nil {
		// BuildCached: runs whose callers did not pre-build a table
		// (sweep cells, CLI one-offs) share one immutable profiling
		// table per workload instead of re-profiling per Engine.
		if tab, err = profile.BuildCached(cfg.Workload, profile.DefaultLevels); err != nil {
			return nil, err
		}
	}
	// Topology: either the flat Green config (the paper's rack) or a
	// generated heterogeneous fleet with class-indexed state.
	var topo *fleet.Topology
	if cfg.Fleet != nil {
		if topo, err = cfg.Fleet.Generate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	var bank battery.Store
	n := cfg.Green.GreenServers
	if topo != nil {
		cb, err := battery.NewClassBank(topo.BatteryClasses())
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		bank = cb
		n = topo.Servers
	} else {
		b, err := cfg.Green.NewBank()
		if err != nil {
			return nil, err
		}
		bank = b
	}
	selector := pss.New(bank)
	if n == 0 {
		return nil, fmt.Errorf("sim: no green servers in config %q", cfg.Green.Name)
	}
	var knobs *pmk.Fleet
	var cfleet *pmk.ClassFleet
	if topo != nil {
		cfleet = pmk.NewClassFleet(topo.ClassCounts(), topo.ClassOf)
	} else {
		knobs = pmk.NewSimFleet(n)
	}
	var injector *chaos.Injector
	if cfg.Chaos != nil {
		// The schedule's fault targets were drawn for a concrete
		// topology; replaying it against a different one would strike
		// phantom components. For fleet runs n and the bank size come
		// from the generated topology, so the checks bind the schedule
		// to the fleet's real census, and the zone shape must match
		// too (zone outages cascade across generated zone membership).
		if cfg.Chaos.Servers != n {
			return nil, fmt.Errorf("sim: chaos schedule resolved for %d servers, config has %d",
				cfg.Chaos.Servers, n)
		}
		if cfg.Chaos.Units != bank.Size() {
			return nil, fmt.Errorf("sim: chaos schedule resolved for %d battery units, config has %d",
				cfg.Chaos.Units, bank.Size())
		}
		if topo != nil {
			zones := cfg.Chaos.Zones
			if zones == 0 {
				zones = chaos.NumZones
			}
			if zones != topo.Zones {
				return nil, fmt.Errorf("sim: chaos schedule resolved for %d zones, fleet has %d",
					zones, topo.Zones)
			}
		}
		if injector, err = chaos.NewInjector(cfg.Chaos); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	var breaker *cluster.Breaker
	if cfg.AllowBreakerOverdraw {
		if topo != nil {
			// The breaker model is sized for one rack's PDU; a
			// generated fleet spans many PDU legs with no single
			// breaker to overdraw through.
			return nil, fmt.Errorf("sim: breaker overdraw is not supported with a generated fleet")
		}
		cl, err := cluster.New(cfg.Green)
		if err != nil {
			return nil, err
		}
		breaker = cluster.NewBreaker(cl.GridBudget)
	}

	// One kernel per Engine: the per-config QoS bisections run once at
	// construction, and parallel sweep cells share nothing by design.
	kernel := workload.NewKernel(cfg.Workload)
	baseGoodput := kernel.MaxGoodput(server.Normal())
	burstStart := cfg.Supply.Start.Add(cfg.Lead)
	e := &Engine{
		cfg:      cfg,
		epoch:    epoch,
		tab:      tab,
		selector: selector,
		fleet:    knobs,
		breaker:  breaker,
		loadPred: predictor.NewEWMA(predictor.DefaultAlpha),
		n:        n,
		injector: injector,
		alive:    n,
		kernel:   kernel,
		latMemo:  make(map[latKey]float64),

		normalPower:  kernel.LoadPower(server.Normal(), cfg.Burst.Rate(cfg.Workload)),
		baseGoodput:  baseGoodput,
		burstStart:   burstStart,
		burstEnd:     burstStart.Add(cfg.Burst.Duration),
		offeredBurst: cfg.Burst.Rate(cfg.Workload),
		// Outside the burst the rack serves a comfortable background
		// load, as SquareTrace models.
		offeredIdle: 0.6 * baseGoodput,

		at: cfg.Supply.Start,
	}
	if topo != nil {
		e.topo = topo
		e.cfleet = cfleet
		e.classes = make([]classRT, len(topo.Classes))
		e.classAlive = make([]int, len(topo.Classes))
		e.classEnergyWh = make([]float64, len(topo.Classes))
		for i, c := range topo.Classes {
			prof := cfg.Workload
			if c.PeakPower > 0 {
				prof.PeakPower = c.PeakPower
			}
			// The reference class (no power override) reuses the
			// engine's own table and kernel — including a caller-built
			// cfg.Table — so a single-class default fleet computes on
			// the exact structures the flat engine does. Overridden
			// classes share process-wide caches keyed by profile.
			ctab, ck := tab, kernel
			if prof != cfg.Workload {
				if err := prof.Validate(); err != nil {
					return nil, fmt.Errorf("sim: fleet class %q: %w", c.Name, err)
				}
				if ctab, err = profile.BuildCached(prof, profile.DefaultLevels); err != nil {
					return nil, fmt.Errorf("sim: fleet class %q: %w", c.Name, err)
				}
				ck = workload.SharedKernel(prof)
			}
			e.classes[i] = classRT{
				name:        c.Name,
				count:       c.Servers,
				tab:         ctab,
				kernel:      ck,
				normalPower: ck.LoadPower(server.Normal(), cfg.Burst.Rate(prof)),
			}
			e.classAlive[i] = c.Servers
		}
	}
	e.runEnd = e.burstEnd.Add(cfg.Tail)
	// The horizon is fixed at construction, so the record slice can be
	// sized once instead of growing by doubling across the run.
	e.records = make([]EpochRecord, 0, e.TotalEpochs())
	e.fracMemo = make(map[units.Watt]float64)
	e.sprintFrac = func(perServer units.Watt) float64 {
		if v, ok := e.fracMemo[perServer]; ok {
			return v
		}
		// Demand scales with the servers actually running (alive == n
		// for fault-free runs, so this stays bit-identical to the
		// pre-chaos closure).
		v := e.selector.SustainFraction(units.Watt(float64(perServer)*float64(e.alive)), e.predGreen, e.epoch)
		e.fracMemo[perServer] = v
		return v
	}

	// Prime the supply predictor with the pre-run observation so the
	// first epoch has a sensible forecast (the paper's predictor has
	// been running continuously before any burst).
	selector.ObserveSupply(units.Watt(cfg.Supply.At(cfg.Supply.Start)))
	// Workload predictor (the paper's L_pre EWMA); only used when an
	// offered-rate trace is replayed.
	if cfg.Offered != nil {
		e.loadPred.Observe(meanWindow(cfg.Offered, cfg.Supply.Start, epoch))
	}
	return e, nil
}

// Step advances the simulation by one scheduling epoch. It returns the
// epoch's record and true while the run is in progress, and a zero
// record and false once the configured horizon has been consumed.
func (e *Engine) Step() (EpochRecord, bool, error) { return e.step() }

// step is the shared single-epoch path behind Step and StepN. The only
// difference under StepN is that emit buffers events instead of
// handing them to the sink immediately.
func (e *Engine) step() (EpochRecord, bool, error) {
	if !e.at.Before(e.runEnd) {
		return EpochRecord{}, false, nil
	}
	at := e.at
	inBurst := !at.Before(e.burstStart) && at.Before(e.burstEnd)
	offered := e.offeredIdle
	if inBurst {
		offered = e.offeredBurst
	}
	predicted := offered
	if e.cfg.Offered != nil {
		offered = meanWindow(e.cfg.Offered, at, e.epoch)
		predicted = e.loadPred.Predict()
	}
	greenObserved := units.Watt(meanWindow(e.cfg.Supply, at, e.epoch))
	if e.injector != nil {
		// Fault and recovery transitions land at the epoch boundary,
		// before the epoch's physics; an active inverter dropout then
		// zeroes the observed green supply.
		if err := e.applyChaos(e.epochIndex, at); err != nil {
			return EpochRecord{}, true, err
		}
		greenObserved = units.Watt(float64(greenObserved) * e.injector.SolarFactor())
	}

	var rec EpochRecord
	rec.Start = at
	rec.InBurst = inBurst
	rec.Supply = greenObserved
	rec.Offered = offered

	switch {
	case e.alive == 0:
		// Every green server is down (a full zone outage, or worse):
		// nothing serves, nothing sprints, the strategy has nothing to
		// decide. Surviving infrastructure still runs — batteries bank
		// whatever green output remains — and the breaker cools.
		rec = e.runOutageEpoch(rec, greenObserved)
		if e.breaker != nil {
			e.breaker.Step(0, e.epoch)
		}
	case inBurst:
		rec = e.runBurstEpoch(rec, greenObserved, offered, predicted, at)
	default:
		rec = e.runIdleEpoch(rec, greenObserved, offered)
		if e.breaker != nil {
			// Non-burst epochs stay within the budget and cool the
			// breaker.
			e.breaker.Step(0, e.epoch)
		}
	}

	if e.baseGoodput > 0 {
		rec.NormPerf = rec.Goodput / e.baseGoodput
	}
	rec.SoC = e.selector.Bank().SoC()
	e.selector.ObserveSupply(greenObserved)
	e.loadPred.Observe(offered)
	//greensprint:allow(allocfree) the per-epoch record log is the simulation's product; growth is amortized doubling
	e.records = append(e.records, rec)
	if inBurst {
		e.burstPerfSum += rec.NormPerf
		e.burstEpochs++
	}
	index := e.epochIndex
	e.at = at.Add(e.epoch)
	e.epochIndex++
	if e.cfg.Sink != nil {
		if err := e.emit(e.event(index, rec)); err != nil {
			return rec, true, fmt.Errorf("sim: event sink: %w", err)
		}
	}
	return rec, true, nil
}

// emit hands one event to the sink, or — under StepN — appends it to
// the batch buffer for the end-of-batch flush. Buffered events have
// their class stats copied into the arena because the classEv buffer
// they point at is overwritten every epoch. Buffering never fails;
// sink errors surface from flushEvents.
func (e *Engine) emit(ev obs.Event) error {
	if !e.batching {
		return e.cfg.Sink.Emit(ev)
	}
	e.bufferEvent(ev)
	return nil
}

// bufferEvent appends one event to the batch buffer. Only valid while
// batching: the fast segment calls it directly because under StepN the
// sink is never touched before the flush.
func (e *Engine) bufferEvent(ev obs.Event) {
	if n := len(ev.Classes); n > 0 {
		start := len(e.classArena)
		//greensprint:allow(allocfree) arena growth is amortized: the backing array is reused across batches and grows to classes x batch once
		e.classArena = append(e.classArena, ev.Classes...)
		ev.Classes = e.classArena[start : start+n : start+n]
	}
	//greensprint:allow(allocfree) arena growth is amortized: the event buffer is reused across batches and grows to the batch size once
	e.evBuf = append(e.evBuf, ev)
}

// flushEvents drains the batch buffer into the sink in emission order.
// The first sink error aborts the flush, mirroring Step's fail-fast
// contract; already-emitted events stay emitted either way.
func (e *Engine) flushEvents() error {
	sink := e.cfg.Sink
	for i := range e.evBuf {
		if err := sink.Emit(e.evBuf[i]); err != nil {
			e.evBuf = e.evBuf[:0]
			e.classArena = e.classArena[:0]
			return fmt.Errorf("sim: event sink: %w", err)
		}
	}
	e.evBuf = e.evBuf[:0]
	e.classArena = e.classArena[:0]
	return nil
}

// StepN advances the simulation by up to n scheduling epochs in one
// call and returns how many epochs actually ran (fewer than n only
// when the horizon is consumed first or an epoch fails). It is
// byte-identical to n individual Step calls — same records, same event
// stream, same checkpoint at every batch boundary — while hoisting
// per-epoch overheads out of the loop:
//
//   - events are buffered and flushed to the sink once per batch, in
//     emission order (chaos transitions interleaved exactly as Step
//     emits them);
//   - contiguous idle (non-burst, alive, square-burst) epochs run
//     through a fast segment that applies the Normal knob setting and
//     resolves the constant goodput/latency/grid figures once per
//     segment instead of once per epoch, keeping only the genuinely
//     state-bearing work per epoch (battery recharge, EWMA
//     observations, breaker cooling, record and event emission);
//   - segments are clipped at the burst window, the horizon, and every
//     fault or recovery epoch in the resolved chaos timeline, so the
//     skipped chaos Advance calls are provably empty and the resilience
//     goldens hold bit-for-bit.
//
// A sink failure surfaces after the batch (first failed emission,
// flush aborted there), wrapped exactly like Step's sink error; the
// epochs themselves have still run.
func (e *Engine) StepN(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	batch := e.cfg.Sink != nil
	e.batching = batch
	if batch && e.evBuf == nil {
		sz := e.TotalEpochs() - e.epochIndex
		if sz > n {
			sz = n
		}
		if sz > 0 {
			//greensprint:allow(allocfree) one-time arena presize; reused (truncated, not freed) across every later batch
			e.evBuf = make([]obs.Event, 0, sz)
		}
	}
	ran := 0
	var stepErr error
	for ran < n && e.at.Before(e.runEnd) {
		if k := e.idleSegmentLen(n - ran); k > 0 {
			e.runIdleSegment(k)
			ran += k
			continue
		}
		_, ok, err := e.step()
		if err != nil {
			// step fails before consuming the epoch (chaos apply) or,
			// when not batching, after it; under batching the sink path
			// cannot fail here, so ran stays accurate either way.
			stepErr = err
			break
		}
		if !ok {
			break
		}
		ran++
	}
	if batch {
		e.batching = false
		if err := e.flushEvents(); err != nil && stepErr == nil {
			stepErr = err
		}
	}
	return ran, stepErr
}

// idleSegmentLen returns how many epochs starting at the engine's
// current position can run through the idle fast segment, at most
// limit; 0 means the next epoch must take the general step path. A
// fast segment requires the square-burst offered model (a replayed
// offered trace varies per epoch), at least one alive server (outage
// epochs take the general path), no burst epoch, and no chaos
// transition anywhere in the segment — the segment is clipped at the
// burst start, the horizon, and the injector's next fault or recovery
// epoch, so every hoisted quantity is provably constant across it.
func (e *Engine) idleSegmentLen(limit int) int {
	if e.cfg.Offered != nil || e.alive == 0 {
		return 0
	}
	at := e.at
	var k int
	switch {
	case at.Before(e.burstStart):
		k = epochsUntil(e.burstStart.Sub(at), e.epoch)
	case !at.Before(e.burstEnd):
		k = epochsUntil(e.runEnd.Sub(at), e.epoch)
	default:
		return 0
	}
	if k > limit {
		k = limit
	}
	if e.injector != nil {
		if next := e.injector.NextTransition(); next >= 0 {
			if d := next - e.epochIndex; d < k {
				k = d
			}
		}
	}
	if k < 0 {
		k = 0
	}
	return k
}

// epochsUntil counts the epoch starts that land strictly before the
// boundary d away: ceil(d/epoch) — the last counted epoch may extend
// past the boundary, matching TotalEpochs' rounding.
func epochsUntil(d, epoch time.Duration) int {
	if d <= 0 {
		return 0
	}
	n := int(d / epoch)
	if time.Duration(n)*epoch < d {
		n++
	}
	return n
}

// runIdleSegment executes k contiguous idle epochs with the
// segment-invariant work hoisted out of the loop. Every floating-point
// value it produces is computed by the exact expressions runIdleEpoch
// and step use — hoisting only ever reuses a value that per-epoch code
// would have recomputed identically (knob re-application is a counted
// no-op, kernel lookups are pure, chaos transitions are clipped out by
// idleSegmentLen) — so records, events and checkpoints stay
// bit-identical to the per-epoch path.
func (e *Engine) runIdleSegment(k int) {
	selector, epoch := e.selector, e.epoch
	offered := e.offeredIdle
	// Hoisted: re-applying Normal to a fleet already at Normal is a
	// no-op (knob herds count transitions, not applications), so one
	// application replaces k.
	e.applyFleet(server.Normal())
	var tmpl EpochRecord
	tmpl.Offered = offered
	tmpl.Case = pss.CaseGridFallback
	tmpl.Config = server.Normal()
	tmpl.Goodput = e.kernel.Goodput(server.Normal(), offered)
	tmpl.Latency = e.latency(server.Normal(), offered)
	tmpl.Grid = e.kernel.LoadPower(server.Normal(), offered)
	if m := e.alive; m != e.n {
		scale := float64(m) / float64(e.n)
		tmpl.Goodput *= scale
		tmpl.Grid = units.Watt(float64(tmpl.Grid) * scale)
	}
	if e.classes != nil {
		e.perAliveGoodput = e.kernel.Goodput(server.Normal(), offered)
		if len(e.classes) > 1 {
			var sum float64
			for i := range e.classes {
				if a := e.classAlive[i]; a > 0 {
					sum += float64(e.classes[i].kernel.LoadPower(server.Normal(), offered)) * float64(a)
				}
			}
			tmpl.Grid = units.Watt(sum / float64(e.n))
		}
	}
	if e.baseGoodput > 0 {
		tmpl.NormPerf = tmpl.Goodput / e.baseGoodput
	}
	solar := 1.0
	if e.injector != nil {
		solar = e.injector.SolarFactor()
	}
	sink := e.cfg.Sink
	for i := 0; i < k; i++ {
		at := e.at
		greenObserved := units.Watt(meanWindow(e.cfg.Supply, at, epoch))
		if e.injector != nil {
			greenObserved = units.Watt(float64(greenObserved) * solar)
		}
		rec := tmpl
		rec.Start = at
		rec.Supply = greenObserved
		selector.RechargeFromGreen(greenObserved, epoch)
		if selector.NeedsRecharge() {
			selector.RechargeFromGrid(GridRechargePower, epoch)
		}
		if e.breaker != nil {
			e.breaker.Step(0, epoch)
		}
		rec.SoC = selector.Bank().SoC()
		selector.ObserveSupply(greenObserved)
		e.loadPred.Observe(offered)
		if e.classes != nil {
			// Cumulative per-class energy must accumulate per epoch
			// (x+d+d is not 2d+x in floating point); the expression is
			// the same one the per-epoch path runs.
			e.accumulateClassEnergy(server.Normal(), 0, offered)
		}
		//greensprint:allow(allocfree) the per-epoch record log is the simulation's product; growth is amortized doubling
		e.records = append(e.records, rec)
		index := e.epochIndex
		e.at = at.Add(epoch)
		e.epochIndex++
		if sink != nil {
			e.bufferEvent(e.event(index, rec))
		}
	}
}

// event flattens one epoch record into the observability schema. The
// record's per-server power split and the simulation clock make the
// stream deterministic for a fixed-seed replay.
func (e *Engine) event(index int, rec EpochRecord) obs.Event {
	// AppendFormat into a reused buffer: same bytes as Format, one
	// string allocation instead of Format's intermediate buffer.
	e.timeBuf = rec.Start.UTC().AppendFormat(e.timeBuf[:0], time.RFC3339Nano)
	ev := obs.Event{
		Epoch:          index,
		Time:           string(e.timeBuf),
		EpochSeconds:   e.epoch.Seconds(),
		Strategy:       e.cfg.Strategy.Name(),
		Servers:        e.n,
		InBurst:        rec.InBurst,
		GreenSupplyW:   float64(rec.Supply),
		OfferedRate:    rec.Offered,
		Goodput:        rec.Goodput,
		LatencySec:     rec.Latency,
		Case:           rec.Case.String(),
		Config:         rec.Config.String(),
		Sprinting:      rec.Config.IsSprinting(),
		SprintFraction: rec.SprintFraction,
		GreenW:         float64(rec.Green),
		BatteryW:       float64(rec.Battery),
		GridW:          float64(rec.Grid),
		SoC:            rec.SoC,
		BatteryCycles:  e.selector.Bank().EquivalentCycles(),
		QoSViolation:   e.cfg.Workload.Deadline > 0 && rec.Latency > e.cfg.Workload.Deadline,
	}
	if e.breaker != nil {
		ev.BreakerStress = e.breaker.Stress()
	}
	if e.classes != nil {
		// The buffer is reused across epochs; sinks consume the event
		// synchronously during Emit. Class goodput is the class's
		// aggregate (alive servers × per-alive-server goodput — the
		// queueing model is uniform across classes; power is not).
		e.classEv = e.classEv[:0]
		for i := range e.classes {
			//greensprint:allow(allocfree) appends into the reused per-epoch class buffer; grows to the class count once, then stays flat
			e.classEv = append(e.classEv, obs.ClassStat{
				Name:     e.classes[i].name,
				Alive:    e.classAlive[i],
				Goodput:  float64(e.classAlive[i]) * e.perAliveGoodput,
				EnergyWh: e.classEnergyWh[i],
			})
		}
		ev.Classes = e.classEv
	}
	return ev
}

// applyChaos advances the injector to the epoch boundary, applies each
// due transition to the affected component, and emits one obs.Event
// per transition ahead of the epoch record. Aggregate state (alive
// servers, stuck switch, solar factor) comes from the injector's
// ref-counts, so overlapping faults on one component compose instead
// of corrupting each other.
func (e *Engine) applyChaos(index int, at time.Time) error {
	actions := e.injector.Advance(index)
	for _, a := range actions {
		f := a.Fault
		switch f.Mode {
		case chaos.ServerCrash:
			if !a.Recovered {
				// The crashed server drops its sprint; when it
				// restarts it boots into Normal mode, which its knob
				// already records from here on. In fleet mode the
				// Apply detaches the server from its class herd, which
				// is what lets ApplyAlive keep skipping it wholesale.
				if e.cfleet != nil {
					e.cfleet.Apply(f.Target, server.Normal())
				} else {
					e.fleet.Apply(f.Target, server.Normal())
				}
			}
		case chaos.BatteryDegrade:
			if err := e.selector.Bank().DegradeUnit(f.Target, f.Factor, f.Resist); err != nil {
				return fmt.Errorf("sim: chaos: %w", err)
			}
		case chaos.BreakerTrip:
			// Without a breaker model (AllowBreakerOverdraw off) the
			// trip is recorded in the stream but has no electrical
			// effect: the rack never overdraws through it anyway.
			if e.breaker != nil {
				if a.Recovered {
					e.breaker.Reset() // technician reclose
				} else {
					e.breaker.ForceTrip()
				}
			}
		}
		// PSSStuck and SolarDropout act purely through the injector's
		// ref-counts read below; ZoneOutage is a marker whose cascade
		// constituents carry the component effects.
		if e.cfg.Sink != nil {
			if err := e.emit(e.chaosEvent(index, at, a)); err != nil {
				return fmt.Errorf("sim: event sink: %w", err)
			}
		}
	}
	e.alive = e.injector.AliveServers()
	e.selector.SetStuck(e.injector.Stuck())
	if e.topo != nil && len(actions) > 0 {
		e.recomputeClassAlive()
	}
	return nil
}

// recomputeClassAlive rebuilds the per-class alive census from the
// injector's ref-counts. It runs only on transition epochs (and after
// a checkpoint restore), so the O(servers) scan never rides the
// steady-state hot path.
func (e *Engine) recomputeClassAlive() {
	for i := range e.classAlive {
		e.classAlive[i] = e.classes[i].count
	}
	for s := 0; s < e.n; s++ {
		if e.injector.ServerDown(s) {
			e.classAlive[e.topo.ClassOf(s)]--
		}
	}
}

// chaosEvent renders one fault/recovery transition for the event
// stream, stamped with the epoch it strikes in.
func (e *Engine) chaosEvent(index int, at time.Time, a chaos.Action) obs.Event {
	e.timeBuf = at.UTC().AppendFormat(e.timeBuf[:0], time.RFC3339Nano)
	kind := "fault"
	if a.Recovered {
		kind = "recover"
	}
	return obs.Event{
		Epoch:        index,
		Time:         string(e.timeBuf),
		EpochSeconds: e.epoch.Seconds(),
		Strategy:     e.cfg.Strategy.Name(),
		Servers:      e.n,
		Chaos:        kind,
		ChaosMode:    a.Fault.Mode.String(),
		ChaosTarget:  a.Fault.Target,
		ChaosDetail:  a.Fault.String(),
	}
}

// applyFleet applies a config to the running servers: all of them on a
// fault-free engine, only the alive ones under chaos (a powered-off
// server has nothing to actuate, and phantom transitions would corrupt
// the actuation accounting).
func (e *Engine) applyFleet(c server.Config) {
	if e.cfleet != nil {
		if e.injector != nil {
			e.cfleet.ApplyAlive(c, e.injector.ServerDown)
			return
		}
		e.cfleet.ApplyAll(c)
		return
	}
	if e.injector != nil {
		e.fleet.ApplyAlive(c, e.injector.ServerDown)
		return
	}
	e.fleet.ApplyAll(c)
}

// Done reports whether the configured horizon has been consumed.
func (e *Engine) Done() bool { return !e.at.Before(e.runEnd) }

// Result aggregates the epochs run so far. It may be called at any
// point; after the final Step it is the same Result Run returns.
func (e *Engine) Result() *Result {
	res := &Result{Fleet: e.fleet, ClassFleet: e.cfleet}
	if e.classEnergyWh != nil {
		res.ClassEnergyWh = append([]float64(nil), e.classEnergyWh...)
	}
	res.Records = append(res.Records, e.records...)
	if e.burstEpochs > 0 {
		res.MeanNormPerf = e.burstPerfSum / float64(e.burstEpochs)
	}
	res.Account = e.selector.Account()
	res.BatteryCycles = e.selector.Bank().EquivalentCycles()
	return res
}

// Epoch returns the resolved scheduling-epoch length.
func (e *Engine) Epoch() time.Duration { return e.epoch }

// EpochIndex returns how many epochs have been stepped so far.
func (e *Engine) EpochIndex() int { return e.epochIndex }

// TotalEpochs returns the number of epochs the configured horizon
// spans (the run covers [Supply.Start, burst end + tail)).
func (e *Engine) TotalEpochs() int {
	d := e.runEnd.Sub(e.cfg.Supply.Start)
	if d <= 0 {
		return 0
	}
	n := int(d / e.epoch)
	if time.Duration(n)*e.epoch < d {
		n++
	}
	return n
}

// Breaker exposes the PDU breaker model, or nil when the run does not
// allow overdraw. Tests assert on its stress accounting.
func (e *Engine) Breaker() *cluster.Breaker { return e.breaker }

// Topology exposes the generated fleet topology, or nil for the
// paper's flat single-rack configs.
func (e *Engine) Topology() *fleet.Topology { return e.topo }

// Run executes the simulation to completion. It is a thin wrapper over
// New/Step/Result whose output is identical to driving the Engine by
// hand; ctx is checked between epochs, so cancellation stops the run
// at an epoch boundary and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		_, ok, err := e.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			return e.Result(), nil
		}
	}
}
