package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// asV1Blob rewrites an encoded v2 checkpoint into the exact v1 wire
// format: version stamped 1 and no strategy_name field (the only
// difference between the formats).
func asV1Blob(t *testing.T, b []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage(`1`)
	delete(m, "strategy_name")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCheckpointV1Migration runs an engine halfway, re-encodes its
// checkpoint as a version-1 blob, and verifies the compatibility shim:
// decode migrates the blob to the current version with an empty
// strategy fingerprint, the restored engine continues, and the
// completed run matches the uninterrupted reference bit for bit.
func TestCheckpointV1Migration(t *testing.T) {
	ref := mustRunAll(t, mustNew(t, ckptConfig(t)))

	e := mustNew(t, ckptConfig(t))
	stopAt := e.TotalEpochs() / 2
	for i := 0; i < stopAt; i++ {
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	v1 := asV1Blob(t, b)
	got, err := DecodeCheckpoint(v1)
	if err != nil {
		t.Fatalf("decode v1 checkpoint: %v", err)
	}
	if got.Version != CheckpointVersion {
		t.Errorf("migrated version = %d, want %d", got.Version, CheckpointVersion)
	}
	if got.StrategyName != "" {
		t.Errorf("migrated strategy name = %q, want empty (v1 predates the field)", got.StrategyName)
	}

	fresh := mustNew(t, ckptConfig(t))
	if err := fresh.Restore(got); err != nil {
		t.Fatalf("restore migrated v1 checkpoint: %v", err)
	}
	if fresh.EpochIndex() != stopAt {
		t.Fatalf("restored epoch index = %d, want %d", fresh.EpochIndex(), stopAt)
	}
	assertSameResult(t, ref, mustRunAll(t, fresh))
}

// asV2Blob rewrites an encoded checkpoint into the exact v2 wire
// format: version stamped 2 and no chaos field. (The other v3
// additions — per-unit battery degradation — are omitempty fields
// that a fault-free run never emits, so nothing else differs.)
func asV2Blob(t *testing.T, b []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage(`2`)
	delete(m, "chaos")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCheckpointV2Migration is the canned-blob test for the v2→v3
// bump: a pre-chaos checkpoint decodes through the migration shim to
// the current version with no injector state, restores into a
// fault-free engine, and the completed run matches the uninterrupted
// reference bit for bit.
func TestCheckpointV2Migration(t *testing.T) {
	ref := mustRunAll(t, mustNew(t, ckptConfig(t)))

	e := mustNew(t, ckptConfig(t))
	stopAt := e.TotalEpochs() / 2
	for i := 0; i < stopAt; i++ {
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	v2 := asV2Blob(t, b)
	got, err := DecodeCheckpoint(v2)
	if err != nil {
		t.Fatalf("decode v2 checkpoint: %v", err)
	}
	if got.Version != CheckpointVersion {
		t.Errorf("migrated version = %d, want %d", got.Version, CheckpointVersion)
	}
	if got.Chaos != nil {
		t.Errorf("migrated v2 checkpoint carries injector state: %+v", got.Chaos)
	}
	if got.StrategyName != cp.StrategyName {
		t.Errorf("migrated strategy name = %q, want %q (v2 already had the field)",
			got.StrategyName, cp.StrategyName)
	}

	fresh := mustNew(t, ckptConfig(t))
	if err := fresh.Restore(got); err != nil {
		t.Fatalf("restore migrated v2 checkpoint: %v", err)
	}
	assertSameResult(t, ref, mustRunAll(t, fresh))
}

// asV3Blob rewrites an encoded checkpoint into the exact v3 wire
// format: version stamped 3 and no fleet fields. (The v4 additions —
// fleet fingerprint, class-fleet snapshot, per-class energy — are
// omitempty fields a flat run never emits, so nothing else differs.)
func asV3Blob(t *testing.T, b []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage(`3`)
	delete(m, "fleet_fingerprint")
	delete(m, "class_fleet")
	delete(m, "class_energy_wh")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCheckpointV3Migration is the canned-blob test for the v3→v4
// bump: a pre-fleet checkpoint decodes through the migration shim to
// the current version with no fleet state, restores into a flat
// engine, and the completed run matches the uninterrupted reference
// bit for bit.
func TestCheckpointV3Migration(t *testing.T) {
	ref := mustRunAll(t, mustNew(t, ckptConfig(t)))

	e := mustNew(t, ckptConfig(t))
	stopAt := e.TotalEpochs() / 2
	for i := 0; i < stopAt; i++ {
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	v3 := asV3Blob(t, b)
	got, err := DecodeCheckpoint(v3)
	if err != nil {
		t.Fatalf("decode v3 checkpoint: %v", err)
	}
	if got.Version != CheckpointVersion {
		t.Errorf("migrated version = %d, want %d", got.Version, CheckpointVersion)
	}
	if got.ClassFleet != nil || got.FleetFingerprint != "" || got.ClassEnergyWh != nil {
		t.Errorf("migrated v3 checkpoint carries fleet state: %q %v %v",
			got.FleetFingerprint, got.ClassFleet, got.ClassEnergyWh)
	}

	fresh := mustNew(t, ckptConfig(t))
	if err := fresh.Restore(got); err != nil {
		t.Fatalf("restore migrated v3 checkpoint: %v", err)
	}
	assertSameResult(t, ref, mustRunAll(t, fresh))
}

// asOldestBlob rewrites an encoded checkpoint into the exact wire
// format a version-1 binary would have written: version stamped 1 and
// every later addition stripped — the strategy fingerprint (v2), the
// injector state (v3) and the fleet fields (v4). The pairwise helpers
// above each remove one version's fields; this removes them all.
func asOldestBlob(t *testing.T, b []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage(`1`)
	for _, field := range []string{
		"strategy_name",     // v2
		"chaos",             // v3
		"fleet_fingerprint", // v4
		"class_fleet",       // v4
		"class_energy_wh",   // v4
	} {
		delete(m, field)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCheckpointMigrationChain walks one canned v1 blob through the
// whole shim chain — migrateV1, migrateV2 and migrateV3 composing in a
// single decode — where the tests above each prove one hop in
// isolation. The end-to-end contract: the migrated checkpoint restores
// into a fresh engine whose own re-cut checkpoint encodes byte-for-byte
// identical to the uninterrupted reference's at the same epoch (the
// chain recovered the full state, not merely enough to limp forward),
// and the stitched run finishes bit-identical to the straight one.
func TestCheckpointMigrationChain(t *testing.T) {
	ref := mustNew(t, ckptConfig(t))
	e := mustNew(t, ckptConfig(t))
	stopAt := e.TotalEpochs() / 2
	for i := 0; i < stopAt; i++ {
		if _, _, err := ref.Step(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	got, err := DecodeCheckpoint(asOldestBlob(t, b))
	if err != nil {
		t.Fatalf("decode v1 checkpoint through the full chain: %v", err)
	}
	if got.Version != CheckpointVersion {
		t.Errorf("migrated version = %d, want %d", got.Version, CheckpointVersion)
	}
	if got.StrategyName != "" {
		t.Errorf("migrated strategy name = %q, want empty (v1 predates the field)", got.StrategyName)
	}
	if got.Chaos != nil {
		t.Errorf("migrated v1 checkpoint carries injector state: %+v", got.Chaos)
	}
	if got.ClassFleet != nil || got.FleetFingerprint != "" || got.ClassEnergyWh != nil {
		t.Errorf("migrated v1 checkpoint carries fleet state: %q %v %v",
			got.FleetFingerprint, got.ClassFleet, got.ClassEnergyWh)
	}

	fresh := mustNew(t, ckptConfig(t))
	if err := fresh.Restore(got); err != nil {
		t.Fatalf("restore migrated v1 checkpoint: %v", err)
	}
	if fresh.EpochIndex() != stopAt {
		t.Fatalf("restored epoch index = %d, want %d", fresh.EpochIndex(), stopAt)
	}

	// Re-cut checkpoints from the restored engine and the reference at
	// the same epoch: both stamp the current version and the engine's
	// own strategy fingerprint, so the encodings must match exactly.
	refCp, err := ref.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	freshCp, err := fresh.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	refB, err := refCp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	freshB, err := freshCp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refB, freshB) {
		t.Errorf("re-cut checkpoint differs from the reference's:\nreference %s\nrestored  %s", refB, freshB)
	}

	assertSameResult(t, mustRunAll(t, ref), mustRunAll(t, fresh))
}

// TestCheckpointStrategyMismatch verifies the v2 fingerprint: a
// checkpoint cut under one strategy must not restore into an engine
// running another.
func TestCheckpointStrategyMismatch(t *testing.T) {
	e := mustNew(t, ckptConfig(t))
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.StrategyName = "some-other-strategy"
	if err := e.Restore(cp); err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Errorf("restore with mismatched strategy = %v, want strategy error", err)
	}
}

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
