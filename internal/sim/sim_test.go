package sim

import (
	"context"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/profile"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/thermal"
	"greensprint/internal/trace"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

var (
	testProfile = workload.SPECjbb()
	testTable   *profile.Table
)

func init() {
	var err error
	testTable, err = profile.Build(testProfile, profile.DefaultLevels)
	if err != nil {
		panic(err)
	}
}

// runCase simulates one (availability, duration, strategy, green
// config) cell the way the experiment harness does.
func runCase(t *testing.T, level solar.Availability, d time.Duration, strat strategy.Strategy, green cluster.GreenConfig) *Result {
	t.Helper()
	supply := solar.Synthesize(level, d, time.Minute, float64(green.PeakGreen()), 42)
	res, err := Run(context.Background(), Config{
		Workload: testProfile,
		Green:    green,
		Strategy: strat,
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func hybrid(t *testing.T) strategy.Strategy {
	t.Helper()
	h, err := strategy.NewHybrid(testProfile, testTable)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestValidate(t *testing.T) {
	good := Config{
		Workload: testProfile,
		Green:    cluster.REBatt(),
		Strategy: strategy.Greedy{},
		Burst:    workload.Burst{Intensity: 12, Duration: 10 * time.Minute},
		Supply:   solar.Synthesize(solar.Max, 10*time.Minute, time.Minute, 635.25, 1),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config invalid: %v", err)
	}
	bad := good
	bad.Strategy = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil strategy should fail")
	}
	bad = good
	bad.Supply = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil supply should fail")
	}
	bad = good
	bad.Burst.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero burst should fail")
	}
	bad = good
	bad.Workload = workload.Profile{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid workload should fail")
	}
	bad = good
	bad.Epoch = -time.Minute
	if err := bad.Validate(); err == nil {
		t.Error("negative epoch should fail")
	}
	// Run rejects a no-green-server config.
	noGreen := good
	noGreen.Green = cluster.GreenConfig{Name: "none"}
	if _, err := Run(context.Background(), noGreen); err == nil {
		t.Error("no green servers should fail at Run")
	}
}

func TestMaxAvailabilityFullSprint(t *testing.T) {
	// Figure 6: with maximum renewable availability, performance is
	// always the best, ~4.8x over Normal, for any duration.
	for _, d := range []time.Duration{10 * time.Minute, 60 * time.Minute} {
		res := runCase(t, solar.Max, d, hybrid(t), cluster.REBatt())
		if res.MeanNormPerf < 4.5 {
			t.Errorf("Max availability %v: perf = %.2f, want ~4.8", d, res.MeanNormPerf)
		}
		// Sprinting should be powered by green energy, not grid.
		for _, rec := range res.BurstRecords() {
			if rec.Case == pss.CaseGridFallback {
				t.Errorf("grid fallback at max availability: %+v", rec)
			}
		}
	}
}

func TestMinAvailabilityShortBurstBatteryCarries(t *testing.T) {
	// §IV-A: "For short bursts (10-minute), even when the renewable
	// energy is unavailable, battery alone is able to completely
	// handle the sprinting operation with maximal performance."
	res := runCase(t, solar.Min, 10*time.Minute, hybrid(t), cluster.REBatt())
	if res.MeanNormPerf < 4.3 {
		t.Errorf("Min/10min RE-Batt perf = %.2f, want near max", res.MeanNormPerf)
	}
	for _, rec := range res.BurstRecords() {
		if rec.Case != pss.CaseBatteryOnly {
			t.Errorf("expected battery-only epochs, got %v", rec.Case)
		}
	}
}

func TestMinAvailabilityLongBurstDegrades(t *testing.T) {
	// §IV-A: for 60-minute bursts at minimum availability the gain
	// collapses (1.8x for Parallel); battery-based sprinting is
	// unsatisfactory.
	res := runCase(t, solar.Min, 60*time.Minute, strategy.Parallel{}, cluster.REBatt())
	if res.MeanNormPerf < 1.2 || res.MeanNormPerf > 2.6 {
		t.Errorf("Min/60min Parallel perf = %.2f, want ~1.8", res.MeanNormPerf)
	}
	// Most of the tail epochs are grid fallback.
	recs := res.BurstRecords()
	fallbacks := 0
	for _, rec := range recs {
		if rec.Case == pss.CaseGridFallback {
			fallbacks++
		}
	}
	if fallbacks < len(recs)/2 {
		t.Errorf("fallback epochs = %d of %d", fallbacks, len(recs))
	}
}

func TestMediumAvailabilityBatterySupplements(t *testing.T) {
	// §IV-A: at medium availability batteries supplement green power
	// and 60-minute sprints still gain ~3.4x.
	res := runCase(t, solar.Med, 60*time.Minute, hybrid(t), cluster.REBatt())
	if res.MeanNormPerf < 2.8 || res.MeanNormPerf > 4.4 {
		t.Errorf("Med/60min Hybrid perf = %.2f, want ~3.4", res.MeanNormPerf)
	}
	// Both green and battery should contribute during the burst.
	var green, batt float64
	for _, rec := range res.BurstRecords() {
		green += float64(rec.Green)
		batt += float64(rec.Battery)
	}
	if green <= 0 || batt <= 0 {
		t.Errorf("expected mixed supply, green=%v battery=%v", green, batt)
	}
}

func TestREOnlyMinIsNormal(t *testing.T) {
	// §IV-B: "In the REOnly configuration, the performance results
	// with minimum renewable energy availability are the same as the
	// Normal mode because there is no power supply for sprinting."
	res := runCase(t, solar.Min, 30*time.Minute, hybrid(t), cluster.REOnly())
	if res.MeanNormPerf < 0.95 || res.MeanNormPerf > 1.05 {
		t.Errorf("REOnly/Min perf = %.2f, want 1.0", res.MeanNormPerf)
	}
	for _, rec := range res.BurstRecords() {
		if rec.Config != server.Normal() {
			t.Errorf("REOnly/Min ran %v", rec.Config)
		}
	}
}

func TestLargerBatteryBeatsSmaller(t *testing.T) {
	// §IV-B: RE-Batt (10 Ah) outperforms RE-SBatt (3.2 Ah) at
	// minimum availability.
	big := runCase(t, solar.Min, 15*time.Minute, hybrid(t), cluster.REBatt())
	small := runCase(t, solar.Min, 15*time.Minute, hybrid(t), cluster.RESBatt())
	if big.MeanNormPerf <= small.MeanNormPerf {
		t.Errorf("RE-Batt %.2f should beat RE-SBatt %.2f", big.MeanNormPerf, small.MeanNormPerf)
	}
}

func TestGreedyLosesLowSupplyPeriods(t *testing.T) {
	// §IV-A: Greedy "loses the opportunity to utilize the lower
	// green power supply periods" — under medium availability with
	// a drained battery it cannot sprint at partial intensity.
	greedy := runCase(t, solar.Med, 60*time.Minute, strategy.Greedy{}, cluster.REOnly())
	pacing := runCase(t, solar.Med, 60*time.Minute, strategy.Pacing{}, cluster.REOnly())
	if greedy.MeanNormPerf >= pacing.MeanNormPerf {
		t.Errorf("Greedy %.2f should trail Pacing %.2f at medium availability",
			greedy.MeanNormPerf, pacing.MeanNormPerf)
	}
}

func TestHybridNeverWorst(t *testing.T) {
	// Hybrid "always performs the best" across the grid; allow tiny
	// numerical slack.
	for _, level := range solar.Levels() {
		for _, d := range []time.Duration{10 * time.Minute, 30 * time.Minute} {
			h := runCase(t, level, d, hybrid(t), cluster.RESBatt())
			for _, s := range []strategy.Strategy{strategy.Greedy{}, strategy.Parallel{}, strategy.Pacing{}} {
				o := runCase(t, level, d, s, cluster.RESBatt())
				if o.MeanNormPerf > h.MeanNormPerf*1.02 {
					t.Errorf("%v/%v: %s %.2f beats Hybrid %.2f",
						level, d, s.Name(), o.MeanNormPerf, h.MeanNormPerf)
				}
			}
		}
	}
}

func TestLeadTailRecharge(t *testing.T) {
	// A lead period with green supply should leave the batteries
	// charged; a tail period after a battery-only burst should
	// recharge them (grid recharge after the DoD trigger).
	// 20 minutes at the maximal sprint drains the 10 Ah units past
	// the 40% DoD trigger (they sustain ~11 minutes).
	d := 20 * time.Minute
	lead, tail := 10*time.Minute, 30*time.Minute
	supply := trace.New("mixed", time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC), time.Minute,
		make([]float64, int((lead+d+tail)/time.Minute)))
	// Lead: green available; burst+tail: none.
	for i := 0; i < int(lead/time.Minute); i++ {
		supply.Samples[i] = 500
	}
	res, err := Run(context.Background(), Config{
		Workload: testProfile,
		Green:    cluster.REBatt(),
		Strategy: strategy.Greedy{},
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != int((lead+d+tail)/DefaultEpoch) {
		t.Fatalf("records = %d", len(res.Records))
	}
	// Burst drains the battery...
	burst := res.BurstRecords()
	if burst[len(burst)-1].SoC >= 0.99 {
		t.Errorf("battery did not discharge: SoC %v", burst[len(burst)-1].SoC)
	}
	// ...and the tail recharges it.
	last := res.Records[len(res.Records)-1]
	if last.SoC <= burst[len(burst)-1].SoC {
		t.Errorf("battery did not recharge: %v -> %v", burst[len(burst)-1].SoC, last.SoC)
	}
	if res.Account.GridCharged <= 0 {
		t.Error("grid recharge should be accounted after a deep discharge")
	}
	// Grid top-up is budgeted at GridRechargePower per idle epoch
	// (§III-A Case 3), so the tail can bank at most that power
	// sustained over its whole duration.
	if max := units.WattHour(float64(GridRechargePower) * tail.Hours()); res.Account.GridCharged > max {
		t.Errorf("grid recharge %v exceeds the %v budget over %v",
			res.Account.GridCharged, GridRechargePower, tail)
	}
	// Idle epochs serve the background load at Normal mode.
	if res.Records[0].InBurst || res.Records[0].Config != server.Normal() {
		t.Errorf("lead epoch = %+v", res.Records[0])
	}
}

func TestEnergyAccounting(t *testing.T) {
	res := runCase(t, solar.Med, 30*time.Minute, hybrid(t), cluster.REBatt())
	acct := res.Account
	if acct.Green <= 0 {
		t.Error("green energy should be used at medium availability")
	}
	if acct.Total() <= 0 {
		t.Error("no energy delivered")
	}
	if res.BatteryCycles < 0 {
		t.Error("negative battery cycles")
	}
	// Green fraction is meaningful.
	if f := acct.GreenFraction(); f <= 0 || f > 1 {
		t.Errorf("green fraction = %v", f)
	}
}

func TestDeterminism(t *testing.T) {
	a := runCase(t, solar.Med, 30*time.Minute, strategy.Pacing{}, cluster.REBatt())
	b := runCase(t, solar.Med, 30*time.Minute, strategy.Pacing{}, cluster.REBatt())
	if a.MeanNormPerf != b.MeanNormPerf {
		t.Errorf("non-deterministic: %v vs %v", a.MeanNormPerf, b.MeanNormPerf)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Errorf("record %d differs", i)
		}
	}
}

func TestPeakDemand(t *testing.T) {
	if got := PeakDemand(testProfile, 3); got != 465 {
		t.Errorf("peak demand = %v, want 465", got)
	}
}

// TestThermalNonBinding verifies the assumption the simulator rests on
// (§II): with the PCM package, the thermal sprint budget at every
// workload's maximal power exceeds the longest evaluated burst
// (60 minutes), so power — not heat — is the binding constraint.
func TestThermalNonBinding(t *testing.T) {
	pkg := thermal.DefaultPackage()
	for _, p := range workload.All() {
		budget, err := pkg.SprintBudget(p.PeakPower, server.NormalPower)
		if err != nil {
			t.Fatal(err)
		}
		if budget < 60*time.Minute {
			t.Errorf("%s: thermal budget %v shorter than the longest burst", p.Name, budget)
		}
	}
}

// TestEnergyConservation checks the power-accounting invariants of a
// run: green energy delivered to servers plus green energy banked
// never exceeds the supply integral, and all accounted energies are
// non-negative.
func TestEnergyConservation(t *testing.T) {
	for _, level := range solar.Levels() {
		for _, green := range []cluster.GreenConfig{cluster.REBatt(), cluster.RESBatt(), cluster.REOnly()} {
			supply := solar.Synthesize(level, 30*time.Minute, time.Minute, float64(green.PeakGreen()), 42)
			res, err := Run(context.Background(), Config{
				Workload: testProfile,
				Green:    green,
				Strategy: strategy.Greedy{},
				Table:    testTable,
				Burst:    workload.Burst{Intensity: 12, Duration: 30 * time.Minute},
				Supply:   supply,
			})
			if err != nil {
				t.Fatal(err)
			}
			acct := res.Account
			if acct.Green < 0 || acct.Battery < 0 || acct.Grid < 0 || acct.GreenCharged < 0 {
				t.Fatalf("%v/%s: negative energy in %+v", level, green.Name, acct)
			}
			supplied := supply.Integral() // watt-hours
			used := float64(acct.Green + acct.GreenCharged)
			if used > supplied*1.01+1e-9 {
				t.Errorf("%v/%s: green used %v exceeds supplied %v", level, green.Name, used, supplied)
			}
			// Battery energy delivered cannot exceed the bank's
			// total usable energy plus everything charged into it.
			bank, err := green.NewBank()
			if err != nil {
				t.Fatal(err)
			}
			maxBattery := float64(bank.UsableEnergy()) + float64(acct.GreenCharged+acct.GridCharged)
			if float64(acct.Battery) > maxBattery+1e-6 {
				t.Errorf("%v/%s: battery delivered %v exceeds available %v",
					level, green.Name, acct.Battery, maxBattery)
			}
		}
	}
}

// TestOfferedTraceReplay replays a time-varying offered-rate trace:
// the strategy sees only the EWMA prediction, and the recorded offered
// rates follow the trace.
func TestOfferedTraceReplay(t *testing.T) {
	d := 30 * time.Minute
	supply := solar.Synthesize(solar.Max, d, time.Minute, 635.25, 42)
	// Offered rate ramps from 40% to 100% of the Int=12 rate.
	peak := testProfile.IntensityRate(12)
	n := int(d / time.Minute)
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = peak * (0.4 + 0.6*float64(i)/float64(n-1))
	}
	offered := trace.New("offered", supply.Start, time.Minute, samples)
	res, err := Run(context.Background(), Config{
		Workload: testProfile,
		Green:    cluster.REBatt(),
		Strategy: strategy.Pacing{},
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Offered:  offered,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Records
	if len(recs) != 6 {
		t.Fatalf("records = %d", len(recs))
	}
	// Offered follows the ramp.
	if recs[0].Offered >= recs[len(recs)-1].Offered {
		t.Errorf("offered did not ramp: %v -> %v", recs[0].Offered, recs[len(recs)-1].Offered)
	}
	// Goodput tracks the offered rate while supply is abundant (the
	// early epochs are underloaded, so goodput == offered).
	if recs[0].Goodput < recs[0].Offered*0.98 {
		t.Errorf("early epoch sheds load: %v of %v", recs[0].Goodput, recs[0].Offered)
	}
	// At Max availability the late (saturating) epochs reach the
	// full sprint gain.
	last := recs[len(recs)-1]
	if last.NormPerf < 4.0 {
		t.Errorf("final epoch perf = %v", last.NormPerf)
	}
}

// TestBreakerOverdrawLastResort exercises §III-A's last resort: with
// no batteries (REOnly) and a green supply that dips below the sprint
// demand, bounded circuit-breaker overdraw keeps the sprint alive
// where the plain configuration falls back to Normal.
func TestBreakerOverdrawLastResort(t *testing.T) {
	d := 30 * time.Minute
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	// Green holds at 440 W, then dips to 330 W: the EWMA prediction
	// lags the dip, so the chosen setting overshoots the supply.
	samples := make([]float64, int(d/time.Minute))
	for i := range samples {
		if i < 10 {
			samples[i] = 440
		} else {
			samples[i] = 330
		}
	}
	supply := trace.New("dipping", start, time.Minute, samples)
	run := func(overdraw bool) *Result {
		res, err := Run(context.Background(), Config{
			Workload:             testProfile,
			Green:                cluster.REOnly(),
			Strategy:             strategy.Pacing{},
			Table:                testTable,
			Burst:                workload.Burst{Intensity: 12, Duration: d},
			Supply:               supply,
			AllowBreakerOverdraw: overdraw,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	boosted := run(true)
	if boosted.MeanNormPerf < plain.MeanNormPerf {
		t.Errorf("overdraw %.2f should not trail plain %.2f",
			boosted.MeanNormPerf, plain.MeanNormPerf)
	}
	sawOverdraw := false
	for _, rec := range boosted.BurstRecords() {
		if rec.Case == pss.CaseBreakerOverdraw {
			sawOverdraw = true
			if rec.Grid <= 0 {
				t.Errorf("overdraw epoch without grid power: %+v", rec)
			}
			if !rec.Config.IsSprinting() {
				t.Errorf("overdraw epoch not sprinting: %+v", rec)
			}
		}
	}
	if !sawOverdraw {
		t.Error("expected at least one breaker-overdraw epoch")
	}
	// The plain run pays for the dip with fallback epochs.
	sawFallback := false
	for _, rec := range plain.BurstRecords() {
		if rec.Case == pss.CaseGridFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("expected fallback epochs without overdraw")
	}
}

// TestWeekEnduranceRun replays a full generated week (2016 epochs)
// with the diurnal load: the engine must stay numerically sane (no
// NaNs, SoC within bounds) and the batteries must cycle rather than
// drift.
func TestWeekEnduranceRun(t *testing.T) {
	if testing.Short() {
		t.Skip("endurance run")
	}
	scfg := solar.DefaultGeneratorConfig() // 7 days
	scfg.Seed = 42
	sun, err := solar.Generate(scfg)
	if err != nil {
		t.Fatal(err)
	}
	day := workload.DiurnalPattern(scfg.Start, time.Minute)
	offered := day.Repeat(7).Scale(testProfile.MaxGoodput(server.Normal()))
	h, err := strategy.NewHybrid(testProfile, testTable)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Workload: testProfile,
		Green:    cluster.REBatt(),
		Strategy: h,
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: 7 * 24 * time.Hour},
		Supply:   sun,
		Offered:  offered,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Records); got != 7*24*12 {
		t.Fatalf("records = %d", got)
	}
	floor := 1 - 0.40
	sprints := 0
	for i, rec := range res.Records {
		if rec.SoC < floor-1e-9 || rec.SoC > 1+1e-9 {
			t.Fatalf("epoch %d: SoC %v out of bounds", i, rec.SoC)
		}
		if rec.NormPerf < 0 || rec.NormPerf != rec.NormPerf { // NaN check
			t.Fatalf("epoch %d: perf %v", i, rec.NormPerf)
		}
		if rec.Config.IsSprinting() {
			sprints++
		}
	}
	if sprints == 0 {
		t.Error("a week with daily spikes should sprint at least once")
	}
	// Batteries cycle over the week (sprint + recharge), they don't
	// just drain once.
	if res.BatteryCycles < 1 {
		t.Errorf("weekly battery cycles = %v", res.BatteryCycles)
	}
	if last := res.Records[len(res.Records)-1]; last.SoC < floor {
		t.Errorf("end-of-week SoC = %v", last.SoC)
	}
}
