// Package sim is the discrete-time simulation engine that reproduces
// the paper's prototype experiments: a green-provisioned rack serving
// an interactive workload burst while the GreenSprint controller
// (Predictor + PSS + strategy + PMK) manages power sources and
// sprinting intensity over 5-minute scheduling epochs.
//
// The engine focuses, as the paper's analysis does, on the
// green-provisioned servers: during a burst the grid budget is fully
// committed to the grid-fed servers, so the green servers run entirely
// from renewable + battery power and fall back to grid-powered Normal
// mode only when both are exhausted.
package sim

import (
	"fmt"
	"time"

	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/fleet"
	"greensprint/internal/obs"
	"greensprint/internal/pmk"
	"greensprint/internal/profile"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/strategy"
	"greensprint/internal/trace"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// DefaultEpoch is the paper's scheduling-epoch length.
const DefaultEpoch = 5 * time.Minute

// Config describes one simulation run.
type Config struct {
	// Workload is the interactive application under test.
	Workload workload.Profile
	// Green is the Table I green-provisioning option.
	Green cluster.GreenConfig
	// Fleet optionally replaces Green's flat server count with a
	// generated heterogeneous topology (see internal/fleet): weighted
	// server-class templates stamped into racks, each class with its
	// own power envelope, battery pack and zone. When set, the engine
	// runs its structure-of-arrays core — per-class battery banks,
	// class-indexed knob herds, O(classes) power aggregation — and
	// Green is ignored except as workload context. A single-class
	// default fleet reproduces the flat run's Result bit-for-bit.
	Fleet *fleet.Spec
	// Strategy decides the per-server setting each epoch.
	Strategy strategy.Strategy
	// Table is the workload's profiling table (built if nil).
	Table *profile.Table
	// Burst is the workload burst to serve.
	Burst workload.Burst
	// Supply is the green AC power trace covering the run; the
	// simulation starts at Supply.Start.
	Supply *trace.Trace
	// Offered optionally replays a time-varying offered-rate trace
	// (req/s per server) instead of the square Burst profile. When
	// set, the strategy sees the EWMA-predicted rate (the paper's
	// workload Predictor) rather than the true rate, and Burst only
	// delimits the sprinting window.
	Offered *trace.Trace
	// Lead and Tail are non-burst periods before/after the burst
	// during which the servers run Normal mode and the batteries
	// recharge.
	Lead, Tail time.Duration
	// Epoch is the scheduling-epoch length (DefaultEpoch if zero).
	Epoch time.Duration
	// AllowBreakerOverdraw enables the paper's last resort (§III-A
	// Case 3): when green and battery are exhausted mid-burst, the
	// green servers keep sprinting on grid power drawn *above* the
	// budget, bounded by the PDU breaker's thermal trip curve. Once
	// the breaker's stress budget is spent, the rack falls back to
	// Normal mode for the rest of the run.
	AllowBreakerOverdraw bool
	// Sink optionally receives one obs.Event per scheduling epoch as
	// Engine.Step runs. Events carry the simulation clock, so a
	// fixed-seed replay emits a bit-identical stream across runs and
	// across sharded vs. sequential execution (a restored engine
	// re-emits nothing for epochs already run).
	Sink obs.Sink
	// Chaos optionally replays a resolved fault-injection timeline
	// against the run (see internal/chaos). The schedule must match
	// the config's topology (green servers, battery units). Fault and
	// recovery transitions are emitted as their own events ahead of
	// the epoch record they strike in, and the injector's replay state
	// rides the checkpoint, so a chaos run shards and resumes
	// bit-identically like a fault-free one.
	Chaos *chaos.Schedule
}

// EpochRecord captures one scheduling epoch of one run. The json tags
// pin the historical wire names (the Go identifiers) so a field rename
// cannot silently change the golden results or the checkpoint schema.
type EpochRecord struct {
	Start    time.Time     `json:"Start"`
	InBurst  bool          `json:"InBurst"`
	Case     pss.Case      `json:"Case"`
	Config   server.Config `json:"Config"`
	Supply   units.Watt    `json:"Supply"`   // green power available (observed)
	Green    units.Watt    `json:"Green"`    // green power delivered to servers
	Battery  units.Watt    `json:"Battery"`  // battery power delivered
	Grid     units.Watt    `json:"Grid"`     // grid power delivered (fallback/Normal)
	Offered  float64       `json:"Offered"`  // per-server offered rate
	Goodput  float64       `json:"Goodput"`  // per-server QoS-compliant throughput
	NormPerf float64       `json:"NormPerf"` // goodput normalized to Normal mode
	Latency  float64       `json:"Latency"`  // effective SLA-percentile latency (s)
	SoC      float64       `json:"SoC"`      // battery mean state of charge after epoch
	// SprintFraction is the fraction of the epoch the sprint was
	// powered (0 outside bursts and under grid fallback).
	SprintFraction float64 `json:"SprintFraction"`
}

// Result is the outcome of a run.
type Result struct {
	Records []EpochRecord
	// MeanNormPerf is the time-average normalized performance over
	// the burst epochs — the y-axis of Figures 6-10.
	MeanNormPerf float64
	// Account is the cumulative energy accounting.
	Account cluster.EnergyAccount
	// BatteryCycles is the equivalent battery cycle usage.
	BatteryCycles float64
	// Fleet exposes the knob fleet (for transition counting); nil for
	// fleet-scale runs, which expose ClassFleet instead.
	Fleet *pmk.Fleet
	// ClassFleet exposes the class-indexed knob herd of a fleet-scale
	// run (nil for the paper's flat configs).
	ClassFleet *pmk.ClassFleet
	// ClassEnergyWh is the cumulative per-class server energy of a
	// fleet-scale run, indexed like the fleet spec's templates (nil
	// for flat configs).
	ClassEnergyWh []float64
}

// BurstRecords returns only the in-burst epochs.
func (r *Result) BurstRecords() []EpochRecord {
	var out []EpochRecord
	for _, rec := range r.Records {
		if rec.InBurst {
			out = append(out, rec)
		}
	}
	return out
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Fleet != nil {
		if err := c.Fleet.Validate(); err != nil {
			return err
		}
	} else if err := c.Green.Validate(); err != nil {
		return err
	}
	if c.Strategy == nil {
		return fmt.Errorf("sim: nil strategy")
	}
	if c.Supply == nil || c.Supply.Len() == 0 {
		return fmt.Errorf("sim: empty supply trace")
	}
	if c.Burst.Duration <= 0 {
		return fmt.Errorf("sim: non-positive burst duration %v", c.Burst.Duration)
	}
	if c.Epoch < 0 {
		return fmt.Errorf("sim: negative epoch %v", c.Epoch)
	}
	return nil
}

// runBurstEpoch executes one sprinting epoch. All queueing quantities
// come from the engine's memoized kernel (exact value reuse — see
// workload.Kernel), so the epoch runs without a single bisection.
func (e *Engine) runBurstEpoch(rec EpochRecord, greenObserved units.Watt,
	offered, predicted float64, at time.Time) EpochRecord {

	cfg, tab, selector, breaker := &e.cfg, e.tab, e.selector, e.breaker
	epoch := e.epoch
	// All demand arithmetic runs over the servers actually up this
	// epoch; m == n on fault-free runs, so every expression below is
	// bit-identical to the pre-chaos engine there.
	n, m := e.n, e.alive

	// The strategy sees the PSS's committed budget: predicted green
	// plus Peukert-sustainable battery power, per server.
	budget := units.Watt(float64(selector.AvailablePower(epoch)) / float64(m))
	e.predGreen = selector.PredictedSupply()
	// Selector state is fixed until Allocate below, but it changed
	// since last epoch: drop the previous epoch's fraction memo.
	clear(e.fracMemo)
	in := strategy.Inputs{
		Table:         tab,
		PredictedRate: predicted, // EWMA of the offered rate; equals it for square bursts
		Budget:        budget,
		Epoch:         epoch,
		// sprintFrac reads e.predGreen; the closure is allocated once
		// in New rather than once per epoch.
		SprintFraction: e.sprintFrac,
		// Degraded-capacity state features: both are exactly 1 on a
		// fault-free engine, so the Hybrid's state (and its decisions)
		// are bit-identical to the pre-chaos engine there.
		AliveFraction: float64(m) / float64(n),
		BatteryHealth: selector.Bank().Health(),
	}
	chosen := cfg.Strategy.Decide(in)
	e.applyFleet(chosen)

	level := tab.LevelFor(offered)
	demand := e.sprintDemand(level, chosen, offered)
	var al pss.Allocation
	useOverdraw := false
	if breaker != nil && !breaker.Tripped() && chosen.IsSprinting() &&
		selector.SustainFraction(demand, greenObserved, epoch) <= 0 {
		// Last resort (§III-A Case 3): green+battery cannot carry the
		// sprint; keep sprinting on bounded grid overdraw. To avoid
		// tripping the breaker, the total downstream power is limited
		// to what the breaker's remaining thermal budget tolerates
		// for a full epoch, and the setting is downgraded to fit.
		stressLeft := 1 - breaker.Stress()
		maxExtra := units.Watt(float64(breaker.Rated) * (breaker.MaxOverload - 1) *
			stressLeft * float64(breaker.TripAfter) / float64(epoch))
		budget := units.Watt((float64(greenObserved) + float64(maxExtra)) / float64(m))
		if en, ok := tab.BestWithin(level, budget, nil); ok && en.Config().IsSprinting() {
			chosen = en.Config()
			e.applyFleet(chosen)
			demand = e.sprintDemand(level, chosen, offered)
			if overdraw := demand - greenObserved; overdraw > 0 {
				breaker.Step(breaker.Rated+overdraw, epoch)
				useOverdraw = true
			}
			// If the downgraded setting fits the green supply
			// alone, the regular allocation below handles it as
			// a green-only epoch.
		}
	}
	if useOverdraw {
		al = selector.AllocateOverdraw(demand, greenObserved, epoch)
	} else {
		al = selector.Allocate(demand, greenObserved, epoch, e.normalFleetPower())
		if breaker != nil {
			breaker.Step(breaker.Rated, epoch) // within budget: no extra stress
		}
	}

	// The sprint runs for al.SprintFraction of the epoch; for the
	// remainder the servers are back on grid-powered Normal mode.
	frac := al.SprintFraction
	executed := chosen
	if frac < 0.5 {
		executed = server.Normal()
	}
	if al.Case == pss.CaseGridFallback {
		executed = server.Normal()
		e.applyFleet(executed)
	}
	rec.Case = al.Case
	rec.Config = executed
	rec.SprintFraction = frac
	rec.Green = units.Watt(float64(al.Green) / float64(n))
	rec.Battery = units.Watt(float64(al.Battery) / float64(n))
	rec.Grid = units.Watt(float64(al.Grid) / float64(n))
	goodSprint := e.kernel.Goodput(chosen, offered)
	goodNormal := e.kernel.Goodput(server.Normal(), offered)
	rec.Goodput = frac*goodSprint + (1-frac)*goodNormal
	if m != n {
		// Goodput is normalized per provisioned server: crashed
		// servers serve nothing, so the rack delivers the alive
		// fraction of it.
		rec.Goodput *= float64(m) / float64(n)
	}
	latSprint := e.latency(chosen, offered)
	latNormal := e.latency(server.Normal(), offered)
	rec.Latency = frac*latSprint + (1-frac)*latNormal
	if e.classes != nil {
		e.perAliveGoodput = frac*goodSprint + (1-frac)*goodNormal
		e.accumulateClassEnergy(chosen, frac, offered)
	}

	// Feed the measured epoch back to the learner with the next
	// epoch's state.
	nextBudget := units.Watt(float64(selector.AvailablePower(epoch)) / float64(m))
	nextOffered := offered
	if !at.Add(epoch).Before(e.burstEnd) {
		nextOffered = 0
	}
	actualPower := units.Watt(frac*float64(e.kernel.LoadPower(chosen, offered)) +
		(1-frac)*float64(e.kernel.LoadPower(server.Normal(), offered)))
	cfg.Strategy.Learn(strategy.Feedback{
		Chosen:  executed,
		Supply:  units.Watt(float64(greenObserved)/float64(m)) + selector.BatterySustainable(epoch)/units.Watt(m),
		Power:   actualPower,
		Offered: offered,
		Goodput: rec.Goodput,
		Latency: rec.Latency,
		Next: strategy.Inputs{
			Table:         tab,
			PredictedRate: nextOffered,
			Budget:        nextBudget,
			Epoch:         epoch,
			AliveFraction: float64(m) / float64(n),
			BatteryHealth: selector.Bank().Health(),
		},
	})
	return rec
}

// runIdleEpoch executes one non-burst epoch: Normal mode on the grid,
// batteries recharging from green surplus (or the grid once the DoD
// trigger fires).
func (e *Engine) runIdleEpoch(rec EpochRecord, greenObserved units.Watt, offered float64) EpochRecord {
	selector, epoch := e.selector, e.epoch
	e.applyFleet(server.Normal())
	rec.Case = pss.CaseGridFallback
	rec.Config = server.Normal()
	rec.Goodput = e.kernel.Goodput(server.Normal(), offered)
	rec.Latency = e.latency(server.Normal(), offered)
	// Outside bursts the green servers ride the grid; green output
	// charges the batteries, topped up from the grid when the DoD
	// trigger has fired (§III-A Case 3).
	selector.RechargeFromGreen(greenObserved, epoch)
	if selector.NeedsRecharge() {
		selector.RechargeFromGrid(GridRechargePower, epoch)
	}
	rec.Grid = e.kernel.LoadPower(server.Normal(), offered)
	if m := e.alive; m != e.n {
		// Crashed servers neither serve nor draw: the per-provisioned-
		// server aggregates shrink by the alive fraction.
		scale := float64(m) / float64(e.n)
		rec.Goodput *= scale
		rec.Grid = units.Watt(float64(rec.Grid) * scale)
	}
	if e.classes != nil {
		e.perAliveGoodput = e.kernel.Goodput(server.Normal(), offered)
		e.accumulateClassEnergy(server.Normal(), 0, offered)
		if len(e.classes) > 1 {
			// Heterogeneous classes draw different Normal-mode power:
			// the per-provisioned-server grid figure is the class-
			// weighted mean. (A single class keeps the exact flat
			// expression above, preserving legacy bit-identity.)
			var sum float64
			for i := range e.classes {
				if a := e.classAlive[i]; a > 0 {
					sum += float64(e.classes[i].kernel.LoadPower(server.Normal(), offered)) * float64(a)
				}
			}
			rec.Grid = units.Watt(sum / float64(e.n))
		}
	}
	return rec
}

// runOutageEpoch executes an epoch with every green server down: zero
// goodput, zero draw, no decision to make. Surviving infrastructure
// still runs — the batteries bank whatever green output remains and
// grid recharge continues once the DoD trigger has fired.
func (e *Engine) runOutageEpoch(rec EpochRecord, greenObserved units.Watt) EpochRecord {
	selector, epoch := e.selector, e.epoch
	rec.Case = pss.CaseGridFallback
	rec.Config = server.Normal()
	selector.RechargeFromGreen(greenObserved, epoch)
	if selector.NeedsRecharge() {
		selector.RechargeFromGrid(GridRechargePower, epoch)
	}
	if e.classes != nil {
		e.perAliveGoodput = 0
	}
	return rec
}

// sprintDemand returns the fleet's aggregate power demand at config c:
// for the paper's flat topology, the per-server load times the alive
// count (bit-identical to the pre-fleet expression); for a generated
// fleet, the class-weighted sum over each class's own profiling table
// and kernel — O(classes), not O(servers). A single-class fleet
// degenerates to the flat expression exactly (0 + x is exact).
func (e *Engine) sprintDemand(level int, c server.Config, offered float64) units.Watt {
	if e.classes == nil {
		perServer, ok := e.tab.LoadPower(level, c)
		if !ok {
			perServer = e.kernel.LoadPower(c, offered)
		}
		return units.Watt(float64(perServer) * float64(e.alive))
	}
	var demand float64
	for i := range e.classes {
		cl := &e.classes[i]
		alive := e.classAlive[i]
		if alive == 0 {
			continue
		}
		perServer, ok := cl.tab.LoadPower(level, c)
		if !ok {
			perServer = cl.kernel.LoadPower(c, offered)
		}
		demand += float64(perServer) * float64(alive)
	}
	return units.Watt(demand)
}

// normalFleetPower returns the fleet's aggregate Normal-mode draw at
// the burst rate — the grid-fallback demand handed to the allocator.
// Same degeneration contract as sprintDemand.
func (e *Engine) normalFleetPower() units.Watt {
	if e.classes == nil {
		return units.Watt(float64(e.normalPower) * float64(e.alive))
	}
	var sum float64
	for i := range e.classes {
		if a := e.classAlive[i]; a > 0 {
			sum += float64(e.classes[i].normalPower) * float64(a)
		}
	}
	return units.Watt(sum)
}

// accumulateClassEnergy folds one epoch's per-class server energy into
// the cumulative counters behind the per-class /metrics gauges: each
// class draws its own load curve for the executed sprint fraction.
func (e *Engine) accumulateClassEnergy(c server.Config, frac float64, offered float64) {
	hours := e.epoch.Hours()
	for i := range e.classes {
		alive := e.classAlive[i]
		if alive == 0 {
			continue
		}
		k := e.classes[i].kernel
		p := frac*float64(k.LoadPower(c, offered)) + (1-frac)*float64(k.LoadPower(server.Normal(), offered))
		e.classEnergyWh[i] += p * float64(alive) * hours
	}
}

// latency is the engine's memo over Kernel.EffectiveLatency. The
// sojourn-percentile bisection depends only on (config, offered rate),
// and a square burst re-presents the same pair every epoch, so exact
// value reuse makes the steady-state latency lookup O(1). The memo is
// derived data: a restored engine repopulates it identically, so it is
// deliberately absent from checkpoints.
func (e *Engine) latency(c server.Config, offered float64) float64 {
	k := latKey{c: c, offered: offered}
	if v, ok := e.latMemo[k]; ok {
		return v
	}
	v := e.kernel.EffectiveLatency(c, offered)
	e.latMemo[k] = v
	return v
}

type latKey struct {
	c       server.Config
	offered float64
}

func meanWindow(tr *trace.Trace, at time.Time, d time.Duration) float64 {
	w := tr.Window(at, d)
	if len(w) == 0 {
		return tr.At(at)
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}

// PeakDemand returns the aggregate full-sprint power demand of the
// green servers, used to scale Figure 5's demand line.
func PeakDemand(p workload.Profile, greenServers int) units.Watt {
	return units.Watt(float64(p.PeakPower) * float64(greenServers))
}
