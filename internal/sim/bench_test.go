package sim

import (
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/workload"
)

func newBenchHybrid() (strategy.Strategy, error) {
	return strategy.NewHybrid(testProfile, testTable)
}

// benchEngine builds an Engine over the canonical benchmark scenario:
// SPECjbb on RE-Batt under a Med-availability synthetic solar window,
// an 8-hour Int=12 burst so nearly every stepped epoch is a sprinting
// (hot-path) epoch, and the stateful Hybrid strategy — the most
// expensive Decide/Learn pair.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	d := 8 * time.Hour
	green := cluster.REBatt()
	supply := solar.Synthesize(solar.Med, d, time.Minute, float64(green.PeakGreen()), 42)
	h, err := newBenchHybrid()
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Workload: testProfile,
		Green:    green,
		Strategy: h,
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineStep measures the steady-state cost of one scheduling
// epoch — the simulator's hot path. The engine (and its stateful
// Hybrid strategy) is rebuilt outside the timer whenever the horizon is
// consumed, so ns/op and allocs/op reflect Step alone. CI enforces an
// allocs/op budget on this benchmark (see BENCH_PR4.json).
func BenchmarkEngineStep(b *testing.B) {
	e := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := e.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.StopTimer()
			e = benchEngine(b)
			b.StartTimer()
		}
	}
}

// BenchmarkEngineNew measures engine construction (including the
// workload kernel build), the one-time cost the Step memoization
// front-loads.
func BenchmarkEngineNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchEngine(b)
	}
}
