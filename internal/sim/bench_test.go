package sim

import (
	"fmt"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/fleet"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

func newBenchHybrid() (strategy.Strategy, error) {
	return strategy.NewHybrid(testProfile, testTable)
}

// benchEngine builds an Engine over the canonical benchmark scenario:
// SPECjbb on RE-Batt under a Med-availability synthetic solar window,
// an 8-hour Int=12 burst so nearly every stepped epoch is a sprinting
// (hot-path) epoch, and the stateful Hybrid strategy — the most
// expensive Decide/Learn pair.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	d := 8 * time.Hour
	green := cluster.REBatt()
	supply := solar.Synthesize(solar.Med, d, time.Minute, float64(green.PeakGreen()), 42)
	h, err := newBenchHybrid()
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Workload: testProfile,
		Green:    green,
		Strategy: h,
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineStep measures the steady-state cost of one scheduling
// epoch — the simulator's hot path. The engine (and its stateful
// Hybrid strategy) is rebuilt outside the timer whenever the horizon is
// consumed, so ns/op and allocs/op reflect Step alone. CI enforces an
// allocs/op budget on this benchmark (see BENCH_PR4.json).
func BenchmarkEngineStep(b *testing.B) {
	e := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := e.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.StopTimer()
			e = benchEngine(b)
			b.StartTimer()
		}
	}
}

// BenchmarkEngineNew measures engine construction (including the
// workload kernel build), the one-time cost the Step memoization
// front-loads.
func BenchmarkEngineNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchEngine(b)
	}
}

// benchFleetEngine builds an Engine over a generated fleet of total
// servers split across the given class count: class 0 is the default
// profile, the rest step their sprint envelope up in 1 W increments so
// every class carries its own profiling table and kernel.
func benchFleetEngine(b *testing.B, total, classes int) *Engine {
	b.Helper()
	tpls := make([]fleet.Template, classes)
	for i := range tpls {
		tpls[i] = fleet.Template{
			Name:      fmt.Sprintf("class%02d", i),
			Weight:    1,
			BatteryAh: 10,
			Panels:    3,
		}
		if i > 0 {
			tpls[i].PeakPower = testProfile.PeakPower + units.Watt(i)
		}
	}
	spec := &fleet.Spec{
		Name:         "bench",
		TotalServers: total,
		RackSize:     20,
		Seed:         7,
		Templates:    tpls,
	}
	topo, err := spec.Generate()
	if err != nil {
		b.Fatal(err)
	}
	d := 12 * time.Hour
	lead, tail := 6*time.Hour, 6*time.Hour
	supply := solar.Synthesize(solar.Med, lead+d+tail, time.Minute, float64(topo.PeakGreen()), 42)
	h, err := newBenchHybrid()
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Workload: testProfile,
		Green:    cluster.REBatt(),
		Fleet:    spec,
		Strategy: h,
		Table:    testTable,
		Epoch:    time.Minute,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchFleetDay runs complete simulated days (1440 one-minute epochs)
// over a generated fleet — the headline fleet-scale benchmark. The
// structure-of-arrays core makes one day O(epochs × classes), not
// O(epochs × servers), so the 10k-server day costs roughly what the
// 3-server day does.
func benchFleetDay(b *testing.B, total, classes int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := benchFleetEngine(b, total, classes)
		if e.TotalEpochs() != 1440 {
			b.Fatalf("horizon = %d epochs, want 1440", e.TotalEpochs())
		}
		for {
			_, ok, err := e.Step()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}

// BenchmarkFleetDay10k is the headline: one full simulated day for a
// 10,000-server single-class fleet. CI compares it against the budget
// in BENCH_PR7.json.
func BenchmarkFleetDay10k(b *testing.B) { benchFleetDay(b, 10_000, 1) }

// BenchmarkFleetDay10k50Classes is the heterogeneity stress: the same
// 10,000 servers across 50 distinct classes, each with its own table
// and kernel — per-epoch cost scales with classes, not servers.
func BenchmarkFleetDay10k50Classes(b *testing.B) { benchFleetDay(b, 10_000, 50) }

// benchYearEngine builds a whole-year replay: 525,600 one-minute
// epochs with a single day-long burst in the middle of the year —
// ROADMAP item 5's canonical scenario, where virtually every epoch is
// idle and rides StepN's hoisted fast segment.
func benchYearEngine(b *testing.B, spec *fleet.Spec) *Engine {
	b.Helper()
	const year = 365 * 24 * time.Hour
	d := 24 * time.Hour
	lead := year/2 - d/2
	tail := year - lead - d
	green := cluster.REBatt()
	peak := float64(green.PeakGreen())
	if spec != nil {
		topo, err := spec.Generate()
		if err != nil {
			b.Fatal(err)
		}
		peak = float64(topo.PeakGreen())
	}
	supply := solar.Synthesize(solar.Med, year, time.Minute, peak, 42)
	h, err := newBenchHybrid()
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Workload: testProfile,
		Green:    green,
		Fleet:    spec,
		Strategy: h,
		Table:    testTable,
		Epoch:    time.Minute,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchYear drives one whole simulated year through StepN. The budget
// for these lives in BENCH_PR9.json; run with -benchtime=1x in CI.
func benchYear(b *testing.B, spec *fleet.Spec) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchYearEngine(b, spec)
		total := e.TotalEpochs()
		if total != 525_600 {
			b.Fatalf("horizon = %d epochs, want 525600", total)
		}
		b.StartTimer()
		ran, err := e.StepN(total)
		if err != nil {
			b.Fatal(err)
		}
		if ran != total {
			b.Fatalf("ran %d of %d epochs", ran, total)
		}
	}
}

// BenchmarkYearSingleCell is ROADMAP item 5's target: a whole-year
// (525,600-epoch) single-cell replay, budgeted at low single-digit
// seconds in BENCH_PR9.json.
func BenchmarkYearSingleCell(b *testing.B) { benchYear(b, nil) }

// BenchmarkFleetYear10k is the year-scale fleet headline: 525,600
// one-minute epochs over the 10,000-server single-class fleet.
func BenchmarkFleetYear10k(b *testing.B) {
	benchYear(b, &fleet.Spec{
		Name:         "bench",
		TotalServers: 10_000,
		RackSize:     20,
		Seed:         7,
		Templates: []fleet.Template{
			{Name: "class00", Weight: 1, BatteryAh: 10, Panels: 3},
		},
	})
}
