package sim

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/obs"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/trace"
	"greensprint/internal/workload"
)

// ckptConfig builds a medium-availability run with a mix of idle and
// burst epochs and a fresh Hybrid strategy, so a checkpoint carries
// every stateful layer (battery, PSS accounting, predictors, Q-table).
func ckptConfig(t *testing.T) Config {
	t.Helper()
	d := 30 * time.Minute
	lead, tail := 10*time.Minute, 10*time.Minute
	green := cluster.REBatt()
	supply := solar.Synthesize(solar.Med, lead+d+tail, time.Minute, float64(green.PeakGreen()), 42)
	return Config{
		Workload: testProfile,
		Green:    green,
		Strategy: hybrid(t),
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
	}
}

func mustRunAll(t *testing.T, e *Engine) *Result {
	t.Helper()
	for {
		_, ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return e.Result()
		}
	}
}

func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Records) != len(got.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if want.Records[i] != got.Records[i] {
			t.Errorf("record %d differs:\nwant %+v\ngot  %+v", i, want.Records[i], got.Records[i])
		}
	}
	if want.MeanNormPerf != got.MeanNormPerf {
		t.Errorf("MeanNormPerf = %v, want %v", got.MeanNormPerf, want.MeanNormPerf)
	}
	if want.Account != got.Account {
		t.Errorf("Account = %+v, want %+v", got.Account, want.Account)
	}
	if want.BatteryCycles != got.BatteryCycles {
		t.Errorf("BatteryCycles = %v, want %v", got.BatteryCycles, want.BatteryCycles)
	}
}

// TestCheckpointRoundTripMidBurst cuts a checkpoint in the middle of a
// burst, sends it through JSON, restores it into a freshly constructed
// Engine, and demands the stitched run be bit-identical to the
// uninterrupted one — records, aggregates and battery wear.
func TestCheckpointRoundTripMidBurst(t *testing.T) {
	ref, err := Run(context.Background(), ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt a second run mid-burst (lead is 2 epochs; stop at 4,
	// two epochs into the burst).
	a, err := New(ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	const stopAt = 4
	for i := 0; i < stopAt; i++ {
		rec, ok, err := a.Step()
		if err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
		if i == stopAt-1 && !rec.InBurst {
			t.Fatalf("epoch %d not in burst; checkpoint must be cut mid-burst", i)
		}
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Resume in a fresh engine (fresh Hybrid, fresh bank) from the
	// JSON bytes alone.
	cp2, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	if fresh.EpochIndex() != stopAt {
		t.Fatalf("restored epoch index = %d, want %d", fresh.EpochIndex(), stopAt)
	}
	assertSameResult(t, ref, mustRunAll(t, fresh))
}

// TestCheckpointVersionMismatch verifies stale or future checkpoint
// formats are rejected loudly at both decode and restore.
func TestCheckpointVersionMismatch(t *testing.T) {
	e, err := New(ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(b, []byte(`"version":4`), []byte(`"version":99`), 1)
	if bytes.Equal(bad, b) {
		t.Fatal("version field not found in encoded checkpoint")
	}
	if _, err := DecodeCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("decode of version 99 = %v, want version error", err)
	}
	cp.Version = 99
	if err := e.Restore(cp); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("restore of version 99 = %v, want version error", err)
	}
}

// TestCheckpointKnobSpaceMismatch tampers with the persisted Q-table's
// action space: the rl layer pins the knob space, so restoring a
// checkpoint cut from a different action space must fail with a clear
// error instead of silently mis-indexing actions.
func TestCheckpointKnobSpaceMismatch(t *testing.T) {
	e, err := New(ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(b, []byte(`"actions":63`), []byte(`"actions":62`), 1)
	if bytes.Equal(bad, b) {
		t.Fatal("action-space field not found in encoded checkpoint")
	}
	cp2, err := DecodeCheckpoint(bad)
	if err != nil {
		t.Fatal(err) // the envelope itself is valid
	}
	fresh, err := New(ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	err = fresh.Restore(cp2)
	if err == nil || !strings.Contains(err.Error(), "knob space") {
		t.Errorf("restore with foreign action space = %v, want knob-space error", err)
	}
}

// TestCheckpointScheduleMismatch rejects checkpoints cut from a
// different epoch length or supply window.
func TestCheckpointScheduleMismatch(t *testing.T) {
	e, err := New(ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	other := ckptConfig(t)
	other.Epoch = 10 * time.Minute
	diffEpoch, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := diffEpoch.Restore(cp); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Errorf("restore across epoch lengths = %v, want epoch error", err)
	}

	// A checkpoint from a breaker-less run cannot restore into an
	// overdraw-enabled engine.
	od := ckptConfig(t)
	od.AllowBreakerOverdraw = true
	withBreaker, err := New(od)
	if err != nil {
		t.Fatal(err)
	}
	if err := withBreaker.Restore(cp); err == nil || !strings.Contains(err.Error(), "breaker") {
		t.Errorf("restore across breaker configs = %v, want breaker error", err)
	}
}

// checkCountCtx is a context that reports cancellation after its Done
// channel has been consulted a fixed number of times. Run checks ctx
// exactly once per epoch, so this deterministically cancels the run
// between two specific epochs without any timing dependence.
type checkCountCtx struct {
	context.Context
	remaining int
	closed    chan struct{}
}

func newCheckCountCtx(n int) *checkCountCtx {
	ch := make(chan struct{})
	close(ch)
	return &checkCountCtx{Context: context.Background(), remaining: n, closed: ch}
}

func (c *checkCountCtx) Done() <-chan struct{} {
	c.remaining--
	if c.remaining < 0 {
		return c.closed
	}
	return nil // a nil channel never fires: the select takes its default
}

func (c *checkCountCtx) Err() error {
	if c.remaining < 0 {
		return context.Canceled
	}
	return nil
}

// TestRunCancelledBetweenEpochs verifies Run honors ctx at epoch
// boundaries: a cancellation surfacing at the k-th check stops the run
// with ctx.Err() before the k-th epoch executes.
func TestRunCancelledBetweenEpochs(t *testing.T) {
	// Already-cancelled context: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := Run(ctx, ckptConfig(t)); err != context.Canceled || res != nil {
		t.Fatalf("Run(cancelled) = %v, %v; want nil, context.Canceled", res, err)
	}

	// Cancellation after three epoch-boundary checks: exactly three
	// epochs run, then ctx.Err() propagates.
	cc := newCheckCountCtx(3)
	res, err := Run(cc, ckptConfig(t))
	if err != context.Canceled || res != nil {
		t.Fatalf("Run(mid-run cancel) = %v, %v; want nil, context.Canceled", res, err)
	}
}

// TestEngineBreakerOverdrawBurst drives the §III-A last-resort path
// epoch by epoch: with no batteries and a supply dip, the engine keeps
// sprinting on bounded grid overdraw with a setting downgraded to fit
// the breaker's remaining thermal budget, the breaker's stress
// accumulates across consecutive overdraw epochs, and once the breaker
// trips the remaining burst epochs fall back to grid-powered Normal.
func TestEngineBreakerOverdrawBurst(t *testing.T) {
	d := 30 * time.Minute
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	// Three supply phases: plenty (green-only sprint), a dip that
	// forces bounded overdraw, then near-darkness so the tripped rack
	// cannot even self-power Normal mode and must ride the grid.
	samples := make([]float64, int(d/time.Minute))
	for i := range samples {
		switch {
		case i < 10:
			samples[i] = 440
		case i < 20:
			samples[i] = 330
		default:
			samples[i] = 30
		}
	}
	e, err := New(Config{
		Workload:             testProfile,
		Green:                cluster.REOnly(),
		Strategy:             strategy.Pacing{},
		Table:                testTable,
		Burst:                workload.Burst{Intensity: 12, Duration: d},
		Supply:               trace.New("dipping", start, time.Minute, samples),
		AllowBreakerOverdraw: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	br := e.Breaker()
	if br == nil {
		t.Fatal("overdraw-enabled engine must expose its breaker")
	}

	var (
		overdrawEpochs    int
		fallbackAfterTrip int
		lastStress        float64
		tripped           bool
	)
	for {
		prevStress := br.Stress()
		rec, ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		switch {
		case rec.Case == pss.CaseBreakerOverdraw:
			overdrawEpochs++
			if !rec.Config.IsSprinting() {
				t.Errorf("overdraw epoch not sprinting: %+v", rec)
			}
			// The last resort downgrades the setting to fit the
			// breaker's remaining thermal budget; it never runs the
			// full sprint on overdraw here.
			if rec.Config == server.MaxSprint() {
				t.Errorf("overdraw epoch ran the undowngraded max sprint: %+v", rec)
			}
			// Overdraw accumulates thermal stress, monotonically
			// within the (0,1] budget.
			if br.Stress() <= prevStress {
				t.Errorf("overdraw epoch did not accumulate stress: %v -> %v", prevStress, br.Stress())
			}
			if br.Stress() > 1 {
				t.Errorf("stress %v above the trip threshold", br.Stress())
			}
			lastStress = br.Stress()
		case tripped && rec.InBurst:
			// After the trip the rack is grid-fed Normal for the
			// rest of the burst.
			if rec.Case != pss.CaseGridFallback || rec.Config != server.Normal() {
				t.Errorf("post-trip epoch not a grid fallback: %+v", rec)
			}
			fallbackAfterTrip++
		}
		// Once the overdraw path has been exercised, force a magnetic
		// trip (an exogenous surge) and verify the engine stops
		// overdrawing for good.
		if overdrawEpochs == 2 && !tripped {
			br.Step(2*br.Rated, e.Epoch())
			if !br.Tripped() {
				t.Fatal("surge above the overload ceiling must trip the breaker")
			}
			tripped = true
		}
	}
	if overdrawEpochs < 2 {
		t.Fatalf("overdraw epochs = %d, want at least 2 to observe stress accumulation", overdrawEpochs)
	}
	if !tripped {
		t.Fatal("test never reached the forced trip")
	}
	if fallbackAfterTrip == 0 {
		t.Error("no post-trip burst epochs observed")
	}
	if lastStress <= 0 {
		t.Fatalf("final overdraw stress = %v", lastStress)
	}
}

// failAfterSink accepts n emissions, then fails every subsequent one.
type failAfterSink struct {
	n      int
	events []obs.Event
}

func (s *failAfterSink) Emit(ev obs.Event) error {
	if len(s.events) >= s.n {
		return errors.New("sink full")
	}
	s.events = append(s.events, ev)
	return nil
}

// TestEngineSinkEmission checks that Step emits exactly one event per
// committed epoch and that a sink failure surfaces as a Step error —
// after the epoch record itself has been committed.
func TestEngineSinkEmission(t *testing.T) {
	cfg := ckptConfig(t)
	sink := &failAfterSink{n: 3}
	cfg.Sink = sink
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i, ev := range sink.events {
		if ev.Epoch != i {
			t.Errorf("event %d has epoch %d", i, ev.Epoch)
		}
		if ev.Time == "" {
			t.Errorf("event %d missing sim-clock timestamp", i)
		}
	}
	_, _, err = e.Step()
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("Step with failing sink: err = %v, want sink error", err)
	}
	// The epoch itself committed before the emission failed.
	if got := len(e.Result().Records); got != 4 {
		t.Errorf("records = %d, want 4 (epoch commits before sink error)", got)
	}
}
