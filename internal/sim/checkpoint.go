package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"greensprint/internal/atomicfile"
	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/pmk"
	"greensprint/internal/predictor"
	"greensprint/internal/pss"
)

// CheckpointVersion is the format version written into every
// Checkpoint; Restore rejects any other version so stale files fail
// loudly instead of silently corrupting a resumed run. Version 2 added
// the StrategyName fingerprint; version 3 added the chaos injector's
// replay state (plus per-component degradation fields that older
// decoders would silently drop); version 4 adds the fleet-scale state
// — topology fingerprint, class-indexed knob herd, grouped battery
// snapshot, per-class energy counters — all absent for flat runs.
// DecodeCheckpoint transparently migrates version-1 through version-3
// files (see migrateV1/migrateV2/migrateV3).
const CheckpointVersion = 4

// Checkpoint is the complete serializable state of an Engine between
// two epochs: every stateful layer's snapshot (battery bank, PSS,
// breaker, knob fleet, predictors, strategy) plus the epoch schedule
// position and the records produced so far. A checkpoint restored into
// a fresh Engine built from the same Config continues bit-identically
// to the uninterrupted run; it round-trips through JSON.
type Checkpoint struct {
	Version int `json:"version"`
	// Epoch and SupplyStart fingerprint the schedule the checkpoint
	// was cut from; Restore rejects a mismatch.
	Epoch       time.Duration `json:"epoch"`
	SupplyStart time.Time     `json:"supply_start"`
	// EpochIndex is the number of epochs already run; the resumed
	// engine continues at SupplyStart + EpochIndex·Epoch.
	EpochIndex int `json:"epoch_index"`
	// StrategyName fingerprints the strategy the checkpoint was cut
	// from (v2+). Restore rejects a mismatch so a Hybrid Q-table is
	// never fed into, say, a Parallel engine. Empty for migrated v1
	// checkpoints, which predate the field and skip the check.
	StrategyName string `json:"strategy_name,omitempty"`

	Selector pss.SelectorSnapshot     `json:"selector"`
	Fleet    pmk.FleetSnapshot        `json:"fleet"`
	Breaker  *cluster.BreakerSnapshot `json:"breaker,omitempty"`
	LoadPred predictor.EWMASnapshot   `json:"load_predictor"`
	// Strategy is the strategy's opaque state (nil for stateless
	// strategies; the rl-backed Hybrid persists its Q-table, which
	// pins the knob space).
	Strategy json.RawMessage `json:"strategy,omitempty"`
	// Chaos is the fault injector's replay state (v3+); present
	// exactly when the run has a chaos schedule. Restore rejects a
	// checkpoint whose chaos-presence disagrees with the engine's.
	Chaos *chaos.InjectorSnapshot `json:"chaos,omitempty"`

	// Fleet-scale state (v4+), present exactly when the run has a
	// generated fleet topology. FleetFingerprint pins the topology the
	// checkpoint was cut from — a resumed engine regenerates it from
	// Config.Fleet and refuses a mismatch. ClassFleet carries the
	// class-indexed knob herd (replacing the flat Fleet snapshot,
	// which stays empty), and ClassEnergyWh the cumulative per-class
	// energy counters behind the event stream's class stats.
	//greensprint:allow(wiretag) presence is keyed on the nilable ClassFleet pointer: an empty fingerprint only ever decodes alongside a nil ClassFleet, which Restore's layout check handles explicitly
	FleetFingerprint string                  `json:"fleet_fingerprint,omitempty"`
	ClassFleet       *pmk.ClassFleetSnapshot `json:"class_fleet,omitempty"`
	ClassEnergyWh    []float64               `json:"class_energy_wh,omitempty"`

	Records      []EpochRecord `json:"records"`
	BurstPerfSum float64       `json:"burst_perf_sum"`
	BurstEpochs  int           `json:"burst_epochs"`
}

// Checkpoint captures the engine's state at the current epoch
// boundary. The engine is not perturbed and may keep stepping.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	stratRaw, err := e.cfg.Strategy.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint strategy: %w", err)
	}
	cp := &Checkpoint{
		Version:      CheckpointVersion,
		Epoch:        e.epoch,
		SupplyStart:  e.cfg.Supply.Start,
		EpochIndex:   e.epochIndex,
		StrategyName: e.cfg.Strategy.Name(),
		Selector:     e.selector.Snapshot(),
		LoadPred:     e.loadPred.Snapshot(),
		Strategy:     stratRaw,
		Records:      append([]EpochRecord(nil), e.records...),
		BurstPerfSum: e.burstPerfSum,
		BurstEpochs:  e.burstEpochs,
	}
	if e.cfleet != nil {
		s := e.cfleet.Snapshot()
		cp.ClassFleet = &s
		cp.FleetFingerprint = e.topo.Fingerprint()
		cp.ClassEnergyWh = append([]float64(nil), e.classEnergyWh...)
	} else {
		cp.Fleet = e.fleet.Snapshot()
	}
	if e.breaker != nil {
		s := e.breaker.Snapshot()
		cp.Breaker = &s
	}
	if e.injector != nil {
		s := e.injector.Snapshot()
		cp.Chaos = &s
	}
	return cp, nil
}

// Restore replaces the engine's state with a checkpoint cut from an
// engine built over the same Config. The checkpoint's version and
// schedule fingerprint must match, component snapshots must fit the
// engine's layout (bank size, fleet size, breaker presence), and a
// strategy snapshot must match the strategy's knob space.
func (e *Engine) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("sim: restore: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("sim: restore: checkpoint version %d, engine supports %d", cp.Version, CheckpointVersion)
	}
	if cp.Epoch != e.epoch {
		return fmt.Errorf("sim: restore: checkpoint epoch %v, engine epoch %v", cp.Epoch, e.epoch)
	}
	if !cp.SupplyStart.Equal(e.cfg.Supply.Start) {
		return fmt.Errorf("sim: restore: checkpoint starts %v, engine starts %v", cp.SupplyStart, e.cfg.Supply.Start)
	}
	if cp.StrategyName != "" && cp.StrategyName != e.cfg.Strategy.Name() {
		return fmt.Errorf("sim: restore: checkpoint from strategy %q, engine runs %q", cp.StrategyName, e.cfg.Strategy.Name())
	}
	if cp.EpochIndex < 0 || cp.EpochIndex > e.TotalEpochs() {
		return fmt.Errorf("sim: restore: epoch index %d outside run of %d epochs", cp.EpochIndex, e.TotalEpochs())
	}
	if len(cp.Records) != cp.EpochIndex {
		return fmt.Errorf("sim: restore: %d records for %d epochs", len(cp.Records), cp.EpochIndex)
	}
	if (cp.Breaker == nil) != (e.breaker == nil) {
		return fmt.Errorf("sim: restore: checkpoint and engine disagree on breaker overdraw")
	}
	if (cp.Chaos == nil) != (e.injector == nil) {
		return fmt.Errorf("sim: restore: checkpoint and engine disagree on chaos schedule")
	}
	if (cp.ClassFleet == nil) != (e.cfleet == nil) {
		return fmt.Errorf("sim: restore: checkpoint and engine disagree on fleet topology")
	}
	if e.cfleet != nil {
		if fp := e.topo.Fingerprint(); cp.FleetFingerprint != fp {
			return fmt.Errorf("sim: restore: checkpoint fleet fingerprint %.12s… does not match generated topology %.12s…",
				cp.FleetFingerprint, fp)
		}
		if len(cp.ClassEnergyWh) != len(e.classEnergyWh) {
			return fmt.Errorf("sim: restore: %d class energy counters for %d classes",
				len(cp.ClassEnergyWh), len(e.classEnergyWh))
		}
	}
	if err := e.selector.Restore(cp.Selector); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if e.cfleet != nil {
		if err := e.cfleet.Restore(*cp.ClassFleet); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
		copy(e.classEnergyWh, cp.ClassEnergyWh)
	} else if err := e.fleet.Restore(cp.Fleet); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if e.breaker != nil {
		if err := e.breaker.Restore(*cp.Breaker); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	}
	if err := e.loadPred.Restore(cp.LoadPred); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := e.cfg.Strategy.RestoreState(cp.Strategy); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if e.injector != nil {
		if err := e.injector.Restore(*cp.Chaos); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
		e.alive = e.injector.AliveServers()
		e.selector.SetStuck(e.injector.Stuck())
		if e.topo != nil {
			e.recomputeClassAlive()
		}
	}
	e.records = append(make([]EpochRecord, 0, e.TotalEpochs()), cp.Records...)
	e.burstPerfSum = cp.BurstPerfSum
	e.burstEpochs = cp.BurstEpochs
	e.epochIndex = cp.EpochIndex
	e.at = e.cfg.Supply.Start.Add(time.Duration(cp.EpochIndex) * e.epoch)
	return nil
}

// Encode serializes the checkpoint as JSON.
func (c *Checkpoint) Encode() ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	return b, nil
}

// DecodeCheckpoint parses a JSON checkpoint and checks its version.
// Version-1 through version-3 checkpoints are migrated in place (see
// migrateV1/migrateV2/migrateV3) so files cut before the newer fields
// still restore cleanly; any other version mismatch fails loudly.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("sim: decode checkpoint: %w", err)
	}
	if cp.Version == 1 {
		migrateV1(&cp)
	}
	if cp.Version == 2 {
		migrateV2(&cp)
	}
	if cp.Version == 3 {
		migrateV3(&cp)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("sim: decode checkpoint: version %d, supported %d", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// migrateV1 lifts a version-1 checkpoint to version 2. The v1 layout
// is a strict subset of v2 — it lacks only the StrategyName
// fingerprint — so migration stamps the new version and leaves the
// name empty, which Restore treats as "unknown, skip the check".
// migrateV2 then carries the result the rest of the way.
func migrateV1(cp *Checkpoint) {
	cp.Version = 2
	cp.StrategyName = ""
}

// migrateV2 lifts a version-2 checkpoint to version 3. The v2 layout
// is a strict subset of v3: it predates chaos, so the injector state
// is absent (a fault-free run, which Restore accepts for engines
// without a chaos schedule) and every battery unit decodes with the
// degradation fields at their undegraded defaults. Migration is
// therefore just the version stamp; the next Checkpoint/WriteFile
// cycle persists the file as full v3.
func migrateV2(cp *Checkpoint) {
	cp.Version = 3
}

// migrateV3 lifts a version-3 checkpoint to version 4. The v3 layout
// is a strict subset of v4: it predates generated fleets, so the
// fleet fingerprint, class-fleet snapshot and per-class energy
// counters are all absent — exactly how v4 encodes a flat (paper
// topology) run. Migration is therefore just the version stamp.
func migrateV3(cp *Checkpoint) {
	cp.Version = CheckpointVersion
}

// WriteFile atomically persists the checkpoint through the shared
// tmp+rename writer, so a crash mid-write never leaves a truncated
// checkpoint behind.
func (c *Checkpoint) WriteFile(path string) error {
	b, err := c.Encode()
	if err != nil {
		return err
	}
	if err := atomicfile.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("sim: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile loads and version-checks a checkpoint file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(b)
}
