package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"greensprint/internal/chaos"
	"greensprint/internal/obs"
	"greensprint/internal/pss"
)

// chaosModeCases enumerates the six failure modes with a single-mode
// profile spec each; the per-mode tests below iterate it.
var chaosModeCases = []struct {
	name string
	spec string
	mode chaos.Mode
}{
	{"server-crash", "crash=5", chaos.ServerCrash},
	{"pss-stuck", "stuck=5", chaos.PSSStuck},
	{"battery-degrade", "degrade=5", chaos.BatteryDegrade},
	{"solar-dropout", "solar=5:2-4", chaos.SolarDropout},
	{"breaker-trip", "breaker=5", chaos.BreakerTrip},
	{"zone-outage", "zone=5", chaos.ZoneOutage},
}

// findChaosSchedule resolves the profile under successive seeds until
// the timeline contains a fault of the wanted mode that (a) strikes a
// few epochs in, (b) is still active one epoch later — so a checkpoint
// cut there is genuinely mid-failure — and (c) recovers before the run
// ends when the mode recovers at all. The search is deterministic, so
// the chosen seed (and therefore the timeline) is stable across runs.
func findChaosSchedule(t *testing.T, spec string, mode chaos.Mode, total int) (*chaos.Schedule, int) {
	t.Helper()
	p, err := chaos.ParseProfile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// ckptConfig's RE-Batt rack: 3 green servers, one battery unit
	// per server.
	for seed := int64(1); seed < 1000; seed++ {
		s, err := p.Resolve(seed, total, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range s.Faults {
			if f.Mode != mode || f.Cascade {
				continue
			}
			if f.Epoch < 1 || f.Epoch > total-4 {
				continue
			}
			if f.Recover != 0 && (f.Recover < f.Epoch+2 || f.Recover > total-1) {
				continue
			}
			return s, f.Epoch
		}
	}
	t.Fatalf("no seed under 1000 yields a usable %v fault", mode)
	return nil, 0
}

// chaosCfg builds a fresh ckptConfig carrying the schedule (fresh
// strategy instance per call; the schedule itself is immutable and
// safely shared across engines).
func chaosCfg(t *testing.T, sched *chaos.Schedule, mode chaos.Mode) Config {
	t.Helper()
	cfg := ckptConfig(t)
	cfg.Chaos = sched
	// The breaker mode needs a breaker to trip.
	if mode == chaos.BreakerTrip {
		cfg.AllowBreakerOverdraw = true
	}
	return cfg
}

// TestChaosCheckpointRoundTrip is the per-mode resilience round-trip:
// inject the fault, cut a checkpoint one epoch into the failure, send
// it through JSON, restore into a fresh engine, and demand the
// remaining epochs be bit-identical to the uninterrupted chaos run.
// ckptConfig runs the Q-learning Hybrid, so the server-crash case also
// proves the Q-table survives a crash-recovery cycle across the
// checkpoint boundary.
func TestChaosCheckpointRoundTrip(t *testing.T) {
	probe := mustNew(t, ckptConfig(t))
	total := probe.TotalEpochs()
	for _, tc := range chaosModeCases {
		t.Run(tc.name, func(t *testing.T) {
			sched, faultEpoch := findChaosSchedule(t, tc.spec, tc.mode, total)
			ref := mustRunAll(t, mustNew(t, chaosCfg(t, sched, tc.mode)))

			e := mustNew(t, chaosCfg(t, sched, tc.mode))
			stopAt := faultEpoch + 1 // one epoch into the failure
			for i := 0; i < stopAt; i++ {
				if _, _, err := e.Step(); err != nil {
					t.Fatal(err)
				}
			}
			cp, err := e.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if cp.Chaos == nil {
				t.Fatal("chaos run checkpointed without injector state")
			}
			if tc.mode != chaos.BatteryDegrade && len(cp.Chaos.Active) == 0 {
				t.Fatalf("checkpoint at epoch %d is not mid-failure: %+v", stopAt, cp.Chaos)
			}
			b, err := cp.Encode()
			if err != nil {
				t.Fatal(err)
			}
			cp2, err := DecodeCheckpoint(b)
			if err != nil {
				t.Fatal(err)
			}
			fresh := mustNew(t, chaosCfg(t, sched, tc.mode))
			if err := fresh.Restore(cp2); err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, ref, mustRunAll(t, fresh))
		})
	}
}

// TestChaosTopologyMismatch pins the schedule/config fingerprint: a
// timeline resolved for a different rack must not run.
func TestChaosTopologyMismatch(t *testing.T) {
	p, err := chaos.ParseProfile("crash=2")
	if err != nil {
		t.Fatal(err)
	}
	wrongServers, err := p.Resolve(1, 10, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptConfig(t)
	cfg.Chaos = wrongServers
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "servers") {
		t.Errorf("New with 5-server schedule = %v, want servers error", err)
	}
	wrongUnits, err := p.Resolve(1, 10, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg = ckptConfig(t)
	cfg.Chaos = wrongUnits
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "battery units") {
		t.Errorf("New with 5-unit schedule = %v, want units error", err)
	}
}

// TestChaosCheckpointPresenceMismatch verifies a chaos checkpoint and
// a fault-free engine (and vice versa) refuse to mix.
func TestChaosCheckpointPresenceMismatch(t *testing.T) {
	sched, _ := findChaosSchedule(t, "solar=5", chaos.SolarDropout, mustNew(t, ckptConfig(t)).TotalEpochs())
	chaotic := mustNew(t, chaosCfg(t, sched, chaos.SolarDropout))
	plain := mustNew(t, ckptConfig(t))

	cp, err := chaotic.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(cp); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("plain engine accepted chaos checkpoint: %v", err)
	}
	cp2, err := plain.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := chaotic.Restore(cp2); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("chaos engine accepted fault-free checkpoint: %v", err)
	}
}

// TestChaosEventStream checks the stream shape of a chaos run: every
// fault and recovery appears as its own "chaos" line stamped with the
// epoch it strikes in, ahead of that epoch's record; epoch records
// still number exactly TotalEpochs and stay chaos-field-free.
func TestChaosEventStream(t *testing.T) {
	sched, faultEpoch := findChaosSchedule(t, "solar=5:2-4", chaos.SolarDropout,
		mustNew(t, ckptConfig(t)).TotalEpochs())
	cfg := chaosCfg(t, sched, chaos.SolarDropout)
	var buf bytes.Buffer
	cfg.Sink = obs.NewJSONL(&buf)
	mustRunAll(t, mustNew(t, cfg))

	var (
		epochLines int
		faults     int
		recovers   int
		lastEpoch  = -1
	)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Chaos {
		case "":
			if ev.Epoch != lastEpoch+1 {
				t.Errorf("epoch record %d follows %d", ev.Epoch, lastEpoch)
			}
			lastEpoch = ev.Epoch
			epochLines++
		case "fault", "recover":
			// Chaos lines precede the record of the epoch they strike
			// in: that epoch's record has not been emitted yet.
			if ev.Epoch != lastEpoch+1 {
				t.Errorf("chaos line for epoch %d arrived after record %d", ev.Epoch, lastEpoch)
			}
			if ev.ChaosMode != "solar-dropout" || ev.ChaosDetail == "" || ev.Time == "" {
				t.Errorf("malformed chaos line: %+v", ev)
			}
			if ev.Chaos == "fault" {
				faults++
			} else {
				recovers++
			}
		default:
			t.Errorf("unknown chaos kind %q", ev.Chaos)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := mustNew(t, ckptConfig(t)).TotalEpochs(); epochLines != want {
		t.Errorf("epoch records = %d, want %d", epochLines, want)
	}
	if faults == 0 || recovers == 0 {
		t.Errorf("stream has %d faults, %d recoveries; want both (fault at epoch %d)",
			faults, recovers, faultEpoch)
	}
}

// TestChaosStuckForcesGridFallback pins the stuck-at-source semantics
// at the engine level: while the switch is welded, burst epochs run
// grid-fed Normal mode with no battery contribution and no sprinting.
func TestChaosStuckForcesGridFallback(t *testing.T) {
	total := mustNew(t, ckptConfig(t)).TotalEpochs()
	sched, faultEpoch := findChaosSchedule(t, "stuck=5", chaos.PSSStuck, total)
	var recover int
	for _, f := range sched.Faults {
		if f.Mode == chaos.PSSStuck && f.Epoch == faultEpoch {
			recover = f.Recover
		}
	}
	res := mustRunAll(t, mustNew(t, chaosCfg(t, sched, chaos.PSSStuck)))
	checked := 0
	for i := faultEpoch; i < recover && i < len(res.Records); i++ {
		rec := res.Records[i]
		if !rec.InBurst {
			continue
		}
		checked++
		if rec.Case != pss.CaseGridFallback {
			t.Errorf("stuck epoch %d: case %v, want grid-fallback", i, rec.Case)
		}
		if rec.Battery != 0 || rec.SprintFraction != 0 {
			t.Errorf("stuck epoch %d: battery %v, sprint fraction %v; want 0, 0",
				i, rec.Battery, rec.SprintFraction)
		}
	}
	if checked == 0 {
		t.Skipf("stuck window [%d,%d) missed the burst; widen the search", faultEpoch, recover)
	}
}

// TestChaosFullOutage crashes every server at once: the rack serves
// nothing (zero goodput, zero draw) and comes back when the servers
// restart, and the run stays deterministic across repeats.
func TestChaosFullOutage(t *testing.T) {
	sched := &chaos.Schedule{
		Seed: 99, Epochs: 10, Servers: 3, Units: 3,
		Faults: []chaos.Fault{
			{Epoch: 3, Mode: chaos.ServerCrash, Target: 0, Recover: 6},
			{Epoch: 3, Mode: chaos.ServerCrash, Target: 1, Recover: 6},
			{Epoch: 3, Mode: chaos.ServerCrash, Target: 2, Recover: 6},
		},
	}
	cfg := ckptConfig(t)
	cfg.Chaos = sched
	res := mustRunAll(t, mustNew(t, cfg))
	for i := 3; i < 6; i++ {
		rec := res.Records[i]
		if rec.Goodput != 0 || rec.Grid != 0 || rec.Battery != 0 {
			t.Errorf("outage epoch %d: goodput %v grid %v battery %v; want all 0",
				i, rec.Goodput, rec.Grid, rec.Battery)
		}
		if rec.Case != pss.CaseGridFallback {
			t.Errorf("outage epoch %d: case %v", i, rec.Case)
		}
	}
	if rec := res.Records[6]; rec.Goodput == 0 {
		t.Errorf("epoch 6 (post-restart) still serves nothing: %+v", rec)
	}
	cfg2 := ckptConfig(t)
	cfg2.Chaos = sched
	assertSameResult(t, res, mustRunAll(t, mustNew(t, cfg2)))
}
