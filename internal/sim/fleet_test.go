package sim

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/fleet"
	"greensprint/internal/obs"
	"greensprint/internal/pmk"
	"greensprint/internal/solar"
	"greensprint/internal/workload"
)

// fleetCfg builds a run over a generated heterogeneous fleet: total
// servers split across three classes (a default-profile web tier, a
// higher-envelope batch tier and a battery-less archive tier), supply
// scaled to the generated PV attachment.
func fleetCfg(t *testing.T, total int) Config {
	t.Helper()
	spec := &fleet.Spec{
		Name:         "testfleet",
		TotalServers: total,
		RackSize:     8,
		Seed:         11,
		Templates: []fleet.Template{
			{Name: "web", Weight: 5, BatteryAh: 10, Panels: 3},
			{Name: "batch", Weight: 3, PeakPower: 250, BatteryAh: 3.2, BatteryMaxDoD: 0.6, Panels: 2},
			{Name: "archive", Weight: 2},
		},
	}
	topo, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d := 30 * time.Minute
	lead, tail := 10*time.Minute, 10*time.Minute
	supply := solar.Synthesize(solar.Med, lead+d+tail, time.Minute, float64(topo.PeakGreen()), 42)
	return Config{
		Workload: testProfile,
		Green:    cluster.REBatt(),
		Fleet:    spec,
		Strategy: hybrid(t),
		Table:    testTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
	}
}

// TestFleetSingleClassParity is the tentpole's bit-identity golden: a
// single-class default fleet lifted from each Table I config must
// reproduce the flat engine's Result — every record, aggregate and
// knob-transition count — bit for bit. The class-indexed banks and
// knob herds are then provably a pure representation change.
func TestFleetSingleClassParity(t *testing.T) {
	for _, green := range []cluster.GreenConfig{cluster.REBatt(), cluster.RESBatt(), cluster.REOnly()} {
		t.Run(green.Name, func(t *testing.T) {
			flat := ckptConfig(t)
			flat.Green = green
			flat.Supply = solar.Synthesize(solar.Med, 50*time.Minute, time.Minute, float64(green.PeakGreen()), 42)
			ref := mustRunAll(t, mustNew(t, flat))

			fc := flat
			fc.Strategy = hybrid(t)
			spec := fleet.FromGreen(green, 1)
			fc.Fleet = &spec
			e := mustNew(t, fc)
			if e.Topology() == nil {
				t.Fatal("fleet engine has no topology")
			}
			got := mustRunAll(t, e)
			assertSameResult(t, ref, got)
			if ref.Fleet == nil || got.ClassFleet == nil {
				t.Fatal("result fleet exposure: flat run must set Fleet, fleet run ClassFleet")
			}
			wt := 0
			for i := 0; i < ref.Fleet.Size(); i++ {
				if s, ok := ref.Fleet.Knob(i).(*pmk.Sim); ok {
					wt += s.Transitions()
				}
			}
			if gt := got.ClassFleet.Transitions(); wt != gt {
				t.Errorf("knob transitions = %d, want %d", gt, wt)
			}
			if len(got.ClassEnergyWh) != 1 {
				t.Fatalf("ClassEnergyWh = %v, want one class", got.ClassEnergyWh)
			}
		})
	}
}

// TestFleetClassEvents checks the per-class observability stream: a
// multi-class run annotates every epoch event with one ClassStat per
// template, alive counts matching the census, and cumulative energy
// that never decreases.
func TestFleetClassEvents(t *testing.T) {
	cfg := fleetCfg(t, 24)
	var buf strings.Builder
	cfg.Sink = obs.NewJSONL(&buf)
	topo := mustNew(t, cfg).Topology()
	cfg.Strategy = hybrid(t)
	mustRunAll(t, mustNew(t, cfg))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no events emitted")
	}
	prev := make([]float64, len(topo.Classes))
	for _, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Chaos != "" {
			continue
		}
		if len(ev.Classes) != len(topo.Classes) {
			t.Fatalf("epoch %d: %d class stats, want %d", ev.Epoch, len(ev.Classes), len(topo.Classes))
		}
		alive := 0
		for i, cs := range ev.Classes {
			if cs.Name != topo.Classes[i].Name {
				t.Fatalf("epoch %d class %d named %q, want %q", ev.Epoch, i, cs.Name, topo.Classes[i].Name)
			}
			if cs.Alive != topo.Classes[i].Servers {
				t.Fatalf("epoch %d class %q alive = %d, want %d (fault-free run)",
					ev.Epoch, cs.Name, cs.Alive, topo.Classes[i].Servers)
			}
			if cs.EnergyWh < prev[i] {
				t.Fatalf("epoch %d class %q energy %.3f fell below %.3f", ev.Epoch, cs.Name, cs.EnergyWh, prev[i])
			}
			prev[i] = cs.EnergyWh
			alive += cs.Alive
		}
		if alive != topo.Servers {
			t.Fatalf("epoch %d class alive sums to %d, want %d", ev.Epoch, alive, topo.Servers)
		}
	}
}

// TestFleetChaosTopologyMismatch is the guard the chaos layer needs
// once topologies are generated: a schedule resolved for one shape
// must not replay against another. All three axes — servers, units,
// zones — fail loudly at construction.
func TestFleetChaosTopologyMismatch(t *testing.T) {
	cfg := fleetCfg(t, 24)
	topo := mustNew(t, cfg).Topology()
	p, err := chaos.ParseProfile("crash=5")
	if err != nil {
		t.Fatal(err)
	}
	epochs := 50

	// Resolved for the right shape: constructs fine.
	good, err := p.ResolveFor(1, epochs, topo.ChaosTopology())
	if err != nil {
		t.Fatal(err)
	}
	okCfg := cfg
	okCfg.Strategy = hybrid(t)
	okCfg.Chaos = good
	if _, err := New(okCfg); err != nil {
		t.Fatalf("matched schedule rejected: %v", err)
	}

	cases := []struct {
		name string
		topo chaos.Topology
		want string
	}{
		{"servers", chaos.Topology{Servers: topo.Servers + 1, Units: topo.Units, Zones: topo.Zones, ZoneMembers: nil}, "servers"},
		{"units", chaos.Topology{Servers: topo.Servers, Units: topo.Units + 1, Zones: topo.Zones, ZoneMembers: nil}, "battery units"},
		{"zones", chaos.Topology{Servers: topo.Servers, Units: topo.Units, Zones: topo.Zones + 1, ZoneMembers: nil}, "zones"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, err := p.ResolveFor(1, epochs, tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			bad := cfg
			bad.Strategy = hybrid(t)
			bad.Chaos = sched
			if _, err := New(bad); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("mismatched %s schedule: New = %v, want error mentioning %q", tc.name, err, tc.want)
			}
		})
	}

	// The legacy Resolve path (two contiguous zones) against a
	// three-zone fleet must also fail on the zone axis.
	three := cfg
	three.Strategy = hybrid(t)
	three.Fleet = &fleet.Spec{
		Name:         "threezone",
		TotalServers: 24,
		RackSize:     8,
		Zones:        3,
		Seed:         11,
		Templates:    []fleet.Template{{Name: "web", Weight: 1, BatteryAh: 10, Panels: 3}},
	}
	legacy, err := p.Resolve(1, epochs, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	three.Chaos = legacy
	if _, err := New(three); err == nil || !strings.Contains(err.Error(), "zones") {
		t.Errorf("legacy schedule vs 3-zone fleet: New = %v, want zones error", err)
	}
}

// TestFleetZoneOutage runs a fleet under a zone-outage profile
// resolved against the generated zone membership and verifies the
// cascade strikes exactly the zone's servers: during the outage the
// per-class alive census drops by the zone's class census, and it
// recovers afterwards.
func TestFleetZoneOutage(t *testing.T) {
	cfg := fleetCfg(t, 24)
	topo := mustNew(t, cfg).Topology()
	p, err := chaos.ParseProfile("zone=5")
	if err != nil {
		t.Fatal(err)
	}
	e := mustNew(t, cfg)
	total := e.TotalEpochs()

	// Find a seed whose timeline has a mid-run zone outage that
	// recovers before the end (deterministic search, like the flat
	// chaos tests).
	var sched *chaos.Schedule
	var zone, strike int
	for seed := int64(1); seed < 1000 && sched == nil; seed++ {
		s, err := p.ResolveFor(seed, total, topo.ChaosTopology())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range s.Faults {
			if f.Mode != chaos.ZoneOutage || f.Cascade {
				continue
			}
			if f.Epoch >= 2 && f.Recover > f.Epoch && f.Recover < total-2 {
				sched, zone, strike = s, f.Target, f.Epoch
				break
			}
		}
	}
	if sched == nil {
		t.Fatal("no seed under 1000 yields a usable zone outage")
	}

	downByClass := make([]int, len(topo.Classes))
	for _, s := range topo.ZoneMembers()[zone] {
		downByClass[topo.ClassOf(s)]++
	}

	run := cfg
	run.Strategy = hybrid(t)
	run.Chaos = sched
	var buf strings.Builder
	run.Sink = obs.NewJSONL(&buf)
	mustRunAll(t, mustNew(t, run))

	sawOutage := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Chaos != "" || ev.Epoch != strike {
			continue
		}
		sawOutage = true
		for i, cs := range ev.Classes {
			want := topo.Classes[i].Servers - downByClass[i]
			if cs.Alive != want {
				t.Errorf("outage epoch %d class %q alive = %d, want %d (zone %d holds %d of its servers)",
					strike, cs.Name, cs.Alive, want, zone, downByClass[i])
			}
		}
	}
	if !sawOutage {
		t.Fatalf("no epoch record at strike epoch %d", strike)
	}
}

// TestFleetCheckpointRoundTrip cuts a checkpoint from a mid-run
// 10,000-server fleet engine, sends it through JSON, restores into a
// fresh engine and demands the stitched run match the uninterrupted
// reference bit for bit — records, aggregates, per-class energy and
// knob transitions.
func TestFleetCheckpointRoundTrip(t *testing.T) {
	cfg := fleetCfg(t, 10_000)
	ref := mustRunAll(t, mustNew(t, cfg))

	half := fleetCfg(t, 10_000)
	e := mustNew(t, half)
	stopAt := e.TotalEpochs() / 2
	for i := 0; i < stopAt; i++ {
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != CheckpointVersion || cp.ClassFleet == nil || cp.FleetFingerprint == "" {
		t.Fatalf("fleet checkpoint lacks v4 state: version %d, class fleet %v, fingerprint %q",
			cp.Version, cp.ClassFleet != nil, cp.FleetFingerprint)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	fresh := mustNew(t, fleetCfg(t, 10_000))
	if err := fresh.Restore(got); err != nil {
		t.Fatalf("restore fleet checkpoint: %v", err)
	}
	res := mustRunAll(t, fresh)
	assertSameResult(t, ref, res)
	if wt, gt := ref.ClassFleet.Transitions(), res.ClassFleet.Transitions(); wt != gt {
		t.Errorf("knob transitions = %d, want %d", gt, wt)
	}
	if len(res.ClassEnergyWh) != len(ref.ClassEnergyWh) {
		t.Fatalf("ClassEnergyWh lengths differ: %d vs %d", len(res.ClassEnergyWh), len(ref.ClassEnergyWh))
	}
	for i := range ref.ClassEnergyWh {
		if res.ClassEnergyWh[i] != ref.ClassEnergyWh[i] {
			t.Errorf("class %d energy = %v, want %v", i, res.ClassEnergyWh[i], ref.ClassEnergyWh[i])
		}
	}

	// A checkpoint cut from one topology must refuse another: same
	// spec, different seed.
	other := fleetCfg(t, 10_000)
	other.Fleet.Seed++
	if err := mustNew(t, other).Restore(got); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("restore into reseeded topology = %v, want fingerprint error", err)
	}
	// And a flat engine must refuse a fleet checkpoint outright.
	if err := mustNew(t, ckptConfig(t)).Restore(got); err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Errorf("restore fleet checkpoint into flat engine = %v, want fleet topology error", err)
	}
}
