package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/obs"
	"greensprint/internal/strategy"
	"greensprint/internal/trace"
	"greensprint/internal/workload"
)

// stepNCase is one engine configuration the StepN ≡ Step property is
// proved over. The cfg builder returns a fresh Config per call because
// strategies (the Hybrid Q-table in particular) are mutable run state.
type stepNCase struct {
	name string
	cfg  func(t *testing.T) Config
}

// stepNCases spans the batching hazard space: a plain lead/burst/tail
// run (fast segments clipped at the burst boundary), an offered-trace
// replay (fast path disabled entirely), an all-burst breaker-overdraw
// run (trip state changes mid-batch), every chaos mode with a
// mid-timeline fault (segments clipped at fault and recovery epochs),
// and a heterogeneous three-class fleet.
func stepNCases(t *testing.T) []stepNCase {
	t.Helper()
	cases := []stepNCase{
		{"plain", func(t *testing.T) Config { return ckptConfig(t) }},
		{"offered-trace", offeredTraceCfg},
		{"breaker-overdraw", overdrawCfg},
		{"fleet", func(t *testing.T) Config { return fleetCfg(t, 24) }},
	}
	total := mustNew(t, ckptConfig(t)).TotalEpochs()
	for _, mc := range chaosModeCases {
		mc := mc
		sched, _ := findChaosSchedule(t, mc.spec, mc.mode, total)
		cases = append(cases, stepNCase{
			name: "chaos-" + mc.name,
			cfg:  func(t *testing.T) Config { return chaosCfg(t, sched, mc.mode) },
		})
	}
	return cases
}

// offeredTraceCfg layers a ramping offered-rate trace over ckptConfig,
// so every epoch takes the general step path (the fast segment
// requires the square-burst offered model).
func offeredTraceCfg(t *testing.T) Config {
	t.Helper()
	cfg := ckptConfig(t)
	horizon := cfg.Lead + cfg.Burst.Duration + cfg.Tail
	peak := testProfile.IntensityRate(12)
	n := int(horizon / time.Minute)
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = peak * (0.4 + 0.6*float64(i)/float64(n-1))
	}
	cfg.Offered = trace.New("offered", cfg.Supply.Start, time.Minute, samples)
	return cfg
}

// overdrawCfg reproduces TestEngineBreakerOverdrawBurst's three-phase
// supply (sprint, bounded overdraw, trip into grid fallback) so the
// property covers breaker state transitions inside a batch.
func overdrawCfg(t *testing.T) Config {
	t.Helper()
	d := 30 * time.Minute
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	samples := make([]float64, int(d/time.Minute))
	for i := range samples {
		switch {
		case i < 10:
			samples[i] = 440
		case i < 20:
			samples[i] = 330
		default:
			samples[i] = 30
		}
	}
	return Config{
		Workload:             testProfile,
		Green:                cluster.REOnly(),
		Strategy:             strategy.Pacing{},
		Table:                testTable,
		Burst:                workload.Burst{Intensity: 12, Duration: d},
		Supply:               trace.New("dipping", start, time.Minute, samples),
		AllowBreakerOverdraw: true,
	}
}

// assertSameCheckpoint serializes both engines' checkpoints and
// demands byte equality — the strongest statement that no internal
// state diverged, since the checkpoint embeds every Snapshot pair.
func assertSameCheckpoint(t *testing.T, ref, bat *Engine) {
	t.Helper()
	rc, err := ref.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bat.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(rc)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(bc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rj, bj) {
		t.Fatalf("checkpoints diverged after %d epochs:\nsequential %s\nbatched    %s",
			ref.EpochIndex(), rj, bj)
	}
}

// TestStepNMatchesStep is the batching bit-identity property: driving
// an engine with StepN in chunks of any size produces the same
// records, the same JSONL event bytes, and byte-identical checkpoints
// at every batch boundary as driving a twin engine with single Steps.
// Chunk 7 is deliberately coprime to the 10-epoch lead and 30-epoch
// burst so batch boundaries land mid-segment, mid-burst and mid-fault.
func TestStepNMatchesStep(t *testing.T) {
	chunks := []struct {
		name string
		n    int
	}{
		{"chunk-1", 1},
		{"chunk-7", 7},
		{"whole-run", 1 << 20},
	}
	for _, tc := range stepNCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for _, ch := range chunks {
				t.Run(ch.name, func(t *testing.T) {
					var refBuf, batBuf bytes.Buffer
					refCfg := tc.cfg(t)
					refCfg.Sink = obs.NewJSONL(&refBuf)
					ref := mustNew(t, refCfg)
					batCfg := tc.cfg(t)
					batCfg.Sink = obs.NewJSONL(&batBuf)
					bat := mustNew(t, batCfg)

					for {
						ran, err := bat.StepN(ch.n)
						if err != nil {
							t.Fatal(err)
						}
						if ran == 0 {
							break
						}
						for i := 0; i < ran; i++ {
							if _, ok, err := ref.Step(); err != nil {
								t.Fatal(err)
							} else if !ok {
								t.Fatalf("reference exhausted %d epochs into a %d-epoch batch", i, ran)
							}
						}
						assertSameCheckpoint(t, ref, bat)
					}
					if _, ok, err := ref.Step(); err != nil || ok {
						t.Fatalf("batched run stopped early: reference Step = (ok=%v, err=%v)", ok, err)
					}
					assertSameResult(t, ref.Result(), bat.Result())
					if !bytes.Equal(refBuf.Bytes(), batBuf.Bytes()) {
						t.Fatalf("event streams differ: sequential %d bytes, batched %d bytes",
							refBuf.Len(), batBuf.Len())
					}
				})
			}
		})
	}
}

// TestStepNDegenerate pins the edge contracts: non-positive n is a
// no-op, and a consumed horizon yields (0, nil) forever.
func TestStepNDegenerate(t *testing.T) {
	e := mustNew(t, ckptConfig(t))
	for _, n := range []int{0, -3} {
		if ran, err := e.StepN(n); ran != 0 || err != nil {
			t.Fatalf("StepN(%d) = (%d, %v), want (0, nil)", n, ran, err)
		}
	}
	total := e.TotalEpochs()
	if ran, err := e.StepN(total + 50); ran != total || err != nil {
		t.Fatalf("StepN(total+50) = (%d, %v), want (%d, nil)", ran, err, total)
	}
	if ran, err := e.StepN(1); ran != 0 || err != nil {
		t.Fatalf("StepN past horizon = (%d, %v), want (0, nil)", ran, err)
	}
}

// TestStepNSinkError pins the batched sink-failure contract: the
// epochs run to completion, the flush surfaces the first emission
// error wrapped like Step's, and the events before the failure were
// delivered in order.
func TestStepNSinkError(t *testing.T) {
	cfg := ckptConfig(t)
	sink := &failAfterSink{n: 3}
	cfg.Sink = sink
	e := mustNew(t, cfg)
	total := e.TotalEpochs()
	ran, err := e.StepN(total)
	if ran != total {
		t.Fatalf("ran = %d, want %d (epochs commit before the flush fails)", ran, total)
	}
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
	if len(sink.events) != 3 {
		t.Fatalf("delivered events = %d, want 3", len(sink.events))
	}
	for i, ev := range sink.events {
		if ev.Epoch != i {
			t.Errorf("event %d has epoch %d", i, ev.Epoch)
		}
	}
	if got := len(e.Result().Records); got != total {
		t.Errorf("records = %d, want %d", got, total)
	}
}
