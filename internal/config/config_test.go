package config

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Workload = "nope" },
		func(c *Config) { c.Green = "nope" },
		func(c *Config) { c.Strategy = "nope" },
		func(c *Config) { c.BurstIntensity = 0 },
		func(c *Config) { c.BurstIntensity = 13 },
		func(c *Config) { c.BurstDuration = 0 },
		func(c *Config) { c.Availability = "Sometimes" },
	}
	for i, mut := range mutations {
		c := Default()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
	// A trace file replaces the availability requirement.
	c := Default()
	c.Availability = ""
	c.SupplyTrace = "trace.csv"
	if err := c.Validate(); err != nil {
		t.Errorf("trace-backed config should validate: %v", err)
	}
}

func TestResolvers(t *testing.T) {
	c := Default()
	p, err := c.WorkloadProfile()
	if err != nil || p.Name != "SPECjbb" {
		t.Errorf("workload: %v %v", p.Name, err)
	}
	g, err := c.GreenConfig()
	if err != nil || g.Name != "RE-Batt" {
		t.Errorf("green: %v %v", g.Name, err)
	}
	for _, name := range []string{"Min", "Med", "Max"} {
		c.Availability = name
		if _, err := c.AvailabilityLevel(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Default()
	c.Lead = Duration(10 * time.Minute)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"burst_duration": "30m0s"`) {
		t.Errorf("duration encoding: %s", buf.String())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("round trip: %+v vs %+v", back, c)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		`{bad`,
		`{"workload":"SPECjbb","unknown_field":1}`,
		`{"workload":"SPECjbb","green":"RE-Batt","strategy":"Hybrid","burst_intensity":12,"burst_duration":"xyz","availability":"Med"}`,
		`{"workload":"nope","green":"RE-Batt","strategy":"Hybrid","burst_intensity":12,"burst_duration":"10m","availability":"Med"}`,
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	var buf bytes.Buffer
	if err := Default().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload != "SPECjbb" {
		t.Errorf("loaded = %+v", c)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDurationUnmarshalErrors(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("non-string should error")
	}
	if err := d.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Error("bad duration should error")
	}
	if err := d.UnmarshalJSON([]byte(`"90s"`)); err != nil || d.Std() != 90*time.Second {
		t.Errorf("parse: %v %v", d, err)
	}
}
