package config

import (
	"strings"
	"testing"
)

// FuzzRead hardens the tool-config parser: arbitrary JSON must yield
// an error or a config that passes validation.
func FuzzRead(f *testing.F) {
	f.Add(`{"workload":"SPECjbb","green":"RE-Batt","strategy":"Hybrid","burst_intensity":12,"burst_duration":"30m","availability":"Med"}`)
	f.Add(`{"workload":"nope"}`)
	f.Add(`{}`)
	f.Add(`{bad`)
	f.Add(`{"workload":"SPECjbb","green":"RE-Batt","strategy":"Hybrid","burst_intensity":999,"burst_duration":"30m","availability":"Med"}`)
	f.Fuzz(func(t *testing.T, in string) {
		c, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid config: %v", err)
		}
	})
}
