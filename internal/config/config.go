// Package config defines the JSON configuration consumed by the
// GreenSprint executables (greensprint-sim, greensprintd): workload
// selection, Table I green-provisioning option, strategy, burst shape
// and supply-trace source.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/workload"
)

// Duration wraps time.Duration with JSON "10m" string encoding.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("config: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Config is the top-level tool configuration.
type Config struct {
	// Workload is a Table II name: SPECjbb, Web-Search, Memcached.
	Workload string `json:"workload"`
	// Green is a Table I name: RE-Batt, REOnly, RE-SBatt, SRE-SBatt.
	Green string `json:"green"`
	// Strategy is Normal, Greedy, Parallel, Pacing or Hybrid.
	Strategy string `json:"strategy"`
	// Burst shape.
	BurstIntensity int      `json:"burst_intensity"`
	BurstDuration  Duration `json:"burst_duration"`
	// Availability selects the synthetic supply window (Min, Med,
	// Max) when no trace file is given.
	Availability string `json:"availability"`
	// SupplyTrace optionally names a CSV power trace replayed as
	// the renewable supply (NREL-style, as written by tracegen).
	SupplyTrace string `json:"supply_trace,omitempty"`
	// Epoch is the scheduling epoch (default 5m).
	Epoch Duration `json:"epoch,omitempty"`
	// Lead and Tail are non-burst periods around the burst.
	Lead Duration `json:"lead,omitempty"`
	Tail Duration `json:"tail,omitempty"`
}

// Default returns the canonical experiment: SPECjbb, RE-Batt, Hybrid,
// a 30-minute Int=12 burst at medium availability.
func Default() Config {
	return Config{
		Workload:       "SPECjbb",
		Green:          "RE-Batt",
		Strategy:       "Hybrid",
		BurstIntensity: 12,
		BurstDuration:  Duration(30 * time.Minute),
		Availability:   "Med",
		Epoch:          Duration(5 * time.Minute),
	}
}

// Validate resolves and checks every field.
func (c Config) Validate() error {
	if _, err := c.WorkloadProfile(); err != nil {
		return err
	}
	if _, err := c.GreenConfig(); err != nil {
		return err
	}
	if !contains(strategy.Names(), c.Strategy) {
		return fmt.Errorf("config: unknown strategy %q", c.Strategy)
	}
	if c.BurstIntensity < 1 || c.BurstIntensity > 12 {
		return fmt.Errorf("config: burst intensity %d outside [1,12]", c.BurstIntensity)
	}
	if c.BurstDuration.Std() <= 0 {
		return fmt.Errorf("config: non-positive burst duration")
	}
	if c.SupplyTrace == "" {
		if _, err := c.AvailabilityLevel(); err != nil {
			return err
		}
	}
	return nil
}

// WorkloadProfile resolves the workload.
func (c Config) WorkloadProfile() (workload.Profile, error) {
	return workload.ByName(c.Workload)
}

// GreenConfig resolves the Table I option.
func (c Config) GreenConfig() (cluster.GreenConfig, error) {
	return cluster.ByName(c.Green)
}

// AvailabilityLevel resolves the availability class.
func (c Config) AvailabilityLevel() (solar.Availability, error) {
	switch c.Availability {
	case "Min":
		return solar.Min, nil
	case "Med":
		return solar.Med, nil
	case "Max":
		return solar.Max, nil
	default:
		return 0, fmt.Errorf("config: unknown availability %q (want Min, Med or Max)", c.Availability)
	}
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

// Read parses a config from r.
func Read(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Load reads a config file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: open: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Write serializes c to w with indentation.
func (c Config) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
