// Package ablation studies the design choices DESIGN.md calls out,
// beyond the paper's published figures:
//
//   - EWMA smoothing factor (the paper fixed α = 0.3 "as the most
//     consistent"): one-step prediction error across α on real-shaped
//     solar epochs.
//   - Q-table power quantization (the paper fixed 5 %): performance vs
//     table size across step sizes.
//   - Reward shaping: the verbatim Algorithm 1 reward vs the shaped
//     variant the Hybrid strategy learns from (see rl.ShapedReward).
//   - Battery depth-of-discharge: sprint performance vs battery wear
//     across DoD limits (the paper fixed 40 % for a 1300-cycle life).
//   - Renewable source: solar vs the far burstier wind generator.
//   - Distributed (per-PDU) vs centralized renewable integration —
//     §II's architectural argument, quantified.
package ablation

import (
	"context"
	"fmt"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/predictor"
	"greensprint/internal/profile"
	"greensprint/internal/server"
	"greensprint/internal/sim"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/sweep"
	"greensprint/internal/trace"
	"greensprint/internal/units"
	"greensprint/internal/wind"
	"greensprint/internal/workload"
)

// Seed fixes all stochastic inputs.
const Seed = 42

// AlphaPoint is one EWMA-sweep sample.
type AlphaPoint struct {
	Alpha float64
	RMSE  float64
	MAPE  float64
}

// EWMASweep evaluates one-step-ahead EWMA prediction error over a
// generated mixed-sky solar week at the 5-minute epoch scale, across
// smoothing factors. The paper's α = 0.3 should sit at or near the
// error minimum among the tested values.
func EWMASweep(alphas []float64) ([]AlphaPoint, error) {
	cfg := solar.DefaultGeneratorConfig()
	cfg.Seed = Seed
	cfg.Skies = []solar.Sky{
		solar.Clear, solar.PartlyCloudy, solar.Clear, solar.Overcast,
		solar.PartlyCloudy, solar.Clear, solar.PartlyCloudy,
	}
	tr, err := solar.Generate(cfg)
	if err != nil {
		return nil, err
	}
	epochs, err := tr.Resample(sim.DefaultEpoch)
	if err != nil {
		return nil, err
	}
	// Each cell evaluates its own EWMA predictor over the shared,
	// read-only epoch trace.
	return sweep.Map(context.Background(), alphas, func(_ context.Context, _ int, a float64) (AlphaPoint, error) {
		acc := predictor.Evaluate(predictor.NewEWMA(a), epochs)
		return AlphaPoint{Alpha: a, RMSE: acc.RMSE, MAPE: acc.MAPE}, nil
	})
}

// QuantizationPoint is one quantization-sweep sample.
type QuantizationPoint struct {
	Step    float64
	Levels  int
	Perf    float64
	QStates int
}

// QuantizationSweep runs the Med/30-minute SPECjbb cell with Hybrid
// strategies quantizing the power state at different steps. Finer
// steps grow the table without changing the converged decision much —
// the paper's rationale for settling on 5 %.
func QuantizationSweep(steps []float64) ([]QuantizationPoint, error) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return nil, err
	}
	green := cluster.REBatt()
	// The profiling table is shared read-only; every cell builds its
	// own Hybrid (and thus its own mutable Q-table).
	return sweep.Map(context.Background(), steps, func(ctx context.Context, _ int, step float64) (QuantizationPoint, error) {
		h, err := strategy.NewHybridWithOptions(p, tab, strategy.HybridOptions{QuantizationStep: step})
		if err != nil {
			return QuantizationPoint{}, err
		}
		res, err := runCell(ctx, p, tab, green, h, solar.Med, 30*time.Minute)
		if err != nil {
			return QuantizationPoint{}, err
		}
		return QuantizationPoint{
			Step:    step,
			Levels:  int(1/step) + 1,
			Perf:    res.MeanNormPerf,
			QStates: h.QTable().States(),
		}, nil
	})
}

// RewardAblation compares three Hybrid variants on the
// medium-availability 60-minute SPECjbb cell:
//
//	shaped  — the shipped strategy (shaped reward + expected-goodput
//	          safeguard in Decide).
//	literal — verbatim Algorithm 1 reward, but Decide's
//	          expected-goodput safeguard still active: the safeguard
//	          rescues the policy, showing Hybrid is robust to reward
//	          misspecification.
//	naive   — verbatim Algorithm 1 reward with a pure greedy-Q
//	          policy: the violated-QoS branch teaches it to prefer
//	          low power, and it collapses toward Normal mode.
func RewardAblation() (shaped, literal, naive float64, err error) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return 0, 0, 0, err
	}
	green := cluster.REBatt()
	variants := []strategy.HybridOptions{
		{},
		{LiteralReward: true},
		{LiteralReward: true, DisableBurnValue: true},
	}
	out, err := sweep.Map(context.Background(), variants, func(ctx context.Context, _ int, opts strategy.HybridOptions) (float64, error) {
		h, err := strategy.NewHybridWithOptions(p, tab, opts)
		if err != nil {
			return 0, err
		}
		res, err := runCell(ctx, p, tab, green, h, solar.Med, 60*time.Minute)
		if err != nil {
			return 0, err
		}
		return res.MeanNormPerf, nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return out[0], out[1], out[2], nil
}

// DoDPoint is one depth-of-discharge sweep sample.
type DoDPoint struct {
	MaxDoD float64
	Perf   float64
	Cycles float64
	// LifetimeCycles estimates the cycle life at this DoD using the
	// standard inverse relation calibrated to the paper's anchor
	// (40% DoD → 1300 cycles).
	LifetimeCycles float64
}

// DoDSweep runs the Min-availability 30-minute SPECjbb cell across
// battery DoD limits: deeper discharge buys performance at the cost of
// cycle life.
func DoDSweep(dods []float64) ([]DoDPoint, error) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return nil, err
	}
	// Each cell gets its own GreenConfig value (and battery bank via
	// sim.Run) and its own Hybrid learner.
	return sweep.Map(context.Background(), dods, func(ctx context.Context, _ int, dod float64) (DoDPoint, error) {
		green := cluster.REBatt()
		green.MaxDoD = dod
		h, err := strategy.NewHybrid(p, tab)
		if err != nil {
			return DoDPoint{}, err
		}
		res, err := runCell(ctx, p, tab, green, h, solar.Min, 30*time.Minute)
		if err != nil {
			return DoDPoint{}, err
		}
		return DoDPoint{
			MaxDoD:         dod,
			Perf:           res.MeanNormPerf,
			Cycles:         res.BatteryCycles,
			LifetimeCycles: 1300 * 0.40 / dod,
		}, nil
	})
}

// SourceComparison contrasts a solar-powered Med-availability burst
// with a wind-powered one of matched mean supply, reporting the
// Hybrid performance under each.
func SourceComparison(d time.Duration) (solarPerf, windPerf float64, err error) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return 0, 0, err
	}
	green := cluster.REBatt()
	sun := solar.Synthesize(solar.Med, d, time.Minute, float64(green.PeakGreen()), Seed)

	wcfg := wind.DefaultGeneratorConfig()
	wcfg.Duration = d
	wcfg.Seed = Seed
	breeze, err := wind.Generate(wcfg)
	if err != nil {
		return 0, 0, err
	}
	// Match the wind trace's mean to the solar window's mean so the
	// comparison isolates variance, not energy.
	if m := breeze.Mean(); m > 0 {
		breeze = breeze.Scale(sun.Mean()/m).Clip(0, float64(green.PeakGreen()))
	}

	perfs, err := sweep.Map(context.Background(), []*trace.Trace{sun, breeze},
		func(ctx context.Context, _ int, supply *trace.Trace) (float64, error) {
			h, err := strategy.NewHybrid(p, tab)
			if err != nil {
				return 0, err
			}
			res, err := sim.Run(ctx, sim.Config{
				Workload: p,
				Green:    green,
				Strategy: h,
				Table:    tab,
				Burst:    workload.Burst{Intensity: 12, Duration: d},
				Supply:   supply,
			})
			if err != nil {
				return 0, err
			}
			return res.MeanNormPerf, nil
		})
	if err != nil {
		return 0, 0, err
	}
	return perfs[0], perfs[1], nil
}

// IntegrationComparison quantifies §II's architectural argument: with
// distributed (per-PDU) integration the array's full output feeds 3
// green servers (212 W each at peak); a centralized integration
// spreads the same output across all 10 servers (64 W each), which is
// not even enough to lift one server from Normal to a sprint setting.
// It returns the best full-sprint-capable per-server settings'
// normalized performance under each integration at peak supply.
func IntegrationComparison() (distributed, centralized float64, err error) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return 0, 0, err
	}
	green := cluster.REBatt()
	peak := float64(green.PeakGreen())
	level := tab.Levels - 1

	normalPower := float64(p.LoadPower(server.Normal(), p.IntensityRate(12)))
	// Two cells over the shared read-only table:
	//
	//   distributed — 3 servers split the array; each can draw its
	//   share on top of nothing (green bus replaces grid), so the
	//   full per-server share is the budget.
	//
	//   centralized — every server gets peak/10 extra on top of its
	//   Normal grid allocation.
	budgets := []units.Watt{
		units.Watt(peak / float64(green.GreenServers)),
		units.Watt(normalPower + peak/float64(cluster.DefaultServers)),
	}
	perfs, err := sweep.Map(context.Background(), budgets, func(_ context.Context, _ int, budget units.Watt) (float64, error) {
		e, ok := tab.BestWithin(level, budget, nil)
		if !ok {
			return 1, nil
		}
		return e.NormPerf, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return perfs[0], perfs[1], nil
}

func runCell(ctx context.Context, p workload.Profile, tab *profile.Table, green cluster.GreenConfig,
	strat strategy.Strategy, level solar.Availability, d time.Duration) (*sim.Result, error) {

	supply := solar.Synthesize(level, d, time.Minute, float64(green.PeakGreen()), Seed)
	return sim.Run(ctx, sim.Config{
		Workload: p,
		Green:    green,
		Strategy: strat,
		Table:    tab,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
	})
}

// OverdrawComparison quantifies §III-A's last resort: a green-supply
// dip mid-burst with no batteries (REOnly), with and without bounded
// circuit-breaker overdraw. Overdraw bridges the dip; without it the
// rack falls back to Normal mode.
func OverdrawComparison() (plain, overdraw float64, err error) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return 0, 0, err
	}
	d := 30 * time.Minute
	samples := make([]float64, int(d/time.Minute))
	for i := range samples {
		if i < 10 {
			samples[i] = 440
		} else {
			samples[i] = 330
		}
	}
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	supply := trace.New("dipping", start, time.Minute, samples)
	perfs, err := sweep.Map(context.Background(), []bool{false, true},
		func(ctx context.Context, _ int, allow bool) (float64, error) {
			res, err := sim.Run(ctx, sim.Config{
				Workload:             p,
				Green:                cluster.REOnly(),
				Strategy:             strategy.Pacing{},
				Table:                tab,
				Burst:                workload.Burst{Intensity: 12, Duration: d},
				Supply:               supply,
				AllowBreakerOverdraw: allow,
			})
			if err != nil {
				return 0, err
			}
			return res.MeanNormPerf, nil
		})
	if err != nil {
		return 0, 0, err
	}
	return perfs[0], perfs[1], nil
}

// FailureKind names an injected fault.
type FailureKind int

const (
	// CloudTransient zeroes the renewable supply for a window in
	// the middle of the burst.
	CloudTransient FailureKind = iota
	// BatteryDead starts the burst with batteries at the DoD floor.
	BatteryDead
)

// String implements fmt.Stringer.
func (k FailureKind) String() string {
	switch k {
	case CloudTransient:
		return "cloud-transient"
	case BatteryDead:
		return "battery-dead"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// InjectFailure runs the Med/30-minute SPECjbb cell with the given
// fault injected and returns the result; the controller must degrade
// gracefully (no panic, fallback to Normal) and recover after the
// fault clears.
func InjectFailure(kind FailureKind) (*sim.Result, error) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		return nil, err
	}
	green := cluster.REBatt()
	d := 30 * time.Minute
	supply := solar.Synthesize(solar.Med, d, time.Minute, float64(green.PeakGreen()), Seed)
	switch kind {
	case CloudTransient:
		// Zero the middle third of the supply.
		from, to := supply.Len()/3, 2*supply.Len()/3
		for i := from; i < to; i++ {
			supply.Samples[i] = 0
		}
	case BatteryDead:
		// Modelled by removing the batteries entirely (an empty
		// bank and a floored bank supply the same: nothing).
		green.BatteryAh = 0
	}
	h, err := strategy.NewHybrid(p, tab)
	if err != nil {
		return nil, err
	}
	return sim.Run(context.Background(), sim.Config{
		Workload: p,
		Green:    green,
		Strategy: h,
		Table:    tab,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
	})
}

// CalibrationPoint is one calibration-sensitivity sample.
type CalibrationPoint struct {
	// Knob names the perturbed parameter; Delta is the relative
	// perturbation applied.
	Knob  string
	Delta float64
	// Gain is the resulting max-sprint gain over Normal.
	Gain float64
}

// CalibrationSensitivity perturbs the two fitted per-app performance
// knobs (the frequency exponent ψ and the oversubscription penalty)
// by ±20% and reports the SPECjbb headline gain under each — the
// robustness check behind EXPERIMENTS.md's claim that the reproduced
// shapes do not hinge on a knife-edge calibration.
func CalibrationSensitivity() ([]CalibrationPoint, error) {
	base := workload.SPECjbb()
	type perturbation struct {
		knob   string
		delta  float64
		mutate func(*workload.Profile)
	}
	cells := []perturbation{
		{"baseline", 0, func(*workload.Profile) {}},
	}
	for _, d := range []float64{-0.2, 0.2} {
		d := d
		cells = append(cells,
			perturbation{"freq_exponent", d, func(p *workload.Profile) {
				p.FreqExponent *= 1 + d
			}},
			perturbation{"oversub_penalty", d, func(p *workload.Profile) {
				p.OversubPenalty *= 1 + d
			}})
	}
	// Each cell mutates its own value copy of the base profile.
	return sweep.Map(context.Background(), cells, func(_ context.Context, _ int, c perturbation) (CalibrationPoint, error) {
		p := base
		c.mutate(&p)
		if err := p.Validate(); err != nil {
			return CalibrationPoint{}, err
		}
		return CalibrationPoint{
			Knob:  c.knob,
			Delta: c.delta,
			Gain:  p.NormalizedPerf(server.MaxSprint()),
		}, nil
	})
}
