package ablation

import (
	"testing"
	"time"

	"greensprint/internal/pss"
)

func TestEWMASweep(t *testing.T) {
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pts, err := EWMASweep(alphas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(alphas) {
		t.Fatalf("points = %d", len(pts))
	}
	byAlpha := map[float64]AlphaPoint{}
	for _, p := range pts {
		if p.RMSE <= 0 {
			t.Errorf("alpha %v RMSE = %v", p.Alpha, p.RMSE)
		}
		byAlpha[p.Alpha] = p
	}
	// The paper's choice (0.3) must beat the sluggish extreme (0.9)
	// and be within 25% of the best tested alpha.
	if byAlpha[0.3].RMSE >= byAlpha[0.9].RMSE {
		t.Errorf("alpha 0.3 (%v) should beat 0.9 (%v)", byAlpha[0.3].RMSE, byAlpha[0.9].RMSE)
	}
	best := pts[0].RMSE
	for _, p := range pts {
		if p.RMSE < best {
			best = p.RMSE
		}
	}
	if byAlpha[0.3].RMSE > best*1.25 {
		t.Errorf("alpha 0.3 RMSE %v too far from best %v", byAlpha[0.3].RMSE, best)
	}
}

func TestQuantizationSweep(t *testing.T) {
	pts, err := QuantizationSweep([]float64{0.025, 0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Finer steps mean more levels.
	if !(pts[0].Levels > pts[1].Levels && pts[1].Levels > pts[2].Levels) {
		t.Errorf("levels not decreasing: %+v", pts)
	}
	// Performance should be insensitive to the step (the paper's
	// rationale for 5%): all within 10% of each other.
	for _, p := range pts {
		if p.Perf < pts[1].Perf*0.9 || p.Perf > pts[1].Perf*1.1 {
			t.Errorf("step %v perf %v diverges from 5%% step %v", p.Step, p.Perf, pts[1].Perf)
		}
	}
}

func TestRewardAblation(t *testing.T) {
	shaped, literal, naive, err := RewardAblation()
	if err != nil {
		t.Fatal(err)
	}
	if shaped < 2.5 {
		t.Errorf("shaped Med/60m perf = %v, want ~3.2", shaped)
	}
	// The expected-goodput safeguard rescues a misspecified reward.
	if literal < shaped*0.9 {
		t.Errorf("safeguarded literal %v should track shaped %v", literal, shaped)
	}
	// Without the safeguard, the literal Algorithm 1 reward teaches
	// the policy to avoid delivered QoS: it loses a clear margin to
	// the shipped Hybrid (it only sprints while supply is abundant
	// enough for the met-QoS branch).
	if naive > shaped-0.4 {
		t.Errorf("naive literal %v should trail shaped %v by a clear margin", naive, shaped)
	}
}

func TestDoDSweep(t *testing.T) {
	pts, err := DoDSweep([]float64{0.2, 0.4, 0.6, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// Deeper discharge never hurts performance and strictly helps
	// somewhere.
	for i := 1; i < len(pts); i++ {
		if pts[i].Perf < pts[i-1].Perf-1e-9 {
			t.Errorf("perf decreasing with DoD: %+v", pts)
		}
	}
	if pts[len(pts)-1].Perf <= pts[0].Perf {
		t.Error("deep discharge should buy performance at Min availability")
	}
	// ...but costs cycle life.
	for i := 1; i < len(pts); i++ {
		if pts[i].LifetimeCycles >= pts[i-1].LifetimeCycles {
			t.Errorf("lifetime not decreasing with DoD: %+v", pts)
		}
	}
	// Anchor: 40% DoD → 1300 cycles.
	if pts[1].LifetimeCycles != 1300 {
		t.Errorf("40%% DoD lifetime = %v", pts[1].LifetimeCycles)
	}
}

func TestSourceComparison(t *testing.T) {
	solarPerf, windPerf, err := SourceComparison(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if solarPerf <= 1 || windPerf <= 1 {
		t.Errorf("both sources should enable sprinting: solar %v wind %v", solarPerf, windPerf)
	}
	// At matched mean supply the burstier wind source should not
	// outperform solar by more than noise (usually it is worse).
	if windPerf > solarPerf*1.1 {
		t.Errorf("wind %v should not beat solar %v at matched mean", windPerf, solarPerf)
	}
}

func TestIntegrationComparison(t *testing.T) {
	dist, cent, err := IntegrationComparison()
	if err != nil {
		t.Fatal(err)
	}
	// §II: distributed integration enables serious sprinting on the
	// green servers; centralized spreads the supply too thin.
	if dist < 4 {
		t.Errorf("distributed perf = %v, want near max sprint", dist)
	}
	if cent >= dist {
		t.Errorf("centralized %v should trail distributed %v", cent, dist)
	}
}

func TestInjectCloudTransient(t *testing.T) {
	res, err := InjectFailure(CloudTransient)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.BurstRecords()
	if len(recs) != 6 {
		t.Fatalf("epochs = %d", len(recs))
	}
	// The controller must keep serving throughout (>= Normal): the
	// transient degrades performance but never drops service.
	for i, rec := range recs {
		if rec.NormPerf < 0.99 {
			t.Errorf("epoch %d perf = %v, below Normal", i, rec.NormPerf)
		}
	}
	// Before the transient the burst sprints.
	if !recs[0].Config.IsSprinting() {
		t.Errorf("no sprint before transient: %+v", recs[0])
	}
	// During the outage the batteries bridge first (sprint continues
	// on battery power), then the rack falls back to the grid
	// instead of failing.
	sawBattery, sawFallback := false, false
	for _, rec := range recs[1:] {
		if rec.Case == pss.CaseBatteryOnly {
			sawBattery = true
		}
		if rec.Case == pss.CaseGridFallback {
			sawFallback = true
		}
	}
	if !sawBattery {
		t.Error("expected battery bridging during the supply outage")
	}
	if !sawFallback {
		t.Error("expected a grid fallback once the batteries drained")
	}
	// After the supply returns, whatever green power exists is used
	// again (offsetting grid draw even when it cannot fund a sprint).
	if last := recs[len(recs)-1]; last.Green <= 0 {
		t.Errorf("green power unused after recovery: %+v", last)
	}
}

func TestInjectBatteryDead(t *testing.T) {
	res, err := InjectFailure(BatteryDead)
	if err != nil {
		t.Fatal(err)
	}
	// Without batteries, Med availability still allows partial
	// sprinting from green alone, and every shortfall epoch falls
	// back to the grid rather than failing.
	for _, rec := range res.BurstRecords() {
		if rec.Battery != 0 {
			t.Errorf("battery power with dead batteries: %+v", rec)
		}
		if rec.Case == pss.CaseGreenPlusBattery || rec.Case == pss.CaseBatteryOnly {
			t.Errorf("battery case with dead batteries: %v", rec.Case)
		}
	}
	if res.MeanNormPerf < 1 {
		t.Errorf("perf = %v", res.MeanNormPerf)
	}
}

func TestFailureKindString(t *testing.T) {
	if CloudTransient.String() != "cloud-transient" || BatteryDead.String() != "battery-dead" {
		t.Error("names")
	}
	if FailureKind(9).String() != "FailureKind(9)" {
		t.Error("unknown formatting")
	}
}

func TestOverdrawComparison(t *testing.T) {
	plain, overdraw, err := OverdrawComparison()
	if err != nil {
		t.Fatal(err)
	}
	if overdraw <= plain {
		t.Errorf("overdraw %v should beat plain %v on the dip scenario", overdraw, plain)
	}
	if plain < 1 || overdraw > 5 {
		t.Errorf("values out of range: %v %v", plain, overdraw)
	}
}

func TestCalibrationSensitivity(t *testing.T) {
	pts, err := CalibrationSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	var base float64
	for _, p := range pts {
		if p.Knob == "baseline" {
			base = p.Gain
		}
	}
	if base < 4.5 || base > 5.1 {
		t.Fatalf("baseline gain = %v", base)
	}
	for _, p := range pts {
		// ±20% knob perturbations move the headline gain, but it
		// stays within ±15% of the calibrated value — the shapes do
		// not hinge on a knife-edge fit.
		if rel := (p.Gain - base) / base; rel > 0.15 || rel < -0.15 {
			t.Errorf("%s %+.0f%%: gain %v drifts %.0f%% from baseline %v",
				p.Knob, p.Delta*100, p.Gain, rel*100, base)
		}
		// Directionality: a higher oversubscription penalty widens
		// the gain (Normal suffers more), a higher frequency
		// exponent widens it too (Normal's slow clock hurts more).
		if p.Delta > 0 && p.Gain < base {
			t.Errorf("%s +20%% should not shrink the gain: %v < %v", p.Knob, p.Gain, base)
		}
		if p.Delta < 0 && p.Gain > base {
			t.Errorf("%s -20%% should not widen the gain: %v > %v", p.Knob, p.Gain, base)
		}
	}
}
