package ablation

import (
	"math"
	"runtime"
	"strconv"
	"testing"

	"greensprint/internal/sweep"
)

// sameBits reports whether two floats are bit-identical (the golden
// determinism bar: not "close", equal).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestDoDSweepGoldenDeterminism is the ablation half of the
// determinism golden test: the DoD sweep must produce bit-identical
// results run serially twice and under the parallel engine with
// GOMAXPROCS forced to 1, 4 and 8.
func TestDoDSweepGoldenDeterminism(t *testing.T) {
	dods := []float64{0.2, 0.4, 0.6, 0.8}
	run := func() []DoDPoint {
		t.Helper()
		pts, err := DoDSweep(dods)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(dods) {
			t.Fatalf("points = %d", len(pts))
		}
		return pts
	}
	check := func(label string, got, want []DoDPoint) {
		t.Helper()
		for i := range want {
			if !sameBits(got[i].Perf, want[i].Perf) ||
				!sameBits(got[i].Cycles, want[i].Cycles) ||
				!sameBits(got[i].MaxDoD, want[i].MaxDoD) ||
				!sameBits(got[i].LifetimeCycles, want[i].LifetimeCycles) {
				t.Errorf("%s: point %d = %+v, want bit-identical %+v", label, i, got[i], want[i])
			}
		}
	}

	// Golden reference: two strictly serial runs must agree with each
	// other first.
	prevWorkers := sweep.SetDefaultWorkers(1)
	defer sweep.SetDefaultWorkers(prevWorkers)
	golden := run()
	check("serial rerun", run(), golden)

	sweep.SetDefaultWorkers(0) // back to GOMAXPROCS-wide pools
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		check("GOMAXPROCS="+strconv.Itoa(procs), run(), golden)
	}
}
