package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"greensprint/internal/cluster"
	"greensprint/internal/core"
	"greensprint/internal/obs"
	"greensprint/internal/workload"
)

func newServer(t *testing.T) (*Server, *core.Controller) {
	t.Helper()
	ctrl, err := core.New(core.Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Hybrid",
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(ctrl), ctrl
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestStatus(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, "/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status code = %d", rec.Code)
	}
	var st core.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Workload != "SPECjbb" || st.Strategy != "Hybrid" {
		t.Errorf("status = %+v", st)
	}
}

func TestStepAndHistory(t *testing.T) {
	s, _ := newServer(t)
	body := `{"GreenPower":635,"OfferedRate":1400,"Goodput":120,"Latency":0.4,"ServerPower":100}`
	req := httptest.NewRequest(http.MethodPost, "/step", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("step code = %d: %s", rec.Code, rec.Body.String())
	}
	var d core.Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 0 {
		t.Errorf("decision = %+v", d)
	}
	// History now has one entry.
	hrec := get(t, s, "/history")
	var hist []core.Decision
	if err := json.Unmarshal(hrec.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Errorf("history = %d", len(hist))
	}
}

func TestStepBadBody(t *testing.T) {
	s, _ := newServer(t)
	for _, body := range []string{`{bad`, `{"Nope":1}`} {
		req := httptest.NewRequest(http.MethodPost, "/step", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: code = %d", body, rec.Code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := newServer(t)
	cases := []struct{ method, path string }{
		{http.MethodPost, "/status"},
		{http.MethodPost, "/history"},
		{http.MethodGet, "/step"},
		{http.MethodPost, "/healthz"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: code = %d", c.method, c.path, rec.Code)
		}
	}
}

func TestNotFound(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, "/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("code = %d", rec.Code)
	}
}

func TestQTableEndpoint(t *testing.T) {
	s, _ := newServer(t) // Hybrid controller
	rec := get(t, s, "/qtable")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	var tab struct {
		Actions int `json:"actions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tab); err != nil {
		t.Fatal(err)
	}
	if tab.Actions != 63 {
		t.Errorf("actions = %d", tab.Actions)
	}
	// Non-Hybrid strategies have no table.
	ctrl, err := core.New(core.Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = get(t, New(ctrl), "/qtable")
	if rec.Code != http.StatusNotFound {
		t.Errorf("greedy qtable code = %d", rec.Code)
	}
	// Method check.
	req := httptest.NewRequest(http.MethodPost, "/qtable", strings.NewReader("{}"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST code = %d", w.Code)
	}
}

// stepOnce feeds one epoch of telemetry through the API.
func stepOnce(t *testing.T, s *Server) {
	t.Helper()
	body := `{"GreenPower":635,"OfferedRate":1400,"Goodput":120,"Latency":0.6,"ServerPower":100}`
	req := httptest.NewRequest(http.MethodPost, "/step", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("step code = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	collector := obs.NewCollector()
	ctrl, err := core.New(core.Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Hybrid",
		Sink:         collector,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(ctrl, WithMetrics(collector))
	stepOnce(t, s)
	stepOnce(t, s)

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics code = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"greensprint_epochs_total 2",
		`greensprint_decisions_total{config=`,
		"greensprint_battery_soc ",
		"greensprint_epoch_latency_seconds_count 2",
		"greensprint_supply_case_total{case=",
		// SPECjbb's deadline is 0.5 s and the injected latency 0.6 s.
		"greensprint_qos_violations_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every sample line must parse as `name{labels} value`.
	for i, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(ln, "#") || ln == "" {
			continue
		}
		sp := strings.LastIndex(ln, " ")
		if sp <= 0 {
			t.Fatalf("line %d: no value separator: %q", i, ln)
		}
		if v := ln[sp+1:]; v != "+Inf" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Errorf("line %d: unparseable value %q", i, v)
			}
		}
	}
}

func TestMetricsDisabled(t *testing.T) {
	s, _ := newServer(t)
	if rec := get(t, s, "/metrics"); rec.Code != http.StatusNotFound {
		t.Errorf("metrics without collector: code = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics code = %d", rec.Code)
	}
}

// TestQTableBuffered is the regression test for the truncated-stream
// bug: the handler must buffer the whole encode, set Content-Length,
// and turn an encoding failure into a 500 — never a 200 with a
// truncated body.
func TestQTableBuffered(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, "/qtable")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(rec.Body.Len()) {
		t.Errorf("Content-Length = %q, body is %d bytes", cl, rec.Body.Len())
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Error("qtable response is not complete JSON")
	}

	s.qtableJSON = func() ([]byte, bool, error) {
		return nil, true, errors.New("encode exploded")
	}
	rec = get(t, s, "/qtable")
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("failing encode: code = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "encode exploded") {
		t.Errorf("error body = %q", rec.Body.String())
	}
}

func TestPprofOptIn(t *testing.T) {
	s, _ := newServer(t)
	if rec := get(t, s, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof without opt-in: code = %d", rec.Code)
	}
	ctrl, err := core.New(core.Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Hybrid",
	})
	if err != nil {
		t.Fatal(err)
	}
	s = New(ctrl, WithPprof())
	if rec := get(t, s, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof index code = %d", rec.Code)
	}
}
