package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"greensprint/internal/cluster"
	"greensprint/internal/core"
	"greensprint/internal/workload"
)

func newServer(t *testing.T) (*Server, *core.Controller) {
	t.Helper()
	ctrl, err := core.New(core.Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Hybrid",
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(ctrl), ctrl
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestStatus(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, "/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status code = %d", rec.Code)
	}
	var st core.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Workload != "SPECjbb" || st.Strategy != "Hybrid" {
		t.Errorf("status = %+v", st)
	}
}

func TestStepAndHistory(t *testing.T) {
	s, _ := newServer(t)
	body := `{"GreenPower":635,"OfferedRate":1400,"Goodput":120,"Latency":0.4,"ServerPower":100}`
	req := httptest.NewRequest(http.MethodPost, "/step", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("step code = %d: %s", rec.Code, rec.Body.String())
	}
	var d core.Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 0 {
		t.Errorf("decision = %+v", d)
	}
	// History now has one entry.
	hrec := get(t, s, "/history")
	var hist []core.Decision
	if err := json.Unmarshal(hrec.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Errorf("history = %d", len(hist))
	}
}

func TestStepBadBody(t *testing.T) {
	s, _ := newServer(t)
	for _, body := range []string{`{bad`, `{"Nope":1}`} {
		req := httptest.NewRequest(http.MethodPost, "/step", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: code = %d", body, rec.Code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := newServer(t)
	cases := []struct{ method, path string }{
		{http.MethodPost, "/status"},
		{http.MethodPost, "/history"},
		{http.MethodGet, "/step"},
		{http.MethodPost, "/healthz"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: code = %d", c.method, c.path, rec.Code)
		}
	}
}

func TestNotFound(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, "/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("code = %d", rec.Code)
	}
}

func TestQTableEndpoint(t *testing.T) {
	s, _ := newServer(t) // Hybrid controller
	rec := get(t, s, "/qtable")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	var tab struct {
		Actions int `json:"actions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tab); err != nil {
		t.Fatal(err)
	}
	if tab.Actions != 63 {
		t.Errorf("actions = %d", tab.Actions)
	}
	// Non-Hybrid strategies have no table.
	ctrl, err := core.New(core.Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = get(t, New(ctrl), "/qtable")
	if rec.Code != http.StatusNotFound {
		t.Errorf("greedy qtable code = %d", rec.Code)
	}
	// Method check.
	req := httptest.NewRequest(http.MethodPost, "/qtable", strings.NewReader("{}"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST code = %d", w.Code)
	}
}
