// Package httpapi exposes the greensprintd controller over HTTP:
//
//	GET  /healthz  — liveness probe
//	GET  /status   — current controller snapshot (JSON)
//	GET  /history  — retained per-epoch decisions (JSON)
//	POST /step     — feed one epoch of telemetry and run the control
//	                 loop; body is a core.Telemetry JSON object and the
//	                 response is the resulting Decision.
//
// POST /step exists so external monitors (or the simulator) can drive
// the daemon; when greensprintd runs with its internal ticker the
// endpoint remains available for manual injection during debugging.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"greensprint/internal/core"
)

// Server wraps a controller with HTTP handlers.
type Server struct {
	ctrl *core.Controller
	mux  *http.ServeMux
}

// New creates the API server for a controller.
func New(ctrl *core.Controller) *Server {
	s := &Server{ctrl: ctrl, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/history", s.handleHistory)
	s.mux.HandleFunc("/step", s.handleStep)
	s.mux.HandleFunc("/qtable", s.handleQTable)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	writeJSON(w, http.StatusOK, s.ctrl.Snapshot())
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	writeJSON(w, http.StatusOK, s.ctrl.History())
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var tel core.Telemetry
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tel); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	d, err := s.ctrl.Step(tel)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleQTable serves the Hybrid strategy's learned Q-table (the same
// JSON the -qtable persistence flag writes); 404 for other strategies.
func (s *Server) handleQTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	h, ok := s.ctrl.HybridStrategy()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "strategy " + s.ctrl.Strategy() + " has no Q-table",
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := h.SaveQ(w); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func methodNotAllowed(w http.ResponseWriter) {
	writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding errors after the header is written can only be
	// connection failures; nothing useful remains to be done.
	_ = enc.Encode(v)
}
