// Package httpapi exposes the greensprintd controller over HTTP:
//
//	GET  /healthz  — liveness probe
//	GET  /status   — current controller snapshot (JSON)
//	GET  /history  — retained per-epoch decisions (JSON)
//	GET  /metrics  — Prometheus text-format metric catalog (enabled
//	                 with WithMetrics)
//	GET  /debug/pprof/* — runtime profiles (opt-in via WithPprof)
//	POST /step     — feed one epoch of telemetry and run the control
//	                 loop; body is a core.Telemetry JSON object and the
//	                 response is the resulting Decision.
//
// POST /step exists so external monitors (or the simulator) can drive
// the daemon; when greensprintd runs with its internal ticker the
// endpoint remains available for manual injection during debugging.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"greensprint/internal/core"
	"greensprint/internal/obs"
)

// Server wraps a controller with HTTP handlers.
type Server struct {
	ctrl      *core.Controller
	mux       *http.ServeMux
	collector *obs.Collector
	// qtableJSON is the buffered Q-table encoder (a seam for tests;
	// defaults to ctrl.QTableJSON).
	qtableJSON func() ([]byte, bool, error)
}

// Option customizes the API server.
type Option func(*Server)

// WithMetrics serves c's Prometheus catalog on GET /metrics.
func WithMetrics(c *obs.Collector) Option {
	return func(s *Server) { s.collector = c }
}

// WithPprof mounts net/http/pprof's profile handlers under
// /debug/pprof/. Opt-in: profiling endpoints expose goroutine stacks
// and should not be reachable on an unprotected production port by
// default.
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// New creates the API server for a controller.
func New(ctrl *core.Controller, opts ...Option) *Server {
	s := &Server{ctrl: ctrl, mux: http.NewServeMux(), qtableJSON: ctrl.QTableJSON}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/history", s.handleHistory)
	s.mux.HandleFunc("/step", s.handleStep)
	s.mux.HandleFunc("/qtable", s.handleQTable)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	for _, o := range opts {
		o(s)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	writeJSON(w, http.StatusOK, s.ctrl.Snapshot())
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	writeJSON(w, http.StatusOK, s.ctrl.History())
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var tel core.Telemetry
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tel); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	d, err := s.ctrl.Step(tel)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleQTable serves the Hybrid strategy's learned Q-table (the same
// JSON the -qtable persistence flag writes); 404 for other strategies.
// The table is encoded into a buffer before any byte reaches the wire,
// so an encoding failure yields a clean 500 instead of truncated JSON
// with status 200.
func (s *Server) handleQTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	b, ok, err := s.qtableJSON()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "strategy " + s.ctrl.Strategy() + " has no Q-table",
		})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

// handleMetrics renders the Prometheus text-format catalog; 404 when
// the daemon was started without a metrics collector.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	if s.collector == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "metrics not enabled"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Render errors after the header is written can only be connection
	// failures, as with writeJSON.
	_ = s.collector.WritePrometheus(w)
}

func methodNotAllowed(w http.ResponseWriter) {
	writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding errors after the header is written can only be
	// connection failures; nothing useful remains to be done.
	_ = enc.Encode(v)
}
