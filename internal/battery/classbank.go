package battery

import (
	"fmt"
	"time"

	"greensprint/internal/units"
)

// ClassSpec declares one battery class of a fleet: a unit
// configuration shared by Count servers.
type ClassSpec struct {
	Config Config
	Count  int
}

// classGroup is a run of units in identical state: same class (so same
// Config) and same mutable state, represented by one exemplar unit.
// Groups form an ordered partition of the bank's unit index space —
// group g covers the Count units after the groups before it.
//
// Even discharge/charge splitting keeps every unit of a class in
// lockstep, so a fleet of 10,000 units is usually a handful of groups:
// all per-epoch operations touch the exemplar once and weight the
// result by Count. Only a targeted chaos degradation breaks a unit out
// of its group (DegradeUnit splits the run), which mirrors how
// Bank's shared-memo optimization stops sharing across degraded units.
type classGroup struct {
	class int
	count int
	unit  *Battery
}

// ClassBank is the structure-of-arrays generalization of Bank: the
// fleet's battery units grouped by (class, state) instead of stored
// per unit, so aggregate operations cost O(groups) rather than
// O(units). For the paper's single-class topologies it is numerically
// identical to Bank (unit counts ≤ 3 make the weighted sums exact).
// A ClassBank is stateful and not safe for concurrent use.
type ClassBank struct {
	specs  []ClassSpec
	groups []classGroup
	size   int
}

// NewClassBank creates the fleet's units fully charged, one group per
// class, units numbered class-major in spec order.
func NewClassBank(specs []ClassSpec) (*ClassBank, error) {
	b := &ClassBank{specs: append([]ClassSpec(nil), specs...)}
	for i, s := range specs {
		if s.Count < 1 {
			return nil, fmt.Errorf("battery: class %d count %d < 1", i, s.Count)
		}
		u, err := New(s.Config)
		if err != nil {
			return nil, fmt.Errorf("battery: class %d: %w", i, err)
		}
		b.groups = append(b.groups, classGroup{class: i, count: s.Count, unit: u})
		b.size += s.Count
	}
	return b, nil
}

// Size returns the total number of units represented.
func (b *ClassBank) Size() int { return b.size }

// Groups returns the current group count (units in distinct states) —
// the quantity per-epoch cost actually scales with.
func (b *ClassBank) Groups() int { return len(b.groups) }

// availCount returns the number of units not at the DoD floor.
func (b *ClassBank) availCount() int {
	n := 0
	for _, g := range b.groups {
		if !g.unit.AtFloor() {
			n += g.count
		}
	}
	return n
}

// MaxDoD returns the most conservative (smallest) depth-of-discharge
// limit across classes, which is exact for single-class fleets and a
// safe floor for mixed ones. An empty bank returns 0.
func (b *ClassBank) MaxDoD() float64 {
	min := 0.0
	for i, s := range b.specs {
		if i == 0 || s.Config.MaxDoD < min {
			min = s.Config.MaxDoD
		}
	}
	return min
}

// MaxSustainablePower returns the aggregate constant power the fleet's
// batteries can hold for duration d: one bisection per group, weighted
// by group size. Each exemplar's memo makes per-epoch repeats free,
// exactly like Bank's shared-run optimization.
func (b *ClassBank) MaxSustainablePower(d time.Duration) units.Watt {
	var sum units.Watt
	for _, g := range b.groups {
		if g.unit.AtFloor() {
			continue
		}
		sum += units.Watt(float64(g.count) * float64(g.unit.MaxSustainablePower(d)))
	}
	return sum
}

// RemainingTime returns how long the fleet sustains an aggregate draw
// split evenly across available units: the Peukert full-drain time is
// computed once per group and the weakest group bounds the bank.
func (b *ClassBank) RemainingTime(p units.Watt) time.Duration {
	if p <= 0 {
		return 1<<63 - 1
	}
	avail := b.availCount()
	if avail == 0 {
		return 0
	}
	per := units.Watt(float64(p) / float64(avail))
	min := time.Duration(1<<63 - 1)
	for _, g := range b.groups {
		if g.unit.AtFloor() {
			continue
		}
		if t := g.unit.remainingTimeWithFull(g.unit.timeToEmpty(per)); t < min {
			min = t
		}
	}
	return min
}

// Discharge draws aggregate power p for duration d, split evenly over
// the available units. Every unit of a group is in the same state, so
// one exemplar discharge advances them all; the weakest group limits
// the sustained duration, as the weakest unit does for Bank.
func (b *ClassBank) Discharge(p units.Watt, d time.Duration) (time.Duration, error) {
	if p <= 0 || d <= 0 {
		return 0, nil
	}
	avail := b.availCount()
	if avail == 0 {
		return 0, ErrEmpty
	}
	per := units.Watt(float64(p) / float64(avail))
	min := d
	var firstErr error
	for _, g := range b.groups {
		if g.unit.AtFloor() {
			continue
		}
		took, err := g.unit.Discharge(per, d)
		if took < min {
			min = took
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return min, firstErr
}

// Charge distributes charging power evenly across all units and
// returns the total energy accepted.
func (b *ClassBank) Charge(p units.Watt, d time.Duration) units.WattHour {
	if b.size == 0 || p <= 0 || d <= 0 {
		return 0
	}
	per := units.Watt(float64(p) / float64(b.size))
	var total units.WattHour
	for _, g := range b.groups {
		total += units.WattHour(float64(g.count) * float64(g.unit.Charge(per, d)))
	}
	return total
}

// DegradeUnit applies a permanent chaos degradation to unit i. The
// unit's group splits so the degraded unit gets its own exemplar and
// the healthy neighbours keep theirs — after the split each group
// still holds units in identical state.
func (b *ClassBank) DegradeUnit(i int, capFactor, resistFactor float64) error {
	if i < 0 || i >= b.size {
		return fmt.Errorf("battery: degrade: unit %d of %d", i, b.size)
	}
	gi, offset := 0, i
	for offset >= b.groups[gi].count {
		offset -= b.groups[gi].count
		gi++
	}
	g := b.groups[gi]
	if g.count == 1 {
		return g.unit.Degrade(capFactor, resistFactor)
	}
	// Split the run at the target: [before][target][after]. Each part
	// needs its own exemplar — groups apply mutations once apiece, so
	// sharing a *Battery across groups would double-apply them.
	target := *g.unit
	if err := target.Degrade(capFactor, resistFactor); err != nil {
		return err
	}
	var parts [3]classGroup
	np := 0
	if offset > 0 {
		parts[np] = classGroup{class: g.class, count: offset, unit: g.unit}
		np++
	}
	parts[np] = classGroup{class: g.class, count: 1, unit: &target}
	np++
	if rest := g.count - offset - 1; rest > 0 {
		after := *g.unit
		parts[np] = classGroup{class: g.class, count: rest, unit: &after}
		np++
	}
	//greensprint:allow(allocfree) group-list splice on the BatteryDegrade fault path: runs once per injected fault, never per epoch
	b.groups = append(b.groups[:gi], append(parts[:np], b.groups[gi+1:]...)...)
	return nil
}

// SoC returns the count-weighted mean state of charge (1 for an empty
// bank).
func (b *ClassBank) SoC() float64 {
	if b.size == 0 {
		return 1
	}
	sum := 0.0
	for _, g := range b.groups {
		sum += float64(g.count) * g.unit.SoC()
	}
	return sum / float64(b.size)
}

// Health returns the count-weighted mean capacity-fade multiplier (1
// for an undegraded or empty bank).
func (b *ClassBank) Health() float64 {
	if b.size == 0 {
		return 1
	}
	sum := 0.0
	for _, g := range b.groups {
		sum += float64(g.count) * g.unit.CapacityFade()
	}
	return sum / float64(b.size)
}

// UsableEnergy returns the aggregate energy above the DoD floors.
func (b *ClassBank) UsableEnergy() units.WattHour {
	var sum units.WattHour
	for _, g := range b.groups {
		sum += units.WattHour(float64(g.count) * float64(g.unit.UsableEnergy()))
	}
	return sum
}

// EquivalentCycles returns the count-weighted mean cycle usage.
func (b *ClassBank) EquivalentCycles() float64 {
	if b.size == 0 {
		return 0
	}
	sum := 0.0
	for _, g := range b.groups {
		sum += float64(g.count) * g.unit.EquivalentCycles()
	}
	return sum / float64(b.size)
}

// Reset restores all units to full charge without clearing wear.
func (b *ClassBank) Reset() {
	for _, g := range b.groups {
		g.unit.Reset()
	}
}

// Snapshot captures the bank's grouped state.
func (b *ClassBank) Snapshot() BankSnapshot {
	s := BankSnapshot{Groups: make([]GroupSnapshot, len(b.groups))}
	for i, g := range b.groups {
		s.Groups[i] = GroupSnapshot{Class: g.class, Count: g.count, State: g.unit.Snapshot()}
	}
	return s
}

// Restore replaces the bank's state from a group-form snapshot taken
// from a bank with the same class specs: the per-class unit totals
// must match, but the grouping itself may differ (chaos splits move).
func (b *ClassBank) Restore(s BankSnapshot) error {
	if len(s.Groups) == 0 && len(s.Units) > 0 {
		return fmt.Errorf("battery: restore: class bank needs a group-form snapshot, got %d flat units", len(s.Units))
	}
	perClass := make([]int, len(b.specs))
	groups := make([]classGroup, 0, len(s.Groups))
	last := -1
	for i, gs := range s.Groups {
		if gs.Class < 0 || gs.Class >= len(b.specs) {
			return fmt.Errorf("battery: restore: group %d class %d of %d", i, gs.Class, len(b.specs))
		}
		if gs.Class < last {
			return fmt.Errorf("battery: restore: group %d class %d out of order", i, gs.Class)
		}
		if gs.Count < 1 {
			return fmt.Errorf("battery: restore: group %d count %d < 1", i, gs.Count)
		}
		last = gs.Class
		perClass[gs.Class] += gs.Count
		u, err := New(b.specs[gs.Class].Config)
		if err != nil {
			return fmt.Errorf("battery: restore: group %d: %w", i, err)
		}
		if err := u.Restore(gs.State); err != nil {
			return fmt.Errorf("battery: restore: group %d: %w", i, err)
		}
		groups = append(groups, classGroup{class: gs.Class, count: gs.Count, unit: u})
	}
	for i, want := range b.specs {
		if perClass[i] != want.Count {
			return fmt.Errorf("battery: restore: class %d has %d units, want %d", i, perClass[i], want.Count)
		}
	}
	b.groups = groups
	return nil
}
