// Package battery models the server-level valve-regulated lead-acid
// (VRLA) batteries that GreenSprint uses to smooth the renewable
// supply. Following the paper (§II "Battery"), batteries are
// characterized by Peukert's law with exponent k = 1.15, a 40 % maximum
// depth of discharge (DoD) that preserves a ~1300-cycle lifetime, and
// rate-dependent effective capacity (a 24 Ah unit delivers only 12 Ah
// at a 12-minute rate).
//
// The model tracks state of charge as a fraction of rated capacity and
// integrates Peukert-corrected discharge over time-varying loads using
// the fractional-depletion method: at constant current I the time to
// empty is t(I) = H·(C/(I·H))^k, so a step of dt consumes dt/t(I) of
// the full charge.
package battery

import (
	"errors"
	"fmt"
	"math"
	"time"

	"greensprint/internal/units"
)

// Config describes a battery unit.
type Config struct {
	// Voltage is the nominal terminal voltage (12 V in the paper).
	Voltage units.Volt
	// Capacity is the rated capacity at the RatedHours discharge
	// rate (e.g. 10 Ah at the 20-hour rate).
	Capacity units.AmpHour
	// RatedHours is the discharge duration at which Capacity is
	// specified; lead-acid batteries are conventionally rated at
	// the 20-hour rate.
	RatedHours float64
	// PeukertK is Peukert's exponent; the paper uses 1.15 for
	// lead-acid.
	PeukertK float64
	// MaxDoD is the deepest allowed depth of discharge, as a
	// fraction in (0,1]; the paper uses 0.40, which corresponds to
	// a 1300-recharge-cycle lifetime.
	MaxDoD float64
	// ChargeEfficiency is the fraction of charging energy stored
	// (VRLA round-trip losses put this around 0.85).
	ChargeEfficiency float64
	// MaxChargePower caps the charging rate; 0 means a default of a
	// C/4 rate.
	MaxChargePower units.Watt
	// CycleLife is the number of recharge cycles at MaxDoD the unit
	// survives (1300 in the paper).
	CycleLife float64
}

// ServerBattery returns the paper's RE-Batt server-level unit: 12 V,
// 10 Ah, 20-hour rate, k = 1.15, 40 % DoD, 1300 cycles.
func ServerBattery() Config {
	return Config{
		Voltage:          12,
		Capacity:         10,
		RatedHours:       20,
		PeukertK:         1.15,
		MaxDoD:           0.40,
		ChargeEfficiency: 0.85,
		CycleLife:        1300,
	}
}

// SmallServerBattery returns the paper's "SBatt" unit (3.2 Ah).
func SmallServerBattery() Config {
	c := ServerBattery()
	c.Capacity = 3.2
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Voltage <= 0:
		return fmt.Errorf("battery: non-positive voltage %v", c.Voltage)
	case c.Capacity < 0:
		return fmt.Errorf("battery: negative capacity %v", c.Capacity)
	case c.RatedHours <= 0:
		return fmt.Errorf("battery: non-positive rated hours %v", c.RatedHours)
	case c.PeukertK < 1:
		return fmt.Errorf("battery: Peukert exponent %v < 1", c.PeukertK)
	case c.MaxDoD <= 0 || c.MaxDoD > 1:
		return fmt.Errorf("battery: MaxDoD %v outside (0,1]", c.MaxDoD)
	case c.ChargeEfficiency <= 0 || c.ChargeEfficiency > 1:
		return fmt.Errorf("battery: charge efficiency %v outside (0,1]", c.ChargeEfficiency)
	}
	return nil
}

// RatedEnergy is the total energy at the rated capacity.
func (c Config) RatedEnergy() units.WattHour { return c.Capacity.Energy(c.Voltage) }

// ratedCurrent is the current of the RatedHours-rate discharge.
func (c Config) ratedCurrent() units.Amp {
	return units.Amp(float64(c.Capacity) / c.RatedHours)
}

// TimeToEmpty returns the Peukert time to drain a full battery at
// constant power draw. Draws at or below the rated current deplete
// linearly (Peukert correction is only applied above the rated rate,
// where it matters; below it the law would overstate capacity).
func (c Config) TimeToEmpty(p units.Watt) time.Duration {
	if p <= 0 {
		return time.Duration(math.MaxInt64)
	}
	i := float64(p.Current(c.Voltage))
	ir := float64(c.ratedCurrent())
	var hours float64
	if i <= ir {
		hours = float64(c.Capacity) / i
	} else {
		hours = c.RatedHours * math.Pow(float64(c.Capacity)/(i*c.RatedHours), c.PeukertK)
	}
	return time.Duration(hours * float64(time.Hour))
}

// EffectiveCapacity returns the deliverable charge at constant power p,
// illustrating the rate dependence the paper quotes (24 Ah @ 20 h rate
// → 12 Ah @ 12 min rate).
func (c Config) EffectiveCapacity(p units.Watt) units.AmpHour {
	t := c.TimeToEmpty(p)
	if t == time.Duration(math.MaxInt64) {
		return c.Capacity
	}
	i := p.Current(c.Voltage)
	return units.AmpHour(float64(i) * t.Hours())
}

// Battery is a stateful battery unit.
type Battery struct {
	cfg Config
	// soc is the state of charge as a fraction of the unit's current
	// (possibly faded) full capacity.
	soc float64
	// dischargedAh accumulates total discharged charge (rated-Ah
	// equivalent) for cycle accounting.
	dischargedAh float64
	// capFade is the cumulative capacity-fade multiplier in (0,1]:
	// the unit's deliverable capacity is capFade * cfg.Capacity. 1
	// means an undegraded unit, and the undegraded code paths are
	// bit-identical to the pre-degradation model.
	capFade float64
	// resist is the cumulative internal-resistance multiplier (>= 1):
	// a draw of p behaves, Peukert-wise, like a draw of p * resist.
	resist float64
	// maxSust memoizes the last MaxSustainablePower bisection, keyed
	// by the exact (SoC, horizon, degradation) tuple. The PSS asks the
	// same question several times per scheduling epoch between state
	// changes; the memo returns the stored bisection result verbatim,
	// so reuse is bit-identical. Degradation is part of the key — and
	// Degrade/Restore invalidate outright — so a mid-run fade never
	// serves a stale answer.
	maxSust maxSustMemo //greensprint:allow(statecov) derived memo: Snapshot omits it and Restore invalidates it, so the next query re-bisects bit-identically
}

type maxSustMemo struct {
	ok      bool
	soc     float64
	d       time.Duration
	capFade float64
	resist  float64
	val     units.Watt
}

// ErrEmpty is returned when a discharge request hits the DoD floor.
var ErrEmpty = errors.New("battery: at depth-of-discharge floor")

// New creates a fully charged battery. It returns an error for invalid
// configurations.
func New(cfg Config) (*Battery, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxChargePower == 0 {
		cfg.MaxChargePower = units.Watt(float64(cfg.Capacity) / 4 * float64(cfg.Voltage))
	}
	return &Battery{cfg: cfg, soc: 1, capFade: 1, resist: 1}, nil
}

// Degrade applies a permanent degradation step: capacity fades by
// capFactor (in (0,1]) and internal resistance rises by resistFactor
// (>= 1). Factors compound across calls. Degradation invalidates the
// bisection memo so no pre-fade answer survives.
func (b *Battery) Degrade(capFactor, resistFactor float64) error {
	if !(capFactor > 0 && capFactor <= 1) {
		return fmt.Errorf("battery: capacity-fade factor %v outside (0,1]", capFactor)
	}
	if !(resistFactor >= 1) {
		return fmt.Errorf("battery: resistance factor %v below 1", resistFactor)
	}
	b.capFade *= capFactor
	b.resist *= resistFactor
	b.maxSust = maxSustMemo{}
	return nil
}

// CapacityFade returns the cumulative capacity-fade multiplier (1 for
// an undegraded unit).
func (b *Battery) CapacityFade() float64 { return b.capFade }

// Resistance returns the cumulative internal-resistance multiplier (1
// for an undegraded unit).
func (b *Battery) Resistance() float64 { return b.resist }

// timeToEmpty is Config.TimeToEmpty through the unit's degradation:
// capacity scaled by capFade, draw inflated by resist. The undegraded
// case delegates to the config verbatim so a healthy unit stays
// bit-identical to the pre-degradation model.
func (b *Battery) timeToEmpty(p units.Watt) time.Duration {
	if b.capFade == 1 && b.resist == 1 {
		return b.cfg.TimeToEmpty(p)
	}
	c := b.cfg
	c.Capacity = units.AmpHour(float64(c.Capacity) * b.capFade)
	return c.TimeToEmpty(units.Watt(float64(p) * b.resist))
}

// Config returns the battery configuration.
func (b *Battery) Config() Config { return b.cfg }

// SoC returns the state of charge in [0,1].
func (b *Battery) SoC() float64 { return b.soc }

// DoD returns the current depth of discharge (1 - SoC).
func (b *Battery) DoD() float64 { return 1 - b.soc }

// AtFloor reports whether the battery has reached the DoD limit.
func (b *Battery) AtFloor() bool { return b.soc <= b.floorSoC()+1e-12 }

func (b *Battery) floorSoC() float64 { return 1 - b.cfg.MaxDoD }

// UsableEnergy returns the energy available above the DoD floor at the
// rated (gentle) discharge rate; high-rate draws deliver less. A faded
// unit holds proportionally less.
func (b *Battery) UsableEnergy() units.WattHour {
	frac := b.soc - b.floorSoC()
	if frac < 0 {
		frac = 0
	}
	return units.WattHour(frac * b.capFade * float64(b.cfg.RatedEnergy()))
}

// RemainingTime returns how long the battery can sustain a constant
// power draw before hitting the DoD floor, applying Peukert's
// correction. This implements the paper's "recalculate the remaining
// discharging time after each scheduling epoch".
func (b *Battery) RemainingTime(p units.Watt) time.Duration {
	if p <= 0 {
		return time.Duration(math.MaxInt64)
	}
	frac := b.soc - b.floorSoC()
	if frac <= 0 {
		return 0
	}
	full := b.timeToEmpty(p)
	return time.Duration(frac * float64(full))
}

// remainingTimeWithFull scales an already-computed full-drain time by
// the unit's remaining charge fraction — RemainingTime with its
// Peukert term hoisted, bit-identical to it. Bank.RemainingTime shares
// one full-drain time across its identical units.
func (b *Battery) remainingTimeWithFull(full time.Duration) time.Duration {
	frac := b.soc - b.floorSoC()
	if frac <= 0 {
		return 0
	}
	return time.Duration(frac * float64(full))
}

// Discharge draws power p for duration d. It returns the duration
// actually sustained: the full d when charge suffices, or the shorter
// Peukert-limited time before the DoD floor, along with ErrEmpty.
// Non-positive power or duration is a no-op.
func (b *Battery) Discharge(p units.Watt, d time.Duration) (time.Duration, error) {
	if p <= 0 || d <= 0 {
		return 0, nil
	}
	sustain := b.RemainingTime(p)
	if sustain <= 0 {
		return 0, ErrEmpty
	}
	took := d
	var err error
	if sustain < d {
		took = sustain
		err = ErrEmpty
	}
	full := b.timeToEmpty(p)
	dropFrac := float64(took) / float64(full)
	b.soc -= dropFrac
	if b.soc < b.floorSoC() {
		b.soc = b.floorSoC()
	}
	b.dischargedAh += dropFrac * float64(b.cfg.Capacity)
	return took, err
}

// MaxSustainablePower returns the largest constant draw the battery can
// hold for at least d without breaching the DoD floor. It returns 0
// when the battery is at the floor. The answer is found by bisection on
// the monotone RemainingTime curve.
func (b *Battery) MaxSustainablePower(d time.Duration) units.Watt {
	if d <= 0 {
		return units.Watt(math.Inf(1))
	}
	if b.AtFloor() {
		return 0
	}
	if b.maxSust.ok && b.maxSust.soc == b.soc && b.maxSust.d == d &&
		b.maxSust.capFade == b.capFade && b.maxSust.resist == b.resist {
		return b.maxSust.val
	}
	lo, hi := 0.0, 100*float64(b.cfg.RatedEnergy()) // generous upper bound
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if b.RemainingTime(units.Watt(mid)) >= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	b.maxSust = maxSustMemo{
		ok: true, soc: b.soc, d: d,
		capFade: b.capFade, resist: b.resist,
		val: units.Watt(lo),
	}
	return units.Watt(lo)
}

// Charge stores energy at power p for duration d (p is the input power
// before conversion losses; the rate is capped at MaxChargePower). It
// returns the energy actually accepted (input side).
func (b *Battery) Charge(p units.Watt, d time.Duration) units.WattHour {
	if p <= 0 || d <= 0 || b.soc >= 1 {
		return 0
	}
	if p > b.cfg.MaxChargePower {
		p = b.cfg.MaxChargePower
	}
	in := p.Energy(d)
	stored := float64(in) * b.cfg.ChargeEfficiency
	// A faded unit has proportionally less room and fills faster.
	cap := b.capFade * float64(b.cfg.RatedEnergy())
	room := (1 - b.soc) * cap
	if stored > room {
		stored = room
		in = units.WattHour(stored / b.cfg.ChargeEfficiency)
	}
	b.soc += stored / cap
	if b.soc > 1 {
		b.soc = 1
	}
	return in
}

// EquivalentCycles returns lifetime usage as the number of
// MaxDoD-deep cycles represented by the cumulative discharged charge.
func (b *Battery) EquivalentCycles() float64 {
	depthAh := b.cfg.MaxDoD * float64(b.cfg.Capacity)
	if depthAh == 0 {
		return 0
	}
	return b.dischargedAh / depthAh
}

// WearFraction returns the consumed fraction of the battery's cycle
// life in [0,1+).
func (b *Battery) WearFraction() float64 {
	if b.cfg.CycleLife <= 0 {
		return 0
	}
	return b.EquivalentCycles() / b.cfg.CycleLife
}

// Reset restores a full charge without clearing wear accounting,
// modelling an off-scenario grid recharge.
func (b *Battery) Reset() { b.soc = 1 }
