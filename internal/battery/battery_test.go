package battery

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"greensprint/internal/units"
)

func TestConfigValidate(t *testing.T) {
	good := ServerBattery()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Voltage = 0 },
		func(c *Config) { c.Capacity = -1 },
		func(c *Config) { c.RatedHours = 0 },
		func(c *Config) { c.PeukertK = 0.9 },
		func(c *Config) { c.MaxDoD = 0 },
		func(c *Config) { c.MaxDoD = 1.5 },
		func(c *Config) { c.ChargeEfficiency = 0 },
		func(c *Config) { c.ChargeEfficiency = 1.2 },
	}
	for i, mutate := range cases {
		c := ServerBattery()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New should reject invalid config", i)
		}
	}
}

func TestRatedEnergy(t *testing.T) {
	c := ServerBattery()
	if got := c.RatedEnergy(); !units.NearlyEqual(float64(got), 120, 1e-9) {
		t.Errorf("10Ah@12V = %v, want 120Wh", got)
	}
}

func TestTimeToEmptyPeukert(t *testing.T) {
	c := ServerBattery() // 10 Ah @ 20 h, k = 1.15
	// At the rated current (0.5 A = 6 W) the battery lasts exactly
	// RatedHours.
	if got := c.TimeToEmpty(6); !durNear(got, 20*time.Hour, time.Minute) {
		t.Errorf("rated-rate time = %v, want 20h", got)
	}
	// At the paper's 155 W maximal sprint draw (~12.9 A), Peukert
	// gives roughly 28 minutes (analytic check in DESIGN.md §5).
	got := c.TimeToEmpty(155)
	if got < 25*time.Minute || got > 32*time.Minute {
		t.Errorf("155W time = %v, want ~28m", got)
	}
	// Below the rated current, depletion is linear (no Peukert
	// bonus): 3 W = 0.25 A should last 40 h.
	if got := c.TimeToEmpty(3); !durNear(got, 40*time.Hour, time.Minute) {
		t.Errorf("half-rate time = %v, want 40h", got)
	}
	if got := c.TimeToEmpty(0); got != time.Duration(math.MaxInt64) {
		t.Errorf("zero power should last forever, got %v", got)
	}
}

func TestEffectiveCapacityDropsWithRate(t *testing.T) {
	// The paper: a 24 Ah (20-hour) battery delivers only ~12 Ah at a
	// 12-minute discharge rate.
	c := ServerBattery()
	c.Capacity = 24
	// Find the power with a ~12-minute time-to-empty via the rate
	// quoted in the paper: 12 Ah over 12 min = 60 A.
	p := units.Amp(60).Power(c.Voltage)
	eff := c.EffectiveCapacity(p)
	if eff > 14 || eff < 9 {
		t.Errorf("effective capacity at 60A = %v Ah, want ~12", eff)
	}
	// Gentle rates recover the full rating.
	if got := c.EffectiveCapacity(0); !units.NearlyEqual(float64(got), 24, 1e-9) {
		t.Errorf("zero-rate capacity = %v", got)
	}
}

func TestDischargeToFloor(t *testing.T) {
	b, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: RE-Batt (10 Ah) sustains the maximal
	// 155 W burst for "more than 10 minutes" under 40% DoD.
	sustain := b.RemainingTime(155)
	if sustain < 10*time.Minute || sustain > 14*time.Minute {
		t.Errorf("10Ah @155W sustain = %v, want 10-14m", sustain)
	}
	took, err := b.Discharge(155, 10*time.Minute)
	if err != nil {
		t.Fatalf("10-minute discharge should succeed fully: %v", err)
	}
	if took != 10*time.Minute {
		t.Errorf("took = %v", took)
	}
	if b.AtFloor() {
		t.Error("should not be at floor after 10 of ~11 minutes")
	}
	// Drain the rest.
	took, err = b.Discharge(155, time.Hour)
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
	if took <= 0 || took >= 5*time.Minute {
		t.Errorf("residual discharge took %v", took)
	}
	if !b.AtFloor() {
		t.Error("battery should be at DoD floor")
	}
	if got, err := b.Discharge(155, time.Minute); got != 0 || !errors.Is(err, ErrEmpty) {
		t.Errorf("discharge at floor: took %v err %v", got, err)
	}
	// DoD never exceeds the configured maximum.
	if dod := b.DoD(); dod > 0.40+1e-9 {
		t.Errorf("DoD = %v exceeds 0.40", dod)
	}
}

func TestSmallBatteryCannotSustainLongBurst(t *testing.T) {
	b, err := New(SmallServerBattery()) // 3.2 Ah
	if err != nil {
		t.Fatal(err)
	}
	// The paper: small batteries cannot sustain long (60-minute)
	// operations; at the maximal sprint they last only ~3 minutes.
	sustain := b.RemainingTime(155)
	if sustain > 5*time.Minute {
		t.Errorf("3.2Ah @155W sustain = %v, want < 5m", sustain)
	}
}

func TestDischargeNoOps(t *testing.T) {
	b, _ := New(ServerBattery())
	if took, err := b.Discharge(0, time.Minute); took != 0 || err != nil {
		t.Error("zero power should be a no-op")
	}
	if took, err := b.Discharge(100, 0); took != 0 || err != nil {
		t.Error("zero duration should be a no-op")
	}
	if b.SoC() != 1 {
		t.Error("no-ops should not change SoC")
	}
}

func TestMaxSustainablePower(t *testing.T) {
	b, _ := New(ServerBattery())
	p := b.MaxSustainablePower(10 * time.Minute)
	// Must hold for 10 minutes...
	if b.RemainingTime(p) < 10*time.Minute-time.Second {
		t.Errorf("RemainingTime(%v) = %v < 10m", p, b.RemainingTime(p))
	}
	// ...and be close to the edge: 5% more power should not.
	if b.RemainingTime(units.Watt(float64(p)*1.05)) >= 10*time.Minute {
		t.Errorf("MaxSustainablePower not tight: %v", p)
	}
	// Longer horizon means less power.
	if p60 := b.MaxSustainablePower(60 * time.Minute); p60 >= p {
		t.Errorf("60m power %v should be < 10m power %v", p60, p)
	}
	// Floor case.
	b.Discharge(155, time.Hour)
	if got := b.MaxSustainablePower(time.Minute); got != 0 {
		t.Errorf("at floor: %v", got)
	}
}

func TestCharge(t *testing.T) {
	b, _ := New(ServerBattery())
	b.Discharge(155, 5*time.Minute)
	socBefore := b.SoC()
	in := b.Charge(30, 10*time.Minute) // 5 Wh input
	if in <= 0 {
		t.Fatal("charge accepted nothing")
	}
	if b.SoC() <= socBefore {
		t.Error("SoC should rise while charging")
	}
	// Full battery accepts nothing.
	b.Reset()
	if in := b.Charge(30, time.Hour); in != 0 {
		t.Errorf("full battery accepted %v", in)
	}
	// Efficiency: stored energy is less than input energy.
	b2, _ := New(ServerBattery())
	b2.Discharge(155, 5*time.Minute)
	missing := float64(b2.Config().RatedEnergy()) * (1 - b2.SoC())
	var totalIn float64
	for i := 0; i < 1000 && b2.SoC() < 1; i++ {
		totalIn += float64(b2.Charge(30, time.Minute))
	}
	if totalIn <= missing {
		t.Errorf("charging input %v should exceed stored %v due to losses", totalIn, missing)
	}
}

func TestChargeCapsAtMaxRate(t *testing.T) {
	cfg := ServerBattery()
	cfg.MaxChargePower = 10
	b, _ := New(cfg)
	b.Discharge(155, 8*time.Minute)
	in := b.Charge(1000, time.Hour)
	// Input capped at 10 W * 1 h = 10 Wh.
	if float64(in) > 10+1e-9 {
		t.Errorf("accepted %v, cap is 10Wh", in)
	}
}

func TestCycleAccounting(t *testing.T) {
	b, _ := New(ServerBattery())
	if b.EquivalentCycles() != 0 || b.WearFraction() != 0 {
		t.Error("fresh battery should have zero wear")
	}
	// One full trip to the DoD floor is one equivalent cycle.
	b.Discharge(155, time.Hour)
	if got := b.EquivalentCycles(); !units.NearlyEqual(got, 1, 1e-6) {
		t.Errorf("one floor trip = %v cycles, want 1", got)
	}
	b.Reset()
	if b.SoC() != 1 {
		t.Error("Reset should restore full charge")
	}
	b.Discharge(155, time.Hour)
	if got := b.EquivalentCycles(); !units.NearlyEqual(got, 2, 1e-6) {
		t.Errorf("two floor trips = %v cycles", got)
	}
	if wf := b.WearFraction(); !units.NearlyEqual(wf, 2.0/1300, 1e-6) {
		t.Errorf("wear fraction = %v", wf)
	}
}

func TestUsableEnergy(t *testing.T) {
	b, _ := New(ServerBattery())
	// 40% of 120 Wh = 48 Wh usable when full.
	if got := b.UsableEnergy(); !units.NearlyEqual(float64(got), 48, 1e-9) {
		t.Errorf("usable = %v, want 48Wh", got)
	}
	b.Discharge(155, time.Hour)
	if got := b.UsableEnergy(); got > 1e-9 {
		t.Errorf("usable at floor = %v", got)
	}
}

func durNear(a, b, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Property: SoC is monotonically non-increasing under discharge and
// never drops below the DoD floor.
func TestDischargeInvariantProperty(t *testing.T) {
	f := func(powers []uint16) bool {
		b, err := New(ServerBattery())
		if err != nil {
			return false
		}
		floor := 1 - b.Config().MaxDoD
		prev := b.SoC()
		for _, pw := range powers {
			p := units.Watt(float64(pw%300) + 1)
			b.Discharge(p, time.Minute)
			s := b.SoC()
			if s > prev+1e-12 || s < floor-1e-12 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: higher draws never sustain longer (RemainingTime is
// non-increasing in power).
func TestRemainingTimeMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		b, err := New(ServerBattery())
		if err != nil {
			return false
		}
		p1 := units.Watt(float64(aRaw%500) + 1)
		p2 := units.Watt(float64(bRaw%500) + 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return b.RemainingTime(p1) >= b.RemainingTime(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: charging never pushes SoC above 1 and never returns more
// stored energy than input.
func TestChargeInvariantProperty(t *testing.T) {
	f := func(dis uint8, chg []uint16) bool {
		b, err := New(ServerBattery())
		if err != nil {
			return false
		}
		b.Discharge(units.Watt(dis)+1, 10*time.Minute)
		for _, c := range chg {
			before := b.SoC()
			in := b.Charge(units.Watt(c%200), time.Minute)
			stored := (b.SoC() - before) * float64(b.Config().RatedEnergy())
			if b.SoC() > 1+1e-12 {
				return false
			}
			if stored > float64(in)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
