package battery

import (
	"testing"
	"time"

	"greensprint/internal/units"
)

// TestDegradeValidation pins the factor ranges.
func TestDegradeValidation(t *testing.T) {
	b, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ cap, res float64 }{
		{0, 1.1}, {-0.5, 1.1}, {1.5, 1.1}, {0.9, 0.9}, {0.9, -1},
	} {
		if err := b.Degrade(tc.cap, tc.res); err == nil {
			t.Errorf("Degrade(%v, %v) accepted", tc.cap, tc.res)
		}
	}
	if err := b.Degrade(0.8, 1.25); err != nil {
		t.Fatal(err)
	}
	if b.CapacityFade() != 0.8 || b.Resistance() != 1.25 {
		t.Errorf("fade/resist = %v/%v, want 0.8/1.25", b.CapacityFade(), b.Resistance())
	}
	// Factors compound.
	if err := b.Degrade(0.5, 2); err != nil {
		t.Fatal(err)
	}
	if b.CapacityFade() != 0.4 || b.Resistance() != 2.5 {
		t.Errorf("compounded fade/resist = %v/%v, want 0.4/2.5", b.CapacityFade(), b.Resistance())
	}
}

// TestDegradeShortensRuntime sanity-checks the physics: a faded,
// higher-resistance unit sustains less power and drains sooner.
func TestDegradeShortensRuntime(t *testing.T) {
	healthy, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	faded, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	if err := faded.Degrade(0.7, 1.4); err != nil {
		t.Fatal(err)
	}
	const p = units.Watt(40)
	if faded.RemainingTime(p) >= healthy.RemainingTime(p) {
		t.Errorf("faded RemainingTime %v !< healthy %v", faded.RemainingTime(p), healthy.RemainingTime(p))
	}
	d := 10 * time.Minute
	if fs, hs := faded.MaxSustainablePower(d), healthy.MaxSustainablePower(d); fs >= hs {
		t.Errorf("faded MaxSustainablePower %v !< healthy %v", fs, hs)
	}
	if fu, hu := faded.UsableEnergy(), healthy.UsableEnergy(); fu >= hu {
		t.Errorf("faded UsableEnergy %v !< healthy %v", fu, hu)
	}
}

// TestDegradeInvalidatesMemo is the PR 4 regression the chaos engine
// depends on: a warmed bisection memo must not survive a mid-run
// degradation. The degraded unit's answers are compared bit-for-bit
// against a unit that was degraded before ever answering.
func TestDegradeInvalidatesMemo(t *testing.T) {
	d := 10 * time.Minute
	warm, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	warm.MaxSustainablePower(d) // warm the memo at (soc=1, d)
	if err := warm.Degrade(0.8, 1.2); err != nil {
		t.Fatal(err)
	}

	cold, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Degrade(0.8, 1.2); err != nil {
		t.Fatal(err)
	}

	if w, c := warm.MaxSustainablePower(d), cold.MaxSustainablePower(d); w != c {
		t.Errorf("memo served stale bisection: warm %v, cold %v", w, c)
	}
	const p = units.Watt(30)
	if w, c := warm.RemainingTime(p), cold.RemainingTime(p); w != c {
		t.Errorf("RemainingTime: warm %v, cold %v", w, c)
	}
}

// TestBankDegradeSharedMemos is the bank-level half of the regression:
// PR 4 shares one bisection across units at equal SoC and hoists one
// Peukert full-drain time across the bank. Degrading one unit mid-run
// must break it out of both sharing groups — the degraded bank's
// answers are compared bit-for-bit against a bank rebuilt from scratch
// into the same per-unit state (fresh memos everywhere).
func TestBankDegradeSharedMemos(t *testing.T) {
	d := 10 * time.Minute
	const draw = units.Watt(90)

	bank, err := NewBank(ServerBattery(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every shared path, discharge a little so SoC is off the
	// trivial 1.0, then degrade the middle unit.
	bank.MaxSustainablePower(d)
	bank.RemainingTime(draw)
	if _, err := bank.Discharge(draw, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	bank.MaxSustainablePower(d)
	bank.RemainingTime(draw)
	if err := bank.DegradeUnit(1, 0.75, 1.3); err != nil {
		t.Fatal(err)
	}

	// Rebuild the exact same per-unit state in a fresh bank: same
	// snapshots (SoC, wear, degradation), no warmed memos.
	fresh, err := NewBank(ServerBattery(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(bank.Snapshot()); err != nil {
		t.Fatal(err)
	}

	if a, b := bank.MaxSustainablePower(d), fresh.MaxSustainablePower(d); a != b {
		t.Errorf("MaxSustainablePower: degraded-in-place %v, fresh-built %v", a, b)
	}
	if a, b := bank.RemainingTime(draw), fresh.RemainingTime(draw); a != b {
		t.Errorf("RemainingTime: degraded-in-place %v, fresh-built %v", a, b)
	}
	// The degraded unit must answer differently from its healthy
	// neighbours (equal SoC), or the sharing guard isn't keying on
	// degradation at all.
	if u0, u1 := bank.Unit(0), bank.Unit(1); u0.SoC() == u1.SoC() &&
		u0.MaxSustainablePower(d) == u1.MaxSustainablePower(d) {
		t.Error("degraded unit borrowed its healthy neighbour's bisection")
	}
	// And continued evolution stays in lockstep.
	bank.Discharge(draw, 5*time.Minute)
	fresh.Discharge(draw, 5*time.Minute)
	if a, b := bank.MaxSustainablePower(d), fresh.MaxSustainablePower(d); a != b {
		t.Errorf("post-discharge MaxSustainablePower: %v vs %v", a, b)
	}
	if a, b := bank.SoC(), fresh.SoC(); a != b {
		t.Errorf("post-discharge SoC: %v vs %v", a, b)
	}
}

// TestDegradedSnapshotRoundTrip checks the omitempty wire format: an
// undegraded unit's snapshot carries no degradation fields (byte
// compatibility with pre-chaos checkpoints), a degraded unit's
// snapshot restores exactly, and garbage is rejected.
func TestDegradedSnapshotRoundTrip(t *testing.T) {
	b, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	if s := b.Snapshot(); s.CapacityFade != 0 || s.Resistance != 0 {
		t.Errorf("undegraded snapshot carries degradation: %+v", s)
	}
	if err := b.Degrade(0.85, 1.15); err != nil {
		t.Fatal(err)
	}
	s := b.Snapshot()
	if s.CapacityFade != 0.85 || s.Resistance != 1.15 {
		t.Errorf("degraded snapshot = %+v", s)
	}
	fresh, err := New(ServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(s); err != nil {
		t.Fatal(err)
	}
	if fresh.CapacityFade() != 0.85 || fresh.Resistance() != 1.15 {
		t.Errorf("restored fade/resist = %v/%v", fresh.CapacityFade(), fresh.Resistance())
	}
	// Zero-valued fields (a pre-chaos snapshot) restore as undegraded.
	if err := fresh.Restore(Snapshot{SoC: 0.9, DischargedAh: 1}); err != nil {
		t.Fatal(err)
	}
	if fresh.CapacityFade() != 1 || fresh.Resistance() != 1 {
		t.Errorf("pre-chaos snapshot restored degraded: %v/%v", fresh.CapacityFade(), fresh.Resistance())
	}
	for _, bad := range []Snapshot{
		{SoC: 1, CapacityFade: -0.5},
		{SoC: 1, CapacityFade: 1.5},
		{SoC: 1, Resistance: 0.5},
	} {
		if err := fresh.Restore(bad); err == nil {
			t.Errorf("Restore(%+v) accepted", bad)
		}
	}
}

// TestDegradeOutOfRangeUnit pins the bank-level index check.
func TestDegradeOutOfRangeUnit(t *testing.T) {
	bank, err := NewBank(ServerBattery(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.DegradeUnit(2, 0.9, 1.1); err == nil {
		t.Error("unit 2 of 2 accepted")
	}
	if err := bank.DegradeUnit(-1, 0.9, 1.1); err == nil {
		t.Error("unit -1 accepted")
	}
}
