package battery

import (
	"fmt"
	"time"

	"greensprint/internal/units"
)

// Bank is a set of identical per-server battery units managed together,
// matching the paper's distributed (server-level) battery architecture.
// Power requests are split evenly across non-empty units. A Bank is
// stateful and not safe for concurrent use.
type Bank struct {
	units []*Battery
	avail []*Battery //greensprint:allow(statecov) scratch for available(): rebuilt from units on every call, reused only for its backing array
}

// NewBank creates n fully charged units of the given configuration.
// n = 0 yields an empty bank that supplies nothing, which models the
// paper's REOnly configuration.
func NewBank(cfg Config, n int) (*Bank, error) {
	b := &Bank{}
	for i := 0; i < n; i++ {
		u, err := New(cfg)
		if err != nil {
			return nil, err
		}
		b.units = append(b.units, u)
	}
	return b, nil
}

// Size returns the number of units.
func (b *Bank) Size() int { return len(b.units) }

// Unit returns the i-th unit for inspection.
func (b *Bank) Unit(i int) *Battery { return b.units[i] }

// available returns the units not at the DoD floor. The returned slice
// is the bank's reused scratch buffer: valid until the next call, so
// callers must not retain it (the per-epoch hot path calls this many
// times per scheduling decision).
func (b *Bank) available() []*Battery {
	out := b.avail[:0]
	for _, u := range b.units {
		if !u.AtFloor() {
			//greensprint:allow(allocfree) appends into the bank's reused scratch buffer; grows to the unit count once, then stays flat
			out = append(out, u)
		}
	}
	b.avail = out
	return out
}

// MaxSustainablePower returns the aggregate constant power the bank can
// hold for duration d. Units in identical state share one bisection
// result — a bank's units have identical configurations (NewBank clones
// a single Config), so equal (SoC, degradation) implies an equal
// answer, and even discharge/charge splitting keeps healthy units in
// lockstep in practice. Degradation is part of the sharing key: a
// chaos-faded unit must never borrow a healthy neighbour's answer.
func (b *Bank) MaxSustainablePower(d time.Duration) units.Watt {
	var sum units.Watt
	var last *Battery
	var lastVal units.Watt
	for _, u := range b.available() {
		if last != nil && u.soc == last.soc &&
			u.capFade == last.capFade && u.resist == last.resist {
			sum += lastVal
			continue
		}
		lastVal = u.MaxSustainablePower(d)
		last = u
		sum += lastVal
	}
	return sum
}

// RemainingTime returns how long the bank sustains an aggregate power
// draw split evenly across the available units. An empty or exhausted
// bank returns 0 for positive draws.
func (b *Bank) RemainingTime(p units.Watt) time.Duration {
	avail := b.available()
	if p <= 0 {
		return 1<<63 - 1
	}
	if len(avail) == 0 {
		return 0
	}
	per := units.Watt(float64(p) / float64(len(avail)))
	// The units share one Config, so the Peukert full-drain time is
	// computed once per run of equally degraded units instead of once
	// per unit (TimeToEmpty's math.Pow dominates the scheduling hot
	// path). The hoist is only valid across units with the same fade
	// and resistance — a degraded unit drains on its own curve.
	min := time.Duration(1<<63 - 1)
	var last *Battery
	var full time.Duration
	for _, u := range avail {
		if last == nil || u.capFade != last.capFade || u.resist != last.resist {
			full = u.timeToEmpty(per)
			last = u
		}
		if t := u.remainingTimeWithFull(full); t < min {
			min = t
		}
	}
	return min
}

// Discharge draws aggregate power p for duration d, split evenly over
// the available units. It returns the duration sustained by the whole
// bank (limited by the weakest unit, which for identical units is all
// of them).
func (b *Bank) Discharge(p units.Watt, d time.Duration) (time.Duration, error) {
	avail := b.available()
	if p <= 0 || d <= 0 {
		return 0, nil
	}
	if len(avail) == 0 {
		return 0, ErrEmpty
	}
	per := units.Watt(float64(p) / float64(len(avail)))
	min := d
	var firstErr error
	for _, u := range avail {
		took, err := u.Discharge(per, d)
		if took < min {
			min = took
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return min, firstErr
}

// Charge distributes charging power evenly across all units and
// returns the total energy accepted.
func (b *Bank) Charge(p units.Watt, d time.Duration) units.WattHour {
	if len(b.units) == 0 || p <= 0 || d <= 0 {
		return 0
	}
	per := units.Watt(float64(p) / float64(len(b.units)))
	var total units.WattHour
	for _, u := range b.units {
		total += u.Charge(per, d)
	}
	return total
}

// DegradeUnit applies a permanent chaos degradation step to unit i:
// capacity fades by capFactor and internal resistance rises by
// resistFactor (see Battery.Degrade).
func (b *Bank) DegradeUnit(i int, capFactor, resistFactor float64) error {
	if i < 0 || i >= len(b.units) {
		return fmt.Errorf("battery: degrade: unit %d of %d", i, len(b.units))
	}
	return b.units[i].Degrade(capFactor, resistFactor)
}

// SoC returns the mean state of charge across units (1 for an empty
// bank, which never constrains anything).
func (b *Bank) SoC() float64 {
	if len(b.units) == 0 {
		return 1
	}
	sum := 0.0
	for _, u := range b.units {
		sum += u.SoC()
	}
	return sum / float64(len(b.units))
}

// Health returns the mean capacity-fade multiplier across units (1
// for an undegraded or empty bank).
func (b *Bank) Health() float64 {
	if len(b.units) == 0 {
		return 1
	}
	sum := 0.0
	for _, u := range b.units {
		sum += u.CapacityFade()
	}
	return sum / float64(len(b.units))
}

// UsableEnergy returns the aggregate energy above the DoD floors.
func (b *Bank) UsableEnergy() units.WattHour {
	var sum units.WattHour
	for _, u := range b.units {
		sum += u.UsableEnergy()
	}
	return sum
}

// EquivalentCycles returns the mean per-unit cycle usage.
func (b *Bank) EquivalentCycles() float64 {
	if len(b.units) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range b.units {
		sum += u.EquivalentCycles()
	}
	return sum / float64(len(b.units))
}

// Reset restores all units to full charge.
func (b *Bank) Reset() {
	for _, u := range b.units {
		u.Reset()
	}
}
