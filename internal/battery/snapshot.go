package battery

import "fmt"

// Snapshot is the serializable state of one battery unit: everything
// that evolves during a run. The configuration itself is not captured —
// a snapshot is restored into a unit built from the same Config, and
// Restore rejects state a unit of that configuration could never reach.
type Snapshot struct {
	// SoC is the state of charge as a fraction of rated capacity.
	SoC float64 `json:"soc"`
	// DischargedAh is the cumulative discharged charge (rated-Ah
	// equivalent) backing cycle accounting.
	DischargedAh float64 `json:"discharged_ah"`
	// CapacityFade and Resistance are the cumulative chaos-degradation
	// multipliers. Both are omitted from the wire format while 1 (an
	// undegraded unit), which keeps pre-degradation snapshots byte-
	// compatible: Restore treats an absent (zero) value as 1.
	CapacityFade float64 `json:"capacity_fade,omitempty"`
	Resistance   float64 `json:"resistance,omitempty"`
}

// Snapshot captures the unit's mutable state.
func (b *Battery) Snapshot() Snapshot {
	s := Snapshot{SoC: b.soc, DischargedAh: b.dischargedAh}
	if b.capFade != 1 {
		s.CapacityFade = b.capFade
	}
	if b.resist != 1 {
		s.Resistance = b.resist
	}
	return s
}

// Restore replaces the unit's mutable state with a snapshot taken from
// a unit of the same configuration.
func (b *Battery) Restore(s Snapshot) error {
	if s.SoC < 0 || s.SoC > 1 || s.SoC != s.SoC {
		return fmt.Errorf("battery: restore: SoC %v outside [0,1]", s.SoC)
	}
	if s.DischargedAh < 0 || s.DischargedAh != s.DischargedAh {
		return fmt.Errorf("battery: restore: negative discharged charge %v", s.DischargedAh)
	}
	fade, resist := s.CapacityFade, s.Resistance
	if fade == 0 {
		fade = 1
	}
	if resist == 0 {
		resist = 1
	}
	if !(fade > 0 && fade <= 1) {
		return fmt.Errorf("battery: restore: capacity fade %v outside (0,1]", fade)
	}
	if !(resist >= 1) {
		return fmt.Errorf("battery: restore: resistance %v below 1", resist)
	}
	b.soc = s.SoC
	b.dischargedAh = s.DischargedAh
	b.capFade = fade
	b.resist = resist
	// Degradation (or its reversal, when rewinding to a pre-fault
	// snapshot) changes the Peukert curve: drop any memoized answer.
	b.maxSust = maxSustMemo{}
	return nil
}

// BankSnapshot is the serializable state of a bank. A per-unit Bank
// captures one Snapshot per unit, in unit order; a fleet-scale
// ClassBank captures its grouped form instead — runs of units in
// identical state keyed by class. Exactly one of the two shapes is
// populated, and Groups is omitted from the wire format for per-unit
// banks so pre-fleet snapshots stay byte-identical.
type BankSnapshot struct {
	Units  []Snapshot      `json:"units"`
	Groups []GroupSnapshot `json:"groups,omitempty"`
}

// GroupSnapshot is one ClassBank group: Count units of class Class
// sharing the captured mutable state.
type GroupSnapshot struct {
	Class int      `json:"class"`
	Count int      `json:"count"`
	State Snapshot `json:"state"`
}

// Snapshot captures the per-unit state of the whole bank.
func (b *Bank) Snapshot() BankSnapshot {
	s := BankSnapshot{Units: make([]Snapshot, len(b.units))}
	for i, u := range b.units {
		s.Units[i] = u.Snapshot()
	}
	return s
}

// Restore replaces every unit's state from a snapshot of a bank with
// the same unit count and configuration.
func (b *Bank) Restore(s BankSnapshot) error {
	if len(s.Groups) > 0 {
		return fmt.Errorf("battery: restore: per-unit bank cannot restore a group-form (class bank) snapshot")
	}
	if len(s.Units) != len(b.units) {
		return fmt.Errorf("battery: restore: snapshot has %d units, bank has %d", len(s.Units), len(b.units))
	}
	for i, u := range b.units {
		if err := u.Restore(s.Units[i]); err != nil {
			return fmt.Errorf("battery: restore unit %d: %w", i, err)
		}
	}
	return nil
}
