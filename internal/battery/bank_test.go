package battery

import (
	"errors"
	"testing"
	"time"

	"greensprint/internal/units"
)

func TestBankEmpty(t *testing.T) {
	b, err := NewBank(ServerBattery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 0 {
		t.Errorf("size = %d", b.Size())
	}
	if got := b.MaxSustainablePower(time.Minute); got != 0 {
		t.Errorf("empty bank power = %v", got)
	}
	if got := b.RemainingTime(100); got != 0 {
		t.Errorf("empty bank remaining = %v", got)
	}
	if _, err := b.Discharge(100, time.Minute); !errors.Is(err, ErrEmpty) {
		t.Errorf("discharge err = %v", err)
	}
	if b.SoC() != 1 {
		t.Error("empty bank SoC convention is 1")
	}
	if b.Charge(100, time.Minute) != 0 {
		t.Error("empty bank should accept no charge")
	}
	if b.EquivalentCycles() != 0 {
		t.Error("empty bank cycles")
	}
}

func TestBankInvalidConfig(t *testing.T) {
	bad := ServerBattery()
	bad.Voltage = 0
	if _, err := NewBank(bad, 2); err == nil {
		t.Error("expected config error")
	}
}

func TestBankSplitsEvenly(t *testing.T) {
	bank, err := NewBank(ServerBattery(), 3)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := New(ServerBattery())
	// 3 units at 155 W each aggregate to 465 W with the same
	// endurance as one unit at 155 W.
	if got, want := bank.RemainingTime(465), single.RemainingTime(155); !durNear(got, want, time.Second) {
		t.Errorf("bank remaining = %v, single = %v", got, want)
	}
	took, err := bank.Discharge(465, 5*time.Minute)
	if err != nil || took != 5*time.Minute {
		t.Fatalf("took %v err %v", took, err)
	}
	for i := 0; i < bank.Size(); i++ {
		if bank.Unit(i).SoC() >= 1 {
			t.Errorf("unit %d untouched", i)
		}
	}
	// All units drained evenly.
	if a, b := bank.Unit(0).SoC(), bank.Unit(2).SoC(); !units.NearlyEqual(a, b, 1e-12) {
		t.Errorf("uneven SoC: %v vs %v", a, b)
	}
}

func TestBankUsableEnergyAndCharge(t *testing.T) {
	bank, _ := NewBank(ServerBattery(), 2)
	if got := bank.UsableEnergy(); !units.NearlyEqual(float64(got), 96, 1e-9) {
		t.Errorf("2x48Wh = %v", got)
	}
	bank.Discharge(200, 10*time.Minute)
	before := bank.SoC()
	if in := bank.Charge(60, 10*time.Minute); in <= 0 {
		t.Error("bank should accept charge")
	}
	if bank.SoC() <= before {
		t.Error("bank SoC should rise")
	}
	bank.Reset()
	if bank.SoC() != 1 {
		t.Error("Reset should fill the bank")
	}
}

func TestBankDrainsToFloor(t *testing.T) {
	bank, _ := NewBank(SmallServerBattery(), 3)
	took, err := bank.Discharge(465, time.Hour)
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if took >= 10*time.Minute {
		t.Errorf("small bank sustained %v at max draw", took)
	}
	if bank.MaxSustainablePower(time.Minute) != 0 {
		t.Error("drained bank should sustain nothing")
	}
	if bank.EquivalentCycles() < 0.99 {
		t.Errorf("cycles = %v", bank.EquivalentCycles())
	}
}

func TestBankNoOps(t *testing.T) {
	bank, _ := NewBank(ServerBattery(), 2)
	if took, err := bank.Discharge(0, time.Minute); took != 0 || err != nil {
		t.Error("zero power no-op")
	}
	if took, err := bank.Discharge(100, 0); took != 0 || err != nil {
		t.Error("zero duration no-op")
	}
	if bank.RemainingTime(0) <= 0 {
		t.Error("zero power lasts forever")
	}
}
