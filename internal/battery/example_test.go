package battery_test

import (
	"fmt"
	"time"

	"greensprint/internal/battery"
)

// Example reproduces the paper's battery observations: a 10 Ah unit
// sustains the 155 W maximal sprint for a bit over ten minutes under
// the 40% depth-of-discharge limit.
func Example() {
	b, err := battery.New(battery.ServerBattery())
	if err != nil {
		panic(err)
	}
	sustain := b.RemainingTime(155)
	fmt.Printf("10Ah at 155W: ~%d minutes\n", int(sustain.Minutes()))

	small, _ := battery.New(battery.SmallServerBattery())
	fmt.Printf("3.2Ah at 155W: ~%d minutes\n", int(small.RemainingTime(155).Minutes()))

	took, _ := b.Discharge(155, 10*time.Minute)
	fmt.Printf("after a 10-minute burst: took %v, DoD %.0f%%\n", took, b.DoD()*100)
	// Output:
	// 10Ah at 155W: ~11 minutes
	// 3.2Ah at 155W: ~3 minutes
	// after a 10-minute burst: took 10m0s, DoD 35%
}
