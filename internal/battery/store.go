package battery

import (
	"time"

	"greensprint/internal/units"
)

// Store is the battery-state surface the power-source selector and the
// engine run against: either the per-unit Bank (the paper's 3-server
// rack) or the class-indexed ClassBank (fleet-scale runs where
// thousands of identical units collapse into per-class groups). Both
// implementations are stateful and not safe for concurrent use.
type Store interface {
	// Size returns the number of battery units represented.
	Size() int
	// SoC returns the mean state of charge (1 for an empty store).
	SoC() float64
	// MaxDoD returns the store's depth-of-discharge limit (the most
	// conservative limit across classes; 0 for an empty store).
	MaxDoD() float64
	// MaxSustainablePower returns the aggregate constant power the
	// store can hold for duration d.
	MaxSustainablePower(d time.Duration) units.Watt
	// RemainingTime returns how long the store sustains an aggregate
	// draw split evenly across available units.
	RemainingTime(p units.Watt) time.Duration
	// Discharge draws aggregate power p for duration d and returns
	// the duration sustained.
	Discharge(p units.Watt, d time.Duration) (time.Duration, error)
	// Charge distributes charging power across all units and returns
	// the energy accepted.
	Charge(p units.Watt, d time.Duration) units.WattHour
	// DegradeUnit applies a permanent chaos degradation to unit i.
	DegradeUnit(i int, capFactor, resistFactor float64) error
	// Health returns the mean capacity-fade multiplier across units
	// (1 for an undegraded or empty store) — the degraded-capacity
	// signal failure-aware policies consume.
	Health() float64
	// UsableEnergy returns the aggregate energy above the DoD floors.
	UsableEnergy() units.WattHour
	// EquivalentCycles returns the mean per-unit cycle usage.
	EquivalentCycles() float64
	// Snapshot and Restore round-trip the store's mutable state.
	Snapshot() BankSnapshot
	Restore(BankSnapshot) error
}

var (
	_ Store = (*Bank)(nil)
	_ Store = (*ClassBank)(nil)
)

// MaxDoD returns the bank's depth-of-discharge limit. A Bank's units
// share one Config, so the first unit speaks for all; an empty bank
// returns 0 (it never constrains anything).
func (b *Bank) MaxDoD() float64 {
	if len(b.units) == 0 {
		return 0
	}
	return b.units[0].cfg.MaxDoD
}
