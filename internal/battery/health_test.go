package battery

import (
	"math"
	"testing"
)

// TestBankHealth pins the degraded-capacity signal: a fresh bank is
// fully healthy, a targeted degradation pulls the mean capacity fade
// down by exactly its share, and an empty bank (REOnly) reads healthy
// rather than dividing by zero.
func TestBankHealth(t *testing.T) {
	b, err := NewBank(ServerBattery(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Health(); got != 1 {
		t.Errorf("fresh bank health = %v, want 1", got)
	}
	if err := b.DegradeUnit(1, 0.7, 1.3); err != nil {
		t.Fatal(err)
	}
	want := (1 + 0.7 + 1) / 3
	if got := b.Health(); math.Abs(got-want) > 1e-12 {
		t.Errorf("degraded bank health = %v, want %v", got, want)
	}
	// Degradation compounds into the mean.
	if err := b.DegradeUnit(1, 0.5, 1.1); err != nil {
		t.Fatal(err)
	}
	want = (1 + 0.35 + 1) / 3
	if got := b.Health(); math.Abs(got-want) > 1e-12 {
		t.Errorf("compounded bank health = %v, want %v", got, want)
	}

	empty, err := NewBank(ServerBattery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Health(); got != 1 {
		t.Errorf("empty bank health = %v, want 1", got)
	}
}

// TestClassBankHealth checks the grouped implementation agrees with
// the per-unit one: the mean weights each group by its unit count,
// and splitting a unit out of its group via DegradeUnit is reflected
// exactly.
func TestClassBankHealth(t *testing.T) {
	cb, err := NewClassBank([]ClassSpec{
		{Config: ServerBattery(), Count: 3},
		{Config: SmallServerBattery(), Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cb.Health(); got != 1 {
		t.Errorf("fresh class bank health = %v, want 1", got)
	}
	if err := cb.DegradeUnit(2, 0.6, 1.5); err != nil {
		t.Fatal(err)
	}
	want := (1 + 1 + 0.6 + 1) / 4
	if got := cb.Health(); math.Abs(got-want) > 1e-12 {
		t.Errorf("degraded class bank health = %v, want %v", got, want)
	}

	// Bank and ClassBank report identical health for the same layout
	// and fault.
	b, err := NewBank(ServerBattery(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cb2, err := NewClassBank([]ClassSpec{{Config: ServerBattery(), Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DegradeUnit(3, 0.8, 1.2); err != nil {
		t.Fatal(err)
	}
	if err := cb2.DegradeUnit(3, 0.8, 1.2); err != nil {
		t.Fatal(err)
	}
	if bh, ch := b.Health(), cb2.Health(); math.Abs(bh-ch) > 1e-12 {
		t.Errorf("Bank health %v != ClassBank health %v", bh, ch)
	}
}
