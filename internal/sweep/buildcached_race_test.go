package sweep

import (
	"context"
	"math"
	"testing"

	"greensprint/internal/profile"
	"greensprint/internal/workload"
)

// TestBuildCachedConcurrent hammers the process-level profile build
// cache from a pool of concurrent sweep workers — the exact access
// pattern parallel figure cells produce — and checks that (a) every
// worker for one workload gets the same shared *Table instance, and
// (b) the shared tables are bit-identical to a freshly built reference.
// Run under -race this doubles as the memoization-layer race check the
// perf PR's acceptance criteria require. It lives in the sweep package
// because profile cannot import sweep (sweep's shard runner already
// depends on sim, which depends on profile).
func TestBuildCachedConcurrent(t *testing.T) {
	profiles := workload.All()
	const perProfile = 32
	tabs, err := Map(context.Background(), make([]struct{}, perProfile*len(profiles)),
		func(ctx context.Context, i int, _ struct{}) (*profile.Table, error) {
			return profile.BuildCached(profiles[i%len(profiles)], profile.DefaultLevels)
		}, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, tab := range tabs {
		first := tabs[i%len(profiles)]
		if tab != first {
			t.Fatalf("cell %d: BuildCached returned a distinct table for %s", i, profiles[i%len(profiles)].Name)
		}
	}
	for pi, p := range profiles {
		ref, err := profile.Build(p, profile.DefaultLevels)
		if err != nil {
			t.Fatal(err)
		}
		got := tabs[pi]
		if len(got.Entries) != len(ref.Entries) {
			t.Fatalf("%s: cached table has %d entries, reference %d", p.Name, len(got.Entries), len(ref.Entries))
		}
		for i := range ref.Entries {
			g, w := got.Entries[i], ref.Entries[i]
			if g.Level != w.Level || g.Cores != w.Cores || g.Freq != w.Freq ||
				math.Float64bits(g.OfferedRate) != math.Float64bits(w.OfferedRate) ||
				math.Float64bits(float64(g.Power)) != math.Float64bits(float64(w.Power)) ||
				math.Float64bits(g.Goodput) != math.Float64bits(w.Goodput) ||
				math.Float64bits(g.NormPerf) != math.Float64bits(w.NormPerf) {
				t.Fatalf("%s entry %d: cached %+v != reference %+v", p.Name, i, g, w)
			}
		}
	}
}
