// Package sweep is the deterministic parallel execution engine behind
// the repo's ablation sweeps and figure grids. Every evaluation in
// internal/experiments and internal/ablation decomposes into
// independent simulation cells (one seeded sim.Run, one predictor
// evaluation, one table lookup); sweep fans those cells out across
// runtime.GOMAXPROCS worker goroutines while guaranteeing that the
// results are bit-identical to a serial run:
//
//   - Results are returned in input order, regardless of completion
//     order.
//   - Each cell receives only its own inputs; the engine never shares
//     mutable state between cells. Callers must do the same (clone
//     per-cell strategy/Q-table state; share only read-only tables).
//   - Per-cell randomness must come from CellSeed(root, index), never
//     from a shared RNG stream, so a cell's seed does not depend on
//     scheduling order.
//
// Map handles flat cell slices; Grid handles cartesian products
// (duration x availability x variant figure grids). Both propagate the
// first error in input order (or aggregate all errors via an option),
// honor context cancellation mid-sweep, and convert a worker panic
// back into a panic on the calling goroutine tagged with the offending
// cell index.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide default worker count; 0 means
// runtime.GOMAXPROCS(0). The CLIs' -parallel=false maps to
// SetDefaultWorkers(1).
var defaultWorkers atomic.Int64

// DefaultWorkers returns the current default worker count for sweeps
// that do not set WithWorkers explicitly.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers sets the process-wide default worker count and
// returns the previous setting (pass that value back to restore it).
// n <= 0 restores the default of runtime.GOMAXPROCS(0).
func SetDefaultWorkers(n int) int {
	prev := int(defaultWorkers.Load())
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
	return prev
}

type options struct {
	workers   int
	aggregate bool
}

// Option configures one Map/Grid call.
type Option func(*options)

// WithWorkers bounds the number of worker goroutines for this call.
// n <= 0 means DefaultWorkers(); 1 runs the cells serially in input
// order on the calling goroutine.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// AggregateErrors runs every cell even after failures and returns all
// cell errors joined in input order, instead of stopping at the first.
func AggregateErrors() Option {
	return func(o *options) { o.aggregate = true }
}

// CellError wraps the error of one failed cell with its input index.
type CellError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *CellError) Error() string { return fmt.Sprintf("sweep: cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cell error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// CellSeed derives a deterministic per-cell RNG seed from a root seed
// and the cell's input index (a splitmix64 finalizer), so every cell
// gets an independent, well-mixed stream that does not depend on
// worker scheduling. Cells must use this — never a shared RNG — for
// parallel results to be bit-identical to serial ones.
func CellSeed(root int64, index int) int64 {
	z := uint64(root) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Map evaluates fn over every cell in cells across a worker pool and
// returns the results in input order. The first cell error (by input
// index, wrapped in *CellError) cancels the remaining cells unless
// AggregateErrors is set; a canceled ctx stops dispatch and returns
// ctx.Err() when no cell failed first. A panicking fn re-panics on the
// calling goroutine with the cell index prepended.
func Map[I, O any](ctx context.Context, cells []I, fn func(ctx context.Context, index int, cell I) (O, error), opts ...Option) ([]O, error) {
	return mapN(ctx, len(cells), func(ctx context.Context, i int) (O, error) {
		return fn(ctx, i, cells[i])
	}, opts)
}

// Grid evaluates fn over the cartesian product of dims in row-major
// order (last dimension fastest) and returns the flattened results in
// that order. fn receives both the flat index and the per-dimension
// coordinate (the coord slice is owned by the callee and must not be
// retained). Error, cancellation, and panic semantics match Map.
func Grid[O any](ctx context.Context, dims []int, fn func(ctx context.Context, flat int, coord []int) (O, error), opts ...Option) ([]O, error) {
	n := 1
	for _, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("sweep: negative grid dimension %v", dims)
		}
		n *= d
	}
	return mapN(ctx, n, func(ctx context.Context, i int) (O, error) {
		coord := make([]int, len(dims))
		rem := i
		for k := len(dims) - 1; k >= 0; k-- {
			coord[k] = rem % dims[k]
			rem /= dims[k]
		}
		return fn(ctx, i, coord)
	}, opts)
}

// cellPanic carries a recovered worker panic back to the caller.
type cellPanic struct {
	index int
	value any
	stack []byte
}

func mapN[O any](ctx context.Context, n int, fn func(ctx context.Context, i int) (O, error), opts []Option) ([]O, error) {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	workers := o.workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]O, n)
	if n == 0 {
		return results, ctx.Err()
	}

	errs := make([]error, n)
	// stop cancels remaining cells on the first failure (unless
	// aggregating); cellCtx is what the cells observe, so a caller's
	// cancellation and the engine's early-stop look the same to fn.
	cellCtx, stop := context.WithCancel(ctx)
	defer stop()

	var (
		next     atomic.Int64
		panicMu  sync.Mutex
		panicked *cellPanic
	)
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				// Keep the lowest-index panic for a deterministic
				// re-panic message under concurrent failures.
				if panicked == nil || i < panicked.index {
					panicked = &cellPanic{index: i, value: r, stack: debug.Stack()}
				}
				panicMu.Unlock()
				stop()
			}
		}()
		v, err := fn(cellCtx, i)
		if err != nil {
			errs[i] = err
			if !o.aggregate {
				stop()
			}
			return
		}
		results[i] = v
	}
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			// The caller's cancellation always halts dispatch;
			// engine-internal early-stop only does when not
			// aggregating errors.
			if ctx.Err() != nil || (cellCtx.Err() != nil && !o.aggregate) {
				return
			}
			runCell(i)
		}
	}

	if workers <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}

	if panicked != nil {
		panic(fmt.Sprintf("sweep: cell %d panicked: %v\n%s", panicked.index, panicked.value, panicked.stack))
	}
	if o.aggregate {
		var all []error
		for i, err := range errs {
			if err != nil {
				all = append(all, &CellError{Index: i, Err: err})
			}
		}
		if len(all) > 0 {
			return results, errors.Join(all...)
		}
	} else {
		for i, err := range errs {
			if err != nil {
				return results, &CellError{Index: i, Err: err}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}
