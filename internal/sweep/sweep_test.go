package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesInputOrder(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		got, err := Map(context.Background(), cells, func(_ context.Context, i, cell int) (int, error) {
			if i != cell {
				t.Errorf("workers=%d: index %d got cell %d", workers, i, cell)
			}
			// Stagger completion so out-of-order finishes would show.
			if i%7 == 0 {
				time.Sleep(time.Millisecond)
			}
			return cell * cell, nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(cells) {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroCells(t *testing.T) {
	got, err := Map(context.Background(), nil, func(context.Context, int, int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapSingleWorkerIsSerial(t *testing.T) {
	var order []int
	_, err := Map(context.Background(), []int{0, 1, 2, 3, 4}, func(_ context.Context, i, _ int) (int, error) {
		order = append(order, i) // safe: one worker runs on the calling goroutine
		return i, nil
	}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	cells := make([]int, 64)
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), cells, func(_ context.Context, i, _ int) (int, error) {
		ran.Add(1)
		if i == 3 || i == 40 {
			return 0, fmt.Errorf("cell %d: %w", i, boom)
		}
		time.Sleep(100 * time.Microsecond) // let the early-stop win the dispatch race
		return 0, nil
	}, WithWorkers(4))
	if err == nil {
		t.Fatal("want error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T not a *CellError", err)
	}
	// The reported error must be the lowest failing input index that
	// actually ran, regardless of which worker failed first.
	if ce.Index != 3 && ce.Index != 40 {
		t.Fatalf("index = %d", ce.Index)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost: %v", err)
	}
	if ran.Load() == int64(len(cells)) {
		t.Error("error did not stop dispatch early")
	}
}

func TestMapAggregateErrors(t *testing.T) {
	cells := make([]int, 20)
	var ran atomic.Int64
	_, err := Map(context.Background(), cells, func(_ context.Context, i, _ int) (int, error) {
		ran.Add(1)
		if i%5 == 0 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return 0, nil
	}, WithWorkers(4), AggregateErrors())
	if err == nil {
		t.Fatal("want error")
	}
	if ran.Load() != int64(len(cells)) {
		t.Fatalf("aggregate mode ran %d of %d cells", ran.Load(), len(cells))
	}
	for _, i := range []int{0, 5, 10, 15} {
		if !strings.Contains(err.Error(), fmt.Sprintf("cell %d", i)) {
			t.Errorf("aggregate error missing cell %d: %v", i, err)
		}
	}
}

func TestMapContextCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cells := make([]int, 1000)
	var ran atomic.Int64
	_, err := Map(ctx, cells, func(ctx context.Context, i, _ int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i, nil
	}, WithWorkers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == int64(len(cells)) {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestMapCellSeesCancellation(t *testing.T) {
	// The ctx handed to a cell must report cancellation after an
	// earlier cell fails, so long-running sims can bail out.
	var sawCancel atomic.Bool
	started := make(chan struct{})
	_, err := Map(context.Background(), make([]int, 8), func(ctx context.Context, i, _ int) (int, error) {
		if i == 0 {
			<-started // fail only once a long-running cell is in flight
			return 0, errors.New("first cell fails")
		}
		if i == 1 {
			close(started)
		}
		deadline := time.After(2 * time.Second)
		for {
			select {
			case <-ctx.Done():
				sawCancel.Store(true)
				return 0, ctx.Err()
			case <-deadline:
				return i, nil
			}
		}
	}, WithWorkers(2))
	if err == nil {
		t.Fatal("want error")
	}
	if !sawCancel.Load() {
		t.Error("running cells never observed the early-stop cancellation")
	}
}

func TestMapPanicCarriesCellIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: no panic", workers)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "cell 13 panicked") || !strings.Contains(msg, "kaboom") {
					t.Fatalf("workers=%d: panic message %q lacks cell index or cause", workers, msg)
				}
			}()
			Map(context.Background(), make([]int, 20), func(_ context.Context, i, _ int) (int, error) {
				if i == 13 {
					panic("kaboom")
				}
				return i, nil
			}, WithWorkers(workers))
		}()
	}
}

func TestGridRowMajorCoordinates(t *testing.T) {
	dims := []int{2, 3, 4}
	type cell struct {
		flat  int
		coord [3]int
	}
	got, err := Grid(context.Background(), dims, func(_ context.Context, flat int, coord []int) (cell, error) {
		return cell{flat: flat, coord: [3]int{coord[0], coord[1], coord[2]}}, nil
	}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 24 {
		t.Fatalf("len = %d", len(got))
	}
	flat := 0
	for a := 0; a < dims[0]; a++ {
		for b := 0; b < dims[1]; b++ {
			for c := 0; c < dims[2]; c++ {
				w := cell{flat: flat, coord: [3]int{a, b, c}}
				if got[flat] != w {
					t.Fatalf("got[%d] = %+v, want %+v", flat, got[flat], w)
				}
				flat++
			}
		}
	}
}

func TestGridEmptyDimension(t *testing.T) {
	got, err := Grid(context.Background(), []int{3, 0, 2}, func(context.Context, int, []int) (int, error) {
		t.Fatal("fn called for empty grid")
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestGridNegativeDimension(t *testing.T) {
	if _, err := Grid(context.Background(), []int{2, -1}, func(context.Context, int, []int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("want error for negative dimension")
	}
}

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := CellSeed(42, i)
		if again := CellSeed(42, i); again != s {
			t.Fatalf("CellSeed(42,%d) unstable: %d vs %d", i, s, again)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between cells %d and %d", prev, i)
		}
		seen[s] = i
	}
	if CellSeed(1, 0) == CellSeed(2, 0) {
		t.Error("different roots produced the same seed")
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	if got := DefaultWorkers(); got != 1 {
		t.Fatalf("DefaultWorkers = %d", got)
	}
	if got := SetDefaultWorkers(0); got != 1 {
		t.Fatalf("SetDefaultWorkers returned %d", got)
	}
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset DefaultWorkers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
