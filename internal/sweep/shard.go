package sweep

import (
	"context"
	"fmt"

	"greensprint/internal/sim"
)

// ShardedRun executes one simulation split into `windows` contiguous
// time shards chained through sim.Checkpoint hand-off: window k+1
// starts from window k's checkpoint, and the final window's Result
// carries the stitched EpochRecord stream. Each window is driven by a
// freshly constructed Engine and the hand-off travels as encoded JSON,
// so the split proves cross-process resumability — the stitched output
// is bit-identical to an uninterrupted sim.Run over the same config.
//
// Each window runs as one StepN batch (batch size = shard window), so
// sharded replays ride the engine's hoisted fast path and per-batch
// event flush; StepN is bit-identical to per-epoch stepping, so the
// stitched-output guarantee is unchanged.
//
// windows <= 1 degenerates to the plain sequential run. ctx is checked
// between batches; cancellation returns ctx.Err().
func ShardedRun(ctx context.Context, cfg sim.Config, windows int) (*sim.Result, error) {
	probe, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	total := probe.TotalEpochs()
	if windows < 1 {
		windows = 1
	}
	if windows > total {
		windows = total
	}
	if windows <= 1 {
		return sim.Run(ctx, cfg)
	}

	var handoff []byte
	for w := 0; w < windows; w++ {
		// A fresh engine per window: nothing carries over except the
		// serialized checkpoint (the strategy instance in cfg is
		// shared, but Restore overwrites its state from the
		// checkpoint, so the window behaves as a cold resume).
		e, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		if handoff != nil {
			cp, err := sim.DecodeCheckpoint(handoff)
			if err != nil {
				return nil, fmt.Errorf("sweep: shard %d: %w", w, err)
			}
			if err := e.Restore(cp); err != nil {
				return nil, fmt.Errorf("sweep: shard %d: %w", w, err)
			}
		}
		end := (w + 1) * total / windows
		for e.EpochIndex() < end {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			ran, err := e.StepN(end - e.EpochIndex())
			if err != nil {
				return nil, err
			}
			if ran == 0 {
				break
			}
		}
		if w == windows-1 {
			return e.Result(), nil
		}
		cp, err := e.Checkpoint()
		if err != nil {
			return nil, err
		}
		if handoff, err = cp.Encode(); err != nil {
			return nil, err
		}
	}
	return probe.Result(), nil // unreachable: windows >= 2 returns above
}
