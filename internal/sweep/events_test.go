package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"greensprint/internal/obs"
	"greensprint/internal/sim"
)

// eventStream runs one replay config with a JSONL sink attached and
// returns the raw byte stream, running either sequentially or sharded.
func eventStream(t *testing.T, cfg sim.Config, windows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg.Sink = obs.NewJSONL(&buf)
	var err error
	if windows <= 1 {
		_, err = sim.Run(context.Background(), cfg)
	} else {
		_, err = ShardedRun(context.Background(), cfg, windows)
	}
	if err != nil {
		t.Fatalf("windows=%d: %v", windows, err)
	}
	return buf.Bytes()
}

// TestEventStreamGolden is the golden determinism test for the epoch
// event log: under a fixed seed the JSONL stream is bit-identical
// across repeated runs, and a sharded replay — whose per-window engines
// only step (and hence only emit) epochs the previous shard has not
// already run — produces the exact byte stream of the sequential run.
// This holds even for the stateful Q-learning Hybrid strategy, whose
// decisions depend on learning state carried across shard boundaries.
func TestEventStreamGolden(t *testing.T) {
	for _, strat := range []string{"Pacing", "Hybrid"} {
		golden := eventStream(t, shardConfig(t, strat), 1)
		if len(golden) == 0 {
			t.Fatalf("%s: empty event stream", strat)
		}
		if again := eventStream(t, shardConfig(t, strat), 1); !bytes.Equal(again, golden) {
			t.Errorf("%s: repeated sequential run emitted a different stream", strat)
		}
		for _, windows := range []int{2, 4} {
			if got := eventStream(t, shardConfig(t, strat), windows); !bytes.Equal(got, golden) {
				t.Errorf("%s/%d windows: sharded stream differs from sequential", strat, windows)
			}
		}
	}
}

// TestEventStreamContents spot-checks the golden stream's structure:
// one parseable record per epoch, in epoch order, with sim-clock
// timestamps and the decision fields populated.
func TestEventStreamContents(t *testing.T) {
	cfg := shardConfig(t, "Pacing")
	stream := eventStream(t, cfg, 1)
	sc := bufio.NewScanner(bytes.NewReader(stream))
	n := 0
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.Epoch != n {
			t.Errorf("line %d has epoch %d", n, ev.Epoch)
		}
		if ev.Time == "" || ev.Case == "" || ev.Config == "" || ev.Strategy == "" {
			t.Errorf("line %d missing fields: %+v", n, ev)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 10 m lead + 60 m burst + 15 m tail at the default 5 m epoch.
	if n != 17 {
		t.Errorf("events = %d, want 17 (one per epoch)", n)
	}
}
