package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/fleet"
	"greensprint/internal/profile"
	"greensprint/internal/sim"
	"greensprint/internal/solar"
	"greensprint/internal/strategy"
	"greensprint/internal/trace"
	"greensprint/internal/workload"
)

var (
	shardProfile = workload.SPECjbb()
	shardTable   *profile.Table
)

func init() {
	var err error
	shardTable, err = profile.Build(shardProfile, profile.DefaultLevels)
	if err != nil {
		panic(err)
	}
}

// shardConfig builds one replay config with a fresh strategy instance
// per call (sharded and sequential runs must not share mutable strategy
// state). The run mixes idle and burst epochs and, for Pacing, replays
// an offered-rate ramp so the EWMA workload predictor carries state
// across the shard boundary too.
func shardConfig(t *testing.T, strat string) sim.Config {
	t.Helper()
	d := 60 * time.Minute
	lead, tail := 10*time.Minute, 15*time.Minute
	green := cluster.REBatt()
	supply := solar.Synthesize(solar.Med, lead+d+tail, time.Minute, float64(green.PeakGreen()), 42)
	cfg := sim.Config{
		Workload: shardProfile,
		Green:    green,
		Table:    shardTable,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
	}
	switch strat {
	case "Hybrid":
		h, err := strategy.NewHybrid(shardProfile, shardTable)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Strategy = h
	case "Pacing":
		cfg.Strategy = strategy.Pacing{}
		peak := shardProfile.IntensityRate(12)
		n := int((lead + d + tail) / time.Minute)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = peak * (0.4 + 0.6*float64(i)/float64(n-1))
		}
		cfg.Offered = trace.New("offered", supply.Start, time.Minute, samples)
	default:
		t.Fatalf("unknown strategy %q", strat)
	}
	return cfg
}

// TestShardedRunMatchesSequential is the golden determinism test for
// the checkpoint hand-off: splitting a replay into 2 or 4 windows
// chained through serialized sim.Checkpoints must reproduce the
// sequential run bit for bit — the full EpochRecord stream and every
// Result aggregate — including for the stateful Q-learning Hybrid.
func TestShardedRunMatchesSequential(t *testing.T) {
	for _, strat := range []string{"Pacing", "Hybrid"} {
		seq, err := sim.Run(context.Background(), shardConfig(t, strat))
		if err != nil {
			t.Fatal(err)
		}
		for _, windows := range []int{2, 4} {
			got, err := ShardedRun(context.Background(), shardConfig(t, strat), windows)
			if err != nil {
				t.Fatalf("%s/%d windows: %v", strat, windows, err)
			}
			if len(got.Records) != len(seq.Records) {
				t.Fatalf("%s/%d windows: records = %d, want %d",
					strat, windows, len(got.Records), len(seq.Records))
			}
			for i := range seq.Records {
				if got.Records[i] != seq.Records[i] {
					t.Errorf("%s/%d windows: record %d differs:\nseq   %+v\nshard %+v",
						strat, windows, i, seq.Records[i], got.Records[i])
				}
			}
			if got.MeanNormPerf != seq.MeanNormPerf {
				t.Errorf("%s/%d windows: MeanNormPerf = %v, want %v",
					strat, windows, got.MeanNormPerf, seq.MeanNormPerf)
			}
			if got.Account != seq.Account {
				t.Errorf("%s/%d windows: Account = %+v, want %+v",
					strat, windows, got.Account, seq.Account)
			}
			if got.BatteryCycles != seq.BatteryCycles {
				t.Errorf("%s/%d windows: BatteryCycles = %v, want %v",
					strat, windows, got.BatteryCycles, seq.BatteryCycles)
			}
		}
	}
}

// fleetDayConfig builds a full simulated day (1440 one-minute epochs)
// over a generated 10,000-server three-class fleet — the fleet-scale
// shape the structure-of-arrays engine core exists for.
func fleetDayConfig(t *testing.T) sim.Config {
	t.Helper()
	spec := &fleet.Spec{
		Name:         "shardfleet",
		TotalServers: 10_000,
		RackSize:     20,
		Seed:         7,
		Templates: []fleet.Template{
			{Name: "web", Weight: 5, BatteryAh: 10, Panels: 3},
			{Name: "batch", Weight: 3, PeakPower: 250, BatteryAh: 3.2, Panels: 2},
			{Name: "archive", Weight: 2},
		},
	}
	topo, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d := 12 * time.Hour
	lead, tail := 6*time.Hour, 6*time.Hour
	supply := solar.Synthesize(solar.Med, lead+d+tail, time.Minute, float64(topo.PeakGreen()), 42)
	h, err := strategy.NewHybrid(shardProfile, shardTable)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Workload: shardProfile,
		Green:    cluster.REBatt(),
		Fleet:    spec,
		Strategy: h,
		Table:    shardTable,
		Epoch:    time.Minute,
		Burst:    workload.Burst{Intensity: 12, Duration: d},
		Supply:   supply,
		Lead:     lead,
		Tail:     tail,
	}
}

// TestShardedFleetDayMatchesSequential shards a 10,000-server
// simulated day through the v4 checkpoint hand-off and demands the
// stitched run reproduce the sequential one bit for bit — records,
// aggregates and the per-class energy counters that only exist in
// fleet mode.
func TestShardedFleetDayMatchesSequential(t *testing.T) {
	seq, err := sim.Run(context.Background(), fleetDayConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, windows := range []int{3} {
		got, err := ShardedRun(context.Background(), fleetDayConfig(t), windows)
		if err != nil {
			t.Fatalf("%d windows: %v", windows, err)
		}
		if len(got.Records) != len(seq.Records) {
			t.Fatalf("%d windows: records = %d, want %d", windows, len(got.Records), len(seq.Records))
		}
		for i := range seq.Records {
			if got.Records[i] != seq.Records[i] {
				t.Fatalf("%d windows: record %d differs:\nseq   %+v\nshard %+v",
					windows, i, seq.Records[i], got.Records[i])
			}
		}
		if got.MeanNormPerf != seq.MeanNormPerf || got.Account != seq.Account || got.BatteryCycles != seq.BatteryCycles {
			t.Errorf("%d windows: aggregates differ", windows)
		}
		if len(got.ClassEnergyWh) != len(seq.ClassEnergyWh) {
			t.Fatalf("%d windows: %d class energy counters, want %d",
				windows, len(got.ClassEnergyWh), len(seq.ClassEnergyWh))
		}
		for i := range seq.ClassEnergyWh {
			if got.ClassEnergyWh[i] != seq.ClassEnergyWh[i] {
				t.Errorf("%d windows: class %d energy = %v, want %v",
					windows, i, got.ClassEnergyWh[i], seq.ClassEnergyWh[i])
			}
		}
		if got.ClassFleet.Transitions() != seq.ClassFleet.Transitions() {
			t.Errorf("%d windows: transitions = %d, want %d",
				windows, got.ClassFleet.Transitions(), seq.ClassFleet.Transitions())
		}
	}
}

// TestShardedRunDegenerateWindows covers the edges: one window is the
// plain sequential run, and a window count beyond the epoch count is
// clamped rather than producing empty shards.
func TestShardedRunDegenerateWindows(t *testing.T) {
	seq, err := sim.Run(context.Background(), shardConfig(t, "Pacing"))
	if err != nil {
		t.Fatal(err)
	}
	for _, windows := range []int{0, 1, 1000} {
		got, err := ShardedRun(context.Background(), shardConfig(t, "Pacing"), windows)
		if err != nil {
			t.Fatalf("windows=%d: %v", windows, err)
		}
		if len(got.Records) != len(seq.Records) || got.MeanNormPerf != seq.MeanNormPerf {
			t.Errorf("windows=%d: %d records perf %v, want %d records perf %v",
				windows, len(got.Records), got.MeanNormPerf, len(seq.Records), seq.MeanNormPerf)
		}
	}
}

// TestShardedRunCancellation propagates ctx.Err() out of a mid-replay
// cancellation.
func TestShardedRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ShardedRun(ctx, shardConfig(t, "Pacing"), 3)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("ShardedRun(cancelled) = %v, %v; want nil, context.Canceled", res, err)
	}
}

// TestMapCancellationStopsMidRun extends the mid-sweep cancellation
// test down into the simulation layer: a cell cancelling the sweep's
// context stops the sim.Run inside every other cell at an epoch
// boundary, and ctx.Err() surfaces through Map.
func TestMapCancellationStopsMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Map(ctx, []int{0, 1, 2, 3}, func(ctx context.Context, i, _ int) (*sim.Result, error) {
		if i == 0 {
			cancel()
		}
		return sim.Run(ctx, shardConfig(t, "Pacing"))
	}, WithWorkers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
