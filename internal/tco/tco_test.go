package tco

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []func(*Model){
		func(m *Model) { m.RevenuePerKWMin = 0 },
		func(m *Model) { m.PVCostPerWatt = -1 },
		func(m *Model) { m.PVLifetimeYears = 0 },
		func(m *Model) { m.BatteryCostPerKWYear = -1 },
		func(m *Model) { m.PCMCostPerKWYear = -1 },
	}
	for i, mut := range mutations {
		m := Default()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestAnnualCost(t *testing.T) {
	m := Default()
	// PV: $4.74/W * 1000 / 25 = $189.6/kW/yr; + $50 battery + $2 PCM.
	want := 189.6 + 50 + 2
	if got := m.AnnualCostPerKW(); math.Abs(got-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestRevenue(t *testing.T) {
	m := Default()
	// 0.28 $/kW/min * 60 min * 10 h = $168/kW.
	if got := m.AnnualRevenuePerKW(10); math.Abs(got-168) > 1e-9 {
		t.Errorf("revenue = %v", got)
	}
	if got := m.AnnualRevenuePerKW(-5); got != 0 {
		t.Errorf("negative hours revenue = %v", got)
	}
}

func TestCrossoverNear14Hours(t *testing.T) {
	// §IV-F: "all values to the right of the cross-over point
	// (around 14 hours per year in this case) indicate profitable
	// operations".
	h := Default().CrossoverHours()
	if h < 13 || h < 0 || h > 15.5 {
		t.Errorf("crossover = %v h, want ~14", h)
	}
}

func TestBenefitSigns(t *testing.T) {
	m := Default()
	cross := m.CrossoverHours()
	if b := m.Benefit(cross - 5); b >= 0 {
		t.Errorf("below crossover should lose money: %v", b)
	}
	if b := m.Benefit(cross + 5); b <= 0 {
		t.Errorf("above crossover should profit: %v", b)
	}
	if b := m.Benefit(cross); math.Abs(b) > 1e-9 {
		t.Errorf("at crossover benefit = %v", b)
	}
}

func TestFigure11Points(t *testing.T) {
	// The figure's x-axis: 12, 24, 36 hours. 12 is unprofitable,
	// 24 and 36 profitable, and the series is increasing.
	pts := Default().Sweep([]float64{12, 24, 36})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Profitable {
		t.Errorf("12 h should be unprofitable: %+v", pts[0])
	}
	if !pts[1].Profitable || !pts[2].Profitable {
		t.Errorf("24/36 h should be profitable: %+v %+v", pts[1], pts[2])
	}
	if !(pts[0].Benefit < pts[1].Benefit && pts[1].Benefit < pts[2].Benefit) {
		t.Error("benefit should increase with sprinting hours")
	}
	// The figure's y-range is roughly [-400, 600] $/kW/yr.
	for _, p := range pts {
		if p.Benefit < -400 || p.Benefit > 600 {
			t.Errorf("benefit %v outside the figure's range", p.Benefit)
		}
	}
}

// Property: benefit is monotone non-decreasing in sprinting hours.
func TestBenefitMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw)/100, float64(bRaw)/100
		if a > b {
			a, b = b, a
		}
		return m.Benefit(a) <= m.Benefit(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWearAdjustedBatteryCost(t *testing.T) {
	m := Default()
	// Light cycling: calendar-life limited, base cost unchanged.
	if got := m.WearAdjustedBatteryCost(100, 1300, 4); got != m.BatteryCostPerKWYear {
		t.Errorf("light cycling cost = %v", got)
	}
	// Heavy cycling: 650 cycles/yr exhausts 1300 cycles in 2 years,
	// half the 4-year calendar life → cost doubles.
	if got := m.WearAdjustedBatteryCost(650, 1300, 4); math.Abs(got-2*m.BatteryCostPerKWYear) > 1e-9 {
		t.Errorf("heavy cycling cost = %v, want %v", got, 2*m.BatteryCostPerKWYear)
	}
	// Degenerate inputs fall back to the base provision.
	for _, got := range []float64{
		m.WearAdjustedBatteryCost(0, 1300, 4),
		m.WearAdjustedBatteryCost(100, 0, 4),
		m.WearAdjustedBatteryCost(100, 1300, 0),
	} {
		if got != m.BatteryCostPerKWYear {
			t.Errorf("degenerate cost = %v", got)
		}
	}
}

func TestBenefitWithWear(t *testing.T) {
	m := Default()
	h := 24.0
	light := m.BenefitWithWear(h, 50, 1300)
	if math.Abs(light-m.Benefit(h)) > 1e-9 {
		t.Errorf("light wear should match the base benefit: %v vs %v", light, m.Benefit(h))
	}
	heavy := m.BenefitWithWear(h, 1300, 1300) // one full life per year
	if heavy >= light {
		t.Errorf("heavy wear %v should cost more than light %v", heavy, light)
	}
	// The wear penalty shifts the break-even to the right: at the
	// nominal crossover, a heavily cycled system still loses money.
	cross := m.CrossoverHours()
	if b := m.BenefitWithWear(cross+0.5, 1300, 1300); b >= 0 {
		t.Errorf("wear-adjusted benefit just past nominal crossover = %v, want < 0", b)
	}
}
