// Package tco implements the paper's total-cost-of-ownership analysis
// (§IV-F, Figure 11): whether the extra renewable + battery provision
// pays for itself through the revenue that sprinting generates.
//
// The paper's constants: cloud revenue of $0.28 per kW-minute of
// operation, PV capacity at $4.74/W amortized over a 25-year panel
// lifetime, batteries at $50/kW/year, and a phase-change-material
// (PCM) thermal package that costs under 0.1% of the server. The
// profit-of-investment crosses zero at roughly 14 sprinting hours per
// year; operating beyond that is profitable.
package tco

import "fmt"

// Model holds the TCO constants.
type Model struct {
	// RevenuePerKWMin is the revenue per kW-minute of sprinting
	// operation ($0.28 in the paper, citing Wang et al.).
	RevenuePerKWMin float64
	// PVCostPerWatt is the installed PV capacity cost ($4.74/W).
	PVCostPerWatt float64
	// PVLifetimeYears amortizes the PV capex (25 years).
	PVLifetimeYears float64
	// BatteryCostPerKWYear is the battery provision cost
	// ($50/kW/year).
	BatteryCostPerKWYear float64
	// PCMCostPerKWYear is the phase-change thermal package cost;
	// the paper bounds it below 0.1% of server cost, effectively
	// negligible.
	PCMCostPerKWYear float64
}

// Default returns the paper's constants.
func Default() Model {
	return Model{
		RevenuePerKWMin:      0.28,
		PVCostPerWatt:        4.74,
		PVLifetimeYears:      25,
		BatteryCostPerKWYear: 50,
		PCMCostPerKWYear:     2, // <0.1% of a ~$2000 server per kW-year
	}
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	switch {
	case m.RevenuePerKWMin <= 0:
		return fmt.Errorf("tco: non-positive revenue %v", m.RevenuePerKWMin)
	case m.PVCostPerWatt < 0:
		return fmt.Errorf("tco: negative PV cost %v", m.PVCostPerWatt)
	case m.PVLifetimeYears <= 0:
		return fmt.Errorf("tco: non-positive PV lifetime %v", m.PVLifetimeYears)
	case m.BatteryCostPerKWYear < 0:
		return fmt.Errorf("tco: negative battery cost %v", m.BatteryCostPerKWYear)
	case m.PCMCostPerKWYear < 0:
		return fmt.Errorf("tco: negative PCM cost %v", m.PCMCostPerKWYear)
	}
	return nil
}

// AnnualCostPerKW returns the amortized yearly capital expenditure per
// kW of green sprinting capacity.
func (m Model) AnnualCostPerKW() float64 {
	pv := m.PVCostPerWatt * 1000 / m.PVLifetimeYears
	return pv + m.BatteryCostPerKWYear + m.PCMCostPerKWYear
}

// AnnualRevenuePerKW returns the yearly sprinting revenue per kW for a
// total of sprintHours hours of sprinting per year.
func (m Model) AnnualRevenuePerKW(sprintHours float64) float64 {
	if sprintHours < 0 {
		sprintHours = 0
	}
	return m.RevenuePerKWMin * 60 * sprintHours
}

// Benefit returns the profit of investment in $/kW/year for a yearly
// sprinting duration — Figure 11's y-axis.
func (m Model) Benefit(sprintHours float64) float64 {
	return m.AnnualRevenuePerKW(sprintHours) - m.AnnualCostPerKW()
}

// CrossoverHours returns the yearly sprinting duration at which the
// investment breaks even (~14 h with the paper's constants).
func (m Model) CrossoverHours() float64 {
	return m.AnnualCostPerKW() / (m.RevenuePerKWMin * 60)
}

// DefaultBatteryCalendarYears is the calendar life a VRLA unit reaches
// under light cycling; the paper's $50/kW/yr provision assumes it.
const DefaultBatteryCalendarYears = 4

// WearAdjustedBatteryCost returns the battery provision cost per
// kW-year adjusted for sprint-driven cycling: when the observed cycle
// rate would exhaust the battery's cycle life (1300 cycles at 40 % DoD
// in the paper) before its calendar life, replacements come sooner and
// the effective annual cost scales up accordingly.
func (m Model) WearAdjustedBatteryCost(cyclesPerYear, cycleLife, calendarYears float64) float64 {
	base := m.BatteryCostPerKWYear
	if cyclesPerYear <= 0 || cycleLife <= 0 || calendarYears <= 0 {
		return base
	}
	cycleLimitedYears := cycleLife / cyclesPerYear
	if cycleLimitedYears >= calendarYears {
		return base // calendar-life limited: the provision already covers it
	}
	return base * calendarYears / cycleLimitedYears
}

// BenefitWithWear is Benefit with the battery cost replaced by its
// wear-adjusted value — the honest profit line once heavy sprinting
// starts consuming battery lifetime (§V's "strict lifetime
// constraints" concern, quantified).
func (m Model) BenefitWithWear(sprintHours, cyclesPerYear, cycleLife float64) float64 {
	adj := m
	adj.BatteryCostPerKWYear = m.WearAdjustedBatteryCost(cyclesPerYear, cycleLife, DefaultBatteryCalendarYears)
	return adj.Benefit(sprintHours)
}

// Point is one sample of the Figure 11 sweep.
type Point struct {
	SprintHours float64
	Benefit     float64
	Profitable  bool
}

// Sweep evaluates the benefit at each yearly sprinting duration.
func (m Model) Sweep(hours []float64) []Point {
	out := make([]Point, len(hours))
	for i, h := range hours {
		b := m.Benefit(h)
		out[i] = Point{SprintHours: h, Benefit: b, Profitable: b > 0}
	}
	return out
}
