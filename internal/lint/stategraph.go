package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// stateGraph is the shared whole-program prepass behind the statecov
// and wiretag rules. For every type that participates in a
// Snapshot/Restore, Checkpoint/Restore or SnapshotState/RestoreState
// pairing it collects:
//
//   - the snapshot-side and restore-side methods (promoted methods from
//     an embedded component count, so a wrapper that inherits a partial
//     snapshot is checked against its own fields),
//   - the set of mutable fields — fields assigned by any method of the
//     type other than the pair methods themselves (constructor-only
//     fields are immutable configuration and need no checkpointing),
//   - the transitive call closure of each pair method across every
//     loaded package (a field restored inside a helper such as
//     recomputeClassAlive still counts as restored),
//   - the wire struct the snapshot method returns, and the full wire
//     graph reachable from it: module-local named struct types reached
//     through wire-struct fields, plus json-tagged struct literals
//     constructed anywhere in a pair method's closure (which catches
//     indirect encodings like the rl Q-table's tableJSON/stateJSON).
//
// The graph is built once per Run/Audit pass; both rules share the
// instance DefaultRules wires in.
type stateGraph struct {
	pkgs  []*Package
	built bool

	decls map[*types.Func]stateDeclSite
	pairs []*statePair
	// wire maps every reachable wire struct to where it was found, in
	// deterministic discovery order (wireOrder).
	wire      map[*types.Named]*wireStruct
	wireOrder []*types.Named
}

type stateDeclSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// statePair is one stateful type with both halves of a snapshot
// pairing.
type statePair struct {
	Pkg  *Package
	Type *types.Named
	// Struct is Type's underlying struct; nil for non-struct types
	// (which have no fields to audit).
	Struct *types.Struct
	// Snap/Rest are the snapshot-side and restore-side methods. The
	// snapshot side prefers Checkpoint over Snapshot over SnapshotState
	// when a type declares several (core.Controller has both a
	// Checkpoint and a monitoring Snapshot; the checkpoint is the one
	// whose completeness matters).
	Snap, Rest *types.Func
	// SnapClosure/RestClosure are the transitive call closures of the
	// pair methods over every loaded package.
	SnapClosure, RestClosure map[*types.Func]bool
	// Wire is the module-local named struct the snapshot method
	// returns (first result, pointers dereferenced); nil when the
	// method returns bytes (SnapshotState → json.RawMessage).
	Wire *types.Named
	// Mutable lists the fields assigned outside the pair methods, in
	// declaration order.
	Mutable []*types.Var
	// MissSnap/MissRest mark mutable fields absent from the respective
	// closure's field mentions.
	MissSnap, MissRest map[*types.Var]bool
}

// wireStruct is one struct in the checkpoint wire graph.
type wireStruct struct {
	Named *types.Named
	Pkg   *Package // defining package, if loaded
}

// snapNames and restNames order the pairing method names by
// preference.
var snapNames = []string{"Checkpoint", "Snapshot", "SnapshotState"}
var restNames = []string{"Restore", "RestoreState"}

func newStateGraph() *stateGraph { return &stateGraph{} }

// prepare (re)builds the graph for pkgs. It is idempotent for a given
// package slice so the two sharing rules pay for one build per pass.
func (g *stateGraph) prepare(pkgs []*Package) {
	if g.built && len(pkgs) == len(g.pkgs) {
		same := true
		for i := range pkgs {
			if pkgs[i] != g.pkgs[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	g.pkgs = pkgs
	g.built = true
	g.decls = map[*types.Func]stateDeclSite{}
	g.pairs = nil
	g.wire = map[*types.Named]*wireStruct{}
	g.wireOrder = nil

	pkgOf := map[*types.Package]*Package{}
	for _, p := range pkgs {
		pkgOf[p.Types] = p
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					g.decls[fn] = stateDeclSite{p, fd}
				}
			}
		}
	}

	// Pair discovery: every package-scope named struct whose pointer
	// method set carries both halves.
	for _, p := range pkgs {
		scope := p.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ms := types.NewMethodSet(types.NewPointer(named))
			lookup := func(candidates []string) *types.Func {
				for _, n := range candidates {
					for i := 0; i < ms.Len(); i++ {
						sel := ms.At(i)
						fn, ok := sel.Obj().(*types.Func)
						if ok && fn.Name() == n {
							return fn
						}
					}
				}
				return nil
			}
			snap, rest := lookup(snapNames), lookup(restNames)
			if snap == nil || rest == nil {
				continue
			}
			pair := &statePair{Pkg: p, Type: named, Snap: snap, Rest: rest}
			if st, ok := named.Underlying().(*types.Struct); ok {
				pair.Struct = st
			}
			pair.SnapClosure = g.closure(snap)
			pair.RestClosure = g.closure(rest)
			pair.Wire = g.wireOf(snap)
			g.pairs = append(g.pairs, pair)
		}
	}

	for _, pair := range g.pairs {
		g.collectMutable(pair)
		g.markCoverage(pair)
	}

	// Wire graph: pair wire roots plus json-tagged struct literals
	// built inside pair-method closures, closed over field types.
	var worklist []*types.Named
	add := func(n *types.Named) {
		if n == nil || g.wire[n] != nil {
			return
		}
		if n.Obj().Pkg() == nil || !moduleLocal(n.Obj().Pkg().Path()) {
			return
		}
		if _, ok := n.Underlying().(*types.Struct); !ok {
			return
		}
		ws := &wireStruct{Named: n, Pkg: pkgOf[n.Obj().Pkg()]}
		g.wire[n] = ws
		g.wireOrder = append(g.wireOrder, n)
		worklist = append(worklist, n)
	}
	for _, pair := range g.pairs {
		add(pair.Wire)
		for _, cl := range []map[*types.Func]bool{pair.SnapClosure, pair.RestClosure} {
			for _, fn := range sortedFuncs(cl) {
				site, ok := g.decls[fn]
				if !ok || site.decl.Body == nil {
					continue
				}
				ast.Inspect(site.decl.Body, func(n ast.Node) bool {
					lit, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					tv, ok := site.pkg.Info.Types[lit]
					if !ok {
						return true
					}
					t := tv.Type
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					named, ok := t.(*types.Named)
					if !ok {
						return true
					}
					if st, ok := named.Underlying().(*types.Struct); ok && hasJSONTag(st) {
						add(named)
					}
					return true
				})
			}
		}
	}
	for len(worklist) > 0 {
		n := worklist[0]
		worklist = worklist[1:]
		st := n.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			for _, fn := range namedStructsIn(st.Field(i).Type()) {
				add(fn)
			}
		}
	}
}

// closure returns the transitive call closure of fn: every *types.Func
// referenced (called, taken as a method value, passed as an argument)
// from a body reachable from fn, across every loaded package. Interface
// methods terminate the walk — their implementers carry their own
// pairings.
func (g *stateGraph) closure(fn *types.Func) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	queue := []*types.Func{fn}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if f == nil || out[f] {
			continue
		}
		out[f] = true
		site, ok := g.decls[f]
		if !ok || site.decl.Body == nil {
			continue
		}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := site.pkg.Info.Uses[id].(*types.Func); ok && !out[callee] {
				queue = append(queue, callee)
			}
			return true
		})
	}
	return out
}

// wireOf resolves the snapshot method's wire struct: the first result
// type, pointers dereferenced, when it is a module-local named struct.
func (g *stateGraph) wireOf(snap *types.Func) *types.Named {
	sig, ok := snap.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	t := sig.Results().At(0).Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !moduleLocal(named.Obj().Pkg().Path()) {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// collectMutable fills pair.Mutable: fields of pair.Type assigned (or
// incremented, or written through an index/deref spine) by any method
// of the type other than the pair methods. Assignments inside the pair
// methods themselves don't make a field "mutable" — Restore writing a
// field is the coverage being checked, not state drift.
func (g *stateGraph) collectMutable(pair *statePair) {
	if pair.Struct == nil {
		return
	}
	fields := map[*types.Var]bool{}
	for i := 0; i < pair.Struct.NumFields(); i++ {
		fields[pair.Struct.Field(i)] = true
	}
	mutated := map[*types.Var]bool{}
	mark := func(p *Package, lhs ast.Expr) {
		// Walk the selector spine only (x.f, x.f[i], *x.f, x.f.g …):
		// the outermost selector resolving to a field of the pair type
		// is the mutated state.
		for e := lhs; e != nil; {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.SelectorExpr:
				if f, ok := p.Info.Uses[v.Sel].(*types.Var); ok && fields[f] {
					mutated[f] = true
					return
				}
				e = v.X
			default:
				return
			}
		}
	}
	for fn, site := range g.decls {
		if site.pkg != pair.Pkg || site.decl.Body == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if recvNamed(sig.Recv().Type()) != pair.Type.Obj() {
			continue
		}
		if fn == pair.Snap || fn == pair.Rest {
			continue
		}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					mark(site.pkg, l)
				}
			case *ast.IncDecStmt:
				mark(site.pkg, n.X)
			}
			return true
		})
	}
	for i := 0; i < pair.Struct.NumFields(); i++ {
		if f := pair.Struct.Field(i); mutated[f] {
			pair.Mutable = append(pair.Mutable, f)
		}
	}
}

// markCoverage computes which mutable fields each closure mentions. A
// mention is any selector resolving to the field — reads count on the
// snapshot side (the field flowing into the wire struct) and writes on
// the restore side; requiring a textual mention in the right method's
// closure is the drift check.
func (g *stateGraph) markCoverage(pair *statePair) {
	pair.MissSnap = map[*types.Var]bool{}
	pair.MissRest = map[*types.Var]bool{}
	if len(pair.Mutable) == 0 {
		return
	}
	mentions := func(cl map[*types.Func]bool) map[*types.Var]bool {
		out := map[*types.Var]bool{}
		for fn := range cl {
			site, ok := g.decls[fn]
			if !ok || site.decl.Body == nil {
				continue
			}
			ast.Inspect(site.decl.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if f, ok := site.pkg.Info.Uses[sel.Sel].(*types.Var); ok && f.IsField() {
					out[f] = true
				}
				return true
			})
		}
		return out
	}
	inSnap := mentions(pair.SnapClosure)
	inRest := mentions(pair.RestClosure)
	for _, f := range pair.Mutable {
		if !inSnap[f] {
			pair.MissSnap[f] = true
		}
		if !inRest[f] {
			pair.MissRest[f] = true
		}
	}
}

// moduleLocal reports whether an import path is inside this module.
func moduleLocal(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// recvNamed unwraps a receiver type (T or *T) to its *types.TypeName.
func recvNamed(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// namedStructsIn unwraps slices, arrays, pointers and map values to the
// named struct types a wire field embeds.
func namedStructsIn(t types.Type) []*types.Named {
	switch t := t.(type) {
	case *types.Named:
		if _, ok := t.Underlying().(*types.Struct); ok {
			return []*types.Named{t}
		}
	case *types.Pointer:
		return namedStructsIn(t.Elem())
	case *types.Slice:
		return namedStructsIn(t.Elem())
	case *types.Array:
		return namedStructsIn(t.Elem())
	case *types.Map:
		return namedStructsIn(t.Elem())
	}
	return nil
}

// hasJSONTag reports whether any field of the struct carries a json
// struct tag — the marker that a literal built inside a snapshot
// closure is a wire encoding, not scratch.
func hasJSONTag(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if jsonTagOf(st.Tag(i)) != "" {
			return true
		}
	}
	return false
}

// jsonTagOf extracts the raw json tag value ("name,omitempty", "-", …)
// from a struct tag string, or "" when absent.
func jsonTagOf(tag string) string {
	// Mirror reflect.StructTag.Get without importing reflect at
	// analysis time on dynamic values: struct tags here are static
	// strings, so reflect's parser is fine.
	return structTag(tag).get("json")
}

type structTag string

// get is reflect.StructTag.Get's grammar, inlined so malformed tags
// degrade to "" exactly like encoding/json sees them.
func (tag structTag) get(key string) string {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' && tag[i] != 0x7f {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := string(tag[:i])
		tag = tag[i+1:]
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			break
		}
		qvalue := string(tag[:i+1])
		tag = tag[i+1:]
		if name == key {
			value, err := strconv.Unquote(qvalue)
			if err != nil {
				return ""
			}
			return value
		}
	}
	return ""
}

// sortedFuncs returns the closure's functions ordered by position, for
// deterministic wire-graph discovery.
func sortedFuncs(cl map[*types.Func]bool) []*types.Func {
	out := make([]*types.Func, 0, len(cl))
	for fn := range cl {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos() != out[j].Pos() {
			return out[i].Pos() < out[j].Pos()
		}
		return out[i].FullName() < out[j].FullName()
	})
	return out
}
