package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

// TestRuleFixtures loads one intentionally-violating fixture package
// per rule, scoped to an import path where the rule applies, and
// asserts the exact file:line: rule: message output against committed
// goldens. Each fixture also contains the rule's sanctioned idiom and
// a directive-suppressed site, so a pass that over-fires breaks the
// golden just as loudly as one that under-fires.
func TestRuleFixtures(t *testing.T) {
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rule   string
		asPath string // import path the fixture is checked under
	}{
		{"nondeterm", ModulePath + "/internal/sim"},
		{"maprange", ModulePath + "/internal/strategy"},
		{"atomicwrite", ModulePath + "/cmd/fixture"},
		{"snapshotpair", ModulePath + "/internal/fixture"},
		{"nogoroutine", ModulePath + "/internal/battery"},
		{"allocfree", ModulePath + "/internal/sim"},
		{"statecov", ModulePath + "/internal/fixture"},
		{"lockguard", ModulePath + "/internal/core"},
		{"wiretag", ModulePath + "/internal/fixture"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", tc.rule)
			pkg, err := loader.LoadDir(dir, tc.asPath)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run([]*Package{pkg}, DefaultRules())
			var lines []string
			for _, d := range diags {
				if d.Rule != tc.rule {
					t.Errorf("fixture fired foreign rule: %s", d)
				}
				lines = append(lines, d.String())
			}
			got := strings.Join(lines, "\n") + "\n"
			goldenPath := filepath.Join(root, "internal", "lint", "testdata", tc.rule+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestSelfClean is the invariant the whole PR rests on: the analyzer
// must exit clean on the repository itself. A new violation anywhere
// in the tree fails this test with the exact offending line.
func TestSelfClean(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the walker is skipping real code", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultRules()) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestMalformedDirective proves bad suppression comments surface as
// un-suppressible "directive" diagnostics instead of silently allowing
// everything (or nothing). Near-miss forms — whitespace after the
// slashes or after the colon — must both be reported as malformed AND
// not suppress the rule they name, so an author can never believe a
// site is covered when it is not. The fixture is loaded as a
// deterministic-domain package so the os.Getenv sites under the
// near-miss directives prove the non-suppression half.
func TestMalformedDirective(t *testing.T) {
	root := moduleRoot(t)
	dir := t.TempDir()
	src := `package bad

import "os"

//greensprint:allow nondeterm missing parens
var A = 1

//greensprint:allow() empty rule list
var B = 2

//greensprint:allow(nondeterm justification inside parens breaks the close
var C = 3

// greensprint:allow(nondeterm) near miss: space after the slashes
var D = os.Getenv("D")

//greensprint: allow(nondeterm) near miss: space after the colon
var E = os.Getenv("E")
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, ModulePath+"/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, DefaultRules())
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	if byRule["directive"] != 5 {
		t.Errorf("got %d malformed-directive findings, want 5: %v", byRule["directive"], diags)
	}
	if byRule["nondeterm"] != 2 {
		t.Errorf("got %d nondeterm findings, want 2 (near-miss directives must not suppress): %v", byRule["nondeterm"], diags)
	}
	if len(diags) != 7 {
		t.Errorf("got %d diagnostics in total, want 7: %v", len(diags), diags)
	}
}

// TestDirectiveScope pins the suppression grammar: a directive covers
// its own line and the line below, nothing further.
func TestDirectiveScope(t *testing.T) {
	root := moduleRoot(t)
	dir := t.TempDir()
	src := `package scope

import "os"

//greensprint:allow(nondeterm) covers the next line only
var A = os.Getenv("A")
var B = os.Getenv("B")
var C = os.Getenv("C") //greensprint:allow(nondeterm) trailing form
`
	if err := os.WriteFile(filepath.Join(dir, "scope.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, ModulePath+"/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, DefaultRules())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed os.Getenv: %v", len(diags), diags)
	}
	if diags[0].Line != 7 {
		t.Errorf("surviving diagnostic at line %d, want 7 (var B): %s", diags[0].Line, diags[0])
	}
}

func TestMatchAny(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{".", []string{"./..."}, true},
		{"internal/sim", []string{"./..."}, true},
		{"internal/sim", []string{"./internal/..."}, true},
		{"internal/sim", []string{"./internal/sim"}, true},
		{"internal/simulator", []string{"./internal/sim"}, false},
		{"internal/simulator", []string{"./internal/sim/..."}, false},
		{"cmd/tracegen", []string{"./internal/..."}, false},
		{"cmd/tracegen", []string{"./internal/...", "./cmd/..."}, true},
		{".", []string{"."}, true},
		{"internal/sim", []string{"."}, false},
	}
	for _, tc := range cases {
		if got := matchAny(tc.rel, tc.patterns); got != tc.want {
			t.Errorf("matchAny(%q, %v) = %v, want %v", tc.rel, tc.patterns, got, tc.want)
		}
	}
}
