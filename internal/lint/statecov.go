package lint

import (
	"go/token"
)

// StateCovRule is the checkpoint-completeness half of the state graph:
// every mutable field of a snapshotting type (one with a
// Snapshot/Restore, Checkpoint/Restore or SnapshotState/RestoreState
// pairing) must flow into the snapshot side AND be written back on the
// restore side. "Mutable" means assigned by some method of the type
// other than the pair methods themselves — constructor-only
// configuration needs no checkpointing, but anything Step can change
// does, or a resumed run silently diverges from a straight one.
//
// The check is textual-by-closure: a field counts as covered on a side
// when any function in that pair method's transitive call closure
// mentions it (so Engine.Restore delegating classAlive to
// recomputeClassAlive still covers classAlive). Derived caches and
// scratch buffers that are deliberately rebuilt instead of serialized
// carry //greensprint:allow(statecov) directives on their field
// declarations, each with a justification the -audit report lists.
//
// Findings anchor at the field declaration — the line an author touches
// when adding state is the line the diagnostic (and its exemption)
// lives on.
type StateCovRule struct {
	g *stateGraph
}

// NewStateCovRule returns the rule sharing the given state graph.
func NewStateCovRule(g *stateGraph) *StateCovRule { return &StateCovRule{g: g} }

// Name implements Rule.
func (*StateCovRule) Name() string { return "statecov" }

// Doc implements Rule.
func (*StateCovRule) Doc() string {
	return "every mutable field of a Snapshot/Restore type must flow into its wire struct and be reassigned on restore"
}

// Applies implements Rule: snapshot pairings occur throughout the
// module (sim, core, battery, pss, chaos, pmk, strategy, …), so the
// rule is unscoped.
func (*StateCovRule) Applies(string) bool { return true }

// Prepare implements Prepasser via the shared state graph.
func (r *StateCovRule) Prepare(pkgs []*Package) { r.g.prepare(pkgs) }

// Check implements Rule.
func (r *StateCovRule) Check(p *Package, report ReportFunc) {
	for _, pair := range r.g.pairs {
		if pair.Pkg != p {
			continue
		}
		for _, f := range pair.Mutable {
			missSnap, missRest := pair.MissSnap[f], pair.MissRest[f]
			if !missSnap && !missRest {
				continue
			}
			tn := pair.Type.Obj().Name()
			var msg string
			switch {
			case missSnap && missRest:
				msg = "mutable field " + tn + "." + f.Name() + " is not captured by " +
					pair.Snap.Name() + " and not restored by " + pair.Rest.Name()
			case missSnap:
				msg = "mutable field " + tn + "." + f.Name() + " is not captured by " + pair.Snap.Name()
			default:
				msg = "mutable field " + tn + "." + f.Name() + " is not restored by " + pair.Rest.Name()
			}
			msg += "; a resumed run will drift from a straight one — add it to the wire struct or exempt it as derived with //greensprint:allow(statecov)"
			pos := f.Pos()
			if pos == token.NoPos {
				pos = pair.Type.Obj().Pos()
			}
			report(pos, msg)
		}
	}
}
