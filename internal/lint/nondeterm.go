package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgFunc resolves an identifier use — the Sel of a qualified selector
// (time.Now) or a plain identifier bound by a dot import (import .
// "time"; Now()) — to a package-level function (never a method) of an
// imported package, returning the package path and function name. It
// covers both call sites (time.Now()) and value uses (f := time.Now),
// since either smuggles nondeterminism in.
func pkgFunc(p *Package, id *ast.Ident) (pkgPath, name string, ok bool) {
	obj, found := p.Info.Uses[id]
	if !found {
		return "", "", false
	}
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// NondetermRule forbids the ambient-nondeterminism entry points inside
// the deterministic simulation domain: wall-clock reads (time.Now,
// time.Since, time.Until), environment reads (os.Getenv, os.LookupEnv,
// os.Environ) and the process-global math/rand source. Explicitly
// seeded generators — rand.New(rand.NewSource(seed)) and the
// math/rand/v2 equivalents — are the sanctioned idiom and pass. Uses
// are resolved through types.Info, so dot-imported names (import .
// "time"; Now()) and aliased imports are caught the same as qualified
// selectors.
type NondetermRule struct{}

// Name implements Rule.
func (NondetermRule) Name() string { return "nondeterm" }

// Doc implements Rule.
func (NondetermRule) Doc() string {
	return "no wall-clock, environment or global-rand reads in the deterministic domain"
}

// Applies implements Rule.
func (NondetermRule) Applies(pkgPath string) bool { return DeterministicPackages[pkgPath] }

// randConstructors are the math/rand and math/rand/v2 package-level
// functions that build explicitly seeded generators rather than
// touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Check implements Rule.
func (NondetermRule) Check(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		// Qualified uses report at the selector (the position of the
		// "time" in time.Now); their Sel identifiers are marked handled
		// so the plain-ident pass — which exists to catch dot-imported
		// uses — does not report the same site twice.
		handled := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			var (
				id  *ast.Ident
				pos token.Pos
			)
			switch n := n.(type) {
			case *ast.SelectorExpr:
				handled[n.Sel] = true
				id, pos = n.Sel, n.Pos()
			case *ast.Ident:
				if handled[n] {
					return true
				}
				id, pos = n, n.Pos()
			default:
				return true
			}
			pkgPath, name, ok := pkgFunc(p, id)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				switch name {
				case "Now", "Since", "Until":
					report(pos, "call to time."+name+": wall-clock time is nondeterministic; derive timestamps from the simulation epoch clock")
				}
			case "os":
				switch name {
				case "Getenv", "LookupEnv", "Environ":
					report(pos, "call to os."+name+": environment reads are hidden nondeterministic inputs; thread configuration through explicit parameters")
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					report(pos, "call to "+pkgPath+"."+name+" uses the process-global random source; use a seeded rand.New(rand.NewSource(seed))")
				}
			}
			return true
		})
	}
}
