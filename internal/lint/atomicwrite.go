package lint

import "go/ast"

// AtomicWriteRule enforces the persistence invariant PR 3 established:
// every state file written by this repo goes through
// internal/atomicfile (tmp file + rename), so a crash mid-write never
// leaves a truncated checkpoint, Q-table or knob file at the final
// path. Direct os.WriteFile and os.Create calls are flagged
// everywhere outside internal/atomicfile itself; genuine streaming
// writers (CSV exports, JSONL event logs — append streams whose
// partial contents are still useful) carry an
// //greensprint:allow(atomicwrite) directive saying so.
type AtomicWriteRule struct{}

// Name implements Rule.
func (AtomicWriteRule) Name() string { return "atomicwrite" }

// Doc implements Rule.
func (AtomicWriteRule) Doc() string {
	return "no direct os.WriteFile/os.Create persistence outside internal/atomicfile"
}

// Applies implements Rule.
func (AtomicWriteRule) Applies(pkgPath string) bool {
	return pkgPath != ModulePath+"/internal/atomicfile"
}

// Check implements Rule.
func (AtomicWriteRule) Check(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFunc(p, sel.Sel)
			if !ok || pkgPath != "os" {
				return true
			}
			switch name {
			case "WriteFile":
				report(sel.Pos(), "direct os.WriteFile is not crash-safe (a crash mid-write truncates the previous contents); use internal/atomicfile.WriteFile")
			case "Create":
				report(sel.Pos(), "os.Create bypasses atomic persistence; use internal/atomicfile.WriteFile for state files, or annotate a genuine streaming writer with //greensprint:allow(atomicwrite)")
			}
			return true
		})
	}
}
