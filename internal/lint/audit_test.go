package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// TestAuditOrderDeterministic pins the -audit report row order: rows
// sort by (file, line, rule) — the order CI artifacts diff on — with a
// multi-rule directive on one line expanding into adjacent rows in
// rule order, and two identical passes producing identical output.
func TestAuditOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module greensprint\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Two files so the file key matters; one directive naming two rules
	// so the rule key matters on equal (file, line).
	srcA := `package sim

import "os"

//greensprint:allow(nondeterm,maprange) two rules on one line
var A = os.Getenv("A")
`
	srcB := `package sim

import "os"

//greensprint:allow(nondeterm) single rule in a later file
var B = os.Getenv("B")
`
	for name, src := range map[string]string{"a.go": srcA, "b.go": srcB} {
		if err := os.WriteFile(filepath.Join(dir, "internal", "sim", name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := Audit(pkgs, DefaultRules())
	second := Audit(pkgs, DefaultRules())
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two audit passes disagree:\n%v\n%v", first, second)
	}
	if len(first) != 3 {
		t.Fatalf("got %d entries, want 3: %v", len(first), first)
	}
	sorted := sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i], first[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	if !sorted {
		t.Errorf("entries not sorted by (file, line, rule): %v", first)
	}
	if first[0].Rule != "maprange" || first[1].Rule != "nondeterm" {
		t.Errorf("same-line rules out of order: %v", first[:2])
	}
	if !filepath.IsAbs(first[2].File) && first[2].File != first[0].File && first[0].File >= first[2].File {
		t.Errorf("file order violated: %q before %q", first[0].File, first[2].File)
	}
}
