package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeRule flags `range` over a map type inside the deterministic
// domain: Go randomizes map iteration order, so any observable effect
// of the loop (appends, accumulation order, emitted records) varies
// run to run — exactly the bug class the dense Hybrid cell array in
// PR 4 removed. A site is accepted when the iteration result is
// sorted immediately afterwards (an ordering call — sort.Slice,
// slices.Sort, ... — later in the same block, the collect-then-sort
// idiom) or when it carries a
// //greensprint:allow(maprange) directive with a justification that
// the loop body is order-independent.
type MapRangeRule struct{}

// Name implements Rule.
func (MapRangeRule) Name() string { return "maprange" }

// Doc implements Rule.
func (MapRangeRule) Doc() string {
	return "no unordered map iteration in the deterministic domain (sort the results or justify with an allow directive)"
}

// Applies implements Rule.
func (MapRangeRule) Applies(pkgPath string) bool { return DeterministicPackages[pkgPath] }

// Check implements Rule.
func (MapRangeRule) Check(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if rs, ok := n.(*ast.RangeStmt); ok && len(stack) > 0 {
				if t := p.Info.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !sortedAfter(p, stack[len(stack)-1], rs) {
						name := types.TypeString(t, types.RelativeTo(p.Types))
						report(rs.Pos(), "range over map (type "+name+") iterates in nondeterministic order; sort the collected keys/results or annotate with //greensprint:allow(maprange)")
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// orderingFuncs are the stdlib functions that impose an order on
// collected results — the second half of the collect-then-sort idiom.
// Only genuine ordering functions count: a lookup such as
// slices.Contains or sort.Search after the loop reads the slice, it
// does not fix the iteration order, and must not suppress a finding.
var orderingFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether a statement after the range loop, in the
// same enclosing statement list, calls an ordering function of package
// sort or slices — the collect-then-sort idiom that makes map
// iteration safe. The qualifier is resolved through types.Info.Uses to
// the imported package, so a local variable that merely shadows the
// name sort or slices does not count.
func sortedAfter(p *Package, parent ast.Node, rs *ast.RangeStmt) bool {
	var list []ast.Stmt
	switch b := parent.(type) {
	case *ast.BlockStmt:
		list = b.List
	case *ast.CaseClause:
		list = b.Body
	case *ast.CommClause:
		list = b.Body
	default:
		return false
	}
	idx := -1
	for i, st := range list {
		if st == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, st := range list[idx+1:] {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
						if fns, ok := orderingFuncs[pn.Imported().Path()]; ok && fns[sel.Sel.Name] {
							found = true
							return false
						}
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
