package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeRule flags `range` over a map type inside the deterministic
// domain: Go randomizes map iteration order, so any observable effect
// of the loop (appends, accumulation order, emitted records) varies
// run to run — exactly the bug class the dense Hybrid cell array in
// PR 4 removed. A site is accepted when the iteration result is
// sorted immediately afterwards (an ordering call — sort.Slice,
// slices.Sort, ... — later in the same block, the collect-then-sort
// idiom), when it is deterministic by construction (a map keyed by
// server.Config whose body drains each entry into its canonical
// server.Index slot — every key lands in a fixed position regardless
// of visit order), or when it carries a
// //greensprint:allow(maprange) directive with a justification that
// the loop body is order-independent.
type MapRangeRule struct{}

// Name implements Rule.
func (MapRangeRule) Name() string { return "maprange" }

// Doc implements Rule.
func (MapRangeRule) Doc() string {
	return "no unordered map iteration in the deterministic domain (sort the results or justify with an allow directive)"
}

// Applies implements Rule.
func (MapRangeRule) Applies(pkgPath string) bool { return DeterministicPackages[pkgPath] }

// Check implements Rule.
func (MapRangeRule) Check(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if rs, ok := n.(*ast.RangeStmt); ok && len(stack) > 0 {
				if t := p.Info.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap &&
						!sortedAfter(p, stack[len(stack)-1], rs) &&
						!drainedByServerIndex(p, rs) {
						name := types.TypeString(t, types.RelativeTo(p.Types))
						report(rs.Pos(), "range over map (type "+name+") iterates in nondeterministic order; sort the collected keys/results or annotate with //greensprint:allow(maprange)")
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// serverPkgPath is the knob-space package whose canonical index makes
// a map drain order-independent.
const serverPkgPath = ModulePath + "/internal/server"

// drainedByServerIndex reports whether the range is deterministic by
// construction: the map is keyed by server.Config and the body indexes
// by server.Index(key), so every entry lands in its canonical slot of
// a dense structure no matter which order the runtime visits keys in.
// Both the key type and the Index call are resolved through the type
// checker (types.Info), so a local shadow of the server package name
// or a different Index function does not qualify.
func drainedByServerIndex(p *Package, rs *ast.RangeStmt) bool {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	mt, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	named, ok := mt.Key().(*types.Named)
	if !ok {
		return false
	}
	if obj := named.Obj(); obj.Pkg() == nil || obj.Pkg().Path() != serverPkgPath || obj.Name() != "Config" {
		return false
	}
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" {
		return false
	}
	keyObj := p.Info.Defs[keyIdent]
	if keyObj == nil {
		keyObj = p.Info.Uses[keyIdent]
	}
	if keyObj == nil {
		return false
	}
	found := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Index" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != serverPkgPath {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && p.Info.Uses[arg] == keyObj {
			found = true
			return false
		}
		return true
	})
	return found
}

// orderingFuncs are the stdlib functions that impose an order on
// collected results — the second half of the collect-then-sort idiom.
// Only genuine ordering functions count: a lookup such as
// slices.Contains or sort.Search after the loop reads the slice, it
// does not fix the iteration order, and must not suppress a finding.
var orderingFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether a statement after the range loop, in the
// same enclosing statement list, calls an ordering function of package
// sort or slices — the collect-then-sort idiom that makes map
// iteration safe. The qualifier is resolved through types.Info.Uses to
// the imported package, so a local variable that merely shadows the
// name sort or slices does not count.
func sortedAfter(p *Package, parent ast.Node, rs *ast.RangeStmt) bool {
	var list []ast.Stmt
	switch b := parent.(type) {
	case *ast.BlockStmt:
		list = b.List
	case *ast.CaseClause:
		list = b.Body
	case *ast.CommClause:
		list = b.Body
	default:
		return false
	}
	idx := -1
	for i, st := range list {
		if st == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, st := range list[idx+1:] {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
						if fns, ok := orderingFuncs[pn.Imported().Path()]; ok && fns[sel.Sel.Name] {
							found = true
							return false
						}
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
