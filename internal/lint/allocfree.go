package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFreeRule guards the PR 9 batching optimization the way the
// nogoroutine rule guards the PR 4 memo caches: BenchmarkEngineStep is
// budgeted at 0 allocs/op (BENCH_PR9.json), and this rule fails the
// build at review time — before the benchmark gate even runs — when a
// change introduces an allocation site into the Engine.Step/StepN call
// graph. It flags, inside functions reachable from sim.Engine.Step or
// sim.Engine.StepN:
//
//   - slice and map composite literals (and &composite pointers, which
//     escape by construction),
//   - make and new,
//   - append (which may grow, and therefore allocate),
//   - func literals that capture enclosing variables (closure
//     allocation),
//   - passing a non-pointer concrete value where a parameter is an
//     interface (boxing).
//
// Struct value literals are not flagged — they live on the stack or in
// their destination — and calls into fmt and errors are exempt from
// the boxing check, because error paths abort the run and their cost
// is irrelevant. Sites that are genuinely amortized (arena growth,
// one-time presizing) carry //greensprint:allow(allocfree) directives
// with justifications; `greensprint-lint -audit` lists them all.
//
// Reachability is computed by a whole-program prepass (Prepare):
// static calls and method values resolve through types.Info.Uses, and
// a call through an interface method fans out to every concrete type
// in the step-graph packages that implements the interface. The
// over-approximation is deliberate — a site that might be on the hot
// path is treated as on it.
type AllocFreeRule struct {
	reachable map[*types.Func]bool
}

// NewAllocFreeRule returns the rule; Run invokes its Prepare prepass
// before per-package checking.
func NewAllocFreeRule() *AllocFreeRule { return &AllocFreeRule{} }

// Name implements Rule.
func (*AllocFreeRule) Name() string { return "allocfree" }

// Doc implements Rule.
func (*AllocFreeRule) Doc() string {
	return "no allocation sites (composite literals, make/new, append, capturing closures, interface boxing) in the Engine.Step/StepN call graph"
}

// Applies implements Rule.
func (*AllocFreeRule) Applies(pkgPath string) bool { return StepGraphPackages[pkgPath] }

// simPath is where the call-graph roots live.
const simPath = ModulePath + "/internal/sim"

// Prepare implements the whole-program prepass: it builds the set of
// functions reachable from sim.Engine.Step/StepN across every
// step-graph package in pkgs. Packages outside the step graph (and the
// standard library) terminate the walk — the rule cannot report into
// them anyway.
func (r *AllocFreeRule) Prepare(pkgs []*Package) {
	r.reachable = map[*types.Func]bool{}

	// Index every function declaration in the step-graph packages, and
	// every named type for interface-implementation matching.
	type declSite struct {
		pkg  *Package
		decl *ast.FuncDecl
	}
	decls := map[*types.Func]declSite{}
	var named []types.Type
	for _, p := range pkgs {
		if !StepGraphPackages[p.Path] && p.Path != simPath {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = declSite{p, fd}
				}
			}
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				named = append(named, tn.Type())
			}
		}
	}

	// Roots: Step and StepN on sim.Engine.
	var queue []*types.Func
	for fn := range decls {
		if fn.Pkg() == nil || fn.Pkg().Path() != simPath {
			continue
		}
		if fn.Name() != "Step" && fn.Name() != "StepN" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if recvTypeName(sig.Recv().Type()) == "Engine" {
			queue = append(queue, fn)
		}
	}

	// implementers resolves an interface method to the matching
	// concrete methods of every step-graph type that implements the
	// interface.
	implementers := func(fn *types.Func, iface *types.Interface) []*types.Func {
		var out []*types.Func
		for _, t := range named {
			if types.IsInterface(t) {
				continue
			}
			pt := types.NewPointer(t)
			if !types.Implements(t, iface) && !types.Implements(pt, iface) {
				continue
			}
			if obj, _, _ := types.LookupFieldOrMethod(pt, true, fn.Pkg(), fn.Name()); obj != nil {
				if m, ok := obj.(*types.Func); ok {
					out = append(out, m)
				}
			}
		}
		return out
	}

	// Breadth-first closure: every *types.Func referenced inside a
	// reachable body is an edge (covering calls, method values and
	// functions passed as arguments alike); abstract interface methods
	// fan out to their step-graph implementers.
	visit := func(fn *types.Func) {
		if fn == nil || r.reachable[fn] {
			return
		}
		r.reachable[fn] = true
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		r.reachable[fn] = true
		site, ok := decls[fn]
		if !ok || site.decl.Body == nil {
			continue
		}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := site.pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
					for _, m := range implementers(callee, iface) {
						visit(m)
					}
					return true
				}
			}
			visit(callee)
			return true
		})
	}
}

// recvTypeName unwraps a receiver type (T or *T) to its named type's
// name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Check implements Rule: it scans the bodies of this package's
// reachable functions for allocation sites.
func (r *AllocFreeRule) Check(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok || !r.reachable[fn] {
				continue
			}
			r.checkBody(p, fd.Body, report)
		}
	}
}

func (r *AllocFreeRule) checkBody(p *Package, body ast.Node, report ReportFunc) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch p.Info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates on the Step hot path; hoist it to construction time or reuse a scratch buffer")
			case *types.Map:
				report(n.Pos(), "map literal allocates on the Step hot path; hoist it to construction time")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite escapes to the heap on the Step hot path; hoist the value to a reused field")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(p, n) {
				report(n.Pos(), "func literal captures enclosing variables and allocates a closure on the Step hot path; hoist it or pass state explicitly")
			}
		case *ast.CallExpr:
			r.checkCall(p, n, report)
		}
		return true
	})
}

// checkCall flags builtin allocators and interface boxing at call
// arguments.
func (r *AllocFreeRule) checkCall(p *Package, call *ast.CallExpr, report ReportFunc) {
	// Builtins: make, new, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates on the Step hot path; hoist the buffer to construction time and reuse it")
			case "new":
				report(call.Pos(), "new allocates on the Step hot path; hoist the value to a reused field")
			case "append":
				report(call.Pos(), "append may grow its backing array on the Step hot path; presize at construction time or annotate an amortized arena")
			}
			return
		}
	}

	// Boxing: a non-pointer concrete argument to an interface-typed
	// parameter heap-allocates the value. Calls into fmt and errors are
	// exempt — they sit on error paths that abort the run.
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if callee := calleeFunc(p, call); callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "errors":
			return
		}
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < params.Len()-1 || !sig.Variadic():
			if i >= params.Len() {
				return
			}
			param = params.At(i).Type()
		case call.Ellipsis.IsValid():
			param = params.At(params.Len() - 1).Type()
		default:
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		}
		if !types.IsInterface(param) {
			continue
		}
		at, ok := p.Info.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		argT := at.Type
		if types.IsInterface(argT) {
			continue
		}
		if _, isPtr := argT.Underlying().(*types.Pointer); isPtr {
			continue
		}
		report(arg.Pos(), "passing "+types.TypeString(argT, types.RelativeTo(p.Types))+
			" by value as an interface boxes it onto the heap on the Step hot path; pass a pointer or a concrete type")
	}
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// capturesOuter reports whether the func literal references a variable
// declared outside its own body (excluding package-level state) — the
// condition under which the literal allocates a closure rather than
// compiling to a plain function value.
func capturesOuter(p *Package, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
