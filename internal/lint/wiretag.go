package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// WireTagRule audits the checkpoint wire graph the state-graph prepass
// discovers (every struct reachable from a snapshot pairing's wire
// type, plus json-tagged literals built inside snapshot/restore
// closures — which catches indirect encodings like the rl Q-table's
// tableJSON). Four checks per wire struct:
//
//   - every exported field must carry an explicit json tag with an
//     explicit name ("-" to exclude it): the default wire name is the
//     Go identifier, so an innocent rename silently changes the
//     checkpoint schema;
//   - tag names must be unique within the struct — encoding/json drops
//     same-level conflicting fields without error;
//   - unexported fields are flagged: encoding/json skips them silently,
//     which is exactly the state-drop statecov exists to prevent;
//   - an omitempty field must be provably migration-safe. A field that
//     is only ever written conditionally (the battery degradation
//     pattern: `if b.capFade != 1 { s.CapacityFade = b.capFade }`)
//     uses the zero value as an "absent" sentinel, so some restore
//     path must compare it against zero and remap (`if fade == 0 {
//     fade = 1 }`); without that guard, a pre-migration checkpoint
//     missing the key decodes to a state no live writer ever produced.
//     Unconditionally-written omitempty fields are safe by
//     construction — their zero value round-trips to itself — as are
//     nilable fields (pointer/slice/map) and bools, whose zero is the
//     natural absent encoding.
type WireTagRule struct {
	g *stateGraph
}

// NewWireTagRule returns the rule sharing the given state graph.
func NewWireTagRule(g *stateGraph) *WireTagRule { return &WireTagRule{g: g} }

// Name implements Rule.
func (*WireTagRule) Name() string { return "wiretag" }

// Doc implements Rule.
func (*WireTagRule) Doc() string {
	return "checkpoint wire structs need explicit, unique json tags and migration-safe omitempty fields"
}

// Applies implements Rule: wire structs live wherever snapshot
// pairings do.
func (*WireTagRule) Applies(string) bool { return true }

// Prepare implements Prepasser via the shared state graph.
func (r *WireTagRule) Prepare(pkgs []*Package) { r.g.prepare(pkgs) }

// Check implements Rule.
func (r *WireTagRule) Check(p *Package, report ReportFunc) {
	for _, named := range r.g.wireOrder {
		ws := r.g.wire[named]
		if ws.Pkg != p {
			continue
		}
		r.checkStruct(named, report)
	}
}

func (r *WireTagRule) checkStruct(named *types.Named, report ReportFunc) {
	st := named.Underlying().(*types.Struct)
	tn := named.Obj().Name()
	seen := map[string]string{} // tag name → field name
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			report(f.Pos(), "unexported field "+tn+"."+f.Name()+
				" in a checkpoint wire struct is silently dropped by encoding/json; export it or move it out of the wire layout")
			continue
		}
		tag := jsonTagOf(st.Tag(i))
		if tag == "" {
			report(f.Pos(), "wire field "+tn+"."+f.Name()+
				" has no json tag; the wire name is the Go identifier and silently changes on rename — pin it with an explicit tag")
			continue
		}
		name, opts, _ := strings.Cut(tag, ",")
		if name == "-" && opts == "" {
			continue // explicitly excluded from the wire
		}
		if name == "" {
			report(f.Pos(), "wire field "+tn+"."+f.Name()+
				" has a json tag without an explicit name; pin the wire name so a field rename cannot change the schema")
			continue
		}
		if prev, dup := seen[name]; dup {
			report(f.Pos(), "json tag "+quoteTag(name)+" on "+tn+"."+f.Name()+
				" duplicates field "+prev+"; encoding/json drops same-level conflicting fields silently")
		} else {
			seen[name] = f.Name()
		}
		if hasOption(opts, "omitempty") && !omitemptySafe(f.Type()) {
			r.checkOmitempty(named, f, tn, report)
		}
	}
}

// quoteTag renders a tag name for a diagnostic message.
func quoteTag(s string) string { return "\"" + s + "\"" }

// hasOption reports whether a json tag's option list contains opt.
func hasOption(opts, opt string) bool {
	for opts != "" {
		var o string
		o, opts, _ = strings.Cut(opts, ",")
		if o == opt {
			return true
		}
	}
	return false
}

// omitemptySafe reports whether the field's type makes omitempty
// trivially round-trip: nilable types and bool have a natural absent
// encoding (and structs are never omitted at all).
func omitemptySafe(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface, *types.Chan, *types.Signature:
		return true
	case *types.Struct:
		return true // encoding/json never omits struct values
	case *types.Basic:
		return u.Kind() == types.Bool || u.Kind() == types.UntypedBool
	}
	return false
}

// checkOmitempty flags a scalar omitempty field that is written only
// conditionally (zero = "absent" sentinel) without any zero-guard
// comparison on a restore path.
func (r *WireTagRule) checkOmitempty(named *types.Named, f *types.Var, tn string, report ReportFunc) {
	conditional, unconditional, guarded := r.fieldWrites(f)
	if unconditional || !conditional || guarded {
		return
	}
	report(f.Pos(), "omitempty field "+tn+"."+f.Name()+
		" is written only conditionally, so its zero value means \"absent\" — but no restore path compares it against zero to remap it;"+
		" a checkpoint missing the key will decode to a state no writer produces. Add a zero-guard on restore or drop omitempty")
}

// fieldWrites scans every loaded package for writes to and zero-guards
// on field f: whether any write is conditional (under an if/switch),
// whether any is unconditional (including composite-literal keys), and
// whether any function compares the field (or a local bound from it)
// against its zero value.
func (r *WireTagRule) fieldWrites(f *types.Var) (conditional, unconditional, guarded bool) {
	for _, p := range r.g.pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c, u := writesIn(p, fd.Body, f)
				conditional = conditional || c
				unconditional = unconditional || u
				if zeroGuardIn(p, fd.Body, f) {
					guarded = true
				}
			}
		}
	}
	return
}

// writesIn reports conditional/unconditional writes to f inside body.
// Depth counts enclosing branch statements: a write at depth 0 always
// runs when the function does. Loops deliberately do not count — a
// per-item write inside a range body is not value-conditional; the
// sentinel pattern this check hunts is an if/switch keyed on the
// value being non-default.
func writesIn(p *Package, body ast.Node, f *types.Var) (conditional, unconditional bool) {
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			depth++
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok {
					if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && v == f {
						if depth > 0 {
							conditional = true
						} else {
							unconditional = true
						}
					}
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok && v == f {
					if depth > 0 {
						conditional = true
					} else {
						unconditional = true
					}
				}
			}
		}
		d := depth
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, d)
			return false
		})
	}
	walk(body, 0)
	return
}

// zeroGuardIn reports whether body compares f — directly or through a
// local variable bound from it — against its zero value.
func zeroGuardIn(p *Package, body ast.Node, f *types.Var) bool {
	// Locals directly bound from the field (fade := s.CapacityFade,
	// including the multi-assign form).
	aliases := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sel, ok := rhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if v, ok := p.Info.Uses[sel.Sel].(*types.Var); !ok || v != f {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					aliases[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					aliases[obj] = true
				}
			}
		}
		return true
	})
	refersToField := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.SelectorExpr:
			v, ok := p.Info.Uses[e.Sel].(*types.Var)
			return ok && v == f
		case *ast.Ident:
			if obj := p.Info.Uses[e]; obj != nil {
				return aliases[obj]
			}
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			if refersToField(pair[0]) && isZeroConst(p, pair[1]) {
				found = true
			}
		}
		return true
	})
	return found
}

// isZeroConst reports whether e is a compile-time zero (0, 0.0, "",
// false).
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.String:
		return constant.StringVal(tv.Value) == ""
	case constant.Bool:
		return !constant.BoolVal(tv.Value)
	}
	return false
}
