package lint

import "go/ast"

// NoGoroutineRule forbids `go` statements in the Engine.Step call
// graph. Step is deliberately single-threaded: the PR 4 hot-path memo
// caches (kernel goodput tables, battery bisection memos, per-epoch
// scratch buffers) are unsynchronized because all parallelism lives
// one layer up in the sweep worker pool, which gives each worker its
// own Engine. A goroutine spawned below that boundary reintroduces
// the data races the architecture was shaped to exclude.
type NoGoroutineRule struct{}

// Name implements Rule.
func (NoGoroutineRule) Name() string { return "nogoroutine" }

// Doc implements Rule.
func (NoGoroutineRule) Doc() string {
	return "no go statements in the Engine.Step call graph (parallelism belongs to the sweep layer)"
}

// Applies implements Rule.
func (NoGoroutineRule) Applies(pkgPath string) bool { return StepGraphPackages[pkgPath] }

// Check implements Rule.
func (NoGoroutineRule) Check(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				report(g.Pos(), "go statement in an Engine.Step call-graph package; Step must stay single-threaded for its unsynchronized memo caches — hoist concurrency to the sweep layer")
			}
			return true
		})
	}
}
