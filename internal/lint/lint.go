// Package lint implements greensprint-lint: a stdlib-only static
// analyzer (go/parser + go/ast + go/types + go/importer, no external
// dependencies) that mechanically enforces the repository's invariants
// — bit-identical determinism, crash-safe persistence, checkpoint
// completeness and the single-threaded Step hot path. Every golden
// suite in this repo asserts byte-equal outputs; the rules here fail
// the build the moment a change could make those suites flaky instead
// of letting the regression surface later as a mysterious golden diff.
//
// Diagnostics are vet-style ("file:line: rule: message") with a JSON
// form for CI artifacts. A site that intentionally breaks a rule is
// suppressed with a directive comment on the same line or the line
// above:
//
//	//greensprint:allow(rule1,rule2) justification
//
// The justification text after the closing parenthesis is free-form
// but expected by convention; reviewers treat a bare directive as
// incomplete. Rules are scoped per package (see DeterministicPackages
// and StepGraphPackages) so the analyzer stays quiet outside the
// domains whose invariants it guards.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath is the import path of this module; package scoping and
// the module-local importer key off it.
const ModulePath = "greensprint"

// DeterministicPackages is the deterministic simulation domain: every
// package whose outputs feed the golden sweep/event-stream/sharded
// determinism suites. Inside it, wall-clock reads, environment reads,
// the global math/rand source and unordered map iteration are
// forbidden (rules nondeterm and maprange).
var DeterministicPackages = map[string]bool{
	ModulePath + "/internal/chaos":       true,
	ModulePath + "/internal/fleet":       true,
	ModulePath + "/internal/sim":         true,
	ModulePath + "/internal/strategy":    true,
	ModulePath + "/internal/battery":     true,
	ModulePath + "/internal/pss":         true,
	ModulePath + "/internal/pmk":         true,
	ModulePath + "/internal/cluster":     true,
	ModulePath + "/internal/workload":    true,
	ModulePath + "/internal/queueing":    true,
	ModulePath + "/internal/profile":     true,
	ModulePath + "/internal/rl":          true,
	ModulePath + "/internal/predictor":   true,
	ModulePath + "/internal/solar":       true,
	ModulePath + "/internal/wind":        true,
	ModulePath + "/internal/sweep":       true,
	ModulePath + "/internal/experiments": true,
}

// StepGraphPackages is the Engine.Step call graph: the packages whose
// code runs inside a single simulation step. Step is single-threaded
// by design — the PR 4 memo caches (kernel tables, battery bisection
// memos, epoch scratch buffers) are unsynchronized because parallelism
// lives one layer up, in the sweep worker pool. A go statement here is
// a data race waiting for a scheduler change (rule nogoroutine).
var StepGraphPackages = map[string]bool{
	ModulePath + "/internal/chaos":     true,
	ModulePath + "/internal/fleet":     true,
	ModulePath + "/internal/sim":       true,
	ModulePath + "/internal/strategy":  true,
	ModulePath + "/internal/battery":   true,
	ModulePath + "/internal/pss":       true,
	ModulePath + "/internal/pmk":       true,
	ModulePath + "/internal/cluster":   true,
	ModulePath + "/internal/workload":  true,
	ModulePath + "/internal/queueing":  true,
	ModulePath + "/internal/profile":   true,
	ModulePath + "/internal/rl":        true,
	ModulePath + "/internal/predictor": true,
}

// Diagnostic is one finding, addressed by file (relative to the module
// root) and line.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Package string `json:"package"`
}

// String renders the vet-style form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Rule, d.Message)
}

// Rule is one invariant check. Check reports findings through the
// callback; the runner applies allow-directive suppression and sorting
// so rules stay pure detection logic.
type Rule interface {
	// Name is the rule identifier used in diagnostics and in
	// //greensprint:allow(name) directives.
	Name() string
	// Doc is a one-line description for catalogs and -rules output.
	Doc() string
	// Applies reports whether the rule audits the given import path.
	Applies(pkgPath string) bool
	// Check inspects one package and reports each violation.
	Check(pkg *Package, report ReportFunc)
}

// ReportFunc receives one violation at a source position.
type ReportFunc func(pos token.Pos, msg string)

// Package is one parsed, type-checked package ready for rule passes.
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allow maps file → line → rule names suppressed on that line. A
	// directive registers its own line and the line below, so it works
	// both trailing a statement and on the line above one.
	allow map[string]map[int]map[string]bool
	// directives are the well-formed //greensprint:allow comments in
	// source order, kept for the exemption audit (see Audit).
	directives []Directive
	// badDirectives are malformed //greensprint:allow comments,
	// reported under the reserved rule name "directive".
	badDirectives []Diagnostic
}

// Directive is one well-formed //greensprint:allow comment: where it
// sits, which rules it names, and the free-form justification after
// the closing parenthesis.
type Directive struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Rules         []string `json:"rules"`
	Justification string   `json:"justification"`
	Package       string   `json:"package"`
}

const (
	directiveNS = "greensprint:"
	allowPrefix = "//" + directiveNS + "allow"
)

// collectAllows scans the file's comments for suppression directives.
// Anything in the reserved greensprint: namespace that is not the
// exact //greensprint:allow(rule[,rule...]) form — including near
// misses like "// greensprint:allow(rule)" (space after the slashes)
// or "//greensprint: allow(rule)" (space after the colon) — is
// reported as malformed rather than silently ignored, so an author can
// never believe a site is suppressed when it is not.
func (p *Package) collectAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//") {
				continue
			}
			// Directive-shaped: the reserved namespace is the first
			// token after the slashes, ignoring indentation whitespace.
			// A body opening with another "//" is a quoted example in
			// prose (as in this package's doc comment), not a directive.
			body := strings.TrimLeft(text[2:], " \t")
			if !strings.HasPrefix(body, directiveNS) {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			bad := func() {
				p.badDirectives = append(p.badDirectives, Diagnostic{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Rule:    "directive",
					Message: "malformed " + allowPrefix + " directive; want " + allowPrefix + "(rule[,rule...]) justification",
					Package: p.Path,
				})
			}
			if !strings.HasPrefix(text, allowPrefix) {
				// Near miss: whitespace inside the directive or an
				// unknown verb in the reserved namespace. Report it —
				// it would otherwise neither apply nor warn.
				bad()
				continue
			}
			rest := text[len(allowPrefix):]
			if !strings.HasPrefix(rest, "(") {
				bad()
				continue
			}
			end := strings.IndexByte(rest, ')')
			if end < 0 {
				bad()
				continue
			}
			names := strings.Split(rest[1:end], ",")
			ok := len(names) > 0
			for i, n := range names {
				names[i] = strings.TrimSpace(n)
				if names[i] == "" {
					ok = false
				}
			}
			if !ok {
				bad()
				continue
			}
			p.directives = append(p.directives, Directive{
				File:          pos.Filename,
				Line:          pos.Line,
				Rules:         names,
				Justification: strings.TrimSpace(rest[end+1:]),
				Package:       p.Path,
			})
			if p.allow == nil {
				p.allow = map[string]map[int]map[string]bool{}
			}
			byLine := p.allow[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				p.allow[pos.Filename] = byLine
			}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				set := byLine[line]
				if set == nil {
					set = map[string]bool{}
					byLine[line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
}

func (p *Package) allowedAt(file string, line int, rule string) bool {
	return p.allow[file][line][rule]
}

// Loader parses and type-checks module packages from source. Imports
// of module-local packages recurse through the loader; standard
// library imports go through the stdlib source importer, so the whole
// pass needs nothing beyond GOROOT sources.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*Package
	active map[string]bool // cycle guard
}

// NewLoader returns a loader for the module rooted at root. It
// verifies go.mod declares ModulePath so the hard-coded scoping sets
// stay in sync with reality.
func NewLoader(root string) (*Loader, error) {
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	first := strings.TrimSpace(strings.SplitN(string(mod), "\n", 2)[0])
	if first != "module "+ModulePath {
		return nil, fmt.Errorf("lint: %s/go.mod declares %q, want module %s", root, first, ModulePath)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		active: map[string]bool{},
	}, nil
}

// Import implements types.Importer for the type-checker: module-local
// paths load (and cache) through the loader, everything else resolves
// from the standard library source tree.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package at importPath.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.active[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.active[importPath] = true
	defer delete(l.active, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, ModulePath), "/")
	p, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), importPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// LoadDir type-checks the package in dir under an explicit import
// path, without caching. The lint tests use it to load testdata
// fixtures as if they lived at a scoped path (e.g. a fixture checked
// as greensprint/internal/sim so the deterministic-domain rules fire).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	p := &Package{Path: importPath, Fset: l.Fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		display := full
		if rel, err := filepath.Rel(l.Root, full); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		}
		f, err := parser.ParseFile(l.Fset, display, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		p.collectAllows(f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	p.Files = files
	p.Info = &types.Info{
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(importPath, l.Fset, files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	p.Types = tp
	return p, nil
}

// LoadAll discovers every package directory under the module root
// (skipping testdata, hidden and underscore-prefixed directories) and
// loads the ones whose relative directory matches one of the patterns.
// Patterns follow the go tool's shape: "./..." matches everything,
// "./x/..." matches x and its subtree, "./x" matches exactly x.
func (l *Loader) LoadAll(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		rel = filepath.ToSlash(rel)
		if !matchAny(rel, patterns) {
			continue
		}
		path := ModulePath
		if rel != "." {
			path = ModulePath + "/" + rel
		}
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// matchAny reports whether the module-relative directory rel (using
// "/" separators, "." for the root) matches any pattern.
func matchAny(rel string, patterns []string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		switch {
		case pat == "..." || pat == ".":
			if pat == "..." || rel == "." {
				return true
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		default:
			if rel == pat {
				return true
			}
		}
	}
	return false
}

// DefaultRules is the shipped rule catalog, in reporting order. The
// statecov and wiretag rules share one state-graph prepass instance so
// the whole-program pairing walk runs once per pass.
func DefaultRules() []Rule {
	g := newStateGraph()
	return []Rule{
		NondetermRule{},
		MapRangeRule{},
		AtomicWriteRule{},
		SnapshotPairRule{},
		NoGoroutineRule{},
		NewAllocFreeRule(),
		NewStateCovRule(g),
		NewLockGuardRule(),
		NewWireTagRule(g),
	}
}

// Prepasser is implemented by rules that need a whole-program view
// (e.g. cross-package call-graph reachability) before per-package
// checking; Run invokes Prepare once with every package in the pass.
type Prepasser interface {
	Prepare(pkgs []*Package)
}

// Run applies the rules to the packages and returns the surviving
// diagnostics sorted by file, line, column and rule. Allow directives
// are honored here; malformed directives surface as "directive"
// diagnostics (which cannot be suppressed).
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	for _, r := range rules {
		if pp, ok := r.(Prepasser); ok {
			pp.Prepare(pkgs)
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.badDirectives...)
		for _, r := range rules {
			if !r.Applies(pkg.Path) {
				continue
			}
			rule := r
			p := pkg
			r.Check(pkg, func(pos token.Pos, msg string) {
				at := p.Fset.Position(pos)
				if p.allowedAt(at.Filename, at.Line, rule.Name()) {
					return
				}
				diags = append(diags, Diagnostic{
					File: at.Filename, Line: at.Line, Col: at.Column,
					Rule: rule.Name(), Message: msg, Package: p.Path,
				})
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}
