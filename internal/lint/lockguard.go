package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockGuardPackages is the concurrent domain: the packages where more
// than one goroutine touches shared structs (the daemon's tick loop vs
// its HTTP handlers, the collector's scrape path vs the step path).
// Everything under internal/sim and its dependencies is single-threaded
// by design (see StepGraphPackages) and stays out of scope.
var LockGuardPackages = map[string]bool{
	ModulePath + "/internal/core":    true,
	ModulePath + "/internal/obs":     true,
	ModulePath + "/cmd/greensprintd": true,
}

// LockGuardRule enforces the repository's guarded-field convention in
// the concurrent packages: a struct field that sits below a
// sync.Mutex/RWMutex field (or carries an explicit "guarded by <mu>"
// comment) may only be read or written
//
//   - inside a method of the owning type whose body locks that mutex
//     (Lock or RLock — the rule is flow-insensitive and trusts the
//     matching Unlock),
//   - inside a method whose name ends in "Locked" or whose doc comment
//     documents the precondition ("c.mu must be held", "caller holds
//     the lock", "while holding …"), or
//   - through a variable local to the enclosing function (the
//     pre-publication window: a constructor filling in a struct nobody
//     else can see yet).
//
// This is the comment convention PRs 3 and 8 fixed races against by
// hand (Q-table serving buffered under the controller mutex, shutdown
// joining the tick goroutine); the rule makes the convention
// mechanical. Positional guarding follows the standard Go layout — a
// mutex guards the fields declared after it, until the next mutex; an
// explicit "guarded by <name>" field comment overrides position.
type LockGuardRule struct{}

// NewLockGuardRule returns the rule.
func NewLockGuardRule() LockGuardRule { return LockGuardRule{} }

// Name implements Rule.
func (LockGuardRule) Name() string { return "lockguard" }

// Doc implements Rule.
func (LockGuardRule) Doc() string {
	return "mutex-guarded struct fields in the concurrent packages may only be accessed while the documented mutex is held"
}

// Applies implements Rule.
func (LockGuardRule) Applies(pkgPath string) bool { return LockGuardPackages[pkgPath] }

// guardInfo records one guarded field's contract.
type guardInfo struct {
	owner *types.TypeName // struct type the field belongs to
	mutex *types.Var      // the guarding mutex field
}

// Check implements Rule.
func (LockGuardRule) Check(p *Package, report ReportFunc) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(p, fd, guards, report)
		}
	}
}

// collectGuards walks the package's struct declarations and maps each
// guarded field variable to its contract.
func collectGuards(p *Package) map[*types.Var]guardInfo {
	guards := map[*types.Var]guardInfo{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			// First pass: the struct's mutex fields by name.
			mutexes := map[string]*types.Var{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					v, ok := p.Info.Defs[name].(*types.Var)
					if ok && isMutex(v.Type()) {
						mutexes[v.Name()] = v
					}
				}
			}
			if len(mutexes) == 0 {
				return true
			}
			// Second pass: positional guarding with comment override.
			var current *types.Var
			for _, field := range st.Fields.List {
				if len(field.Names) > 0 {
					if v, ok := p.Info.Defs[field.Names[0]].(*types.Var); ok && isMutex(v.Type()) {
						current = v
						continue
					}
				}
				guard := current
				if name := guardedByComment(field); name != "" {
					guard = mutexes[name] // unknown name → unguarded, surfaced by review
				}
				if guard == nil {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{owner: tn, mutex: guard}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardedByComment extracts the mutex name from a "guarded by <name>"
// field comment (doc or trailing), or "".
func guardedByComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := strings.ToLower(cg.Text())
		i := strings.Index(text, "guarded by ")
		if i < 0 {
			continue
		}
		rest := strings.TrimSpace(text[i+len("guarded by "):])
		end := strings.IndexFunc(rest, func(r rune) bool {
			return !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
		})
		if end < 0 {
			end = len(rest)
		}
		if end > 0 {
			return rest[:end]
		}
	}
	return ""
}

// isMutex reports whether t is sync.Mutex, sync.RWMutex or a pointer
// to one.
func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// checkFunc reports guarded-field accesses in fd that hold no
// certification.
func checkFunc(p *Package, fd *ast.FuncDecl, guards map[*types.Var]guardInfo, report ReportFunc) {
	// Which mutex field vars does this body lock (c.mu.Lock(),
	// s.reg.mu.RLock(), …)?
	locked := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if v, ok := p.Info.Uses[inner.Sel].(*types.Var); ok && isMutex(v.Type()) {
				locked[v] = true
			}
		}
		return true
	})

	recv := recvTypeNameObj(p, fd)
	certified := strings.HasSuffix(fd.Name.Name, "Locked") || heldDoc(fd.Doc)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, ok := guards[v]
		if !ok {
			return true
		}
		if recv == g.owner {
			if certified || locked[g.mutex] {
				return true
			}
			report(sel.Sel.Pos(), "field "+g.owner.Name()+"."+v.Name()+" is guarded by "+
				g.mutex.Name()+" but method "+fd.Name.Name+" neither locks it nor is documented as called with it held")
			return true
		}
		// Outside the owner's methods: allowed only through a variable
		// local to this function (pre-publication construction).
		if base := spineBase(sel); base != nil {
			if bv, ok := p.Info.Uses[base].(*types.Var); ok &&
				bv.Pos() > fd.Body.Pos() && bv.Pos() < fd.Body.End() {
				return true
			}
		}
		if locked[g.mutex] {
			return true
		}
		report(sel.Sel.Pos(), "field "+g.owner.Name()+"."+v.Name()+" is guarded by "+
			g.mutex.Name()+" but accessed outside "+g.owner.Name()+"'s methods without holding it")
		return true
	})
}

// recvTypeNameObj resolves fd's receiver to its *types.TypeName, if
// any.
func recvTypeNameObj(p *Package, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return recvNamed(sig.Recv().Type())
}

// heldDoc reports whether a doc comment documents the lock-held
// precondition.
func heldDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	text := strings.ToLower(doc.Text())
	return strings.Contains(text, "must be held") ||
		strings.Contains(text, "caller holds") ||
		strings.Contains(text, "while holding")
}

// spineBase walks x.f.g[i].h down to the root identifier.
func spineBase(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}
