package lint

import (
	"go/token"
	"sort"
	"strconv"
)

// AuditEntry is one (directive, rule) pair from the exemption audit: a
// directive naming several rules produces one entry per rule, so each
// exemption is judged live or stale independently.
type AuditEntry struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Rule          string `json:"rule"`
	Live          bool   `json:"live"`
	Justification string `json:"justification"`
	Package       string `json:"package"`
	// Reason explains a stale verdict: the rule fired nothing on the
	// covered lines, the rule name is unknown, or the directive has no
	// justification text. Empty for live, justified entries.
	Reason string `json:"reason,omitempty"`
}

// String renders the vet-style audit line.
func (e AuditEntry) String() string {
	state := "live"
	if !e.Live {
		state = "STALE"
	}
	out := e.File + ":" + strconv.Itoa(e.Line) + ": allow(" + e.Rule + "): " + state
	if e.Justification != "" {
		out += ": " + e.Justification
	}
	if e.Reason != "" {
		out += " [" + e.Reason + "]"
	}
	return out
}

// Audit justifies every //greensprint:allow directive in the packages:
// it re-runs the rules with suppression disabled and marks each
// (directive, rule) pair live when the rule actually fires on a line
// the directive covers (its own line or the line below). A stale
// exemption — the code it excused was fixed or deleted, the rule name
// is unknown, or the justification is missing — is the audit's
// finding: it either documents a violation that no longer exists or
// silently pre-approves a future one.
func Audit(pkgs []*Package, rules []Rule) []AuditEntry {
	for _, r := range rules {
		if pp, ok := r.(Prepasser); ok {
			pp.Prepare(pkgs)
		}
	}
	known := map[string]bool{}
	for _, r := range rules {
		known[r.Name()] = true
	}

	// Raw findings, ignoring suppression: (file, line, rule) → fired.
	type site struct {
		file string
		line int
		rule string
	}
	fired := map[site]bool{}
	for _, pkg := range pkgs {
		for _, r := range rules {
			if !r.Applies(pkg.Path) {
				continue
			}
			rule, p := r, pkg
			r.Check(pkg, func(pos token.Pos, _ string) {
				at := p.Fset.Position(pos)
				fired[site{at.Filename, at.Line, rule.Name()}] = true
			})
		}
	}

	var entries []AuditEntry
	for _, pkg := range pkgs {
		for _, d := range pkg.directives {
			for _, name := range d.Rules {
				e := AuditEntry{
					File: d.File, Line: d.Line, Rule: name,
					Justification: d.Justification, Package: d.Package,
				}
				switch {
				case !known[name]:
					e.Reason = "unknown rule"
				case fired[site{d.File, d.Line, name}] || fired[site{d.File, d.Line + 1, name}]:
					e.Live = true
					if d.Justification == "" {
						e.Reason = "missing justification"
						e.Live = false
					}
				default:
					e.Reason = "rule no longer fires on the covered lines"
				}
				entries = append(entries, e)
			}
		}
	}
	// (file, line, rule) is the primary order CI artifacts diff on;
	// package and justification break any remaining ties so the report
	// is a total order regardless of load order or map iteration
	// anywhere upstream.
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Justification < b.Justification
	})
	return entries
}
