package lint

import "go/ast"

// SnapshotPairRule enforces checkpoint completeness: the repo's
// checkpoint format (sim.Checkpoint, core.Checkpoint) is a composition
// of per-component Snapshot/Restore pairs, so a type that grows a
// Snapshot without a Restore (or vice versa) is state that silently
// falls out of resume — the run replays differently after a restart
// and the sharded golden suites diverge. The accepted pairings are:
//
//   - Snapshot ↔ Restore (battery.Bank, pss.Selector, pmk.Fleet, ...)
//   - Checkpoint ↔ Restore (sim.Engine, core.Controller, whose
//     snapshot-producing method is named Checkpoint)
//   - SnapshotState ↔ RestoreState (the strategy.Strategy interface)
//
// The rule checks both concrete method sets and interface method
// lists, per named type, in every package.
type SnapshotPairRule struct{}

// Name implements Rule.
func (SnapshotPairRule) Name() string { return "snapshotpair" }

// Doc implements Rule.
func (SnapshotPairRule) Doc() string {
	return "every Snapshot/Checkpoint has a matching Restore and vice versa (checkpoint completeness)"
}

// Applies implements Rule.
func (SnapshotPairRule) Applies(string) bool { return true }

// pairMethods are the method names the rule tracks.
var pairMethods = map[string]bool{
	"Snapshot":      true,
	"Restore":       true,
	"Checkpoint":    true,
	"SnapshotState": true,
	"RestoreState":  true,
}

// Check implements Rule.
func (SnapshotPairRule) Check(p *Package, report ReportFunc) {
	// methods[typeName][methodName] = position of the declaration.
	type declSet map[string]ast.Node
	methods := map[string]declSet{}
	var typeOrder []string
	record := func(typeName, method string, at ast.Node) {
		if !pairMethods[method] {
			return
		}
		set := methods[typeName]
		if set == nil {
			set = declSet{}
			methods[typeName] = set
			typeOrder = append(typeOrder, typeName)
		}
		if _, dup := set[method]; !dup {
			set[method] = at
		}
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil || len(d.Recv.List) == 0 {
					continue
				}
				record(receiverTypeName(d.Recv.List[0].Type), d.Name.Name, d.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					iface, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range iface.Methods.List {
						for _, name := range m.Names {
							record(ts.Name.Name, name.Name, name)
						}
					}
				}
			}
		}
	}

	for _, typeName := range typeOrder {
		set := methods[typeName]
		has := func(m string) bool { _, ok := set[m]; return ok }
		if has("Snapshot") && !has("Restore") {
			report(set["Snapshot"].Pos(), "type "+typeName+" declares Snapshot but no Restore; its state cannot be resumed from a checkpoint")
		}
		if has("Checkpoint") && !has("Restore") {
			report(set["Checkpoint"].Pos(), "type "+typeName+" declares Checkpoint but no Restore; its checkpoints cannot be resumed")
		}
		if has("Restore") && !has("Snapshot") && !has("Checkpoint") {
			report(set["Restore"].Pos(), "type "+typeName+" declares Restore but no Snapshot or Checkpoint; its state silently falls out of checkpoints")
		}
		if has("SnapshotState") && !has("RestoreState") {
			report(set["SnapshotState"].Pos(), "type "+typeName+" declares SnapshotState but no RestoreState; its state cannot be resumed from a checkpoint")
		}
		if has("RestoreState") && !has("SnapshotState") {
			report(set["RestoreState"].Pos(), "type "+typeName+" declares RestoreState but no SnapshotState; its state silently falls out of checkpoints")
		}
	}
}

// receiverTypeName unwraps a method receiver type expression (pointer,
// generic instantiation) down to the named type's identifier.
func receiverTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
