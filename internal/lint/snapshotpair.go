package lint

import (
	"go/token"
	"go/types"
)

// SnapshotPairRule enforces checkpoint completeness: the repo's
// checkpoint format (sim.Checkpoint, core.Checkpoint) is a composition
// of per-component Snapshot/Restore pairs, so a type that grows a
// Snapshot without a Restore (or vice versa) is state that silently
// falls out of resume — the run replays differently after a restart
// and the sharded golden suites diverge. The accepted pairings are:
//
//   - Snapshot ↔ Restore (battery.Bank, pss.Selector, pmk.Fleet, ...)
//   - Checkpoint ↔ Restore (sim.Engine, core.Controller, whose
//     snapshot-producing method is named Checkpoint)
//   - SnapshotState ↔ RestoreState (the strategy.Strategy interface)
//
// The rule works on the type-checker's method sets, not on syntactic
// receiver declarations, so methods promoted through struct embedding
// count: a type that inherits Snapshot from an embedded component and
// declares only its own Restore is correctly seen as paired, including
// when the embedded type lives in another package.
type SnapshotPairRule struct{}

// Name implements Rule.
func (SnapshotPairRule) Name() string { return "snapshotpair" }

// Doc implements Rule.
func (SnapshotPairRule) Doc() string {
	return "every Snapshot/Checkpoint has a matching Restore and vice versa (checkpoint completeness)"
}

// Applies implements Rule.
func (SnapshotPairRule) Applies(string) bool { return true }

// pairMethods are the method names the rule tracks.
var pairMethods = map[string]bool{
	"Snapshot":      true,
	"Restore":       true,
	"Checkpoint":    true,
	"SnapshotState": true,
	"RestoreState":  true,
}

// Check implements Rule.
func (SnapshotPairRule) Check(p *Package, report ReportFunc) {
	// Files of this package, so a diagnostic never anchors at a
	// promoted method declared elsewhere.
	local := map[string]bool{}
	for _, f := range p.Files {
		local[p.Fset.Position(f.Pos()).Filename] = true
	}

	scope := p.Types.Scope()
	for _, name := range scope.Names() { // sorted, so deterministic
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		// The pointer method set is the superset for concrete types;
		// interfaces carry their methods (including embedded ones) on
		// the type itself.
		var ms *types.MethodSet
		if types.IsInterface(named) {
			ms = types.NewMethodSet(named)
		} else {
			ms = types.NewMethodSet(types.NewPointer(named))
		}
		has := map[string]token.Pos{}
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if !pairMethods[m.Name()] {
				continue
			}
			pos := m.Pos()
			if !pos.IsValid() || !local[p.Fset.Position(pos).Filename] {
				pos = tn.Pos() // promoted from elsewhere: anchor at the type
			}
			has[m.Name()] = pos
		}
		hv := func(m string) bool { _, ok := has[m]; return ok }
		if hv("Snapshot") && !hv("Restore") {
			report(has["Snapshot"], "type "+name+" declares Snapshot but no Restore; its state cannot be resumed from a checkpoint")
		}
		if hv("Checkpoint") && !hv("Restore") {
			report(has["Checkpoint"], "type "+name+" declares Checkpoint but no Restore; its checkpoints cannot be resumed")
		}
		if hv("Restore") && !hv("Snapshot") && !hv("Checkpoint") {
			report(has["Restore"], "type "+name+" declares Restore but no Snapshot or Checkpoint; its state silently falls out of checkpoints")
		}
		if hv("SnapshotState") && !hv("RestoreState") {
			report(has["SnapshotState"], "type "+name+" declares SnapshotState but no RestoreState; its state cannot be resumed from a checkpoint")
		}
		if hv("RestoreState") && !hv("SnapshotState") {
			report(has["RestoreState"], "type "+name+" declares RestoreState but no SnapshotState; its state silently falls out of checkpoints")
		}
	}
}
