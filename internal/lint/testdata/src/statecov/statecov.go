// Package fixture exercises the statecov rule: Machine mutates six
// fields, its Snapshot captures some, its Restore reassigns others
// (one through a helper, proving the closure walk), and a derived
// cache carries the sanctioned exemption directive.
package fixture

// Wire is Machine's wire struct. Tags are pinned and unique so the
// wiretag rule stays quiet on this fixture.
type Wire struct {
	Count int     `json:"count"`
	Total float64 `json:"total"`
	In    int     `json:"in"`
}

// Machine is the stateful type under test.
type Machine struct {
	count   int
	total   float64
	halfIn  int // flows into Wire but Restore never reassigns it
	halfOut int // Restore reassigns it but Snapshot never captures it
	dropped int // missing from both sides

	memo map[int]float64 //greensprint:allow(statecov) derived cache: entries recompute bit-identically on demand
}

// Step mutates every field, making them all checkpoint-relevant.
func (m *Machine) Step() {
	m.count++
	m.total += 1.5
	m.halfIn++
	m.halfOut++
	m.dropped++
	if m.memo == nil {
		m.memo = map[int]float64{}
	}
	m.memo[m.count] = m.total
}

// Snapshot captures count, total and halfIn — but not halfOut or
// dropped.
func (m *Machine) Snapshot() Wire {
	return Wire{Count: m.count, Total: m.total, In: m.halfIn}
}

// Restore reassigns count and halfOut directly and total through the
// recompute helper; halfIn and dropped stay stale.
func (m *Machine) Restore(w Wire) {
	m.count = w.Count
	m.halfOut = 0
	m.recompute(w)
}

// recompute is the restore helper the call-closure walk must reach.
func (m *Machine) recompute(w Wire) {
	m.total = w.Total
	m.memo = nil
}

// Idle has a pairing but no field mutated outside it: the sanctioned
// quiet case.
type Idle struct {
	limit int
}

// Snapshot captures the configuration.
func (i *Idle) Snapshot() Wire { return Wire{Count: i.limit} }

// Restore reapplies it.
func (i *Idle) Restore(w Wire) { i.limit = w.Count }
