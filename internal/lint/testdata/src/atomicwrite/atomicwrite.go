// Package atomicwrite is a lint fixture for the atomicwrite rule: a
// bare os.WriteFile and an os.Create that must fire, and a justified
// streaming writer that must not.
package atomicwrite

import "os"

// SaveState persists state with a truncating write.
func SaveState(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// OpenCheckpoint creates a state file directly.
func OpenCheckpoint(path string) (*os.File, error) {
	return os.Create(path)
}

// OpenStream is a genuine streaming writer, justified in place.
func OpenStream(path string) (*os.File, error) {
	//greensprint:allow(atomicwrite) fixture: append stream, partial output useful
	return os.Create(path)
}
