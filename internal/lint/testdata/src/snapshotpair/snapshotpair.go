// Package snapshotpair is a lint fixture for the snapshotpair rule:
// half-paired types that must fire and the three accepted pairings
// that must not.
package snapshotpair

// Orphan declares Snapshot with no Restore.
type Orphan struct{ v int }

// Snapshot captures state nothing can put back.
func (o *Orphan) Snapshot() int { return o.v }

// Widow declares Restore with no capture method.
type Widow struct{ v int }

// Restore restores state nothing captured.
func (w *Widow) Restore(v int) { w.v = v }

// Paired is the canonical Snapshot/Restore pair.
type Paired struct{ v int }

// Snapshot captures.
func (p *Paired) Snapshot() int { return p.v }

// Restore restores.
func (p *Paired) Restore(v int) { p.v = v }

// Engineish pairs Restore with a Checkpoint producer, like sim.Engine.
type Engineish struct{ v int }

// Checkpoint captures.
func (e *Engineish) Checkpoint() int { return e.v }

// Restore restores.
func (e *Engineish) Restore(v int) { e.v = v }

// HalfStrategy is an interface declaring only half the State pair.
type HalfStrategy interface {
	SnapshotState() ([]byte, error)
}

// FullStrategy declares the full State pair, like strategy.Strategy.
type FullStrategy interface {
	SnapshotState() ([]byte, error)
	RestoreState(b []byte) error
}
