// Package maprange is a lint fixture for the maprange rule: an
// unordered iteration that must fire, the collect-then-sort idiom that
// must not, and a justified order-independent loop.
package maprange

import "sort"

// Keys leaks map iteration order into its return value.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys collects then sorts; the rule accepts it.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Reset mutates each value independently; order is unobservable, which
// the directive asserts.
func Reset(m map[string]*int) {
	//greensprint:allow(maprange) fixture: each value reset independently
	for _, v := range m {
		*v = 0
	}
}
