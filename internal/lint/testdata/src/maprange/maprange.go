// Package maprange is a lint fixture for the maprange rule: an
// unordered iteration that must fire, the collect-then-sort idiom that
// must not, and a justified order-independent loop.
package maprange

import (
	"sort"

	"greensprint/internal/server"
)

// Keys leaks map iteration order into its return value.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys collects then sorts; the rule accepts it.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DenseByIndex drains a Config-keyed map into canonical server.Index
// slots: every key lands in a fixed position regardless of visit
// order, so the rule accepts it without a directive — deterministic by
// construction.
func DenseByIndex(m map[server.Config]float64) []float64 {
	out := make([]float64, server.NumConfigs())
	for c, v := range m {
		out[server.Index(c)] = v
	}
	return out
}

// LeakConfigOrder is also keyed by server.Config but appends, so the
// iteration order still leaks into the result; the exemption must not
// cover it.
func LeakConfigOrder(m map[server.Config]float64) []float64 {
	var out []float64
	for c, v := range m {
		if c.Valid() {
			out = append(out, v)
		}
	}
	return out
}

// Reset mutates each value independently; order is unobservable, which
// the directive asserts.
func Reset(m map[string]*int) {
	//greensprint:allow(maprange) fixture: each value reset independently
	for _, v := range m {
		*v = 0
	}
}
