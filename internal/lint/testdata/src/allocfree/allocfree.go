// Package allocfree is a lint fixture for the allocfree rule. The test
// loads it as greensprint/internal/sim, so the Engine.Step/StepN
// methods below are the call-graph roots; everything they reach is
// scanned for allocation sites, and the helpers outside the graph
// (Reset, the Observer implementation's constructor) prove the rule
// stays quiet off the hot path.
package allocfree

// Observer receives per-epoch samples; step calls it through the
// interface, so implementations inside this package join the call
// graph via interface-method matching.
type Observer interface {
	Observe(v float64)
}

// Recorder is the step-graph Observer implementation.
type Recorder struct {
	samples []float64
	scratch []float64
}

// Observe is reachable from Step through the Observer interface.
func (r *Recorder) Observe(v float64) {
	r.samples = append(r.samples, v) // flagged: growing append
}

// Engine mirrors sim.Engine just enough to anchor the roots.
type Engine struct {
	obs    Observer
	epochs int
	temps  []float64
}

// Step is a call-graph root.
func (e *Engine) Step() {
	e.temps = []float64{1, 2, 3} // flagged: slice literal
	m := map[string]int{}        // flagged: map literal
	m["epochs"] = e.epochs
	e.obs.Observe(float64(e.epochs))
	e.stepInner(e.epochs)
}

// StepN is the batched root.
func (e *Engine) StepN(n int) {
	//greensprint:allow(allocfree) one-time presize, reused across batches
	buf := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, float64(i)) // flagged even though presized: append may still grow
		e.Step()
	}
}

// stepInner is reachable transitively from Step.
func (e *Engine) stepInner(n int) {
	p := &Recorder{} // flagged: &composite escapes
	p.Observe(float64(n))
	f := func() int { return n * 2 } // flagged: capturing closure
	_ = f()
	g := func() int { return 2 } // not flagged: captures nothing
	_ = g()
	box(e) // e is a pointer: not flagged
	box(n) // flagged: boxing an int into the interface parameter
}

// box takes an interface, making call sites boxing candidates.
func box(v interface{}) {}

// Reset is NOT reachable from Step or StepN: its allocations must not
// be reported.
func Reset(e *Engine) {
	e.temps = make([]float64, 0, 64)
	e.obs = &Recorder{scratch: []float64{0}}
}
