// Package fixture exercises the wiretag rule: Box's wire struct has
// one of each defect — a missing tag, a duplicate tag name, a
// nameless tag, an unexported field, an omitempty scalar written
// conditionally with no zero-guard — next to the sanctioned forms: a
// guarded conditional omitempty (the battery degradation pattern),
// nilable and bool omitempty fields, and a justified exemption.
package fixture

// Box pairs Snapshot/Restore so the prepass roots BoxWire.
type Box struct {
	fade  float64
	level float64
	note  string
	mode  int
}

// Step mutates everything so statecov demands full coverage (which
// Snapshot/Restore below provide — this fixture must only fire
// wiretag).
func (b *Box) Step() {
	b.fade *= 0.99
	b.level++
	b.note = "stepped"
	b.mode++
}

// BoxWire is the wire struct under test.
type BoxWire struct {
	// Fade is written conditionally and zero-guarded on restore: the
	// sanctioned migration-safe omitempty pattern.
	Fade float64 `json:"fade,omitempty"`
	// Level is written conditionally with no zero-guard: a finding.
	Level float64 `json:"level,omitempty"`
	// Note has no tag: a finding.
	Note string
	// Mode reuses Fade's wire name: a finding.
	Mode int `json:"fade"`
	// Count has a tag but no explicit name: a finding.
	Count int `json:",omitempty"`
	// secret is silently dropped by encoding/json: a finding.
	secret int
	// Flag and Items are omitempty but bool/nilable: safe.
	Flag  bool  `json:"flag,omitempty"`
	Items []int `json:"items,omitempty"`
	// Fingerprint is conditional with no zero-guard, excused:
	//greensprint:allow(wiretag) presence keyed on the nilable Items field; an empty fingerprint only decodes alongside nil Items
	Fingerprint string `json:"fp,omitempty"`
}

// Snapshot writes Fade, Level and Fingerprint conditionally and the
// rest unconditionally.
func (b *Box) Snapshot() BoxWire {
	w := BoxWire{Note: b.note, Mode: b.mode, Count: b.mode, secret: b.mode}
	if b.fade != 1 {
		w.Fade = b.fade
	}
	if b.level != 0 {
		w.Level = b.level
	}
	if b.mode > 0 {
		w.Items = []int{b.mode}
		w.Fingerprint = "v1"
	}
	w.Flag = b.mode > 0
	return w
}

// Restore zero-guards Fade (so it passes) but trusts Level verbatim
// (so it fires).
func (b *Box) Restore(w BoxWire) {
	fade := w.Fade
	if fade == 0 {
		fade = 1
	}
	b.fade = fade
	b.level = w.Level
	b.note = w.Note
	b.mode = w.Mode
}
