// Package fixture exercises the lockguard rule: Store's mutex guards
// the fields below it, one field overrides position with a "guarded
// by" comment, and the certifications — locking the right mutex, a
// *Locked name, a "must be held" doc, pre-publication construction —
// are each represented alongside the violations.
package fixture

import "sync"

// Store is the guarded struct under test.
type Store struct {
	name string // before the mutex: unguarded

	mu    sync.Mutex
	count int
	hist  []int

	other sync.Mutex
	beat  int // guarded by mu — comment override beats position
}

// Good locks the guarding mutex before touching guarded state.
func (s *Store) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.hist = append(s.hist, s.count)
	return s.count
}

// Bad touches guarded state with no lock: two findings.
func (s *Store) Bad() int {
	s.count++
	return s.count
}

// WrongLock holds the wrong mutex: a finding despite the Lock call.
func (s *Store) WrongLock() {
	s.other.Lock()
	defer s.other.Unlock()
	s.count++
}

// Beat exercises the comment override: beat sits below other but is
// guarded by mu, so locking mu is the correct certification.
func (s *Store) Beat() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beat++
}

// flushLocked is certified by its name suffix.
func (s *Store) flushLocked() { s.hist = s.hist[:0] }

// drain is certified by its doc comment: s.mu must be held.
func (s *Store) drain() int { return s.count }

// report reads count without the lock for a monitoring line; the
// directive documents the deliberate raciness.
func (s *Store) report() int {
	return s.count //greensprint:allow(lockguard) deliberately racy monitoring read: a torn counter is tolerable, blocking the tick loop is not
}

// NewStore writes guarded fields pre-publication: allowed, nobody
// else can see the struct yet.
func NewStore() *Store {
	s := &Store{name: "store"}
	s.count = 1
	s.hist = make([]int, 0, 4)
	return s
}

// Peek reads guarded state from outside the owner's methods without
// the lock: a finding.
func Peek(s *Store) int {
	return s.count
}

// Drain holds the mutex from outside the owner's methods: allowed.
func Drain(s *Store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
