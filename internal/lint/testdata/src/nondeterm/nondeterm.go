// Package nondeterm is a lint fixture: each construct the nondeterm
// rule must flag, plus the sanctioned seeded idiom it must not. The
// test loads it as if it lived inside the deterministic domain.
package nondeterm

import (
	"math/rand"
	"os"
	"time"
)

// Clock reads the wall clock twice; both reads must fire.
func Clock() time.Time {
	t := time.Now()
	_ = time.Since(t)
	return t
}

// NowFunc smuggles the clock out as a value; still a violation.
var NowFunc = time.Now

// Env reads the process environment.
func Env() string { return os.Getenv("GREENSPRINT_SEED") }

// Global draws from the process-global random source.
func Global() int { return rand.Intn(10) }

// Seeded is the sanctioned idiom and must not fire.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Allowed carries a justified suppression and must not fire.
func Allowed() string {
	//greensprint:allow(nondeterm) fixture: demonstrating the directive grammar
	return os.Getenv("HOME")
}
