// dotimport.go is the dot-import half of the nondeterm fixture: Now()
// bound by `import . "time"` is the same wall-clock read as time.Now()
// but reaches the file without a selector, so the rule must resolve
// plain identifiers through the type-checker to catch it.
package nondeterm

import . "time"

// DotClock reads the wall clock without a package qualifier.
func DotClock() Time { return Now() }
