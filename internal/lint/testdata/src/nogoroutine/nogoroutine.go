// Package nogoroutine is a lint fixture for the nogoroutine rule: a
// goroutine spawned inside (what the test declares to be) a Step
// call-graph package.
package nogoroutine

// Fan spawns workers below the sweep boundary.
func Fan(xs []int, out chan<- int) {
	for _, x := range xs {
		go func(v int) { out <- v * v }(x)
	}
}
