package fleet

import (
	"runtime"
	"testing"

	"greensprint/internal/cluster"
)

// mixedSpec is the three-class spec the determinism and distribution
// tests exercise: a web tier, a batch tier with a bigger sprint
// envelope and battery, and a battery-less archive tier pinned to
// zone 2.
func mixedSpec(total int, seed int64) Spec {
	return Spec{
		Name:         "mixed",
		TotalServers: total,
		Seed:         seed,
		Templates: []Template{
			{Name: "web", Weight: 5, BatteryAh: 10, Panels: 3},
			{Name: "batch", Weight: 3, PeakPower: 250, BatteryAh: 3.2, BatteryMaxDoD: 0.6, Panels: 2},
			{Name: "archive", Weight: 2, Zone: 2},
		},
	}
}

// TestGenerateDeterministic regenerates the same spec many times —
// under several GOMAXPROCS settings, since determinism must not hinge
// on the scheduler — and demands a bit-identical fingerprint each
// time.
func TestGenerateDeterministic(t *testing.T) {
	spec := mixedSpec(10_000, 42)
	base, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fingerprint()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			topo, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if got := topo.Fingerprint(); got != want {
				t.Fatalf("GOMAXPROCS=%d rep %d: fingerprint %s, want %s", procs, rep, got, want)
			}
		}
	}
}

// TestGenerateSeedSensitivity: a different seed must yield a different
// rack draw (with three weighted classes over 1000 racks, a collision
// would mean the seed is ignored).
func TestGenerateSeedSensitivity(t *testing.T) {
	specA, specB := mixedSpec(10_000, 1), mixedSpec(10_000, 2)
	a, err := specA.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := specB.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seeds 1 and 2 generated identical topologies")
	}
}

// TestGenerateCensus checks the structural invariants of a generated
// topology: totals conserve, racks tile the server range, classes
// roughly follow their weights, and pinned classes land in their zone.
func TestGenerateCensus(t *testing.T) {
	spec := mixedSpec(10_000, 7)
	topo, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Servers != 10_000 {
		t.Fatalf("Servers = %d, want 10000", topo.Servers)
	}
	var servers, units int
	next := 0
	for _, r := range topo.Racks {
		if r.FirstServer != next {
			t.Fatalf("rack %d starts at %d, want %d", r.Index, r.FirstServer, next)
		}
		next = r.FirstServer + r.Servers
		servers += r.Servers
		if topo.Classes[r.Class].Name == "archive" && r.Zone != 1 {
			t.Fatalf("archive rack %d in zone %d, want pinned zone 1", r.Index, r.Zone)
		}
	}
	if servers != topo.Servers {
		t.Fatalf("racks hold %d servers, want %d", servers, topo.Servers)
	}
	for _, c := range topo.Classes {
		if c.BatteryAh > 0 {
			units += c.Servers
		}
		// Weighted draw sanity: each class should land within ±50% of
		// its expected share over 1000 racks.
		want := float64(topo.Servers) * c.Weight / 10
		if got := float64(c.Servers); got < want*0.5 || got > want*1.5 {
			t.Errorf("class %s drew %d servers, expected ≈%.0f", c.Name, c.Servers, want)
		}
	}
	if units != topo.Units {
		t.Fatalf("Units = %d, classes sum to %d", topo.Units, units)
	}
	for _, r := range topo.Racks {
		for i := r.FirstServer; i < r.FirstServer+r.Servers; i++ {
			if topo.ClassOf(i) != r.Class {
				t.Fatalf("server %d classed %d, rack %d says %d", i, topo.ClassOf(i), r.Index, r.Class)
			}
		}
	}
	members := 0
	for z, list := range topo.ZoneMembers() {
		for _, s := range list {
			if s < 0 || s >= topo.Servers {
				t.Fatalf("zone %d member %d out of range", z, s)
			}
		}
		members += len(list)
	}
	if members != topo.Servers {
		t.Fatalf("zone membership covers %d servers, want %d", members, topo.Servers)
	}
	ct := topo.ChaosTopology()
	if ct.Servers != topo.Servers || ct.Units != topo.Units || ct.Zones != topo.Zones {
		t.Fatalf("ChaosTopology %+v disagrees with topology totals", ct)
	}
}

// TestFromGreen checks the flat-config lift: one rack, one class, the
// paper config's servers, units and panels.
func TestFromGreen(t *testing.T) {
	spec := FromGreen(cluster.REBatt(), 1)
	topo, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g := cluster.REBatt()
	if topo.Servers != g.GreenServers || topo.Units != g.GreenServers || topo.Panels != g.Panels {
		t.Fatalf("FromGreen topology %s, want %d servers/units, %d panels",
			topo.Summary(), g.GreenServers, g.Panels)
	}
	if len(topo.Racks) != 1 || len(topo.Classes) != 1 {
		t.Fatalf("FromGreen generated %d racks, %d classes, want 1 and 1", len(topo.Racks), len(topo.Classes))
	}
	bc := topo.BatteryClasses()
	if len(bc) != 1 || bc[0].Count != g.GreenServers || bc[0].Config.Capacity != g.BatteryAh {
		t.Fatalf("BatteryClasses = %+v", bc)
	}
}

// TestValidateErrors walks the spec validation matrix.
func TestValidateErrors(t *testing.T) {
	ok := mixedSpec(100, 1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no servers", func(s *Spec) { s.TotalServers = 0 }},
		{"negative rack size", func(s *Spec) { s.RackSize = -1 }},
		{"negative zones", func(s *Spec) { s.Zones = -1 }},
		{"no templates", func(s *Spec) { s.Templates = nil }},
		{"unnamed template", func(s *Spec) { s.Templates[0].Name = "" }},
		{"duplicate template", func(s *Spec) { s.Templates[1].Name = s.Templates[0].Name }},
		{"zero weight", func(s *Spec) { s.Templates[0].Weight = 0 }},
		{"negative peak", func(s *Spec) { s.Templates[0].PeakPower = -1 }},
		{"negative battery", func(s *Spec) { s.Templates[0].BatteryAh = -1 }},
		{"bad dod", func(s *Spec) { s.Templates[0].BatteryMaxDoD = 1.5 }},
		{"negative panels", func(s *Spec) { s.Templates[0].Panels = -1 }},
		{"zone out of range", func(s *Spec) { s.Templates[0].Zone = 3 }},
	}
	for _, tc := range cases {
		spec := mixedSpec(100, 1)
		tc.mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken spec", tc.name)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil {
		t.Error("nil spec accepted")
	}
}
