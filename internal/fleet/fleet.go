// Package fleet is GreenSprint's deterministic fleet generator: it
// stamps out a heterogeneous datacenter topology — racks of server
// classes with their own sprint power envelope, battery pack, PV
// attachment and availability zone — from a declarative Spec of
// weighted templates, the way large-scale cluster stress frameworks
// describe synthetic fleets (total node count + weighted node
// templates).
//
// Generation is bit-deterministic by construction: the only randomness
// is the explicitly seeded source consumed inside Generate, so the
// same Spec (including its Seed) always yields the same Topology, and
// a Topology's Fingerprint makes that reproducibility checkable — a
// checkpoint cut from a fleet run records the fingerprint and refuses
// to restore into a different topology.
//
// The generated Topology is the bridge between the declarative layer
// and the structure-of-arrays engine core: it exposes class-indexed
// counts (battery.ClassSpec groups for battery.NewClassBank, per-class
// server counts for pmk.NewClassFleet) and the zone membership lists
// chaos.ResolveFor targets zone outages against.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"

	"greensprint/internal/battery"
	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/solar"
	"greensprint/internal/units"
)

// FromGreen lifts a Table I green-provisioning option into a
// single-class, single-rack fleet spec: the generated topology has
// exactly the flat config's servers, battery units and panels, so an
// engine run over it reproduces the flat run bit-for-bit (see
// TestFleetSingleClassParity in sim).
func FromGreen(g cluster.GreenConfig, seed int64) Spec {
	return Spec{
		Name:         g.Name,
		TotalServers: g.GreenServers,
		RackSize:     g.GreenServers,
		Seed:         seed,
		Templates: []Template{{
			Name:          g.Name,
			Weight:        1,
			BatteryAh:     g.BatteryAh,
			BatteryMaxDoD: g.MaxDoD,
			Panels:        g.Panels,
		}},
	}
}

// DefaultRackSize is the servers-per-rack default, matching the
// paper's 10-server prototype rack.
const DefaultRackSize = 10

// DefaultZones is the default availability-zone count, matching the
// two-PDU-leg split the chaos engine has always assumed.
const DefaultZones = 2

// Template is one weighted server class: every rack drawn from it
// carries servers of this class. The zero values fall back to the
// paper's single-class defaults, so a one-template spec with an empty
// template reproduces the paper topology.
type Template struct {
	// Name labels the class in metrics, events and summaries.
	Name string `json:"name"`
	// Weight is the template's relative draw weight (> 0).
	Weight float64 `json:"weight"`
	// PeakPower overrides the per-server full-sprint power envelope
	// in watts; 0 keeps the workload profile's default peak.
	PeakPower units.Watt `json:"peak_power_w,omitempty"`
	// BatteryAh is the per-server battery capacity (0 = no battery,
	// the REOnly-style class).
	BatteryAh units.AmpHour `json:"battery_ah,omitempty"`
	// BatteryMaxDoD overrides the battery depth-of-discharge limit
	// (0 = the paper's 0.40 default).
	BatteryMaxDoD float64 `json:"battery_max_dod,omitempty"`
	// Panels is the PV panel count attached at each of this class's
	// rack PDU legs.
	Panels int `json:"panels,omitempty"`
	// Zone optionally pins the class's racks to one availability
	// zone, 1-based (zone 1 is the first zone); 0 assigns racks
	// round-robin across the spec's zones.
	Zone int `json:"zone,omitempty"`
}

// Spec declares a fleet to generate. The zero-value fields take the
// documented defaults during Generate; Validate normalizes nothing —
// the spec that was validated is the spec that is hashed.
type Spec struct {
	// Name labels the fleet.
	Name string `json:"name"`
	// TotalServers is the fleet size.
	TotalServers int `json:"total_servers"`
	// RackSize is the servers per rack (DefaultRackSize if 0); the
	// last rack may be partial.
	RackSize int `json:"rack_size,omitempty"`
	// Zones is the availability-zone count (DefaultZones if 0).
	Zones int `json:"zones,omitempty"`
	// Seed drives the weighted template draws.
	Seed int64 `json:"seed"`
	// Templates are the weighted server classes.
	Templates []Template `json:"templates"`
}

// Validate reports structural errors in the spec.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("fleet: nil spec")
	}
	if s.TotalServers < 1 {
		return fmt.Errorf("fleet %s: total_servers %d < 1", s.Name, s.TotalServers)
	}
	if s.RackSize < 0 {
		return fmt.Errorf("fleet %s: negative rack_size %d", s.Name, s.RackSize)
	}
	if s.Zones < 0 {
		return fmt.Errorf("fleet %s: negative zones %d", s.Name, s.Zones)
	}
	if len(s.Templates) == 0 {
		return fmt.Errorf("fleet %s: no templates", s.Name)
	}
	zones := s.Zones
	if zones == 0 {
		zones = DefaultZones
	}
	seen := map[string]bool{}
	for i, t := range s.Templates {
		switch {
		case t.Name == "":
			return fmt.Errorf("fleet %s: template %d has no name", s.Name, i)
		case seen[t.Name]:
			return fmt.Errorf("fleet %s: duplicate template %q", s.Name, t.Name)
		case !(t.Weight > 0):
			return fmt.Errorf("fleet %s: template %q weight %v not positive", s.Name, t.Name, t.Weight)
		case t.PeakPower < 0:
			return fmt.Errorf("fleet %s: template %q negative peak power %v", s.Name, t.Name, t.PeakPower)
		case t.BatteryAh < 0:
			return fmt.Errorf("fleet %s: template %q negative battery capacity %v", s.Name, t.Name, t.BatteryAh)
		case t.BatteryMaxDoD < 0 || t.BatteryMaxDoD > 1:
			return fmt.Errorf("fleet %s: template %q MaxDoD %v outside [0,1]", s.Name, t.Name, t.BatteryMaxDoD)
		case t.Panels < 0:
			return fmt.Errorf("fleet %s: template %q negative panels %d", s.Name, t.Name, t.Panels)
		case t.Zone < 0 || t.Zone > zones:
			return fmt.Errorf("fleet %s: template %q zone %d outside 1-%d", s.Name, t.Name, t.Zone, zones)
		}
		seen[t.Name] = true
	}
	return nil
}

// Class is one template's generated footprint: how many servers and
// racks it ended up with.
type Class struct {
	Template
	// Index is the class's position in Spec.Templates (stable across
	// regenerations; classes that drew no rack keep Servers == 0).
	Index int `json:"index"`
	// Servers is the class's total server count.
	Servers int `json:"servers"`
	// Racks is the class's rack count.
	Racks int `json:"racks"`
}

// Rack is one generated rack: a contiguous run of server indices all
// of one class, attached to one zone.
type Rack struct {
	// Index is the rack number; servers are numbered rack-major, so
	// the rack covers [FirstServer, FirstServer+Servers).
	Index int `json:"index"`
	// Class is the class index the rack was drawn as.
	Class int `json:"class"`
	// FirstServer is the rack's first global server index.
	FirstServer int `json:"first_server"`
	// Servers is the rack's server count (the last rack may be
	// partial).
	Servers int `json:"servers"`
	// Zone is the rack's 0-based availability zone.
	Zone int `json:"zone"`
}

// Topology is a fully generated fleet: the resolved rack list plus the
// class-indexed aggregates the structure-of-arrays engine core runs
// on. A Topology is immutable after Generate.
type Topology struct {
	// Spec is the spec the topology was generated from.
	Spec Spec `json:"spec"`
	// Classes holds one entry per spec template, in template order.
	Classes []Class `json:"classes"`
	// Racks is the rack list in index order.
	Racks []Rack `json:"racks"`
	// Servers, Units and Panels are the fleet totals (Units counts
	// battery units: one per server of a battery-carrying class).
	Servers int `json:"servers"`
	Units   int `json:"units"`
	Panels  int `json:"panels"`
	// Zones is the availability-zone count.
	Zones int `json:"zones"`

	classOf     []int
	zoneMembers [][]int
}

// Generate resolves the spec into a concrete topology. All randomness
// is consumed here, from the spec's seed: rack r's class is a weighted
// draw, so the same spec always generates the same topology (see
// TestGenerateDeterministic) and Fingerprint pins it.
func (s *Spec) Generate() (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rackSize := s.RackSize
	if rackSize == 0 {
		rackSize = DefaultRackSize
	}
	zones := s.Zones
	if zones == 0 {
		zones = DefaultZones
	}
	var totalWeight float64
	for _, t := range s.Templates {
		totalWeight += t.Weight
	}
	t := &Topology{
		Spec:    *s,
		Servers: s.TotalServers,
		Zones:   zones,
		Classes: make([]Class, len(s.Templates)),
	}
	for i, tpl := range s.Templates {
		t.Classes[i] = Class{Template: tpl, Index: i}
	}
	rng := rand.New(rand.NewSource(s.Seed))
	racks := (s.TotalServers + rackSize - 1) / rackSize
	t.Racks = make([]Rack, racks)
	t.classOf = make([]int, s.TotalServers)
	t.zoneMembers = make([][]int, zones)
	for r := 0; r < racks; r++ {
		// Weighted draw over the cumulative template weights.
		pick := rng.Float64() * totalWeight
		class := len(s.Templates) - 1
		for i, tpl := range s.Templates {
			if pick < tpl.Weight {
				class = i
				break
			}
			pick -= tpl.Weight
		}
		first := r * rackSize
		n := rackSize
		if first+n > s.TotalServers {
			n = s.TotalServers - first
		}
		zone := r % zones
		if z := s.Templates[class].Zone; z > 0 {
			zone = z - 1
		}
		t.Racks[r] = Rack{Index: r, Class: class, FirstServer: first, Servers: n, Zone: zone}
		c := &t.Classes[class]
		c.Servers += n
		c.Racks++
		t.Panels += s.Templates[class].Panels
		for i := first; i < first+n; i++ {
			t.classOf[i] = class
			t.zoneMembers[zone] = append(t.zoneMembers[zone], i)
		}
	}
	for _, c := range t.Classes {
		if c.BatteryAh > 0 {
			t.Units += c.Servers
		}
	}
	return t, nil
}

// ClassOf returns the class index of a global server index.
func (t *Topology) ClassOf(server int) int { return t.classOf[server] }

// ClassCounts returns the per-class server counts in class order.
func (t *Topology) ClassCounts() []int {
	out := make([]int, len(t.Classes))
	for i, c := range t.Classes {
		out[i] = c.Servers
	}
	return out
}

// ZoneMembers returns the ascending server-index list of each zone.
// The returned slices are the topology's own: read-only.
func (t *Topology) ZoneMembers() [][]int { return t.zoneMembers }

// PeakGreen returns the fleet's aggregate PV peak AC output.
func (t *Topology) PeakGreen() units.Watt {
	return solar.Array{Panel: solar.DefaultPanel(), Panels: t.Panels}.PeakAC()
}

// BatteryClasses returns the class-indexed battery groups for
// battery.NewClassBank: one ClassSpec per battery-carrying class with
// servers, in class order. Unit indices therefore run class-major,
// which is the order chaos BatteryDegrade targets resolve against.
func (t *Topology) BatteryClasses() []battery.ClassSpec {
	var out []battery.ClassSpec
	for _, c := range t.Classes {
		if c.BatteryAh <= 0 || c.Servers == 0 {
			continue
		}
		cfg := battery.ServerBattery()
		cfg.Capacity = c.BatteryAh
		if c.BatteryMaxDoD > 0 {
			cfg.MaxDoD = c.BatteryMaxDoD
		}
		out = append(out, battery.ClassSpec{Config: cfg, Count: c.Servers})
	}
	return out
}

// ChaosTopology returns the shape chaos.Profile.ResolveFor draws fault
// targets from: server and battery-unit counts plus the generated zone
// membership, so zone outages strike generated zones instead of the
// legacy contiguous two-way split.
func (t *Topology) ChaosTopology() chaos.Topology {
	return chaos.Topology{
		Servers:     t.Servers,
		Units:       t.Units,
		Zones:       t.Zones,
		ZoneMembers: t.zoneMembers,
	}
}

// fingerprintDoc pins the canonical field set hashed into Fingerprint;
// json.Marshal renders struct fields in declaration order, so the
// encoding is deterministic.
type fingerprintDoc struct {
	Spec    Spec   `json:"spec"`
	Racks   []Rack `json:"racks"`
	Servers int    `json:"servers"`
	Units   int    `json:"units"`
	Panels  int    `json:"panels"`
	Zones   int    `json:"zones"`
}

// Fingerprint returns a stable hex digest of the generated topology.
// Same spec + seed ⇒ same fingerprint; checkpoints cut from fleet runs
// record it so a resume into a different topology fails loudly.
func (t *Topology) Fingerprint() string {
	b, err := json.Marshal(fingerprintDoc{
		Spec: t.Spec, Racks: t.Racks,
		Servers: t.Servers, Units: t.Units, Panels: t.Panels, Zones: t.Zones,
	})
	if err != nil {
		// Marshalling plain structs of scalars cannot fail; keep the
		// signature allocation-free for callers.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Summary renders a one-line per-class census for logs.
func (t *Topology) Summary() string {
	s := fmt.Sprintf("fleet %q: %d servers, %d racks, %d classes, %d battery units, %d panels, %d zones",
		t.Spec.Name, t.Servers, len(t.Racks), len(t.Classes), t.Units, t.Panels, t.Zones)
	for _, c := range t.Classes {
		s += fmt.Sprintf("; %s=%d", c.Name, c.Servers)
	}
	return s
}
