package obs

import (
	"io"
	"runtime"
	"sync"
	"testing"
)

func TestCollectorConcurrentScrapeRace(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50000; i++ {
			c.mu.Lock()
			c.lat.Observe(0.01)
			c.mu.Unlock()
			runtime.Gosched()
		}
		close(stop)
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.reg.WritePrometheus(io.Discard)
			runtime.Gosched()
		}
	}()
	wg.Wait()
}
