package obs

import (
	"fmt"
	"io"
	"sync"

	"greensprint/internal/metrics"
)

// Collector turns the per-epoch event stream into the /metrics
// catalog. It implements Sink, so it composes with a JSONL event log
// through Multi; WritePrometheus renders the current state. Safe for
// concurrent use.
type Collector struct {
	reg *Registry

	epochs       *Counter
	sprintEpochs *Counter
	decisions    *Counter
	cases        *Counter
	qos          *Counter
	energyWh     *Counter

	greenSupply *Gauge
	split       *Gauge
	soc         *Gauge
	dod         *Gauge
	cycles      *Gauge
	stress      *Gauge
	sprintFrac  *Gauge
	goodput     *Gauge
	latQuantile *Gauge

	mu  sync.Mutex
	lat *metrics.Histogram
}

// NewCollector builds a Collector with the full GreenSprint metric
// catalog registered (see DESIGN.md §8 and the README's observability
// section).
func NewCollector() *Collector {
	r := NewRegistry()
	c := &Collector{
		reg: r,
		epochs: r.NewCounter("greensprint_epochs_total",
			"Scheduling epochs processed."),
		sprintEpochs: r.NewCounter("greensprint_sprint_epochs_total",
			"Epochs whose applied config exceeded Normal mode."),
		decisions: r.NewCounter("greensprint_decisions_total",
			"Decisions by strategy and applied server config."),
		cases: r.NewCounter("greensprint_supply_case_total",
			"Epochs by PSS supply case (green-only, green+battery, ...)."),
		qos: r.NewCounter("greensprint_qos_violations_total",
			"Epochs whose SLA-percentile latency exceeded the deadline."),
		energyWh: r.NewCounter("greensprint_energy_wh_total",
			"Rack-level energy delivered, by power source."),
		greenSupply: r.NewGauge("greensprint_green_supply_watts",
			"Renewable production observed over the last epoch (rack level)."),
		split: r.NewGauge("greensprint_power_split_watts",
			"Per-server power delivered in the last epoch, by source."),
		soc: r.NewGauge("greensprint_battery_soc",
			"Battery bank mean state of charge (0-1)."),
		dod: r.NewGauge("greensprint_battery_dod",
			"Battery bank mean depth of discharge (1 - SoC)."),
		cycles: r.NewGauge("greensprint_battery_cycles",
			"Equivalent battery cycles consumed since start."),
		stress: r.NewGauge("greensprint_breaker_stress",
			"PDU breaker thermal stress (0-1; 1 trips)."),
		sprintFrac: r.NewGauge("greensprint_sprint_fraction",
			"Fraction of the last epoch the sprint was powered."),
		goodput: r.NewGauge("greensprint_goodput_rps",
			"Per-server QoS-compliant throughput over the last epoch."),
		latQuantile: r.NewGauge("greensprint_epoch_latency_quantile_seconds",
			"SLA-percentile epoch latency quantiles."),
		lat: metrics.DefaultLatencyHistogram(),
	}
	r.NewHistogram("greensprint_epoch_latency_seconds",
		"Per-epoch SLA-percentile latency.", c.lat, nil)
	return c
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) error {
	c.Observe(ev)
	return nil
}

// Observe folds one epoch event into the metric catalog.
func (c *Collector) Observe(ev Event) {
	c.epochs.Inc()
	if ev.Sprinting {
		c.sprintEpochs.Inc()
	}
	c.decisions.With("strategy", ev.Strategy, "config", ev.Config).Inc()
	c.cases.With("case", ev.Case).Inc()
	if ev.QoSViolation {
		c.qos.Inc()
	}
	n := float64(ev.Servers)
	if n <= 0 {
		n = 1
	}
	hours := ev.EpochSeconds / 3600
	c.energyWh.With("source", "green").Add(ev.GreenW * n * hours)
	c.energyWh.With("source", "battery").Add(ev.BatteryW * n * hours)
	c.energyWh.With("source", "grid").Add(ev.GridW * n * hours)

	c.greenSupply.Set(ev.GreenSupplyW)
	c.split.With("source", "green").Set(ev.GreenW)
	c.split.With("source", "battery").Set(ev.BatteryW)
	c.split.With("source", "grid").Set(ev.GridW)
	c.soc.Set(ev.SoC)
	c.dod.Set(1 - ev.SoC)
	c.cycles.Set(ev.BatteryCycles)
	c.stress.Set(ev.BreakerStress)
	c.sprintFrac.Set(ev.SprintFraction)
	c.goodput.Set(ev.Goodput)

	c.mu.Lock()
	c.lat.Observe(ev.LatencySec)
	c.mu.Unlock()
}

// WritePrometheus renders the catalog in the Prometheus text format.
func (c *Collector) WritePrometheus(w io.Writer) error {
	c.mu.Lock()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		c.latQuantile.With("quantile", fmt.Sprintf("%g", q)).Set(c.lat.Quantile(q))
	}
	c.mu.Unlock()
	return c.reg.WritePrometheus(w)
}
