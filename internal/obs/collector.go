package obs

import (
	"io"
	"sync"

	"greensprint/internal/metrics"
)

// Collector turns the per-epoch event stream into the /metrics
// catalog. It implements Sink, so it composes with a JSONL event log
// through Multi; WritePrometheus renders the current state. Safe for
// concurrent use.
type Collector struct {
	reg *Registry

	epochs       *Counter
	sprintEpochs *Counter
	decisions    *Counter
	cases        *Counter
	qos          *Counter

	// Fixed label sets are resolved once at construction: With()
	// renders and sorts its label pairs on every call, which the
	// per-epoch Observe path would otherwise pay nine times over.
	energyGreen, energyBattery, energyGrid *Counter
	splitGreen, splitBattery, splitGrid    *Gauge
	latQ50, latQ90, latQ99                 *Gauge

	classAlive   *Gauge
	classGoodput *Gauge
	classEnergy  *Gauge

	greenSupply *Gauge
	soc         *Gauge
	dod         *Gauge
	cycles      *Gauge
	stress      *Gauge
	sprintFrac  *Gauge
	goodput     *Gauge

	mu  sync.Mutex
	lat *metrics.Histogram
	gp  *metrics.Histogram
	// decisionCh and caseCh memoize the dynamic With() children
	// (strategy×config and supply-case label sets; both spaces are
	// small and recur every epoch).
	decisionCh map[decisionKey]*Counter
	caseCh     map[string]*Counter
	// classCh memoizes the per-class gauge children of a fleet-scale
	// run (one label set per fleet template; flat runs never touch
	// it).
	classCh map[string]*classGauges
}

// classGauges is one server class's gauge children.
type classGauges struct {
	alive    *Gauge
	goodput  *Gauge
	energyWh *Gauge
}

type decisionKey struct{ strategy, config string }

// NewCollector builds a Collector with the full GreenSprint metric
// catalog registered (see DESIGN.md §8 and the README's observability
// section).
func NewCollector() *Collector {
	r := NewRegistry()
	c := &Collector{
		reg: r,
		epochs: r.NewCounter("greensprint_epochs_total",
			"Scheduling epochs processed."),
		sprintEpochs: r.NewCounter("greensprint_sprint_epochs_total",
			"Epochs whose applied config exceeded Normal mode."),
		decisions: r.NewCounter("greensprint_decisions_total",
			"Decisions by strategy and applied server config."),
		cases: r.NewCounter("greensprint_supply_case_total",
			"Epochs by PSS supply case (green-only, green+battery, ...)."),
		qos: r.NewCounter("greensprint_qos_violations_total",
			"Epochs whose SLA-percentile latency exceeded the deadline."),
		greenSupply: r.NewGauge("greensprint_green_supply_watts",
			"Renewable production observed over the last epoch (rack level)."),
		soc: r.NewGauge("greensprint_battery_soc",
			"Battery bank mean state of charge (0-1)."),
		dod: r.NewGauge("greensprint_battery_dod",
			"Battery bank mean depth of discharge (1 - SoC)."),
		cycles: r.NewGauge("greensprint_battery_cycles",
			"Equivalent battery cycles consumed since start."),
		stress: r.NewGauge("greensprint_breaker_stress",
			"PDU breaker thermal stress (0-1; 1 trips)."),
		sprintFrac: r.NewGauge("greensprint_sprint_fraction",
			"Fraction of the last epoch the sprint was powered."),
		goodput: r.NewGauge("greensprint_goodput_rps",
			"Per-server QoS-compliant throughput over the last epoch."),
		lat:        metrics.DefaultLatencyHistogram(),
		gp:         metrics.DefaultGoodputHistogram(),
		decisionCh: map[decisionKey]*Counter{},
		caseCh:     map[string]*Counter{},
		classCh:    map[string]*classGauges{},
	}
	c.classAlive = r.NewGauge("greensprint_class_alive_servers",
		"Alive servers per fleet class (fleet-scale runs only).")
	c.classGoodput = r.NewGauge("greensprint_class_goodput_rps",
		"Aggregate QoS-compliant throughput per fleet class.")
	c.classEnergy = r.NewGauge("greensprint_class_energy_wh",
		"Cumulative server energy per fleet class (Wh).")
	energyWh := r.NewCounter("greensprint_energy_wh_total",
		"Rack-level energy delivered, by power source.")
	c.energyGreen = energyWh.With("source", "green")
	c.energyBattery = energyWh.With("source", "battery")
	c.energyGrid = energyWh.With("source", "grid")
	split := r.NewGauge("greensprint_power_split_watts",
		"Per-server power delivered in the last epoch, by source.")
	c.splitGreen = split.With("source", "green")
	c.splitBattery = split.With("source", "battery")
	c.splitGrid = split.With("source", "grid")
	latQuantile := r.NewGauge("greensprint_epoch_latency_quantile_seconds",
		"SLA-percentile epoch latency quantiles.")
	c.latQ50 = latQuantile.With("quantile", "0.5")
	c.latQ90 = latQuantile.With("quantile", "0.9")
	c.latQ99 = latQuantile.With("quantile", "0.99")
	r.NewHistogram("greensprint_epoch_latency_seconds",
		"Per-epoch SLA-percentile latency.", c.lat, nil)
	r.NewHistogram("greensprint_epoch_goodput",
		"Per-epoch per-server QoS-compliant throughput (requests/s).",
		c.gp, DefaultGoodputBounds)
	return c
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) error {
	c.Observe(ev)
	return nil
}

// Observe folds one epoch event into the metric catalog. Chaos
// fault/recovery transitions are stream annotations, not epochs: they
// carry no decision, split or latency, so folding them in would
// inflate greensprint_epochs_total and mint zero-config decision
// label series.
func (c *Collector) Observe(ev Event) {
	if ev.Chaos != "" {
		return
	}
	c.epochs.Inc()
	if ev.Sprinting {
		c.sprintEpochs.Inc()
	}
	c.decision(ev.Strategy, ev.Config).Inc()
	c.supplyCase(ev.Case).Inc()
	if ev.QoSViolation {
		c.qos.Inc()
	}
	n := float64(ev.Servers)
	if n <= 0 {
		n = 1
	}
	hours := ev.EpochSeconds / 3600
	c.energyGreen.Add(ev.GreenW * n * hours)
	c.energyBattery.Add(ev.BatteryW * n * hours)
	c.energyGrid.Add(ev.GridW * n * hours)

	c.greenSupply.Set(ev.GreenSupplyW)
	c.splitGreen.Set(ev.GreenW)
	c.splitBattery.Set(ev.BatteryW)
	c.splitGrid.Set(ev.GridW)
	c.soc.Set(ev.SoC)
	c.dod.Set(1 - ev.SoC)
	c.cycles.Set(ev.BatteryCycles)
	c.stress.Set(ev.BreakerStress)
	c.sprintFrac.Set(ev.SprintFraction)
	c.goodput.Set(ev.Goodput)

	// Per-class gauges: ev.Classes may be the emitter's reused
	// buffer, so its values are consumed here and not retained.
	for _, cs := range ev.Classes {
		g := c.class(cs.Name)
		g.alive.Set(float64(cs.Alive))
		g.goodput.Set(cs.Goodput)
		g.energyWh.Set(cs.EnergyWh)
	}

	c.mu.Lock()
	c.lat.Observe(ev.LatencySec)
	c.gp.Observe(ev.Goodput)
	c.mu.Unlock()
}

// class returns the memoized gauge children for one fleet class.
func (c *Collector) class(name string) *classGauges {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.classCh[name]
	if !ok {
		g = &classGauges{
			alive:    c.classAlive.With("class", name),
			goodput:  c.classGoodput.With("class", name),
			energyWh: c.classEnergy.With("class", name),
		}
		c.classCh[name] = g
	}
	return g
}

// decision returns the memoized counter child for one
// (strategy, config) label set.
func (c *Collector) decision(strategy, config string) *Counter {
	k := decisionKey{strategy, config}
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.decisionCh[k]
	if !ok {
		ch = c.decisions.With("strategy", strategy, "config", config)
		c.decisionCh[k] = ch
	}
	return ch
}

// supplyCase returns the memoized counter child for one PSS case.
func (c *Collector) supplyCase(name string) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.caseCh[name]
	if !ok {
		ch = c.cases.With("case", name)
		c.caseCh[name] = ch
	}
	return ch
}

// WritePrometheus renders the catalog in the Prometheus text format.
func (c *Collector) WritePrometheus(w io.Writer) error {
	c.mu.Lock()
	c.latQ50.Set(c.lat.Quantile(0.5))
	c.latQ90.Set(c.lat.Quantile(0.9))
	c.latQ99.Set(c.lat.Quantile(0.99))
	c.mu.Unlock()
	return c.reg.WritePrometheus(w)
}
