// Package obs is GreenSprint's observability layer: a structured
// per-epoch event log and Prometheus-text-format metrics export, fed
// by hooks on sim.Engine.Step and core.Controller.Step.
//
// The package has two halves:
//
//   - Event / Sink / JSONL — one flat record per scheduling epoch
//     (telemetry in, decision out, power-source split), streamed as
//     JSON Lines. The encoding is deterministic: a fixed-seed replay
//     produces a bit-identical stream across runs and across sharded
//     vs. sequential execution, so event logs double as golden
//     artifacts.
//   - Registry / Collector — counters, gauges and a latency histogram
//     (layered on metrics.Histogram) rendered in the Prometheus text
//     exposition format for GET /metrics.
//
// obs deliberately imports nothing above internal/metrics, so every
// layer of the stack (sim, core, httpapi, the daemons) can depend on
// it without cycles.
package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one scheduling epoch's worth of observability: what the
// Monitor measured, what the controller decided, and how the power
// sources split. Power fields are per green server in watts; Servers
// scales them back to rack level.
type Event struct {
	// Epoch is the zero-based epoch counter.
	Epoch int `json:"epoch"`
	// Time is the epoch's start on the simulation clock (RFC 3339);
	// empty for daemon (wall-clock) epochs, which would not be
	// deterministic.
	Time string `json:"time,omitempty"`
	// EpochSeconds is the scheduling-epoch length.
	EpochSeconds float64 `json:"epoch_seconds"`
	// Strategy is the deciding strategy's name.
	Strategy string `json:"strategy,omitempty"`
	// Servers is the green-server count behind the per-server power
	// fields.
	Servers int `json:"servers,omitempty"`
	// Alive is the green-server count currently up, emitted only
	// while chaos holds servers down (fault-free streams stay
	// byte-identical to pre-chaos ones).
	Alive int `json:"alive,omitempty"`
	// InBurst marks simulated epochs inside the workload burst.
	InBurst bool `json:"in_burst,omitempty"`

	// Telemetry in.
	GreenSupplyW float64 `json:"green_supply_w"`
	OfferedRate  float64 `json:"offered_rate"`
	Goodput      float64 `json:"goodput"`
	LatencySec   float64 `json:"latency_sec"`
	ServerPowerW float64 `json:"server_power_w,omitempty"`

	// Decision out.
	Case            string  `json:"case"`
	Config          string  `json:"config"`
	Sprinting       bool    `json:"sprinting,omitempty"`
	BudgetW         float64 `json:"budget_w,omitempty"`
	PredictedGreenW float64 `json:"predicted_green_w,omitempty"`
	PredictedRate   float64 `json:"predicted_rate,omitempty"`
	DemandW         float64 `json:"demand_w,omitempty"`
	SprintFraction  float64 `json:"sprint_fraction"`

	// Power-source split (per green server, mean over the epoch).
	GreenW   float64 `json:"green_w"`
	BatteryW float64 `json:"battery_w"`
	GridW    float64 `json:"grid_w"`

	// State after the epoch.
	SoC           float64 `json:"soc"`
	BatteryCycles float64 `json:"battery_cycles,omitempty"`
	BreakerStress float64 `json:"breaker_stress,omitempty"`
	QoSViolation  bool    `json:"qos_violation,omitempty"`

	// Chaos transitions. A fault injection or recovery is emitted as
	// its own event line (Chaos "fault" or "recover") ahead of the
	// epoch record it strikes in; epoch records themselves leave these
	// empty, so fault-free streams are byte-identical to pre-chaos
	// ones.
	Chaos       string `json:"chaos,omitempty"`
	ChaosMode   string `json:"chaos_mode,omitempty"`
	ChaosTarget int    `json:"chaos_target,omitempty"`
	ChaosDetail string `json:"chaos_detail,omitempty"`

	// Classes is the per-server-class breakdown of a fleet-scale run,
	// in fleet-spec template order; nil (omitted) for the paper's flat
	// configs, so pre-fleet streams stay byte-identical. The slice may
	// be a buffer reused by the emitter: sinks must consume it during
	// Emit and not retain it.
	Classes []ClassStat `json:"classes,omitempty"`
}

// ClassStat is one server class's slice of a fleet epoch: its alive
// census, aggregate goodput, and cumulative server energy.
type ClassStat struct {
	Name     string  `json:"name"`
	Alive    int     `json:"alive"`
	Goodput  float64 `json:"goodput"`
	EnergyWh float64 `json:"energy_wh"`
}

// Sink receives one Event per scheduling epoch. Implementations must
// be safe for use from a single stepping goroutine; sinks shared
// between concurrent engines need their own locking (JSONL has it).
type Sink interface {
	Emit(Event) error
}

// JSONL streams events as JSON Lines: one object per line, fields in
// declaration order, so a deterministic run yields a byte-identical
// log. It is safe for concurrent use.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL creates a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit writes one event line.
func (j *JSONL) Emit(ev Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(ev)
}

// multi fans one event out to several sinks.
type multi []Sink

func (m multi) Emit(ev Event) error {
	for _, s := range m {
		if err := s.Emit(ev); err != nil {
			return err
		}
	}
	return nil
}

// Multi combines sinks; nil entries are dropped. It returns nil when
// nothing remains, so callers can unconditionally assign the result.
func Multi(sinks ...Sink) Sink {
	var out multi
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
