package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"greensprint/internal/metrics"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Output is deterministic: families appear in
// registration order and labeled series sort lexicographically. All
// methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	order []*family
	byNme map[string]*family
}

type family struct {
	name, help, typ string
	vals            map[string]float64 // rendered label set -> value
	hist            *promHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNme: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byNme[name]; ok {
		return f
	}
	f := &family{name: name, help: help, typ: typ, vals: map[string]float64{}}
	r.byNme[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter is a monotonically increasing metric, optionally labeled.
type Counter struct {
	r      *Registry
	f      *family
	labels string
}

// NewCounter registers (or fetches) a counter family.
func (r *Registry) NewCounter(name, help string) *Counter {
	return &Counter{r: r, f: r.register(name, help, "counter")}
}

// With returns the counter for one label set; pairs are key, value,
// key, value…
func (c *Counter) With(pairs ...string) *Counter {
	return &Counter{r: c.r, f: c.f, labels: renderLabels(pairs)}
}

// Add increments the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	c.r.mu.Lock()
	c.f.vals[c.labels] += v
	c.r.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a set-to-current-value metric, optionally labeled.
type Gauge struct {
	r      *Registry
	f      *family
	labels string
}

// NewGauge registers (or fetches) a gauge family.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return &Gauge{r: r, f: r.register(name, help, "gauge")}
}

// With returns the gauge for one label set.
func (g *Gauge) With(pairs ...string) *Gauge {
	return &Gauge{r: g.r, f: g.f, labels: renderLabels(pairs)}
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	g.r.mu.Lock()
	g.f.vals[g.labels] = v
	g.r.mu.Unlock()
}

// promHistogram renders a metrics.Histogram as a Prometheus histogram
// with a fixed ladder of le bounds.
type promHistogram struct {
	h      *metrics.Histogram
	bounds []float64
}

// DefaultLatencyBounds is the le ladder for epoch-latency export,
// covering the three workloads' SLA range (milliseconds to tens of
// seconds).
var DefaultLatencyBounds = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

// DefaultGoodputBounds is the le ladder for epoch-goodput export
// (requests/s): decade steps with 2.5/5 subdivisions from background
// trickle to a saturated Int=12 sprint.
var DefaultGoodputBounds = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000, 500000, 1000000,
}

// NewHistogram registers a Prometheus histogram over an existing
// metrics.Histogram. The caller keeps observing into h; bounds nil
// selects DefaultLatencyBounds.
func (r *Registry) NewHistogram(name, help string, h *metrics.Histogram, bounds []float64) {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	f := r.register(name, help, "histogram")
	r.mu.Lock()
	f.hist = &promHistogram{h: h, bounds: bounds}
	r.mu.Unlock()
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.order {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		if f.hist != nil {
			if err := f.hist.write(w, f.name); err != nil {
				return err
			}
			continue
		}
		keys := make([]string, 0, len(f.vals))
		for k := range f.vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, k, formatValue(f.vals[k])); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *promHistogram) write(w io.Writer, name string) error {
	for _, b := range p.bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatValue(b), p.h.CountBelow(b)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, p.h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatValue(p.h.Sum()), name, p.h.Count()); err != nil {
		return err
	}
	return nil
}

// renderLabels turns key/value pairs into a sorted, escaped
// `{k="v",…}` block (empty string for no labels).
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		pairs = append(pairs, "")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
