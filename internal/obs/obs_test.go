package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"
)

func sampleEvent(epoch int) Event {
	return Event{
		Epoch:          epoch,
		EpochSeconds:   300,
		Strategy:       "Hybrid",
		Servers:        4,
		Case:           "green+battery",
		Config:         "3.4GHz/16",
		Sprinting:      true,
		GreenSupplyW:   512.25,
		OfferedRate:    1400,
		Goodput:        1200,
		LatencySec:     0.42,
		SprintFraction: 0.75,
		GreenW:         120,
		BatteryW:       30,
		GridW:          0,
		SoC:            0.85,
		BatteryCycles:  0.012,
		QoSViolation:   epoch%2 == 1,
	}
}

func TestJSONLDeterministicAndParseable(t *testing.T) {
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		s := NewJSONL(buf)
		for i := 0; i < 5; i++ {
			if err := s.Emit(sampleEvent(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical event sequences produced different JSONL bytes")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	for i, ln := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Epoch != i || ev.Strategy != "Hybrid" {
			t.Errorf("line %d round-tripped to %+v", i, ev)
		}
	}
}

type failSink struct{ err error }

func (f failSink) Emit(Event) error { return f.err }

type countSink struct{ n int }

func (c *countSink) Emit(Event) error { c.n++; return nil }

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("empty Multi should be nil")
	}
	a, b := &countSink{}, &countSink{}
	m := Multi(a, nil, b)
	if err := m.Emit(sampleEvent(0)); err != nil {
		t.Fatal(err)
	}
	if a.n != 1 || b.n != 1 {
		t.Errorf("fan-out counts = %d, %d", a.n, b.n)
	}
	boom := errors.New("boom")
	if err := Multi(a, failSink{boom}).Emit(sampleEvent(1)); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestCollectorMetrics(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 4; i++ {
		if err := c.Emit(sampleEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Chaos transitions ride the same sink but are annotations, not
	// epochs: they must not inflate the counters or mint zero-config
	// decision series.
	for i, kind := range []string{"fault", "recover"} {
		if err := c.Emit(Event{Epoch: i, Chaos: kind, ChaosMode: "server-crash", Strategy: "Hybrid"}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"greensprint_epochs_total 4",
		"greensprint_sprint_epochs_total 4",
		`greensprint_decisions_total{config="3.4GHz/16",strategy="Hybrid"} 4`,
		`greensprint_supply_case_total{case="green+battery"} 4`,
		"greensprint_qos_violations_total 2",
		// 120 W × 4 servers × (300 s / 3600 s/h) × 4 epochs = 160 Wh.
		`greensprint_energy_wh_total{source="green"} 160`,
		`greensprint_energy_wh_total{source="battery"} 40`,
		"greensprint_green_supply_watts 512.25",
		"greensprint_battery_soc 0.85",
		"greensprint_battery_dod 0.15",
		"greensprint_sprint_fraction 0.75",
		"greensprint_epoch_latency_seconds_count 4",
		`greensprint_epoch_latency_seconds_bucket{le="+Inf"} 4`,
		`greensprint_epoch_latency_quantile_seconds{quantile="0.99"}`,
		"# TYPE greensprint_epochs_total counter",
		"# TYPE greensprint_battery_soc gauge",
		"# TYPE greensprint_epoch_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(out, `config=""`) || strings.Contains(out, "0MHz/0") {
		t.Error("chaos transition minted a zero-config decision series")
	}
	// Deterministic rendering.
	var buf2 bytes.Buffer
	if err := c.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two renders of the same collector differ")
	}
}

// TestCollectorClassGauges feeds events carrying per-class stats (a
// fleet-scale run) and checks the class-labelled gauges: last-write
// values per class, and no class series at all for flat events.
func TestCollectorClassGauges(t *testing.T) {
	flat := NewCollector()
	if err := flat.Emit(sampleEvent(0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flat.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `class="`) {
		t.Error("flat events produced class-labelled series")
	}

	c := NewCollector()
	for i := 0; i < 2; i++ {
		ev := sampleEvent(i)
		ev.Classes = []ClassStat{
			{Name: "web", Alive: 5000 - i, Goodput: 1000.5, EnergyWh: float64(100 * (i + 1))},
			{Name: "batch", Alive: 3000, Goodput: 600.25, EnergyWh: float64(80 * (i + 1))},
		}
		if err := c.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`greensprint_class_alive_servers{class="web"} 4999`,
		`greensprint_class_alive_servers{class="batch"} 3000`,
		`greensprint_class_goodput_rps{class="web"} 1000.5`,
		`greensprint_class_energy_wh{class="web"} 200`,
		`greensprint_class_energy_wh{class="batch"} 160`,
		"# TYPE greensprint_class_alive_servers gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestCollectorGoodputHistogram drives epochs with known goodput
// values through the collector and checks the exported histogram:
// cumulative le buckets bracket the samples, and sum/count match.
func TestCollectorGoodputHistogram(t *testing.T) {
	c := NewCollector()
	for i, gp := range []float64{40, 40, 1200, 90000} {
		ev := sampleEvent(i)
		ev.Goodput = gp
		if err := c.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE greensprint_epoch_goodput histogram",
		`greensprint_epoch_goodput_bucket{le="25"} 0`,
		`greensprint_epoch_goodput_bucket{le="50"} 2`,
		`greensprint_epoch_goodput_bucket{le="1000"} 2`,
		`greensprint_epoch_goodput_bucket{le="2500"} 3`,
		`greensprint_epoch_goodput_bucket{le="50000"} 3`,
		`greensprint_epoch_goodput_bucket{le="100000"} 4`,
		`greensprint_epoch_goodput_bucket{le="+Inf"} 4`,
		"greensprint_epoch_goodput_count 4",
		"greensprint_epoch_goodput_sum 91280",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestPrometheusTextWellFormed(t *testing.T) {
	c := NewCollector()
	c.Observe(sampleEvent(0))
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkPrometheusText(t, buf.String())
}

// checkPrometheusText is a minimal validator for the text exposition
// format: every sample line is `name{labels} value` with a parseable
// float value, and every sample belongs to a family declared by a
// preceding # TYPE line.
func checkPrometheusText(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	for i, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(ln, "# TYPE ") {
			parts := strings.Fields(ln)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i, ln)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(ln, "#") {
			continue
		}
		name := ln
		if j := strings.IndexAny(ln, "{ "); j >= 0 {
			name = ln[:j]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !typed[base] {
			t.Errorf("line %d: sample %q has no TYPE declaration", i, name)
		}
		sp := strings.LastIndex(ln, " ")
		if sp < 0 {
			t.Fatalf("line %d: no value: %q", i, ln)
		}
		val := ln[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := parseFloat(val); err != nil {
				t.Errorf("line %d: bad value %q: %v", i, val, err)
			}
		}
		if j := strings.Index(ln, "{"); j >= 0 {
			k := strings.Index(ln, "}")
			if k < j {
				t.Errorf("line %d: unbalanced label braces: %q", i, ln)
			}
		}
	}
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
