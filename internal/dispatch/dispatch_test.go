package dispatch

import (
	"math"
	"testing"
	"testing/quick"

	"greensprint/internal/server"
	"greensprint/internal/workload"
)

func TestSplitProportional(t *testing.T) {
	shares := Split([]float64{100, 200, 100}, 200)
	want := []float64{50, 100, 50}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-9 {
			t.Errorf("share %d = %v, want %v", i, shares[i], want[i])
		}
	}
}

func TestSplitCapsAtCapacity(t *testing.T) {
	shares := Split([]float64{100, 200}, 1000)
	if shares[0] != 100 || shares[1] != 200 {
		t.Errorf("overload shares = %v", shares)
	}
}

func TestSplitEdges(t *testing.T) {
	if got := Split(nil, 100); len(got) != 0 {
		t.Error("nil servers")
	}
	got := Split([]float64{0, 0}, 100)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("zero-capacity shares = %v", got)
	}
	got = Split([]float64{100}, 0)
	if got[0] != 0 {
		t.Errorf("zero total = %v", got)
	}
	// Dead server gets nothing; the rest carry the load.
	got = Split([]float64{0, 100}, 50)
	if got[0] != 0 || got[1] != 50 {
		t.Errorf("mixed shares = %v", got)
	}
}

// Property: shares are non-negative, never exceed per-server capacity,
// and sum to min(total, aggregate capacity).
func TestSplitInvariantProperty(t *testing.T) {
	f := func(caps []uint16, totalRaw uint16) bool {
		maxRates := make([]float64, len(caps))
		var capSum float64
		for i, c := range caps {
			maxRates[i] = float64(c % 500)
			capSum += maxRates[i]
		}
		total := float64(totalRaw % 3000)
		shares := Split(maxRates, total)
		var sum float64
		for i, s := range shares {
			if s < -1e-9 || s > maxRates[i]+1e-9 {
				return false
			}
			sum += s
		}
		want := math.Min(total, capSum)
		return math.Abs(sum-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterGoodput(t *testing.T) {
	p := workload.SPECjbb()
	// The paper's burst topology: 7 grid servers at 12c@1.5GHz, 3
	// green servers at max sprint.
	configs := make([]server.Config, 0, 10)
	for i := 0; i < 7; i++ {
		configs = append(configs, server.Config{Cores: 12, Freq: 1500})
	}
	for i := 0; i < 3; i++ {
		configs = append(configs, server.MaxSprint())
	}
	total := 10 * p.IntensityRate(12)
	sum, assigns, err := ClusterGoodput(p, configs, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(assigns) != 10 {
		t.Fatalf("assignments = %d", len(assigns))
	}
	// Green servers carry more than grid servers (higher capacity).
	if assigns[9].Offered <= assigns[0].Offered {
		t.Errorf("green share %v should exceed grid share %v", assigns[9].Offered, assigns[0].Offered)
	}
	var check float64
	for _, a := range assigns {
		check += a.Goodput
	}
	if math.Abs(check-sum) > 1e-6 {
		t.Errorf("sum mismatch: %v vs %v", check, sum)
	}
	// Errors.
	if _, _, err := ClusterGoodput(workload.Profile{}, configs, total); err == nil {
		t.Error("invalid profile should fail")
	}
	if _, _, err := ClusterGoodput(p, configs, -1); err == nil {
		t.Error("negative rate should fail")
	}
	if _, _, err := ClusterGoodput(p, []server.Config{{Cores: 1, Freq: 1}}, 10); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestNormalizedClusterPerf(t *testing.T) {
	p := workload.SPECjbb()
	// All-Normal cluster is the baseline: 1.0 by construction.
	normals := make([]server.Config, 10)
	for i := range normals {
		normals[i] = server.Normal()
	}
	total := 10 * p.IntensityRate(12)
	if got, err := NormalizedClusterPerf(p, normals, total); err != nil || math.Abs(got-1) > 1e-9 {
		t.Errorf("all-Normal perf = %v, %v", got, err)
	}
	// The paper's mixed burst topology lands between 1x and the
	// green servers' 4.8x.
	configs := make([]server.Config, 0, 10)
	for i := 0; i < 7; i++ {
		configs = append(configs, server.Config{Cores: 12, Freq: 1500})
	}
	for i := 0; i < 3; i++ {
		configs = append(configs, server.MaxSprint())
	}
	got, err := NormalizedClusterPerf(p, configs, total)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 2 || got >= 4.8 {
		t.Errorf("mixed cluster perf = %v, want between grid-only and full sprint", got)
	}
	// An all-max-sprint cluster reaches the headline gain.
	maxed := make([]server.Config, 10)
	for i := range maxed {
		maxed[i] = server.MaxSprint()
	}
	got, err = NormalizedClusterPerf(p, maxed, total)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-p.NormalizedPerf(server.MaxSprint()))/got > 0.02 {
		t.Errorf("all-sprint cluster perf = %v, want ~%v", got, p.NormalizedPerf(server.MaxSprint()))
	}
}
