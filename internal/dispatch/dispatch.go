// Package dispatch models the cluster's load balancer: the paper's
// prototype spreads the interactive workload across all ten servers
// ("we generate the workload in the cluster until all 10 servers are
// fully utilized"), and during sprints the servers are heterogeneous —
// grid-fed machines at a sub-optimal setting, green machines at
// whatever the PMK chose. The balancer splits a cluster-wide offered
// rate across servers in proportion to their QoS-constrained capacity,
// which keeps every server at the same fraction of its own limit (the
// split that maximizes total goodput for proportional policies).
package dispatch

import (
	"fmt"

	"greensprint/internal/server"
	"greensprint/internal/workload"
)

// Split distributes a total offered rate across servers with the given
// QoS-max rates, proportionally to capacity. Each share is capped at
// its server's max rate; when the total exceeds the cluster's
// aggregate capacity the excess is shed (the returned shares sum to
// the aggregate capacity). Zero-capacity servers receive nothing.
func Split(maxRates []float64, total float64) []float64 {
	out := make([]float64, len(maxRates))
	if total <= 0 || len(maxRates) == 0 {
		return out
	}
	var capSum float64
	for _, m := range maxRates {
		if m > 0 {
			capSum += m
		}
	}
	if capSum <= 0 {
		return out
	}
	frac := total / capSum
	if frac > 1 {
		frac = 1
	}
	for i, m := range maxRates {
		if m > 0 {
			out[i] = frac * m
		}
	}
	return out
}

// Assignment is one server's share of the cluster load.
type Assignment struct {
	Config  server.Config
	Offered float64
	Goodput float64
}

// ClusterGoodput splits a cluster-wide offered rate across the given
// per-server settings and returns the aggregate QoS-compliant
// throughput plus the per-server assignments.
func ClusterGoodput(p workload.Profile, configs []server.Config, total float64) (float64, []Assignment, error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	if total < 0 {
		return 0, nil, fmt.Errorf("dispatch: negative total rate %v", total)
	}
	maxRates := make([]float64, len(configs))
	for i, c := range configs {
		if !c.Valid() {
			return 0, nil, fmt.Errorf("dispatch: invalid config %v at %d", c, i)
		}
		maxRates[i] = p.MaxGoodput(c)
	}
	shares := Split(maxRates, total)
	out := make([]Assignment, len(configs))
	sum := 0.0
	for i, c := range configs {
		g := p.Goodput(c, shares[i])
		out[i] = Assignment{Config: c, Offered: shares[i], Goodput: g}
		sum += g
	}
	return sum, out, nil
}

// NormalizedClusterPerf returns ClusterGoodput normalized to an
// all-Normal cluster of the same size at the same offered rate — the
// paper's whole-cluster metric.
func NormalizedClusterPerf(p workload.Profile, configs []server.Config, total float64) (float64, error) {
	sprint, _, err := ClusterGoodput(p, configs, total)
	if err != nil {
		return 0, err
	}
	normals := make([]server.Config, len(configs))
	for i := range normals {
		normals[i] = server.Normal()
	}
	base, _, err := ClusterGoodput(p, normals, total)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, nil
	}
	return sprint / base, nil
}
