package profile

import (
	"bytes"
	"testing"

	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

func buildSPEC(t *testing.T) *Table {
	t.Helper()
	tab, err := Build(workload.SPECjbb(), DefaultLevels)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestBuildShape(t *testing.T) {
	tab := buildSPEC(t)
	wantEntries := DefaultLevels * len(server.Configs())
	if len(tab.Entries) != wantEntries {
		t.Fatalf("entries = %d, want %d", len(tab.Entries), wantEntries)
	}
	if tab.Workload != "SPECjbb" {
		t.Errorf("workload = %q", tab.Workload)
	}
	for _, e := range tab.Entries {
		if !e.Config().Valid() {
			t.Fatalf("invalid config in table: %+v", e)
		}
		if e.Power < server.IdlePower-20 || e.Power > 155+1e-9 {
			t.Errorf("power out of range: %+v", e)
		}
		if e.Goodput < 0 || e.NormPerf < 0 {
			t.Errorf("negative perf: %+v", e)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(workload.Profile{}, 10); err == nil {
		t.Error("invalid profile should error")
	}
	if _, err := Build(workload.SPECjbb(), 0); err == nil {
		t.Error("zero levels should error")
	}
}

func TestLevelFor(t *testing.T) {
	tab := buildSPEC(t)
	if got := tab.LevelFor(0); got != 0 {
		t.Errorf("LevelFor(0) = %d", got)
	}
	if got := tab.LevelFor(tab.MaxRate); got != tab.Levels-1 {
		t.Errorf("LevelFor(max) = %d", got)
	}
	if got := tab.LevelFor(tab.MaxRate * 10); got != tab.Levels-1 {
		t.Errorf("LevelFor(10x) = %d", got)
	}
	// Mid-scale maps to a middle level.
	mid := tab.LevelFor(tab.MaxRate / 2)
	if mid < 3 || mid > 6 {
		t.Errorf("LevelFor(half) = %d", mid)
	}
	// Degenerate table.
	var empty Table
	if empty.LevelFor(5) != 0 {
		t.Error("degenerate LevelFor should be 0")
	}
}

func TestLookup(t *testing.T) {
	tab := buildSPEC(t)
	e, ok := tab.Lookup(0, server.Normal())
	if !ok {
		t.Fatal("Normal at level 0 should exist")
	}
	if e.Config() != server.Normal() {
		t.Errorf("config = %v", e.Config())
	}
	if _, ok := tab.Lookup(99, server.Normal()); ok {
		t.Error("level 99 should not exist")
	}
	if _, ok := tab.Lookup(0, server.Config{Cores: 5, Freq: 1200}); ok {
		t.Error("invalid config should not exist")
	}
	if p, ok := tab.LoadPower(0, server.MaxSprint()); !ok || p <= 0 {
		t.Errorf("LoadPower = %v ok=%v", p, ok)
	}
}

func TestPowerMonotoneAcrossLevels(t *testing.T) {
	tab := buildSPEC(t)
	// At a fixed setting, higher load levels demand at least as much
	// power (utilization grows until saturation).
	c := server.MaxSprint()
	var prev units.Watt
	for lvl := 0; lvl < tab.Levels; lvl++ {
		e, ok := tab.Lookup(lvl, c)
		if !ok {
			t.Fatalf("missing level %d", lvl)
		}
		if e.Power < prev {
			t.Errorf("power decreasing at level %d: %v < %v", lvl, e.Power, prev)
		}
		prev = e.Power
	}
}

func TestBestWithin(t *testing.T) {
	tab := buildSPEC(t)
	top := tab.Levels - 1
	// Unlimited budget at the top level: the max sprint wins.
	e, ok := tab.BestWithin(top, 1000, nil)
	if !ok {
		t.Fatal("unlimited budget should find a setting")
	}
	if e.Config() != server.MaxSprint() {
		t.Errorf("best = %v, want max sprint", e.Config())
	}
	// Tight budget: must fit.
	e, ok = tab.BestWithin(top, 120, nil)
	if !ok {
		t.Fatal("120W budget should fit something")
	}
	if e.Power > 120 {
		t.Errorf("chosen power %v > 120", e.Power)
	}
	// Impossible budget.
	if _, ok := tab.BestWithin(top, 10, nil); ok {
		t.Error("10W budget should fit nothing")
	}
}

func TestBestWithinFilters(t *testing.T) {
	tab := buildSPEC(t)
	top := tab.Levels - 1
	parallel := func(c server.Config) bool { return c.Freq == units.FreqMax }
	pacing := func(c server.Config) bool { return c.Cores == server.MaxCores }
	ePar, ok := tab.BestWithin(top, 130, parallel)
	if !ok {
		t.Fatal("parallel filter at 130W should fit")
	}
	if ePar.Freq != units.FreqMax {
		t.Errorf("parallel chose %v", ePar.Config())
	}
	ePac, ok := tab.BestWithin(top, 130, pacing)
	if !ok {
		t.Fatal("pacing filter at 130W should fit")
	}
	if ePac.Cores != server.MaxCores {
		t.Errorf("pacing chose %v", ePac.Config())
	}
	// For SPECjbb, pacing beats parallel at an equal budget (§IV-A).
	if ePac.Goodput <= ePar.Goodput {
		t.Errorf("pacing %v should beat parallel %v", ePac.Goodput, ePar.Goodput)
	}
}

func TestBestWithinTieBreaksTowardLowerPower(t *testing.T) {
	tab := buildSPEC(t)
	// At level 0 (light load) many settings deliver the full offered
	// goodput; the chosen one should be the cheapest among the best.
	e, ok := tab.BestWithin(0, 1000, nil)
	if !ok {
		t.Fatal("no setting at level 0")
	}
	for _, other := range tab.LevelEntries(0) {
		if other.Goodput == e.Goodput && other.Power < e.Power {
			t.Errorf("found cheaper equal-goodput setting %+v than chosen %+v", other, e)
		}
	}
}

func TestLevelEntriesSorted(t *testing.T) {
	tab := buildSPEC(t)
	es := tab.LevelEntries(3)
	if len(es) != len(server.Configs()) {
		t.Fatalf("level entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Power < es[i-1].Power {
			t.Fatal("entries not sorted by power")
		}
	}
	if got := tab.LevelEntries(99); got != nil {
		t.Errorf("missing level should be empty, got %d", len(got))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tab := buildSPEC(t)
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != tab.Workload || back.Levels != tab.Levels || len(back.Entries) != len(tab.Entries) {
		t.Fatalf("round trip mismatch: %s %d %d", back.Workload, back.Levels, len(back.Entries))
	}
	// Lookup works after deserialization (index rebuilt).
	a, ok1 := tab.Lookup(2, server.MaxSprint())
	b, ok2 := back.Lookup(2, server.MaxSprint())
	if !ok1 || !ok2 || a.Power != b.Power || a.Goodput != b.Goodput {
		t.Errorf("lookup mismatch: %+v vs %+v", a, b)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("bad JSON should error")
	}
}
