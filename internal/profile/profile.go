// Package profile builds and queries the a-priori profiling tables of
// §III-B: "We measure and collect the power demand (LoadPower_j(L,S))
// of an individual workload for each server setting S and workload
// intensity level L with a priori knowledge using an exhaustive method
// on real servers." In this reproduction the exhaustive measurement
// runs against the analytic server/workload models; the resulting
// table is what the Parallel, Pacing and Hybrid strategies consult at
// run time, and what bootstraps the Hybrid Q-table.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// DefaultLevels is the default number of workload-intensity levels
// (the paper's L1..Lw).
const DefaultLevels = 10

// Entry is one profiled (level, setting) cell.
type Entry struct {
	// Level is the workload intensity level index (0-based).
	Level int `json:"level"`
	// Config is the server setting S.
	Cores int       `json:"cores"`
	Freq  units.MHz `json:"freq_mhz"`
	// OfferedRate is the per-server arrival rate of this level.
	OfferedRate float64 `json:"offered_rate"`
	// Power is LoadPower(L,S): wall power at this level and setting.
	Power units.Watt `json:"power_w"`
	// Goodput is the QoS-compliant throughput delivered.
	Goodput float64 `json:"goodput"`
	// NormPerf is Goodput normalized to Normal-mode max goodput.
	NormPerf float64 `json:"norm_perf"`
}

// Config returns the entry's server setting.
func (e Entry) Config() server.Config {
	return server.Config{Cores: e.Cores, Freq: e.Freq}
}

// Table is the full profiling table for one workload. A Table is
// read-only after Build/ReadJSON; all query methods are safe for
// concurrent use on such a table, which lets parallel sweep cells
// share one instance (see BuildCached).
type Table struct {
	Workload string  `json:"workload"`
	Levels   int     `json:"levels"`
	MaxRate  float64 `json:"max_rate"`
	Entries  []Entry `json:"entries"`

	byKey   map[key]int
	byLevel map[int][]Entry // entries per level, sorted by power
}

type key struct {
	level int
	cfg   server.Config
}

// Build profiles p exhaustively over every knob setting and `levels`
// intensity levels spaced evenly from MaxRate/levels to MaxRate, where
// MaxRate is the Int=12 saturation rate. It profiles through a
// workload.Kernel, so the per-config QoS bisection runs once per
// setting instead of once per (level, setting) cell; the resulting
// entries are bit-identical to profiling the raw Profile.
func Build(p workload.Profile, levels int) (*Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if levels < 1 {
		return nil, fmt.Errorf("profile: need at least one level, got %d", levels)
	}
	k := workload.NewKernel(p)
	maxRate := k.IntensityRate(server.MaxCores)
	base := k.MaxGoodput(server.Normal())
	t := &Table{Workload: p.Name, Levels: levels, MaxRate: maxRate}
	for lvl := 0; lvl < levels; lvl++ {
		rate := maxRate * float64(lvl+1) / float64(levels)
		for _, c := range server.Configs() {
			good := k.Goodput(c, rate)
			t.Entries = append(t.Entries, Entry{
				Level:       lvl,
				Cores:       c.Cores,
				Freq:        c.Freq,
				OfferedRate: rate,
				Power:       k.LoadPower(c, rate),
				Goodput:     good,
				NormPerf:    good / base,
			})
		}
	}
	t.index()
	return t, nil
}

// buildKey identifies one cached build: the full profile value plus
// the level count, so any knob difference produces a distinct table.
type buildKey struct {
	p      workload.Profile
	levels int
}

var (
	buildMu    sync.Mutex
	buildCache = map[buildKey]*Table{}
)

// BuildCached is a process-level, mutex-guarded memo over Build:
// identical (workload, levels) requests — e.g. the thousands of sweep
// cells that profile the same three workloads — share one immutable
// *Table instead of re-running the exhaustive profiling per cell. The
// returned table must be treated as read-only.
func BuildCached(p workload.Profile, levels int) (*Table, error) {
	k := buildKey{p: p, levels: levels}
	buildMu.Lock()
	defer buildMu.Unlock()
	if t, ok := buildCache[k]; ok {
		return t, nil
	}
	t, err := Build(p, levels)
	if err != nil {
		return nil, err
	}
	buildCache[k] = t
	return t, nil
}

func (t *Table) index() {
	//greensprint:allow(allocfree) lazy one-time index build on first lookup; every later epoch hits the built maps
	t.byKey = make(map[key]int, len(t.Entries))
	//greensprint:allow(allocfree) lazy one-time index build on first lookup; every later epoch hits the built maps
	t.byLevel = make(map[int][]Entry)
	for i, e := range t.Entries {
		t.byKey[key{e.Level, e.Config()}] = i
		//greensprint:allow(allocfree) per-level buckets fill once during the lazy index build
		t.byLevel[e.Level] = append(t.byLevel[e.Level], e)
	}
	//greensprint:allow(maprange) each bucket is sorted in place independently; visiting order is unobservable
	for _, es := range t.byLevel {
		//greensprint:allow(allocfree) one-time bucket sort during the lazy index build
		sort.Slice(es, func(i, j int) bool { return es[i].Power < es[j].Power })
	}
}

// LevelFor quantizes an offered rate to the nearest profiled level
// (level i covers rates around (i+1)·MaxRate/Levels). Rates at or
// above MaxRate clamp to the top level and rates at or below the first
// level's midpoint clamp to level 0; NaN also maps to level 0. The
// clamping happens in floating point *before* the int conversion: the
// previous int(rate/step+0.5) form fed out-of-range floats (huge
// rates, +Inf) straight into the conversion, whose result is
// implementation-defined in Go and wraps negative on amd64 — an
// overloaded station's +Inf rate would quantize to the *lowest*
// intensity level instead of the highest.
func (t *Table) LevelFor(rate float64) int {
	if t.Levels <= 0 || t.MaxRate <= 0 {
		return 0
	}
	step := t.MaxRate / float64(t.Levels)
	q := rate/step + 0.5
	switch {
	case math.IsNaN(q) || q < 1:
		return 0
	case q >= float64(t.Levels+1):
		return t.Levels - 1
	}
	return int(q) - 1
}

// Lookup returns the entry for (level, config) and whether it exists.
func (t *Table) Lookup(level int, c server.Config) (Entry, bool) {
	if t.byKey == nil {
		t.index()
	}
	i, ok := t.byKey[key{level, c}]
	if !ok {
		return Entry{}, false
	}
	return t.Entries[i], true
}

// LoadPower returns LoadPower(L,S) for a profiled cell, or false when
// the cell is not in the table.
func (t *Table) LoadPower(level int, c server.Config) (units.Watt, bool) {
	e, ok := t.Lookup(level, c)
	return e.Power, ok
}

// BestWithin returns the profiled setting with the highest goodput at
// `level` whose LoadPower fits within budget, among settings admitted
// by filter (nil admits all). Ties break toward lower power. The
// boolean is false when no admitted setting fits.
func (t *Table) BestWithin(level int, budget units.Watt, filter func(server.Config) bool) (Entry, bool) {
	var best Entry
	found := false
	for _, e := range t.Entries {
		if e.Level != level || e.Power > budget {
			continue
		}
		if filter != nil && !filter(e.Config()) {
			continue
		}
		if !found || e.Goodput > best.Goodput ||
			(e.Goodput == best.Goodput && e.Power < best.Power) {
			best, found = e, true
		}
	}
	return best, found
}

// LevelEntries returns the entries of one level sorted by ascending
// power. The slice is the table's cached copy — built once at index
// time instead of filtered and sorted on every call, since strategies
// consult it every scheduling epoch — so callers must not modify it.
func (t *Table) LevelEntries(level int) []Entry {
	if t.byLevel == nil {
		t.index()
	}
	return t.byLevel[level]
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserializes a table written by WriteJSON.
func ReadJSON(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	t.index()
	return &t, nil
}
