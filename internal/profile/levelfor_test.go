package profile

import (
	"math"
	"testing"

	"greensprint/internal/workload"
)

// TestLevelForBoundaries pins the quantization at and around every
// level edge. Level i covers rates in ((i+0.5)·step, (i+1.5)·step]
// around its center (i+1)·step, where step = MaxRate/Levels; the
// boundary rate exactly halfway between two centers rounds up.
func TestLevelForBoundaries(t *testing.T) {
	tab, err := Build(workload.SPECjbb(), DefaultLevels)
	if err != nil {
		t.Fatal(err)
	}
	step := tab.MaxRate / float64(tab.Levels)
	for lvl := 0; lvl < tab.Levels; lvl++ {
		center := float64(lvl+1) * step
		if got := tab.LevelFor(center); got != lvl {
			t.Errorf("LevelFor(center of L%d = %v) = %d", lvl, center, got)
		}
		// Just above the lower edge still quantizes to lvl (the edge
		// itself belongs to the level below for lvl > 0).
		if lvl > 0 {
			lower := (float64(lvl) + 0.5) * step
			if got := tab.LevelFor(lower * 1.0001); got != lvl {
				t.Errorf("LevelFor(just above L%d lower edge) = %d", lvl, got)
			}
		}
	}
	if got := tab.LevelFor(tab.MaxRate); got != tab.Levels-1 {
		t.Errorf("LevelFor(MaxRate) = %d, want top level %d", got, tab.Levels-1)
	}
}

// TestLevelForExtremes covers the inputs the old int(rate/step+0.5)
// form mishandled: values whose float-to-int conversion is
// implementation-defined in Go (wrapping negative on amd64), which
// quantized an overloaded station's huge or +Inf offered rate to the
// LOWEST intensity level. They must clamp to the top level; NaN and
// anything at or below the first midpoint must clamp to level 0.
func TestLevelForExtremes(t *testing.T) {
	tab, err := Build(workload.SPECjbb(), DefaultLevels)
	if err != nil {
		t.Fatal(err)
	}
	top := tab.Levels - 1
	for _, tc := range []struct {
		name string
		rate float64
		want int
	}{
		{"zero", 0, 0},
		{"negative", -1000, 0},
		{"-Inf", math.Inf(-1), 0},
		{"NaN", math.NaN(), 0},
		{"tiny", tab.MaxRate / 1e9, 0},
		{"2x MaxRate", 2 * tab.MaxRate, top},
		{"huge", 1e300, top},
		{"MaxFloat64", math.MaxFloat64, top},
		{"+Inf", math.Inf(1), top},
	} {
		if got := tab.LevelFor(tc.rate); got != tc.want {
			t.Errorf("LevelFor(%s = %v) = %d, want %d", tc.name, tc.rate, got, tc.want)
		}
	}
}
