package profile_test

import (
	"math"
	"testing"
	"time"

	"greensprint/internal/loadgen"
	"greensprint/internal/profile"
	"greensprint/internal/server"
	"greensprint/internal/workload"
)

// TestTableMatchesRequestLevelMeasurement cross-validates the analytic
// profiling table — the a-priori knowledge every strategy decides from
// — against the request-level load generator: for sampled (level,
// setting) cells the measured goodput must match the table within 10%.
func TestTableMatchesRequestLevelMeasurement(t *testing.T) {
	p := workload.SPECjbb()
	tab, err := profile.Build(p, profile.DefaultLevels)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := loadgen.New(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	cells := []struct {
		level int
		cfg   server.Config
	}{
		{2, server.Normal()},                     // light load, baseline setting
		{5, server.Config{Cores: 9, Freq: 1600}}, // mid load, mid setting
		{9, server.MaxSprint()},                  // saturating load, max sprint
		{9, server.Normal()},                     // overload on the baseline
	}
	for _, c := range cells {
		e, ok := tab.Lookup(c.level, c.cfg)
		if !ok {
			t.Fatalf("missing cell %d/%v", c.level, c.cfg)
		}
		ep, err := gen.Run(c.cfg, e.OfferedRate, 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		measured := ep.Goodput()
		if e.Goodput == 0 {
			if measured > 1 {
				t.Errorf("%d/%v: table 0 vs measured %v", c.level, c.cfg, measured)
			}
			continue
		}
		if rel := math.Abs(measured-e.Goodput) / e.Goodput; rel > 0.10 {
			t.Errorf("%d/%v: measured %v vs table %v (%.0f%% off)",
				c.level, c.cfg, measured, e.Goodput, rel*100)
		}
	}
}
