package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/obs"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// chaosSched hand-builds a resolved schedule for the RE-Batt rack
// (3 green servers, 3 battery units), bypassing Resolve so tests pin
// exact fault windows.
func chaosSched(faults ...chaos.Fault) *chaos.Schedule {
	return &chaos.Schedule{Seed: 1, Epochs: 50, Servers: 3, Units: 3, Faults: faults}
}

func newChaosController(t *testing.T, strat string, sched *chaos.Schedule, sink obs.Sink) *Controller {
	t.Helper()
	inj, err := chaos.NewInjector(sched)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: strat,
		Chaos:        inj,
		Sink:         sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// captureSink records every emitted event.
type captureSink struct{ events []obs.Event }

func (s *captureSink) Emit(ev obs.Event) error {
	s.events = append(s.events, ev)
	return nil
}

// failingSink fails every emission with a fixed sentinel while armed.
type failingSink struct {
	fail bool
	err  error
}

func (s *failingSink) Emit(obs.Event) error {
	if s.fail {
		return s.err
	}
	return nil
}

func mustStep(t *testing.T, c *Controller, tel Telemetry) Decision {
	t.Helper()
	d, err := c.Step(tel)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestChaosControllerCheckpointRoundTrip cuts a v2 checkpoint in the
// middle of each failure mode's active window, restores it into a
// fresh controller with a fresh injector, and verifies the two
// controllers emit bit-identical decisions and events from then on —
// through the recovery and beyond. This is the daemon's
// SIGINT-mid-outage resume property at the controller level.
func TestChaosControllerCheckpointRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		faults []chaos.Fault
	}{
		{"server-crash", []chaos.Fault{{Epoch: 2, Mode: chaos.ServerCrash, Target: 1, Recover: 8}}},
		{"pss-stuck", []chaos.Fault{{Epoch: 2, Mode: chaos.PSSStuck, Recover: 8}}},
		{"battery-degrade", []chaos.Fault{{Epoch: 2, Mode: chaos.BatteryDegrade, Target: 0, Factor: 0.7, Resist: 1.3}}},
		{"solar-dropout", []chaos.Fault{{Epoch: 2, Mode: chaos.SolarDropout, Recover: 8}}},
		{"breaker-trip", []chaos.Fault{{Epoch: 2, Mode: chaos.BreakerTrip, Recover: 8}}},
		// The cascade: a zone marker plus its expanded constituents,
		// exactly as Resolve emits them.
		{"zone-outage", []chaos.Fault{
			{Epoch: 2, Mode: chaos.ZoneOutage, Target: 0, Recover: 8},
			{Epoch: 2, Mode: chaos.ServerCrash, Target: 0, Recover: 8, Cascade: true},
			{Epoch: 2, Mode: chaos.ServerCrash, Target: 1, Recover: 8, Cascade: true},
			{Epoch: 2, Mode: chaos.SolarDropout, Recover: 8, Cascade: true},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched := chaosSched(tc.faults...)
			a := newChaosController(t, "Hybrid", sched, nil)
			for i := 0; i < 5; i++ { // fault strikes at 2, recovers at 8: epoch 5 is mid-fault
				mustStep(t, a, burstTelemetry(500))
			}

			// Mid-fault state must actually be degraded, or the round
			// trip proves nothing.
			st := a.Snapshot()
			switch tc.name {
			case "server-crash":
				if st.Alive != 2 {
					t.Fatalf("mid-fault alive = %d, want 2", st.Alive)
				}
			case "pss-stuck":
				if !st.PSSStuck {
					t.Fatal("mid-fault PSS not stuck")
				}
			case "breaker-trip":
				if !st.BreakerTripped {
					t.Fatal("mid-fault breaker not tripped")
				}
			case "battery-degrade":
				if h := a.selector.Bank().Health(); h >= 1 {
					t.Fatalf("mid-fault battery health = %v, want < 1", h)
				}
			case "zone-outage":
				if st.Alive != 1 {
					t.Fatalf("mid-cascade alive = %d, want 1", st.Alive)
				}
			}

			cp, err := a.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(cp)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeCheckpoint(raw)
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Version != CheckpointVersion || decoded.Chaos == nil {
				t.Fatalf("chaos checkpoint version %d, chaos %v", decoded.Version, decoded.Chaos)
			}

			b := newChaosController(t, "Hybrid", sched, nil)
			if err := b.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			sa, sb := a.Snapshot(), b.Snapshot()
			if sa.Alive != sb.Alive || sa.PSSStuck != sb.PSSStuck || sa.BreakerTripped != sb.BreakerTripped {
				t.Fatalf("restored chaos state %+v, want %+v", sb, sa)
			}
			if ha, hb := a.selector.Bank().Health(), b.selector.Bank().Health(); ha != hb {
				t.Fatalf("restored battery health %v, want %v", hb, ha)
			}

			// From here both controllers must march in lockstep through
			// the recovery at epoch 8 and the healthy epochs after it —
			// decisions and emitted events bit for bit.
			ca, cb := &captureSink{}, &captureSink{}
			a.SetSink(ca)
			b.SetSink(cb)
			for i := 0; i < 8; i++ {
				da := mustStep(t, a, burstTelemetry(400))
				db := mustStep(t, b, burstTelemetry(400))
				if da != db {
					t.Fatalf("post-restore step %d diverged:\noriginal %+v\nrestored %+v", i, da, db)
				}
			}
			ea, err := json.Marshal(ca.events)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := json.Marshal(cb.events)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ea, eb) {
				t.Errorf("post-restore event streams diverged:\noriginal %s\nrestored %s", ea, eb)
			}
		})
	}
}

// TestCheckpointV1Migration is the canned-blob test for the v1→v2
// bump: a checkpoint re-encoded in the exact v1 wire format (version
// stamped 1; no epoch_seconds, chaos or breaker fields) decodes
// through the migration shim, restores into a fault-free controller,
// and the continued run matches the uninterrupted original bit for
// bit.
func TestCheckpointV1Migration(t *testing.T) {
	a := newController(t, "Hybrid", cluster.REBatt())
	for i := 0; i < 4; i++ {
		mustStep(t, a, burstTelemetry(450))
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite to the v1 wire format.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage(`1`)
	delete(m, "epoch_seconds")
	delete(m, "chaos")
	delete(m, "breaker")
	v1, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}

	got, err := DecodeCheckpoint(v1)
	if err != nil {
		t.Fatalf("decode v1 checkpoint: %v", err)
	}
	if got.Version != CheckpointVersion {
		t.Errorf("migrated version = %d, want %d", got.Version, CheckpointVersion)
	}
	if got.EpochSeconds != 0 {
		t.Errorf("migrated epoch fingerprint = %v, want 0 (v1 predates the field)", got.EpochSeconds)
	}
	if got.Chaos != nil || got.Breaker != nil {
		t.Errorf("migrated v1 checkpoint carries chaos state: %+v %+v", got.Chaos, got.Breaker)
	}

	b := newController(t, "Hybrid", cluster.REBatt())
	if err := b.Restore(got); err != nil {
		t.Fatalf("restore migrated v1 checkpoint: %v", err)
	}
	for i := 0; i < 3; i++ {
		da := mustStep(t, a, burstTelemetry(350))
		db := mustStep(t, b, burstTelemetry(350))
		if da != db {
			t.Fatalf("post-migration step %d diverged:\noriginal %+v\nrestored %+v", i, da, db)
		}
	}
}

// TestRestoreRejectsEpochAndChaosMismatch covers the two v2
// fingerprints: a checkpoint cut at one epoch length must not restore
// into a controller ticking another, and chaos presence must agree
// between checkpoint and controller in both directions.
func TestRestoreRejectsEpochAndChaosMismatch(t *testing.T) {
	a := newController(t, "Hybrid", cluster.REBatt())
	mustStep(t, a, burstTelemetry(400))
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	bad := *cp
	bad.EpochSeconds = cp.EpochSeconds * 2
	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(&bad); err == nil {
		t.Error("epoch-length mismatch accepted")
	}

	// Fault-free checkpoint into a chaos controller.
	cc := newChaosController(t, "Hybrid", chaosSched(), nil)
	if err := cc.Restore(cp); err == nil {
		t.Error("fault-free checkpoint accepted by chaos controller")
	}

	// Chaos checkpoint into a fault-free controller.
	mustStep(t, cc, burstTelemetry(400))
	ccp, err := cc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ccp.Chaos == nil {
		t.Fatal("chaos controller checkpoint carries no injector state")
	}
	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(ccp); err == nil {
		t.Error("chaos checkpoint accepted by fault-free controller")
	}
}

// TestChaosEmptyScheduleBitIdentical is the fault-free bit-identity
// guard: a controller carrying a chaos injector whose timeline holds
// no faults must decide and emit exactly as a controller with no
// injector at all.
func TestChaosEmptyScheduleBitIdentical(t *testing.T) {
	ca, cb := &captureSink{}, &captureSink{}
	plain, err := New(Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Hybrid",
		Sink:         ca,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaotic := newChaosController(t, "Hybrid", chaosSched(), cb)
	for i := 0; i < 10; i++ {
		tel := burstTelemetry(units.Watt(600 - 25*i))
		da := mustStep(t, plain, tel)
		db := mustStep(t, chaotic, tel)
		if da != db {
			t.Fatalf("epoch %d diverged: plain %+v chaos %+v", i, da, db)
		}
	}
	ea, err := json.Marshal(ca.events)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := json.Marshal(cb.events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Errorf("event streams diverged:\nplain %s\nchaos %s", ea, eb)
	}
}

// TestChaosTelemetryDegradedCoherently pins the telemetry-degradation
// fix: with a third of the rack down, the offered rate, the goodput
// AND the per-server draw all shrink by the alive fraction (not just
// goodput, which skewed the learner's reward ratios), and a solar
// dropout zeroes the observed green supply.
func TestChaosTelemetryDegradedCoherently(t *testing.T) {
	sink := &captureSink{}
	sched := chaosSched(chaos.Fault{Epoch: 1, Mode: chaos.ServerCrash, Target: 0, Recover: 40})
	c := newChaosController(t, "Pacing", sched, sink)
	tel := burstTelemetry(600)
	for i := 0; i < 4; i++ {
		mustStep(t, c, tel)
	}
	var healthy, degraded *obs.Event
	for i := range sink.events {
		ev := &sink.events[i]
		if ev.Chaos != "" {
			continue
		}
		switch ev.Epoch {
		case 0:
			healthy = ev
		case 2:
			degraded = ev
		}
	}
	if healthy == nil || degraded == nil {
		t.Fatalf("missing epoch records in %+v", sink.events)
	}
	if healthy.OfferedRate != tel.OfferedRate || healthy.Goodput != tel.Goodput {
		t.Errorf("healthy epoch scaled telemetry: %+v", healthy)
	}
	scale := 2.0 / 3.0
	if degraded.Alive != 2 {
		t.Errorf("degraded epoch alive = %d, want 2", degraded.Alive)
	}
	if got, want := degraded.OfferedRate, tel.OfferedRate*scale; got != want {
		t.Errorf("degraded offered rate = %v, want %v", got, want)
	}
	if got, want := degraded.Goodput, tel.Goodput*scale; got != want {
		t.Errorf("degraded goodput = %v, want %v", got, want)
	}
	if got, want := degraded.ServerPowerW, float64(tel.ServerPower)*scale; got != want {
		t.Errorf("degraded server power = %v, want %v", got, want)
	}
	// The degraded ratios the learner sees stay coherent: goodput per
	// offered request is untouched by the fault.
	if hr, dr := healthy.Goodput/healthy.OfferedRate, degraded.Goodput/degraded.OfferedRate; hr != dr {
		t.Errorf("goodput/offered ratio skewed by fault: healthy %v degraded %v", hr, dr)
	}

	// Solar dropout zeroes the observed green supply.
	sink2 := &captureSink{}
	c2 := newChaosController(t, "Pacing", chaosSched(chaos.Fault{Epoch: 1, Mode: chaos.SolarDropout, Recover: 40}), sink2)
	for i := 0; i < 3; i++ {
		mustStep(t, c2, tel)
	}
	for _, ev := range sink2.events {
		if ev.Chaos != "" || ev.Epoch < 1 {
			continue
		}
		if ev.GreenSupplyW != 0 {
			t.Errorf("dropout epoch %d sees %v W green supply, want 0", ev.Epoch, ev.GreenSupplyW)
		}
	}
}

// TestHybridLearnsDegradedStatesSeparately drives a Hybrid through
// crash epochs and checks the Q-table grew rows in a Degraded > 0
// state slice: fault-mode experience must not overwrite the healthy
// estimates.
func TestHybridLearnsDegradedStatesSeparately(t *testing.T) {
	sched := chaosSched(chaos.Fault{Epoch: 1, Mode: chaos.ServerCrash, Target: 0, Recover: 40})
	c := newChaosController(t, "Hybrid", sched, nil)
	for i := 0; i < 8; i++ {
		mustStep(t, c, burstTelemetry(500))
	}
	h, ok := c.HybridStrategy()
	if !ok {
		t.Fatal("no Hybrid strategy")
	}
	var buf bytes.Buffer
	if err := h.SaveQ(&buf); err != nil {
		t.Fatal(err)
	}
	var table struct {
		States []struct {
			Degraded int `json:"degraded"`
		} `json:"states"`
	}
	if err := json.Unmarshal(buf.Bytes(), &table); err != nil {
		t.Fatal(err)
	}
	deg, healthy := 0, 0
	for _, s := range table.States {
		if s.Degraded > 0 {
			deg++
		} else {
			healthy++
		}
	}
	if deg == 0 {
		t.Errorf("no Degraded > 0 states learned over %d rows — fault epochs fed the healthy slice", len(table.States))
	}
	if healthy == 0 {
		t.Error("no healthy states present")
	}
}

// TestChaosStuckSelectorForcesFallback welds the PSS to the utility
// feed: even under abundant green the controller must ride the grid
// at Normal mode until the switch is freed.
func TestChaosStuckSelectorForcesFallback(t *testing.T) {
	sched := chaosSched(chaos.Fault{Epoch: 1, Mode: chaos.PSSStuck, Recover: 6})
	c := newChaosController(t, "Hybrid", sched, nil)
	sprintsAfter := 0
	for i := 0; i < 12; i++ {
		d := mustStep(t, c, burstTelemetry(635))
		switch {
		case i >= 1 && i < 6:
			if d.Case != pss.CaseGridFallback {
				t.Errorf("stuck epoch %d: case %v, want grid-fallback", i, d.Case)
			}
			if d.Config.IsSprinting() {
				t.Errorf("stuck epoch %d sprints: %v", i, d.Config)
			}
		case i >= 6:
			if d.Config.IsSprinting() {
				sprintsAfter++
			}
		}
	}
	if sprintsAfter == 0 {
		t.Error("controller never resumed sprinting after the switch was freed")
	}
}

// TestChaosFullOutageKeepsNumbering crashes the whole rack: outage
// epochs decide Normal-on-grid with zero demand, the batteries keep
// banking whatever green remains, and the epoch numbering stays
// monotone and gap-free across the outage — the property the daemon's
// resume smoke asserts end to end.
func TestChaosFullOutageKeepsNumbering(t *testing.T) {
	sink := &captureSink{}
	sched := chaosSched(
		chaos.Fault{Epoch: 2, Mode: chaos.ServerCrash, Target: 0, Recover: 5},
		chaos.Fault{Epoch: 2, Mode: chaos.ServerCrash, Target: 1, Recover: 5},
		chaos.Fault{Epoch: 2, Mode: chaos.ServerCrash, Target: 2, Recover: 5},
	)
	c := newChaosController(t, "Hybrid", sched, sink)
	for i := 0; i < 8; i++ {
		d := mustStep(t, c, burstTelemetry(300))
		if d.Epoch != i {
			t.Fatalf("decision epoch = %d, want %d", d.Epoch, i)
		}
		if i >= 2 && i < 5 {
			if d.Config != server.Normal() || d.Case != pss.CaseGridFallback || d.Demand != 0 {
				t.Errorf("outage epoch %d: %+v", i, d)
			}
		}
	}
	next := 0
	for _, ev := range sink.events {
		if ev.Chaos != "" {
			continue
		}
		if ev.Epoch != next {
			t.Fatalf("event epoch %d, want %d — numbering gap across the outage", ev.Epoch, next)
		}
		next++
	}
	if next != 8 {
		t.Errorf("epoch records = %d, want 8", next)
	}
}

// TestStepSinkErrorStillApplies pins the SinkError contract: a failed
// event emission surfaces as *SinkError with the applied decision —
// the epoch counted, the knobs actuated — so callers persist the step
// instead of dropping it. A chaos-event emission failure follows the
// same contract.
func TestStepSinkErrorStillApplies(t *testing.T) {
	sentinel := errors.New("event disk full")
	fs := &failingSink{err: sentinel}
	c, err := New(Options{
		Workload:     workload.SPECjbb(),
		Green:        cluster.REBatt(),
		StrategyName: "Hybrid",
		Sink:         fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustStep(t, c, burstTelemetry(500))

	fs.fail = true
	d, err := c.Step(burstTelemetry(500))
	var se *SinkError
	if !errors.As(err, &se) {
		t.Fatalf("step with failing sink = %v, want *SinkError", err)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("SinkError does not unwrap to the sink's error: %v", err)
	}
	if !d.Config.Valid() || d.Epoch != 1 {
		t.Errorf("decision alongside SinkError = %+v, want applied epoch-1 decision", d)
	}
	if got := c.Snapshot().Epoch; got != 2 {
		t.Errorf("epoch count = %d, want 2 — the step must still commit", got)
	}

	// Chaos-event emission failures follow the same contract.
	fs2 := &failingSink{fail: true, err: sentinel}
	cc := newChaosController(t, "Hybrid", chaosSched(chaos.Fault{Epoch: 0, Mode: chaos.ServerCrash, Target: 0, Recover: 3}), fs2)
	d2, err := cc.Step(burstTelemetry(500))
	if !errors.As(err, &se) {
		t.Fatalf("chaos step with failing sink = %v, want *SinkError", err)
	}
	if !d2.Config.Valid() || cc.Snapshot().Epoch != 1 {
		t.Errorf("chaos decision alongside SinkError = %+v (count %d)", d2, cc.Snapshot().Epoch)
	}
}
