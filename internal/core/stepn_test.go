package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// stepNTelemetry deterministically synthesizes one epoch's telemetry
// from the epoch index and the previously applied decision — the same
// shape the daemon's catch-up callback produces, including the
// dependence on the prior config (rate dips after a sprint, mimicking
// load shed by a throttled tier).
func stepNTelemetry(epoch int, last Decision) Telemetry {
	p := workload.SPECjbb()
	rate := p.IntensityRate(12)
	if last.SprintFraction > 0 {
		rate *= 0.9
	}
	return Telemetry{
		GreenPower:  units.Watt(450 - 10*float64(epoch%20)),
		OfferedRate: rate,
		Goodput:     rate * 0.95,
		Latency:     0.45,
		ServerPower: 100,
	}
}

// controllerFingerprint is the serialized full state used for batching
// parity: checkpoint bytes plus the decision history.
func controllerFingerprint(t *testing.T, c *Controller) []byte {
	t.Helper()
	cp, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	h, err := json.Marshal(c.History())
	if err != nil {
		t.Fatal(err)
	}
	return append(b, h...)
}

// TestControllerStepNMatchesStep drives twin controllers — one epoch
// at a time vs. one StepN batch — through the same synthesized
// telemetry and demands identical decisions, checkpoints, histories
// and emitted events. Run plain and with a mid-batch chaos
// fault/recovery cycle so the injector timeline advances identically
// inside a batch.
func TestControllerStepNMatchesStep(t *testing.T) {
	const n = 12
	cases := []struct {
		name  string
		sched *chaos.Schedule
	}{
		{"plain", nil},
		{"mid-fault", chaosSched(
			chaos.Fault{Epoch: 3, Mode: chaos.ServerCrash, Target: 1, Recover: 7},
			chaos.Fault{Epoch: 5, Mode: chaos.SolarDropout, Recover: 9},
		)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(sink *captureSink) *Controller {
				if tc.sched == nil {
					c := newController(t, "Hybrid", cluster.REBatt())
					c.SetSink(sink)
					return c
				}
				return newChaosController(t, "Hybrid", tc.sched, sink)
			}
			seqSink, batSink := &captureSink{}, &captureSink{}
			seq, bat := mk(seqSink), mk(batSink)

			var seqDs []Decision
			for i := 0; i < n; i++ {
				tel := stepNTelemetry(i, seq.Snapshot().Last)
				d, err := seq.Step(tel)
				if err != nil {
					t.Fatal(err)
				}
				seqDs = append(seqDs, d)
			}
			batDs, err := bat.StepN(n, func(epoch int, last Decision) (Telemetry, bool) {
				return stepNTelemetry(epoch, last), true
			})
			if err != nil {
				t.Fatal(err)
			}

			if len(batDs) != len(seqDs) {
				t.Fatalf("StepN applied %d decisions, want %d", len(batDs), len(seqDs))
			}
			for i := range seqDs {
				if batDs[i] != seqDs[i] {
					t.Errorf("decision %d differs:\nseq   %+v\nbatch %+v", i, seqDs[i], batDs[i])
				}
			}
			if a, b := controllerFingerprint(t, seq), controllerFingerprint(t, bat); !bytes.Equal(a, b) {
				t.Error("controller state diverged between Step and StepN")
			}
			if len(batSink.events) != len(seqSink.events) {
				t.Fatalf("StepN emitted %d events, want %d", len(batSink.events), len(seqSink.events))
			}
			for i := range seqSink.events {
				a, err := json.Marshal(seqSink.events[i])
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(batSink.events[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("event %d differs:\nseq   %s\nbatch %s", i, a, b)
				}
			}
		})
	}
}

// TestControllerStepNStopsOnCallback pins the early-stop contract:
// ok == false ends the batch with the decisions already applied.
func TestControllerStepNStopsOnCallback(t *testing.T) {
	c := newController(t, "Pacing", cluster.REBatt())
	ds, err := c.StepN(10, func(epoch int, last Decision) (Telemetry, bool) {
		if epoch >= 4 {
			return Telemetry{}, false
		}
		return stepNTelemetry(epoch, last), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("decisions = %d, want 4", len(ds))
	}
	if got := c.Snapshot().Epoch; got != 4 {
		t.Fatalf("controller epoch = %d, want 4", got)
	}
}

// TestControllerStepNSinkError pins the log-and-continue contract: a
// sink failure mid-batch does not stop the batch; the last *SinkError
// surfaces after every epoch has run.
func TestControllerStepNSinkError(t *testing.T) {
	sink := &failingSink{err: fmt.Errorf("sink full")}
	c := newController(t, "Pacing", cluster.REBatt())
	c.SetSink(sink)
	ds, err := c.StepN(6, func(epoch int, last Decision) (Telemetry, bool) {
		sink.fail = epoch == 2 || epoch == 3
		return stepNTelemetry(epoch, last), true
	})
	if len(ds) != 6 {
		t.Fatalf("decisions = %d, want 6 (sink errors must not stop the batch)", len(ds))
	}
	var se *SinkError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SinkError", err)
	}
	if got := c.Snapshot().Epoch; got != 6 {
		t.Fatalf("controller epoch = %d, want 6", got)
	}
}
