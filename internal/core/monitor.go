package core

import (
	"sync"
	"time"

	"greensprint/internal/metrics"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// Monitor is Figure 3's Monitor component: it accumulates raw
// measurements (request latencies, power meter readings) during a
// scheduling epoch and condenses them into the Telemetry record that
// drives Controller.Step. It is safe for concurrent use by request
// handlers and meter pollers.
type Monitor struct {
	profile workload.Profile

	mu     sync.Mutex
	hist   *metrics.Histogram
	window metrics.Window
	green  []float64
	srvPow []float64
}

// NewMonitor creates a Monitor for one workload.
func NewMonitor(p workload.Profile) *Monitor {
	return &Monitor{
		profile: p,
		hist:    metrics.DefaultLatencyHistogram(),
	}
}

// RecordLatency records one completed request's latency and its QoS
// compliance.
func (m *Monitor) RecordLatency(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hist.Observe(seconds)
	m.window.Completed++
	if seconds <= m.profile.Deadline {
		m.window.Compliant++
	}
}

// RecordGreenPower records a renewable-production meter sample (rack
// level).
func (m *Monitor) RecordGreenPower(w units.Watt) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.green = append(m.green, float64(w))
}

// RecordServerPower records a per-server power meter sample.
func (m *Monitor) RecordServerPower(w units.Watt) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.srvPow = append(m.srvPow, float64(w))
}

// Close finalizes the epoch of the given length, returning its
// Telemetry and resetting the Monitor for the next epoch.
func (m *Monitor) Close(elapsed time.Duration) Telemetry {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.window.Elapsed = elapsed
	t := Telemetry{
		GreenPower:  units.Watt(mean(m.green)),
		ServerPower: units.Watt(mean(m.srvPow)),
		OfferedRate: m.window.Throughput(),
		Goodput:     m.window.Goodput(),
		Latency:     m.hist.Quantile(m.profile.Quantile),
	}
	m.hist.Reset()
	m.window = metrics.Window{}
	m.green = m.green[:0]
	m.srvPow = m.srvPow[:0]
	return t
}

func mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}
