package core

import (
	"encoding/json"
	"fmt"

	"greensprint/internal/pmk"
	"greensprint/internal/predictor"
	"greensprint/internal/pss"
)

// CheckpointVersion is the format version written into controller
// checkpoints; Restore rejects any other version.
const CheckpointVersion = 1

// Checkpoint is the serializable state of a Controller between two
// epochs: every stateful layer (battery bank, PSS accounting,
// predictors, knob fleet, strategy) plus the decision log. A daemon
// that persists one on shutdown and restores it on startup resumes its
// control loop — including a Hybrid strategy's learned Q-table — as if
// it had never stopped.
type Checkpoint struct {
	Version int `json:"version"`
	// Workload, Strategy and Green fingerprint the configuration the
	// checkpoint was cut from; Restore rejects a mismatch.
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	Green    string `json:"green_config"`

	Count   int        `json:"epoch_count"`
	Last    Decision   `json:"last_decision"`
	History []Decision `json:"history"`

	Selector pss.SelectorSnapshot   `json:"selector"`
	Fleet    pmk.FleetSnapshot      `json:"fleet"`
	LoadPred predictor.EWMASnapshot `json:"load_predictor"`
	// StrategyState is the strategy's opaque state (nil for stateless
	// strategies; the Hybrid's persisted Q-table pins the knob space).
	StrategyState json.RawMessage `json:"strategy_state,omitempty"`
}

// Checkpoint captures the controller's state at the current epoch
// boundary. The controller keeps running.
func (c *Controller) Checkpoint() (*Checkpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, err := c.strat.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint strategy: %w", err)
	}
	return &Checkpoint{
		Version:       CheckpointVersion,
		Workload:      c.opts.Workload.Name,
		Strategy:      c.strat.Name(),
		Green:         c.opts.Green.Name,
		Count:         c.count,
		Last:          c.last,
		History:       append([]Decision(nil), c.history...),
		Selector:      c.selector.Snapshot(),
		Fleet:         c.fleet.Snapshot(),
		LoadPred:      c.loadPred.Snapshot(),
		StrategyState: raw,
	}, nil
}

// Restore replaces the controller's state with a checkpoint cut from a
// controller with the same workload, strategy and green configuration.
// Component snapshots must fit the controller's layout (bank size,
// fleet size) and a strategy snapshot must match the strategy's knob
// space, so a stale or foreign checkpoint fails loudly.
func (c *Controller) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("core: restore: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("core: restore: checkpoint version %d, controller supports %d", cp.Version, CheckpointVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp.Workload != c.opts.Workload.Name {
		return fmt.Errorf("core: restore: checkpoint workload %q, controller runs %q", cp.Workload, c.opts.Workload.Name)
	}
	if cp.Strategy != c.strat.Name() {
		return fmt.Errorf("core: restore: checkpoint strategy %q, controller runs %q", cp.Strategy, c.strat.Name())
	}
	if cp.Green != c.opts.Green.Name {
		return fmt.Errorf("core: restore: checkpoint green config %q, controller runs %q", cp.Green, c.opts.Green.Name)
	}
	if cp.Count < 0 {
		return fmt.Errorf("core: restore: negative epoch count %d", cp.Count)
	}
	if err := c.selector.Restore(cp.Selector); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := c.fleet.Restore(cp.Fleet); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := c.loadPred.Restore(cp.LoadPred); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := c.strat.RestoreState(cp.StrategyState); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	c.count = cp.Count
	c.last = cp.Last
	c.history = append([]Decision(nil), cp.History...)
	if len(c.history) > HistoryLimit {
		c.history = c.history[len(c.history)-HistoryLimit:]
	}
	return nil
}
