package core

import (
	"encoding/json"
	"fmt"

	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/pmk"
	"greensprint/internal/predictor"
	"greensprint/internal/pss"
)

// CheckpointVersion is the format version written into controller
// checkpoints; Restore rejects any other version. Version 2 added the
// chaos injector's replay state, the forced-breaker thermal state and
// the epoch-length fingerprint. DecodeCheckpoint transparently
// migrates version-1 files (see migrateV1).
const CheckpointVersion = 2

// Checkpoint is the serializable state of a Controller between two
// epochs: every stateful layer (battery bank, PSS accounting,
// predictors, knob fleet, strategy) plus the decision log. A daemon
// that persists one on shutdown and restores it on startup resumes its
// control loop — including a Hybrid strategy's learned Q-table — as if
// it had never stopped.
type Checkpoint struct {
	Version int `json:"version"`
	// Workload, Strategy and Green fingerprint the configuration the
	// checkpoint was cut from; Restore rejects a mismatch.
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	Green    string `json:"green_config"`
	// EpochSeconds fingerprints the scheduling-epoch length (v2+). A
	// chaos timeline is resolved per epoch index, so resuming with a
	// different epoch would silently stretch or compress the fault
	// schedule; Restore rejects a mismatch. Zero (a migrated v1
	// checkpoint) skips the check.
	EpochSeconds float64 `json:"epoch_seconds,omitempty"`

	Count   int        `json:"epoch_count"`
	Last    Decision   `json:"last_decision"`
	History []Decision `json:"history"`

	Selector pss.SelectorSnapshot   `json:"selector"`
	Fleet    pmk.FleetSnapshot      `json:"fleet"`
	LoadPred predictor.EWMASnapshot `json:"load_predictor"`
	// StrategyState is the strategy's opaque state (nil for stateless
	// strategies; the Hybrid's persisted Q-table pins the knob space).
	StrategyState json.RawMessage `json:"strategy_state,omitempty"`
	// Chaos is the fault injector's replay state (v2+); present
	// exactly when the controller runs a chaos schedule. Restore
	// rejects a checkpoint whose chaos-presence disagrees with the
	// controller's. Breaker rides along: the chaos-only PDU breaker's
	// thermal state, so a forced-open breaker resumes tripped.
	Chaos   *chaos.InjectorSnapshot  `json:"chaos,omitempty"`
	Breaker *cluster.BreakerSnapshot `json:"breaker,omitempty"`
}

// Checkpoint captures the controller's state at the current epoch
// boundary. The controller keeps running.
func (c *Controller) Checkpoint() (*Checkpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, err := c.strat.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint strategy: %w", err)
	}
	cp := &Checkpoint{
		Version:       CheckpointVersion,
		Workload:      c.opts.Workload.Name,
		Strategy:      c.strat.Name(),
		Green:         c.opts.Green.Name,
		EpochSeconds:  c.epoch.Seconds(),
		Count:         c.count,
		Last:          c.last,
		History:       append([]Decision(nil), c.history...),
		Selector:      c.selector.Snapshot(),
		Fleet:         c.fleet.Snapshot(),
		LoadPred:      c.loadPred.Snapshot(),
		StrategyState: raw,
	}
	if c.injector != nil {
		s := c.injector.Snapshot()
		cp.Chaos = &s
		if c.breaker != nil {
			bs := c.breaker.Snapshot()
			cp.Breaker = &bs
		}
	}
	return cp, nil
}

// Restore replaces the controller's state with a checkpoint cut from a
// controller with the same workload, strategy, green configuration and
// epoch length. Component snapshots must fit the controller's layout
// (bank size, fleet size, chaos schedule) and a strategy snapshot must
// match the strategy's knob space, so a stale or foreign checkpoint
// fails loudly. After a chaos restore the derived state (live census,
// stuck switch) is recomputed from the injector's ref-counts, exactly
// as sim.Engine.Restore does.
func (c *Controller) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("core: restore: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("core: restore: checkpoint version %d, controller supports %d", cp.Version, CheckpointVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp.Workload != c.opts.Workload.Name {
		return fmt.Errorf("core: restore: checkpoint workload %q, controller runs %q", cp.Workload, c.opts.Workload.Name)
	}
	if cp.Strategy != c.strat.Name() {
		return fmt.Errorf("core: restore: checkpoint strategy %q, controller runs %q", cp.Strategy, c.strat.Name())
	}
	if cp.Green != c.opts.Green.Name {
		return fmt.Errorf("core: restore: checkpoint green config %q, controller runs %q", cp.Green, c.opts.Green.Name)
	}
	if cp.EpochSeconds != 0 && cp.EpochSeconds != c.epoch.Seconds() {
		return fmt.Errorf("core: restore: checkpoint epoch %vs, controller epoch %vs", cp.EpochSeconds, c.epoch.Seconds())
	}
	if cp.Count < 0 {
		return fmt.Errorf("core: restore: negative epoch count %d", cp.Count)
	}
	if (cp.Chaos == nil) != (c.injector == nil) {
		return fmt.Errorf("core: restore: checkpoint and controller disagree on chaos schedule")
	}
	if err := c.selector.Restore(cp.Selector); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := c.fleet.Restore(cp.Fleet); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := c.loadPred.Restore(cp.LoadPred); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := c.strat.RestoreState(cp.StrategyState); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if c.injector != nil {
		if err := c.injector.Restore(*cp.Chaos); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		if cp.Breaker != nil && c.breaker != nil {
			if err := c.breaker.Restore(*cp.Breaker); err != nil {
				return fmt.Errorf("core: restore: %w", err)
			}
		}
		c.alive = c.injector.AliveServers()
		c.selector.SetStuck(c.injector.Stuck())
	}
	c.count = cp.Count
	c.last = cp.Last
	c.history = append([]Decision(nil), cp.History...)
	if len(c.history) > HistoryLimit {
		c.history = c.history[len(c.history)-HistoryLimit:]
	}
	return nil
}

// DecodeCheckpoint parses a JSON checkpoint and checks its version.
// Version-1 checkpoints are migrated in place (see migrateV1) so files
// cut before the chaos fields still restore cleanly; any other version
// mismatch fails loudly.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if cp.Version == 1 {
		migrateV1(&cp)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: decode checkpoint: version %d, supported %d", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// migrateV1 lifts a version-1 checkpoint to version 2. The v1 layout
// is a strict subset of v2: it predates chaos, so the injector and
// breaker state are absent (a fault-free run, which Restore accepts
// for controllers without a chaos schedule) and the epoch fingerprint
// is zero, which Restore treats as "unknown, skip the check". The next
// Checkpoint/save cycle persists the file as full v2.
func migrateV1(cp *Checkpoint) {
	cp.Version = 2
}
