package core

import (
	"encoding/json"
	"strings"
	"testing"

	"greensprint/internal/cluster"
)

// TestControllerCheckpointRoundTrip drives a controller through a few
// epochs, serializes its checkpoint through JSON, restores it into a
// fresh controller, and checks the two controllers decide identically
// from then on — the daemon's restart-without-amnesia property.
func TestControllerCheckpointRoundTrip(t *testing.T) {
	a := newController(t, "Hybrid", cluster.REBatt())
	for i := 0; i < 5; i++ {
		if _, err := a.Step(burstTelemetry(400)); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var cp2 Checkpoint
	if err := json.Unmarshal(raw, &cp2); err != nil {
		t.Fatal(err)
	}

	b := newController(t, "Hybrid", cluster.REBatt())
	if err := b.Restore(&cp2); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Snapshot().Epoch, a.Snapshot().Epoch; got != want {
		t.Fatalf("restored epoch count = %d, want %d", got, want)
	}
	if got, want := len(b.History()), len(a.History()); got != want {
		t.Fatalf("restored history = %d decisions, want %d", got, want)
	}
	for i := 0; i < 3; i++ {
		da, err := a.Step(burstTelemetry(300))
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Step(burstTelemetry(300))
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Errorf("post-restore epoch %d diverged:\noriginal %+v\nrestored %+v", i, da, db)
		}
	}
}

// TestControllerRestoreRejectsMismatch verifies the checkpoint's
// configuration fingerprint: a checkpoint only restores into a
// controller running the same workload, strategy and green config, at
// the same format version.
func TestControllerRestoreRejectsMismatch(t *testing.T) {
	src := newController(t, "Hybrid", cluster.REBatt())
	if _, err := src.Step(burstTelemetry(400)); err != nil {
		t.Fatal(err)
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(nil); err == nil {
		t.Error("nil checkpoint accepted")
	}

	bad := *cp
	bad.Version = 99
	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(&bad); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch = %v, want version error", err)
	}

	if err := newController(t, "Greedy", cluster.REBatt()).Restore(cp); err == nil ||
		!strings.Contains(err.Error(), "strategy") {
		t.Errorf("strategy mismatch = %v, want strategy error", err)
	}

	if err := newController(t, "Hybrid", cluster.RESBatt()).Restore(cp); err == nil ||
		!strings.Contains(err.Error(), "green config") {
		t.Errorf("green-config mismatch = %v, want green-config error", err)
	}

	bad = *cp
	bad.Workload = "Web-Search"
	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(&bad); err == nil ||
		!strings.Contains(err.Error(), "workload") {
		t.Errorf("workload mismatch = %v, want workload error", err)
	}
}
