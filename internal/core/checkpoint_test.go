package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"greensprint/internal/cluster"
)

// TestControllerCheckpointRoundTrip drives a controller through a few
// epochs, serializes its checkpoint through JSON, restores it into a
// fresh controller, and checks the two controllers decide identically
// from then on — the daemon's restart-without-amnesia property.
func TestControllerCheckpointRoundTrip(t *testing.T) {
	a := newController(t, "Hybrid", cluster.REBatt())
	for i := 0; i < 5; i++ {
		if _, err := a.Step(burstTelemetry(400)); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var cp2 Checkpoint
	if err := json.Unmarshal(raw, &cp2); err != nil {
		t.Fatal(err)
	}

	b := newController(t, "Hybrid", cluster.REBatt())
	if err := b.Restore(&cp2); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Snapshot().Epoch, a.Snapshot().Epoch; got != want {
		t.Fatalf("restored epoch count = %d, want %d", got, want)
	}
	if got, want := len(b.History()), len(a.History()); got != want {
		t.Fatalf("restored history = %d decisions, want %d", got, want)
	}
	for i := 0; i < 3; i++ {
		da, err := a.Step(burstTelemetry(300))
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Step(burstTelemetry(300))
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Errorf("post-restore epoch %d diverged:\noriginal %+v\nrestored %+v", i, da, db)
		}
	}
}

// asV1ControllerBlob rewrites an encoded controller checkpoint into
// the exact wire format a version-1 binary would have written: version
// stamped 1 and every v2 addition stripped — the epoch-length
// fingerprint, the injector state and the breaker state.
func asV1ControllerBlob(t *testing.T, b []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage(`1`)
	for _, field := range []string{"epoch_seconds", "chaos", "breaker"} {
		delete(m, field)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestControllerCheckpointMigrationChain is the controller counterpart
// of the sim chain test: one canned v1 blob walks the full shim chain
// (a single hop today, v1→v2) in one decode, the migrated checkpoint
// restores into a fresh controller, the restored controller's own
// re-cut checkpoint encodes byte-for-byte identical to the original's
// — the migration recovered the full state, current version and epoch
// fingerprint included — and both controllers decide identically from
// then on.
func TestControllerCheckpointMigrationChain(t *testing.T) {
	a := newController(t, "Hybrid", cluster.REBatt())
	for i := 0; i < 5; i++ {
		if _, err := a.Step(burstTelemetry(400)); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}

	got, err := DecodeCheckpoint(asV1ControllerBlob(t, raw))
	if err != nil {
		t.Fatalf("decode v1 checkpoint through the chain: %v", err)
	}
	if got.Version != CheckpointVersion {
		t.Errorf("migrated version = %d, want %d", got.Version, CheckpointVersion)
	}
	if got.EpochSeconds != 0 {
		t.Errorf("migrated epoch fingerprint = %v, want 0 (v1 predates the field)", got.EpochSeconds)
	}
	if got.Chaos != nil || got.Breaker != nil {
		t.Errorf("migrated v1 checkpoint carries chaos state: %+v %+v", got.Chaos, got.Breaker)
	}

	b := newController(t, "Hybrid", cluster.REBatt())
	if err := b.Restore(got); err != nil {
		t.Fatalf("restore migrated v1 checkpoint: %v", err)
	}

	// Re-cut checkpoints from both controllers: each stamps the current
	// version and its own epoch fingerprint, so the encodings must match
	// exactly despite the restored one arriving via the v1 format.
	acp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bcp, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ab, err := json.Marshal(acp)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(bcp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Errorf("re-cut checkpoint differs from the original's:\noriginal %s\nrestored %s", ab, bb)
	}

	for i := 0; i < 4; i++ {
		da, err := a.Step(burstTelemetry(350))
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Step(burstTelemetry(350))
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Errorf("post-migration epoch %d diverged:\noriginal %+v\nrestored %+v", i, da, db)
		}
	}
}

// TestControllerRestoreRejectsMismatch verifies the checkpoint's
// configuration fingerprint: a checkpoint only restores into a
// controller running the same workload, strategy and green config, at
// the same format version.
func TestControllerRestoreRejectsMismatch(t *testing.T) {
	src := newController(t, "Hybrid", cluster.REBatt())
	if _, err := src.Step(burstTelemetry(400)); err != nil {
		t.Fatal(err)
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(nil); err == nil {
		t.Error("nil checkpoint accepted")
	}

	bad := *cp
	bad.Version = 99
	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(&bad); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch = %v, want version error", err)
	}

	if err := newController(t, "Greedy", cluster.REBatt()).Restore(cp); err == nil ||
		!strings.Contains(err.Error(), "strategy") {
		t.Errorf("strategy mismatch = %v, want strategy error", err)
	}

	if err := newController(t, "Hybrid", cluster.RESBatt()).Restore(cp); err == nil ||
		!strings.Contains(err.Error(), "green config") {
		t.Errorf("green-config mismatch = %v, want green-config error", err)
	}

	bad = *cp
	bad.Workload = "Web-Search"
	if err := newController(t, "Hybrid", cluster.REBatt()).Restore(&bad); err == nil ||
		!strings.Contains(err.Error(), "workload") {
		t.Errorf("workload mismatch = %v, want workload error", err)
	}
}
