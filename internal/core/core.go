// Package core assembles GreenSprint's control plane — the paper's
// Figure 3 architecture. A Controller owns the four components:
//
//	Monitor   — collects per-epoch workload performance (latency,
//	            throughput) and power measurements.
//	Predictor — EWMA forecasts of renewable production and workload
//	            intensity (Eq. 1, α = 0.3).
//	PSS       — selects power sources and manages battery charge
//	            (internal/pss).
//	PMK       — applies the chosen sprinting intensity to the green
//	            servers (internal/pmk).
//
// Each scheduling epoch the caller feeds the Monitor's telemetry into
// Controller.Step, which closes the loop: learn from the last epoch,
// predict the next one, pick a strategy decision under the PSS budget,
// allocate power sources, and actuate the knobs. The Controller is
// safe for concurrent use (the HTTP API reads snapshots while the
// epoch loop runs).
package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"greensprint/internal/battery"
	"greensprint/internal/chaos"
	"greensprint/internal/cluster"
	"greensprint/internal/obs"
	"greensprint/internal/pmk"
	"greensprint/internal/predictor"
	"greensprint/internal/profile"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/sim"
	"greensprint/internal/strategy"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// Options configures a Controller.
type Options struct {
	// Workload is the interactive application being managed.
	Workload workload.Profile
	// Green is the Table I green-provisioning option.
	Green cluster.GreenConfig
	// StrategyName selects the power-management strategy
	// ("Greedy", "Parallel", "Pacing", "Hybrid" or "Normal").
	StrategyName string
	// Epoch is the scheduling-epoch length (5 minutes if zero).
	Epoch time.Duration
	// Fleet supplies the knobs for the green servers; when nil a
	// simulated fleet of Green.GreenServers knobs is created.
	Fleet *pmk.Fleet
	// Table is the profiling table; built from the workload model
	// when nil.
	Table *profile.Table
	// Bank optionally supplies the battery store backing the PSS —
	// e.g. a battery.ClassBank for a generated fleet; when nil a
	// per-unit bank is built from Green.NewBank.
	Bank battery.Store
	// Sink optionally receives one obs.Event per Step: the telemetry
	// that drove the decision, the decision itself and the
	// power-source split (the daemon wires a Prometheus collector and
	// an optional JSONL event log here).
	Sink obs.Sink
	// Chaos optionally injects a resolved failure timeline into the
	// real control loop. Step advances the injector at each epoch
	// boundary under the controller lock: crashed servers shrink the
	// live census behind budget division and knob actuation,
	// stuck-at-source welds the PSS to the utility feed, battery
	// faults degrade the bank, breaker trips force the PDU breaker
	// open, and every transition is emitted as a chaos event on the
	// Sink. Telemetry handed to Step must then be full-fleet,
	// fault-free values — the controller applies solar dropouts and
	// alive-fraction degradation itself, so the Monitor side needs no
	// chaos wiring of its own. The schedule must be resolved for
	// Green.GreenServers servers and the bank's unit count.
	Chaos *chaos.Injector
}

// SinkError wraps an event-sink failure surfaced by Step. The step
// itself succeeded — the decision was applied and recorded — so
// callers that persist per-epoch state should treat it as a lost
// observation, not a failed epoch. Detect it with errors.As.
type SinkError struct{ Err error }

// Error implements error.
func (e *SinkError) Error() string { return "core: event sink: " + e.Err.Error() }

// Unwrap exposes the underlying sink failure.
func (e *SinkError) Unwrap() error { return e.Err }

// Telemetry is one epoch's measurements from the Monitor.
type Telemetry struct {
	// GreenPower is the renewable production observed over the
	// epoch (rack level).
	GreenPower units.Watt
	// OfferedRate is the per-server request arrival rate.
	OfferedRate float64
	// Goodput is the per-server QoS-compliant throughput.
	Goodput float64
	// Latency is the measured SLA-percentile latency in seconds.
	Latency float64
	// ServerPower is the measured mean per-server draw.
	ServerPower units.Watt
}

// Decision is the controller's output for one epoch. Decisions are
// serialized inside controller checkpoints (Last/History), so the json
// tags pin the historical wire names.
type Decision struct {
	// Epoch is the zero-based epoch counter.
	Epoch int `json:"Epoch"`
	// Config is the sprinting intensity applied to the green
	// servers.
	Config server.Config `json:"Config"`
	// Budget is the per-server power budget the PSS committed.
	Budget units.Watt `json:"Budget"`
	// Case is the supply case the PSS selected.
	Case pss.Case `json:"Case"`
	// PredictedGreen and PredictedRate are the Predictor outputs
	// the decision was based on.
	PredictedGreen units.Watt `json:"PredictedGreen"`
	PredictedRate  float64    `json:"PredictedRate"`
	// Demand is the rack-level power demand of the chosen settings.
	Demand units.Watt `json:"Demand"`
	// SprintFraction is the fraction of the epoch the demand was
	// powered (battery exhaustion ends a sprint mid-epoch).
	SprintFraction float64 `json:"SprintFraction"`
}

// Status is a read-only snapshot for monitoring interfaces.
type Status struct {
	Workload     string                `json:"workload"`
	Strategy     string                `json:"strategy"`
	GreenConfig  string                `json:"green_config"`
	Epoch        int                   `json:"epoch"`
	Last         Decision              `json:"last_decision"`
	BatterySoC   float64               `json:"battery_soc"`
	BatteryCycle float64               `json:"battery_cycles"`
	Account      cluster.EnergyAccount `json:"energy_account"`
	Configs      []server.Config       `json:"server_configs"`
	// Chaos state, populated only when the controller runs a chaos
	// injector: the live server census, the PSS stuck-at-source
	// flag and the forced-open breaker flag.
	Alive          int  `json:"alive,omitempty"`
	PSSStuck       bool `json:"pss_stuck,omitempty"`
	BreakerTripped bool `json:"breaker_tripped,omitempty"`
}

// Controller is the GreenSprint control plane.
type Controller struct {
	opts     Options
	table    *profile.Table
	strat    strategy.Strategy
	selector *pss.Selector
	fleet    *pmk.Fleet
	loadPred *predictor.EWMA
	epoch    time.Duration
	sink     obs.Sink //greensprint:allow(statecov) runtime wiring, not run state: the daemon re-attaches its sink after Restore

	// injector replays the chaos schedule (nil for fault-free
	// controllers: every fault-free code path is bit-identical to the
	// pre-chaos controller). alive tracks the green servers not
	// currently crashed; breaker is the PDU breaker model chaos trips
	// force open, built only when chaos is on.
	injector *chaos.Injector
	breaker  *cluster.Breaker
	alive    int //greensprint:allow(statecov) derived: Restore recounts it from the restored injector's ref-counts (GreenServers when chaos is off)

	mu      sync.Mutex
	count   int
	last    Decision
	history []Decision
}

// HistoryLimit bounds the retained decision history.
const HistoryLimit = 288 // one day of 5-minute epochs

// New builds a Controller.
func New(opts Options) (*Controller, error) {
	if err := opts.Workload.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Green.Validate(); err != nil {
		return nil, err
	}
	if opts.Green.GreenServers < 1 {
		return nil, fmt.Errorf("core: green config %q has no green servers", opts.Green.Name)
	}
	epoch := opts.Epoch
	if epoch == 0 {
		epoch = 5 * time.Minute
	}
	tab := opts.Table
	if tab == nil {
		var err error
		if tab, err = profile.Build(opts.Workload, profile.DefaultLevels); err != nil {
			return nil, err
		}
	}
	name := opts.StrategyName
	if name == "" {
		name = "Hybrid"
	}
	strat, err := strategy.ByName(name, opts.Workload, tab)
	if err != nil {
		return nil, err
	}
	var bank battery.Store = opts.Bank
	if bank == nil {
		b, err := opts.Green.NewBank()
		if err != nil {
			return nil, err
		}
		bank = b
	}
	fleet := opts.Fleet
	if fleet == nil {
		fleet = pmk.NewSimFleet(opts.Green.GreenServers)
	}
	var breaker *cluster.Breaker
	if opts.Chaos != nil {
		// A schedule's fault targets were drawn for a concrete
		// topology; replaying it against a different one would strike
		// phantom components.
		sched := opts.Chaos.Schedule()
		if sched.Servers != opts.Green.GreenServers {
			return nil, fmt.Errorf("core: chaos schedule resolved for %d servers, controller manages %d",
				sched.Servers, opts.Green.GreenServers)
		}
		if sched.Units != bank.Size() {
			return nil, fmt.Errorf("core: chaos schedule resolved for %d battery units, bank has %d",
				sched.Units, bank.Size())
		}
		// Breaker trips need a breaker to trip: model the rack's PDU
		// feed so a forced-open breaker is visible state (stress,
		// tripped flag) instead of a stream-only annotation. A
		// generated fleet spans many PDU legs with no single breaker
		// (as in sim.Engine), so fleet-scale controllers go without
		// and trips ride the event stream only.
		if opts.Green.GreenServers <= cluster.DefaultServers {
			cl, err := cluster.New(opts.Green)
			if err != nil {
				return nil, err
			}
			breaker = cluster.NewBreaker(cl.GridBudget)
		}
	}
	return &Controller{
		opts:     opts,
		table:    tab,
		strat:    strat,
		selector: pss.New(bank),
		fleet:    fleet,
		loadPred: predictor.NewEWMA(predictor.DefaultAlpha),
		epoch:    epoch,
		sink:     opts.Sink,
		injector: opts.Chaos,
		breaker:  breaker,
		alive:    opts.Green.GreenServers,
	}, nil
}

// Epoch returns the scheduling-epoch length.
func (c *Controller) Epoch() time.Duration { return c.epoch }

// SetSink replaces the controller's event sink (nil disables
// emission). Step emits under the controller lock, so the swap is
// safe even while the epoch loop runs.
func (c *Controller) SetSink(s obs.Sink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = s
}

// Strategy returns the active strategy's name.
func (c *Controller) Strategy() string { return c.strat.Name() }

// sanitize clamps malformed meter readings: power meters glitch and
// latency probes time out, and a control loop must not let a NaN or a
// negative wattage poison its predictors.
func (t Telemetry) sanitize() Telemetry {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if math.IsInf(v, 1) {
			return math.MaxFloat64 / 1e10
		}
		return v
	}
	t.GreenPower = units.Watt(clamp(float64(t.GreenPower)))
	t.OfferedRate = clamp(t.OfferedRate)
	t.Goodput = clamp(t.Goodput)
	t.Latency = clamp(t.Latency)
	t.ServerPower = units.Watt(clamp(float64(t.ServerPower)))
	return t
}

// Step closes the control loop for one epoch, using the telemetry
// measured over the epoch that just ended. With a chaos injector the
// epoch's fault and recovery transitions are applied first, under the
// same lock, so the decision below already sees the degraded world. A
// failed event emission returns the valid, already-applied Decision
// alongside a *SinkError; every other error means the step itself
// failed.
func (c *Controller) Step(t Telemetry) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stepLocked(t)
}

// StepN closes the control loop for up to n consecutive epochs under
// one lock acquisition — the daemon's catch-up-after-resume path, where
// the missed epochs are replayed back to back instead of paying a lock
// round-trip and a sink flush per tick. Telemetry for each epoch comes
// from the tel callback, which receives the absolute epoch number about
// to be stepped and the previously applied decision (what a live loop
// would read back from Snapshot — the callback must not call back into
// the controller, which would deadlock); returning ok == false stops
// the batch early.
//
// Each epoch is the same stepLocked the live loop runs, so the decision
// log, chaos timeline and checkpoint state are identical to n separate
// Step calls. A *SinkError is recorded and the batch continues —
// matching the live loop's log-and-continue contract — with the last
// one returned after the batch; any other error aborts the batch and
// returns the decisions already applied.
func (c *Controller) StepN(n int, tel func(epoch int, last Decision) (Telemetry, bool)) ([]Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		ds      []Decision
		sinkErr error
	)
	for i := 0; i < n; i++ {
		t, ok := tel(c.count, c.last)
		if !ok {
			break
		}
		d, err := c.stepLocked(t)
		if err != nil {
			var se *SinkError
			if !errors.As(err, &se) {
				return ds, err
			}
			sinkErr = err
		}
		ds = append(ds, d)
	}
	return ds, sinkErr
}

// stepLocked is one control-loop epoch; c.mu must be held.
func (c *Controller) stepLocked(t Telemetry) (Decision, error) {
	t = t.sanitize()
	n := c.opts.Green.GreenServers
	m := n // servers actually up; == n whenever chaos is off

	// 0. Chaos transitions land at the epoch boundary, before the
	// epoch's physics.
	var sinkErr error
	if c.injector != nil {
		se, err := c.applyChaos()
		if err != nil {
			return Decision{}, err
		}
		sinkErr = se
		m = c.alive
		// An active inverter dropout zeroes the observed green
		// supply; crashed servers neither serve nor draw, so the
		// per-provisioned-server telemetry means shrink coherently by
		// the alive fraction. Scaling goodput, offered rate and draw
		// together keeps the learner's ratios intact: losses caused
		// by dead servers are never blamed on the chosen config.
		t.GreenPower = units.Watt(float64(t.GreenPower) * c.injector.SolarFactor())
		if m < n {
			scale := float64(m) / float64(n)
			t.OfferedRate *= scale
			t.Goodput *= scale
			t.ServerPower = units.Watt(float64(t.ServerPower) * scale)
		}
	}
	if m == 0 {
		return c.stepOutage(t, sinkErr)
	}

	// 1. Monitor → Predictor: feed observations.
	c.selector.ObserveSupply(t.GreenPower)
	c.loadPred.Observe(t.OfferedRate)

	// 2. Predictor → strategy inputs for the upcoming epoch. All
	// demand arithmetic runs over the servers actually up.
	predGreen := c.selector.PredictedSupply()
	predRate := c.loadPred.Predict()
	budget := units.Watt(float64(c.selector.AvailablePower(c.epoch)) / float64(m))
	in := strategy.Inputs{
		Table:         c.table,
		PredictedRate: predRate,
		Budget:        budget,
		Epoch:         c.epoch,
		SprintFraction: func(perServer units.Watt) float64 {
			return c.selector.SustainFraction(units.Watt(float64(perServer)*float64(m)), predGreen, c.epoch)
		},
		AliveFraction: float64(m) / float64(n),
		BatteryHealth: c.selector.Bank().Health(),
	}

	// 3. Learn from the epoch that just finished.
	if c.count > 0 {
		c.strat.Learn(strategy.Feedback{
			Chosen:  c.last.Config,
			Supply:  units.Watt(float64(t.GreenPower)/float64(n)) + units.Watt(float64(c.selector.BatterySustainable(c.epoch))/float64(n)),
			Power:   t.ServerPower,
			Offered: t.OfferedRate,
			Goodput: t.Goodput,
			Latency: t.Latency,
			Next:    in,
		})
	}

	// 4. Decide and actuate. Green energy and batteries are called
	// upon only for sprinting (§V): a Normal-mode decision rides the
	// grid while green output recharges the batteries (topped up
	// from the grid once the DoD trigger fires).
	chosen := c.strat.Decide(in)
	level := c.table.LevelFor(predRate)
	perServer, ok := c.table.LoadPower(level, chosen)
	if !ok {
		perServer = c.opts.Workload.LoadPower(chosen, predRate)
	}
	demand := units.Watt(float64(perServer) * float64(m))
	normalFallback := units.Watt(float64(c.opts.Workload.LoadPower(server.Normal(), predRate)) * float64(m))
	var al pss.Allocation
	if chosen.IsSprinting() {
		al = c.selector.Allocate(demand, t.GreenPower, c.epoch, normalFallback)
	} else {
		al = pss.Allocation{Case: pss.CaseGridFallback, Grid: normalFallback}
		c.selector.RechargeFromGreen(t.GreenPower, c.epoch)
		// Grid recharge only outside bursts: during a burst the
		// grid budget is fully committed to the grid-fed servers
		// (§III-A Case 3 recharges "when the workload burst can be
		// completed in this period").
		bursting := c.table.MaxRate > 0 && predRate > 0.5*c.table.MaxRate
		if !bursting && c.selector.NeedsRecharge() {
			c.selector.RechargeFromGrid(units.Watt(float64(sim.GridRechargePower)*float64(m)), c.epoch)
		}
	}
	applied := chosen
	if al.Case == pss.CaseGridFallback {
		applied = server.Normal()
	}
	if err := c.applyFleet(applied); err != nil {
		return Decision{}, fmt.Errorf("core: apply %v: %w", applied, err)
	}

	d := Decision{
		Epoch:          c.count,
		Config:         applied,
		Budget:         budget,
		Case:           al.Case,
		PredictedGreen: predGreen,
		PredictedRate:  predRate,
		Demand:         demand,
		SprintFraction: al.SprintFraction,
	}
	c.count++
	c.last = d
	c.history = append(c.history, d)
	if len(c.history) > HistoryLimit {
		c.history = c.history[len(c.history)-HistoryLimit:]
	}
	if c.sink != nil {
		if err := c.sink.Emit(c.event(t, d, al)); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	if sinkErr != nil {
		// The decision has been applied and recorded; the caller
		// learns the telemetry was not fully observed.
		return d, &SinkError{Err: sinkErr}
	}
	return d, nil
}

// stepOutage handles an epoch with every green server down: nothing
// serves, nothing sprints, the strategy has nothing to decide.
// Surviving infrastructure still runs — the batteries bank whatever
// green output remains, topped up from the grid once the DoD trigger
// fires — and the decision log records the outage as a zero-demand
// grid-fallback epoch so numbering stays gap-free. Called from
// stepLocked: c.mu must be held.
func (c *Controller) stepOutage(t Telemetry, sinkErr error) (Decision, error) {
	c.selector.ObserveSupply(t.GreenPower)
	c.loadPred.Observe(t.OfferedRate)
	c.selector.RechargeFromGreen(t.GreenPower, c.epoch)
	if c.selector.NeedsRecharge() {
		c.selector.RechargeFromGrid(sim.GridRechargePower, c.epoch)
	}
	d := Decision{
		Epoch:          c.count,
		Config:         server.Normal(),
		Case:           pss.CaseGridFallback,
		PredictedGreen: c.selector.PredictedSupply(),
		PredictedRate:  c.loadPred.Predict(),
	}
	c.count++
	c.last = d
	c.history = append(c.history, d)
	if len(c.history) > HistoryLimit {
		c.history = c.history[len(c.history)-HistoryLimit:]
	}
	if c.sink != nil {
		if err := c.sink.Emit(c.event(t, d, pss.Allocation{Case: pss.CaseGridFallback})); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	if sinkErr != nil {
		return d, &SinkError{Err: sinkErr}
	}
	return d, nil
}

// applyChaos advances the injector to the current epoch, applies each
// due transition to the affected component, and emits one chaos event
// per transition ahead of the epoch record — the controller-owned
// equivalent of sim.Engine's chaos path, so daemon and sim share one
// failure semantics. Aggregate state (alive servers, stuck switch)
// comes from the injector's ref-counts, so overlapping faults on one
// component compose instead of corrupting each other. Emission
// failures are reported separately from component failures: the
// transitions are applied regardless. Called from stepLocked: c.mu
// must be held.
func (c *Controller) applyChaos() (sinkErr, hard error) {
	for _, a := range c.injector.Advance(c.count) {
		f := a.Fault
		switch f.Mode {
		case chaos.ServerCrash:
			if !a.Recovered {
				// The crashed server drops its sprint; when it
				// restarts it boots into Normal mode, which its knob
				// already records from here on.
				if err := c.fleet.Apply(f.Target, server.Normal()); err != nil {
					return sinkErr, fmt.Errorf("core: chaos: %w", err)
				}
			}
		case chaos.BatteryDegrade:
			if err := c.selector.Bank().DegradeUnit(f.Target, f.Factor, f.Resist); err != nil {
				return sinkErr, fmt.Errorf("core: chaos: %w", err)
			}
		case chaos.BreakerTrip:
			// Fleet-scale controllers carry no breaker model; the
			// trip then rides the event stream only.
			if c.breaker != nil {
				if a.Recovered {
					c.breaker.Reset() // technician reclose
				} else {
					c.breaker.ForceTrip()
				}
			}
		}
		// PSSStuck and SolarDropout act purely through the injector's
		// ref-counts read by Step; ZoneOutage is a marker whose
		// cascade constituents carry the component effects.
		if c.sink != nil {
			if err := c.sink.Emit(c.chaosEvent(a)); err != nil && sinkErr == nil {
				sinkErr = err
			}
		}
	}
	c.alive = c.injector.AliveServers()
	c.selector.SetStuck(c.injector.Stuck())
	return sinkErr, nil
}

// chaosEvent renders one fault/recovery transition for the event
// stream, stamped with the epoch it strikes in. Time is left empty as
// in every controller event: daemon epochs run on the wall clock.
// Called under the step path: c.mu must be held.
func (c *Controller) chaosEvent(a chaos.Action) obs.Event {
	kind := "fault"
	if a.Recovered {
		kind = "recover"
	}
	return obs.Event{
		Epoch:        c.count,
		EpochSeconds: c.epoch.Seconds(),
		Strategy:     c.strat.Name(),
		Servers:      c.opts.Green.GreenServers,
		Chaos:        kind,
		ChaosMode:    a.Fault.Mode.String(),
		ChaosTarget:  a.Fault.Target,
		ChaosDetail:  a.Fault.String(),
	}
}

// applyFleet applies a config to the running servers: all of them on a
// fault-free controller, only the alive ones under chaos (a powered-off
// server has nothing to actuate, and phantom transitions would corrupt
// the actuation accounting).
func (c *Controller) applyFleet(cfg server.Config) error {
	if c.injector != nil {
		return c.fleet.ApplyAlive(cfg, c.injector.ServerDown)
	}
	return c.fleet.ApplyAll(cfg)
}

// event flattens one control-loop step into the observability schema.
// Daemon epochs run on the wall clock, so Time is left empty rather
// than leaking nondeterminism into event logs.
func (c *Controller) event(t Telemetry, d Decision, al pss.Allocation) obs.Event {
	n := float64(c.opts.Green.GreenServers)
	ev := obs.Event{
		Epoch:           d.Epoch,
		EpochSeconds:    c.epoch.Seconds(),
		Strategy:        c.strat.Name(),
		Servers:         c.opts.Green.GreenServers,
		GreenSupplyW:    float64(t.GreenPower),
		OfferedRate:     t.OfferedRate,
		Goodput:         t.Goodput,
		LatencySec:      t.Latency,
		ServerPowerW:    float64(t.ServerPower),
		Case:            d.Case.String(),
		Config:          d.Config.String(),
		Sprinting:       d.Config.IsSprinting(),
		BudgetW:         float64(d.Budget),
		PredictedGreenW: float64(d.PredictedGreen),
		PredictedRate:   d.PredictedRate,
		DemandW:         float64(d.Demand),
		SprintFraction:  d.SprintFraction,
		GreenW:          float64(al.Green) / n,
		BatteryW:        float64(al.Battery) / n,
		GridW:           float64(al.Grid) / n,
		SoC:             c.selector.Bank().SoC(),
		BatteryCycles:   c.selector.Bank().EquivalentCycles(),
		QoSViolation:    c.opts.Workload.Deadline > 0 && t.Latency > c.opts.Workload.Deadline,
	}
	if c.injector != nil {
		// Alive is emitted only while servers are down and breaker
		// stress only while non-zero (both omitempty), so fault-free
		// streams stay byte-identical to pre-chaos ones.
		if c.alive < c.opts.Green.GreenServers {
			ev.Alive = c.alive
		}
		if c.breaker != nil {
			ev.BreakerStress = c.breaker.Stress()
		}
	}
	return ev
}

// Snapshot returns the current status.
func (c *Controller) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Workload:     c.opts.Workload.Name,
		Strategy:     c.strat.Name(),
		GreenConfig:  c.opts.Green.Name,
		Epoch:        c.count,
		Last:         c.last,
		BatterySoC:   c.selector.Bank().SoC(),
		BatteryCycle: c.selector.Bank().EquivalentCycles(),
		Account:      c.selector.Account(),
		Configs:      c.fleet.Configs(),
	}
	if c.injector != nil {
		st.Alive = c.alive
		st.PSSStuck = c.selector.Stuck()
		if c.breaker != nil {
			st.BreakerTripped = c.breaker.Tripped()
		}
	}
	return st
}

// History returns a copy of the retained decisions.
func (c *Controller) History() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.history))
	copy(out, c.history)
	return out
}

// HybridStrategy returns the underlying Hybrid strategy when the
// controller runs one, for Q-table persistence across restarts.
func (c *Controller) HybridStrategy() (*strategy.Hybrid, bool) {
	h, ok := c.strat.(*strategy.Hybrid)
	return h, ok
}

// QTableJSON serializes the Hybrid strategy's learned Q-table under
// the controller lock, so a save never races a concurrent Step's
// Q-update and the caller gets a complete buffer or an error — never
// a truncated stream. ok is false for strategies without a Q-table.
func (c *Controller) QTableJSON() (b []byte, ok bool, err error) {
	h, hok := c.strat.(*strategy.Hybrid)
	if !hok {
		return nil, false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	if err := h.SaveQ(&buf); err != nil {
		return nil, true, err
	}
	return buf.Bytes(), true, nil
}
