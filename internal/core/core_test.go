package core

import (
	"math"
	"testing"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/pss"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

func newController(t *testing.T, strat string, green cluster.GreenConfig) *Controller {
	t.Helper()
	c, err := New(Options{
		Workload:     workload.SPECjbb(),
		Green:        green,
		StrategyName: strat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Workload: workload.Profile{}, Green: cluster.REBatt()}); err == nil {
		t.Error("invalid workload should fail")
	}
	if _, err := New(Options{Workload: workload.SPECjbb(), Green: cluster.GreenConfig{Name: "x"}}); err == nil {
		t.Error("zero green servers should fail")
	}
	if _, err := New(Options{Workload: workload.SPECjbb(), Green: cluster.REBatt(), StrategyName: "nope"}); err == nil {
		t.Error("unknown strategy should fail")
	}
	c := newController(t, "", cluster.REBatt())
	if c.Strategy() != "Hybrid" {
		t.Errorf("default strategy = %q", c.Strategy())
	}
	if c.Epoch() != 5*time.Minute {
		t.Errorf("default epoch = %v", c.Epoch())
	}
}

func burstTelemetry(green units.Watt) Telemetry {
	p := workload.SPECjbb()
	rate := p.IntensityRate(12)
	return Telemetry{
		GreenPower:  green,
		OfferedRate: rate,
		Goodput:     p.MaxGoodput(server.Normal()),
		Latency:     0.45,
		ServerPower: 100,
	}
}

func TestStepAbundantGreenSprints(t *testing.T) {
	c := newController(t, "Hybrid", cluster.REBatt())
	var d Decision
	var err error
	for i := 0; i < 3; i++ {
		d, err = c.Step(burstTelemetry(635))
		if err != nil {
			t.Fatal(err)
		}
	}
	if !d.Config.IsSprinting() {
		t.Errorf("with 635W green the controller should sprint, got %v", d.Config)
	}
	if d.Case == pss.CaseGridFallback {
		t.Errorf("case = %v", d.Case)
	}
	if d.Epoch != 2 {
		t.Errorf("epoch = %d", d.Epoch)
	}
	// Knobs actually applied.
	for _, cfgApplied := range c.fleet.Configs() {
		if cfgApplied != d.Config {
			t.Errorf("knob = %v, decision = %v", cfgApplied, d.Config)
		}
	}
}

func TestStepNoGreenNoBatteryFallsBack(t *testing.T) {
	c := newController(t, "Hybrid", cluster.REOnly())
	var d Decision
	for i := 0; i < 3; i++ {
		var err error
		d, err = c.Step(burstTelemetry(0))
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.Config != server.Normal() {
		t.Errorf("REOnly without sun should run Normal, got %v", d.Config)
	}
	if d.Case != pss.CaseGridFallback {
		t.Errorf("case = %v", d.Case)
	}
}

func TestStepBatteryCarriesThenExhausts(t *testing.T) {
	c := newController(t, "Greedy", cluster.REBatt())
	sprints, fallbacks := 0, 0
	for i := 0; i < 12; i++ {
		d, err := c.Step(burstTelemetry(0))
		if err != nil {
			t.Fatal(err)
		}
		if d.Config.IsSprinting() {
			sprints++
		}
		if d.Case == pss.CaseGridFallback {
			fallbacks++
		}
	}
	if sprints < 2 {
		t.Errorf("battery should carry some sprint epochs, got %d", sprints)
	}
	if fallbacks < 6 {
		t.Errorf("battery exhaustion should force fallbacks, got %d", fallbacks)
	}
	st := c.Snapshot()
	if st.BatterySoC >= 0.99 {
		t.Errorf("battery SoC = %v", st.BatterySoC)
	}
}

func TestSnapshotAndHistory(t *testing.T) {
	c := newController(t, "Pacing", cluster.REBatt())
	for i := 0; i < 5; i++ {
		if _, err := c.Step(burstTelemetry(500)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Snapshot()
	if st.Workload != "SPECjbb" || st.Strategy != "Pacing" || st.GreenConfig != "RE-Batt" {
		t.Errorf("snapshot = %+v", st)
	}
	if st.Epoch != 5 {
		t.Errorf("epoch count = %d", st.Epoch)
	}
	if len(st.Configs) != 3 {
		t.Errorf("configs = %d", len(st.Configs))
	}
	h := c.History()
	if len(h) != 5 {
		t.Fatalf("history = %d", len(h))
	}
	for i, d := range h {
		if d.Epoch != i {
			t.Errorf("history[%d].Epoch = %d", i, d.Epoch)
		}
	}
	// History is a copy.
	h[0].Epoch = 99
	if c.History()[0].Epoch == 99 {
		t.Error("History leaked internal state")
	}
}

func TestHistoryBounded(t *testing.T) {
	c := newController(t, "Normal", cluster.REBatt())
	for i := 0; i < HistoryLimit+10; i++ {
		if _, err := c.Step(burstTelemetry(300)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.History()); got != HistoryLimit {
		t.Errorf("history len = %d, want %d", got, HistoryLimit)
	}
}

func TestMonitor(t *testing.T) {
	m := NewMonitor(workload.SPECjbb())
	for i := 0; i < 90; i++ {
		m.RecordLatency(0.1) // compliant
	}
	for i := 0; i < 10; i++ {
		m.RecordLatency(0.9) // violating
	}
	m.RecordGreenPower(600)
	m.RecordGreenPower(400)
	m.RecordServerPower(120)
	tel := m.Close(time.Minute)
	if tel.GreenPower != 500 {
		t.Errorf("green = %v", tel.GreenPower)
	}
	if tel.ServerPower != 120 {
		t.Errorf("server power = %v", tel.ServerPower)
	}
	if got := tel.OfferedRate; got != 100.0/60 {
		t.Errorf("offered = %v", got)
	}
	if got := tel.Goodput; got != 90.0/60 {
		t.Errorf("goodput = %v", got)
	}
	// p99 over 10% violations lands near 0.9s.
	if tel.Latency < 0.5 {
		t.Errorf("latency = %v, want > deadline", tel.Latency)
	}
	// Close resets.
	tel2 := m.Close(time.Minute)
	if tel2.OfferedRate != 0 || tel2.GreenPower != 0 {
		t.Errorf("monitor not reset: %+v", tel2)
	}
}

func TestControllerStepIntegratesMonitor(t *testing.T) {
	c := newController(t, "Hybrid", cluster.REBatt())
	m := NewMonitor(workload.SPECjbb())
	p := workload.SPECjbb()
	rate := p.IntensityRate(12)
	for e := 0; e < 3; e++ {
		// Simulate one epoch of requests and meter samples.
		for i := 0; i < 100; i++ {
			m.RecordLatency(0.2)
		}
		m.RecordGreenPower(635)
		m.RecordServerPower(110)
		tel := m.Close(c.Epoch())
		tel.OfferedRate = rate // open-loop offered rate
		if _, err := c.Step(tel); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Snapshot().Last.Config.IsSprinting() {
		t.Error("controller should be sprinting under abundant green")
	}
}

func TestHybridStrategyAccessor(t *testing.T) {
	c := newController(t, "Hybrid", cluster.REBatt())
	h, ok := c.HybridStrategy()
	if !ok || h == nil {
		t.Fatal("Hybrid controller should expose its strategy")
	}
	c2 := newController(t, "Pacing", cluster.REBatt())
	if _, ok := c2.HybridStrategy(); ok {
		t.Error("non-Hybrid controller should not expose a Hybrid")
	}
}

// TestStepSurvivesMalformedTelemetry feeds the controller hostile
// meter data: NaNs, infinities and negatives must not poison the
// predictors or crash the loop.
func TestStepSurvivesMalformedTelemetry(t *testing.T) {
	c := newController(t, "Hybrid", cluster.REBatt())
	hostile := []Telemetry{
		{GreenPower: units.Watt(math.NaN()), OfferedRate: math.NaN(), Goodput: math.NaN(), Latency: math.NaN(), ServerPower: units.Watt(math.NaN())},
		{GreenPower: -500, OfferedRate: -1, Goodput: -1, Latency: -1, ServerPower: -1},
		{GreenPower: units.Watt(math.Inf(1)), OfferedRate: math.Inf(1), Goodput: math.Inf(1), Latency: math.Inf(1), ServerPower: units.Watt(math.Inf(1))},
	}
	for i, tel := range hostile {
		d, err := c.Step(tel)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !d.Config.Valid() {
			t.Fatalf("step %d produced invalid config %v", i, d.Config)
		}
		if math.IsNaN(float64(d.Budget)) || math.IsNaN(d.PredictedRate) {
			t.Fatalf("step %d: NaN leaked into decision %+v", i, d)
		}
	}
	// A sane epoch afterwards still works.
	if _, err := c.Step(burstTelemetry(600)); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(c.Snapshot().BatterySoC) {
		t.Error("battery state poisoned")
	}
}
