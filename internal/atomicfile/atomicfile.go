// Package atomicfile provides crash-safe file persistence: data is
// written to a temporary file in the destination directory and renamed
// into place, so a crash mid-write never truncates the previous
// contents. Every state file GreenSprint persists across restarts
// (simulation checkpoints, controller checkpoints, Q-tables) goes
// through WriteFile.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces the file at path with data. The
// temporary file is created in path's directory (rename is only atomic
// within a filesystem) and removed on any failure.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}
