package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("got %q", b)
	}
	if err := WriteFile(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v2-longer" {
		t.Fatalf("got %q", b)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileBadDir(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644); err == nil {
		t.Error("want error for missing directory")
	}
}
