package nrel

import (
	"strings"
	"testing"
	"time"

	"greensprint/internal/solar"
	"greensprint/internal/units"
)

const sample = `DATE (MM/DD/YYYY),MST,Global CMP22 (vent/cor) [W/m^2],Direct NIP [W/m^2]
05/01/2018,11:58,850.1,900.2
05/01/2018,11:59,855.3,901.0
05/01/2018,12:00,1001.7,902.5
05/01/2018,12:01,-2.0,0
`

func TestParseIrradiance(t *testing.T) {
	tr, err := ParseIrradiance(strings.NewReader(sample), "Global")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Step != time.Minute {
		t.Errorf("step = %v", tr.Step)
	}
	want := time.Date(2018, 5, 1, 11, 58, 0, 0, time.UTC)
	if !tr.Start.Equal(want) {
		t.Errorf("start = %v", tr.Start)
	}
	if tr.Samples[0] != 850.1 || tr.Samples[2] != 1001.7 {
		t.Errorf("samples = %v", tr.Samples)
	}
	// Negative night offsets clamp to zero.
	if tr.Samples[3] != 0 {
		t.Errorf("negative reading not clamped: %v", tr.Samples[3])
	}
}

func TestParseSelectsRequestedColumn(t *testing.T) {
	tr, err := ParseIrradiance(strings.NewReader(sample), "Direct")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Samples[0] != 900.2 {
		t.Errorf("wrong column: %v", tr.Samples[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in, col string }{
		{"empty", "", "Global"},
		{"no date", "MST,Global [W/m^2]\n00:00,1\n", "Global"},
		{"no time", "DATE (MM/DD/YYYY),Global [W/m^2]\n05/01/2018,1\n", "Global"},
		{"no match", sample, "Windspeed"},
		{"bad value", "DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,00:00,x\n05/01/2018,00:01,1\n", "Global"},
		{"bad stamp", "DATE (MM/DD/YYYY),MST,Global [W/m^2]\nyesterday,00:00,1\n05/01/2018,00:01,1\n", "Global"},
		{"one row", "DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,00:00,1\n", "Global"},
		{"irregular", "DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,00:00,1\n05/01/2018,00:01,1\n05/01/2018,00:05,1\n", "Global"},
		{"non-increasing", "DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,00:01,1\n05/01/2018,00:01,1\n", "Global"},
		{"short record", "DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,00:00\n05/01/2018,00:01,1\n", "Global"},
	}
	for _, c := range cases {
		if _, err := ParseIrradiance(strings.NewReader(c.in), c.col); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestToPower(t *testing.T) {
	tr, err := ParseIrradiance(strings.NewReader(sample), "Global")
	if err != nil {
		t.Fatal(err)
	}
	array := solar.Array{Panel: solar.DefaultPanel(), Panels: 3}
	p := ToPower(tr, array)
	if p.Name != "nrel_ac_w_3panel" {
		t.Errorf("name = %q", p.Name)
	}
	// 850.1 W/m² on 3 panels: 3 · 211.75 · 0.8501.
	want := 3 * 211.75 * 0.8501
	if !units.NearlyEqual(p.Samples[0], want, 1e-9) {
		t.Errorf("power[0] = %v, want %v", p.Samples[0], want)
	}
	// Above-STC irradiance clamps at nameplate.
	if !units.NearlyEqual(p.Samples[2], 635.25, 1e-9) {
		t.Errorf("power[2] = %v, want clamped 635.25", p.Samples[2])
	}
	// Source unchanged.
	if tr.Samples[0] != 850.1 {
		t.Error("ToPower mutated its input")
	}
}
