// Package nrel parses NREL Measurement and Instrumentation Data Center
// (MIDC) daily-export CSV files — the renewable production traces the
// paper replays ("we randomly choose one of the renewable power
// production traces with one-week duration from NREL, including
// irradiation every minute"). A MIDC export carries a date column, a
// local-time column and one column per instrument:
//
//	DATE (MM/DD/YYYY),MST,Global CMP22 (vent/cor) [W/m^2],...
//	05/01/2018,00:00,0,...
//	05/01/2018,00:01,0,...
//
// ParseIrradiance extracts one irradiance column as a trace.Trace;
// ToPower converts irradiance to AC output through a solar.Array, so a
// downloaded MIDC file can drive the simulator directly in place of
// the synthetic generator.
package nrel

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"greensprint/internal/solar"
	"greensprint/internal/trace"
)

// ParseIrradiance reads a MIDC CSV and extracts the irradiance column
// whose header contains columnMatch (case-insensitive; e.g. "Global").
// Rows must be evenly spaced; negative readings (sensor offset at
// night) clamp to zero.
func ParseIrradiance(r io.Reader, columnMatch string) (*trace.Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("nrel: read header: %w", err)
	}
	dateIdx, timeIdx, valIdx := -1, -1, -1
	for i, col := range header {
		name := strings.ToLower(strings.TrimSpace(col))
		switch {
		case strings.HasPrefix(name, "date"):
			dateIdx = i
		case timeIdx < 0 && isTimeColumn(name):
			timeIdx = i
		case valIdx < 0 && columnMatch != "" &&
			strings.Contains(name, strings.ToLower(columnMatch)):
			valIdx = i
		}
	}
	if dateIdx < 0 || timeIdx < 0 {
		return nil, fmt.Errorf("nrel: no DATE/time columns in header %v", header)
	}
	if valIdx < 0 {
		return nil, fmt.Errorf("nrel: no column matching %q in header %v", columnMatch, header)
	}

	var times []time.Time
	var samples []float64
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		row++
		if err != nil {
			return nil, fmt.Errorf("nrel: row %d: %w", row, err)
		}
		if len(rec) <= valIdx || len(rec) <= dateIdx || len(rec) <= timeIdx {
			return nil, fmt.Errorf("nrel: row %d: short record", row)
		}
		ts, err := parseStamp(rec[dateIdx], rec[timeIdx])
		if err != nil {
			return nil, fmt.Errorf("nrel: row %d: %w", row, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[valIdx]), 64)
		if err != nil {
			return nil, fmt.Errorf("nrel: row %d: bad value %q: %w", row, rec[valIdx], err)
		}
		if v < 0 {
			v = 0 // night-time sensor offset
		}
		times = append(times, ts)
		samples = append(samples, v)
	}
	if len(times) < 2 {
		return nil, fmt.Errorf("nrel: need at least 2 rows, got %d", len(times))
	}
	step := times[1].Sub(times[0])
	if step <= 0 {
		return nil, fmt.Errorf("nrel: non-increasing timestamps")
	}
	for i := 2; i < len(times); i++ {
		if times[i].Sub(times[i-1]) != step {
			return nil, fmt.Errorf("nrel: irregular step at row %d", i+2)
		}
	}
	return trace.New("nrel_ghi_wm2", times[0], step, samples), nil
}

func isTimeColumn(name string) bool {
	// MIDC time columns are named after the station's timezone
	// (MST, PST, ...) or simply "time".
	switch name {
	case "mst", "pst", "est", "cst", "mdt", "pdt", "edt", "cdt", "time", "lst":
		return true
	}
	return false
}

func parseStamp(date, clock string) (time.Time, error) {
	d := strings.TrimSpace(date)
	c := strings.TrimSpace(clock)
	for _, layout := range []string{"01/02/2006 15:04", "1/2/2006 15:04", "01/02/2006 15:04:05"} {
		if ts, err := time.Parse(layout, d+" "+c); err == nil {
			return ts.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("unparseable timestamp %q %q", date, clock)
}

// ToPower converts an irradiance trace (W/m²) to the AC output of a
// panel array — the scaling step the paper applies to match its Table
// I provisioning.
func ToPower(irr *trace.Trace, array solar.Array) *trace.Trace {
	out := irr.Clone()
	out.Name = fmt.Sprintf("nrel_ac_w_%dpanel", array.Panels)
	for i, v := range irr.Samples {
		out.Samples[i] = float64(array.ACPower(v))
	}
	return out
}
