package nrel

import (
	"strings"
	"testing"
)

// FuzzParseIrradiance hardens the MIDC parser: arbitrary input must
// yield an error or a valid, evenly spaced, non-negative trace.
func FuzzParseIrradiance(f *testing.F) {
	f.Add("DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,00:00,1\n05/01/2018,00:01,2\n")
	f.Add("DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,00:00,-3\n05/01/2018,00:01,2\n")
	f.Add("MST,Global\n00:00,1\n")
	f.Add("DATE (MM/DD/YYYY),MST\n05/01/2018,00:00\n")
	f.Add("")
	f.Add("DATE (MM/DD/YYYY),MST,Global [W/m^2]\n05/01/2018,23:59,1\n05/02/2018,00:00,2\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseIrradiance(strings.NewReader(in), "Global")
		if err != nil {
			return
		}
		if tr.Step <= 0 || tr.Len() < 2 {
			t.Fatalf("accepted malformed trace: len %d step %v", tr.Len(), tr.Step)
		}
		for i, v := range tr.Samples {
			if v < 0 {
				t.Fatalf("negative irradiance %v at %d", v, i)
			}
		}
	})
}
