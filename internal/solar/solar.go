// Package solar simulates an on-site photovoltaic generator. The paper
// replays one-week, one-minute NREL MIDC irradiance traces scaled to a
// cluster-sized panel array (275 W DC per panel, 0.77 DC→AC derate,
// i.e. 211.75 W peak AC per panel). Since the NREL archive is not
// available offline, this package synthesizes irradiance with a
// clear-sky solar-geometry model plus stochastic cloud attenuation,
// then converts it to AC power through a panel-array model. The
// generated traces exhibit the same diurnal ramp and the intermittency
// classes (clear / partly cloudy / overcast) that drive the paper's
// Minimum / Medium / Maximum availability cases.
package solar

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"greensprint/internal/trace"
	"greensprint/internal/units"
)

// Sky describes the cloud regime for a simulated day.
type Sky int

const (
	// Clear produces a smooth clear-sky bell curve.
	Clear Sky = iota
	// PartlyCloudy superimposes passing-cloud transients (the
	// "time-varying, intermittent" regime the paper highlights).
	PartlyCloudy
	// Overcast heavily attenuates the whole day.
	Overcast
)

// String implements fmt.Stringer.
func (s Sky) String() string {
	switch s {
	case Clear:
		return "clear"
	case PartlyCloudy:
		return "partly-cloudy"
	case Overcast:
		return "overcast"
	default:
		return fmt.Sprintf("Sky(%d)", int(s))
	}
}

// Panel models one PV panel as deployed in the paper's prototype.
type Panel struct {
	// RatedDC is the nameplate DC output at standard test
	// conditions (1000 W/m² irradiance). The paper provisions
	// 275 W panels (Grape Solar).
	RatedDC units.Watt
	// Derate is the DC→AC conversion factor; the paper uses 0.77.
	Derate float64
}

// DefaultPanel returns the paper's panel: 275 W DC × 0.77 = 211.75 W
// peak AC.
func DefaultPanel() Panel { return Panel{RatedDC: 275, Derate: 0.77} }

// PeakAC returns the panel's peak AC output.
func (p Panel) PeakAC() units.Watt {
	return units.Watt(float64(p.RatedDC) * p.Derate)
}

// ACPower converts a plane-of-array irradiance (W/m², relative to the
// 1000 W/m² STC reference) to AC output.
func (p Panel) ACPower(irradiance float64) units.Watt {
	if irradiance <= 0 {
		return 0
	}
	out := float64(p.RatedDC) * p.Derate * irradiance / 1000
	return units.Watt(out).Clamp(0, p.PeakAC())
}

// Array is a collection of identical panels feeding one PDU-level green
// bus. In the paper the "RE" configuration uses 3 panels (635.25 W peak
// AC) and "SRE" uses 2 (423.5 W).
type Array struct {
	Panel  Panel
	Panels int
}

// PeakAC returns the array's aggregate peak AC output.
func (a Array) PeakAC() units.Watt {
	return units.Watt(float64(a.Panel.PeakAC()) * float64(a.Panels))
}

// ACPower converts irradiance to aggregate AC output.
func (a Array) ACPower(irradiance float64) units.Watt {
	return units.Watt(float64(a.Panel.ACPower(irradiance)) * float64(a.Panels))
}

// Site holds the solar-geometry inputs for the synthetic clear-sky
// model.
type Site struct {
	// LatitudeDeg is the site latitude in degrees (positive north).
	LatitudeDeg float64
	// Turbidity controls atmospheric attenuation in the clear-sky
	// model; sensible values are 2 (very clear) to 5 (hazy).
	Turbidity float64
	// TiltGain converts global horizontal irradiance to
	// plane-of-array irradiance for a latitude-tilted panel. Fixed
	// arrays tilted at latitude collect ~15-20% more than the
	// horizontal around midday.
	TiltGain float64
}

// DefaultSite is a mid-latitude site comparable to the NREL MIDC
// stations (Golden, CO is at 39.74° N).
func DefaultSite() Site { return Site{LatitudeDeg: 39.74, Turbidity: 3, TiltGain: 1.18} }

// declination returns the solar declination (radians) for a day of
// year, using the standard Cooper formula.
func declination(dayOfYear int) float64 {
	return 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*float64(284+dayOfYear)/365)
}

// Elevation returns the solar elevation angle (radians) at the given
// instant. Negative values mean the sun is below the horizon.
func (s Site) Elevation(t time.Time) float64 {
	lat := s.LatitudeDeg * math.Pi / 180
	decl := declination(t.YearDay())
	hours := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	hourAngle := (hours - 12) * 15 * math.Pi / 180
	sinEl := math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(hourAngle)
	return math.Asin(sinEl)
}

// ClearSkyIrradiance returns the global horizontal irradiance (W/m²)
// under a clear sky at instant t, using a simple Haurwitz-style model
// attenuated by site turbidity.
func (s Site) ClearSkyIrradiance(t time.Time) float64 {
	el := s.Elevation(t)
	if el <= 0 {
		return 0
	}
	sinEl := math.Sin(el)
	// Haurwitz: GHI = 1098 * sin(el) * exp(-0.057/sin(el)), with a
	// mild extra attenuation for turbidity above the pristine value.
	ghi := 1098 * sinEl * math.Exp(-0.057/sinEl)
	ghi *= math.Pow(0.97, math.Max(0, s.Turbidity-2))
	return ghi
}

// GeneratorConfig configures synthetic trace generation.
type GeneratorConfig struct {
	Site  Site
	Array Array
	// Start is the first instant of the trace.
	Start time.Time
	// Days is the number of days to generate.
	Days int
	// Step is the sampling interval (the paper replays one-minute
	// NREL records).
	Step time.Duration
	// Skies optionally fixes the regime per day; when shorter than
	// Days the generator draws the remaining days from the seed.
	Skies []Sky
	// Seed drives all stochastic cloud behaviour. Identical
	// configurations generate identical traces.
	Seed int64
}

// DefaultGeneratorConfig mirrors the paper's setup: a one-week,
// one-minute trace for the 3-panel RE array.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Site:  DefaultSite(),
		Array: Array{Panel: DefaultPanel(), Panels: 3},
		Start: time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC),
		Days:  7,
		Step:  time.Minute,
		Seed:  1,
	}
}

// Generate synthesizes an AC power trace for the configured array.
func Generate(cfg GeneratorConfig) (*trace.Trace, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("solar: Days must be positive, got %d", cfg.Days)
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("solar: Step must be positive, got %v", cfg.Step)
	}
	if cfg.Array.Panels <= 0 {
		return nil, fmt.Errorf("solar: array needs at least one panel, got %d", cfg.Array.Panels)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perDay := int(24 * time.Hour / cfg.Step)
	samples := make([]float64, 0, perDay*cfg.Days)
	for d := 0; d < cfg.Days; d++ {
		sky := pickSky(cfg, d, rng)
		cl := newCloudProcess(sky, rng)
		dayStart := cfg.Start.Add(time.Duration(d) * 24 * time.Hour)
		tilt := cfg.Site.TiltGain
		if tilt <= 0 {
			tilt = 1
		}
		for i := 0; i < perDay; i++ {
			ts := dayStart.Add(time.Duration(i) * cfg.Step)
			poa := cfg.Site.ClearSkyIrradiance(ts) * tilt * cl.next()
			samples = append(samples, float64(cfg.Array.ACPower(poa)))
		}
	}
	name := fmt.Sprintf("solar_ac_w_%dpanel", cfg.Array.Panels)
	return trace.New(name, cfg.Start, cfg.Step, samples), nil
}

func pickSky(cfg GeneratorConfig, day int, rng *rand.Rand) Sky {
	if day < len(cfg.Skies) {
		return cfg.Skies[day]
	}
	switch r := rng.Float64(); {
	case r < 0.45:
		return Clear
	case r < 0.85:
		return PartlyCloudy
	default:
		return Overcast
	}
}

// cloudProcess produces a per-sample transmittance factor in [0,1]. The
// partly-cloudy regime uses a two-state Markov chain (sun / cloud) with
// smoothed transitions, which reproduces the minute-scale power dips
// visible in NREL traces.
type cloudProcess struct {
	sky      Sky
	rng      *rand.Rand
	inCloud  bool
	current  float64 // smoothed transmittance
	target   float64
	pEnter   float64 // P(sun->cloud) per sample
	pLeave   float64 // P(cloud->sun) per sample
	cloudAtt float64 // transmittance inside a cloud
	baseAtt  float64 // overall day attenuation
}

func newCloudProcess(sky Sky, rng *rand.Rand) *cloudProcess {
	c := &cloudProcess{sky: sky, rng: rng, current: 1, target: 1}
	switch sky {
	case Clear:
		c.baseAtt = 0.98
		c.pEnter, c.pLeave = 0.002, 0.3
		c.cloudAtt = 0.75
	case PartlyCloudy:
		c.baseAtt = 0.92
		c.pEnter, c.pLeave = 0.06, 0.12
		c.cloudAtt = 0.25
	case Overcast:
		c.baseAtt = 0.30
		c.pEnter, c.pLeave = 0.15, 0.10
		c.cloudAtt = 0.45
	}
	return c
}

func (c *cloudProcess) next() float64 {
	if c.inCloud {
		if c.rng.Float64() < c.pLeave {
			c.inCloud = false
		}
	} else if c.rng.Float64() < c.pEnter {
		c.inCloud = true
	}
	if c.inCloud {
		// Per-cloud variability.
		c.target = c.cloudAtt * (0.8 + 0.4*c.rng.Float64())
	} else {
		c.target = 1
	}
	// First-order smoothing so edges ramp over a few minutes rather
	// than stepping instantaneously.
	c.current += 0.35 * (c.target - c.current)
	v := c.baseAtt * c.current
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}
