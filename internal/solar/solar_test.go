package solar

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"greensprint/internal/units"
)

func TestPanelPeakAC(t *testing.T) {
	p := DefaultPanel()
	// The paper: 275 W * 0.77 = 211.75 W.
	if got := p.PeakAC(); !units.NearlyEqual(float64(got), 211.75, 1e-12) {
		t.Errorf("PeakAC = %v, want 211.75", got)
	}
}

func TestPanelACPower(t *testing.T) {
	p := DefaultPanel()
	tests := []struct {
		irr  float64
		want float64
	}{
		{0, 0},
		{-10, 0},
		{500, 105.875},
		{1000, 211.75},
		{1500, 211.75}, // clamped at nameplate
	}
	for _, tt := range tests {
		if got := p.ACPower(tt.irr); !units.NearlyEqual(float64(got), tt.want, 1e-9) {
			t.Errorf("ACPower(%v) = %v, want %v", tt.irr, got, tt.want)
		}
	}
}

func TestArrayPeaks(t *testing.T) {
	re := Array{Panel: DefaultPanel(), Panels: 3}
	if got := re.PeakAC(); !units.NearlyEqual(float64(got), 635.25, 1e-9) {
		t.Errorf("RE array peak = %v, want 635.25", got)
	}
	sre := Array{Panel: DefaultPanel(), Panels: 2}
	if got := sre.PeakAC(); !units.NearlyEqual(float64(got), 423.5, 1e-9) {
		t.Errorf("SRE array peak = %v, want 423.5", got)
	}
}

func TestElevationDiurnal(t *testing.T) {
	s := DefaultSite()
	noon := time.Date(2018, 6, 21, 12, 0, 0, 0, time.UTC)
	midnight := time.Date(2018, 6, 21, 0, 0, 0, 0, time.UTC)
	if el := s.Elevation(noon); el <= 0 {
		t.Errorf("noon elevation = %v, want positive", el)
	}
	if el := s.Elevation(midnight); el >= 0 {
		t.Errorf("midnight elevation = %v, want negative", el)
	}
	// Summer-solstice noon is higher than winter-solstice noon.
	winterNoon := time.Date(2018, 12, 21, 12, 0, 0, 0, time.UTC)
	if s.Elevation(noon) <= s.Elevation(winterNoon) {
		t.Error("summer noon should be higher than winter noon")
	}
}

func TestClearSkyIrradiance(t *testing.T) {
	s := DefaultSite()
	noon := time.Date(2018, 6, 21, 12, 0, 0, 0, time.UTC)
	ghi := s.ClearSkyIrradiance(noon)
	if ghi < 800 || ghi > 1100 {
		t.Errorf("summer noon GHI = %v, want within [800,1100]", ghi)
	}
	night := time.Date(2018, 6, 21, 2, 0, 0, 0, time.UTC)
	if got := s.ClearSkyIrradiance(night); got != 0 {
		t.Errorf("night GHI = %v, want 0", got)
	}
	// Higher turbidity attenuates.
	hazy := Site{LatitudeDeg: s.LatitudeDeg, Turbidity: 5}
	if hazy.ClearSkyIrradiance(noon) >= ghi {
		t.Error("hazier site should produce less irradiance")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Days = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for zero days")
	}
	cfg = DefaultGeneratorConfig()
	cfg.Step = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for zero step")
	}
	cfg = DefaultGeneratorConfig()
	cfg.Array.Panels = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for zero panels")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Days = 2
	cfg.Skies = []Sky{Clear, Overcast}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2*24*60 {
		t.Fatalf("len = %d, want %d", tr.Len(), 2*24*60)
	}
	peak := float64(cfg.Array.PeakAC())
	st := tr.Stats()
	if st.Min < 0 {
		t.Errorf("negative output %v", st.Min)
	}
	if st.Max > peak+1e-9 {
		t.Errorf("output %v exceeds array peak %v", st.Max, peak)
	}
	// Clear day should reach close to peak around noon.
	day1 := tr.Slice(cfg.Start, cfg.Start.Add(24*time.Hour))
	if day1.Max() < 0.9*peak {
		t.Errorf("clear day max = %v, want >= 90%% of %v", day1.Max(), peak)
	}
	// Overcast day should stay well below peak.
	day2 := tr.Slice(cfg.Start.Add(24*time.Hour), cfg.Start.Add(48*time.Hour))
	if day2.Max() > 0.6*peak {
		t.Errorf("overcast day max = %v, want <= 60%% of %v", day2.Max(), peak)
	}
	// Night samples are zero.
	if v := tr.At(cfg.Start.Add(2 * time.Hour)); v != 0 {
		t.Errorf("2am output = %v, want 0", v)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Days = 1
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i], b.Samples[i])
		}
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different traces")
	}
}

func TestSkyString(t *testing.T) {
	if Clear.String() != "clear" || PartlyCloudy.String() != "partly-cloudy" || Overcast.String() != "overcast" {
		t.Error("sky names wrong")
	}
	if Sky(99).String() != "Sky(99)" {
		t.Error("unknown sky formatting")
	}
}

func TestAvailabilityString(t *testing.T) {
	if Min.String() != "Min" || Med.String() != "Med" || Max.String() != "Max" {
		t.Error("availability names wrong")
	}
	if Availability(7).String() != "Availability(7)" {
		t.Error("unknown availability formatting")
	}
	if len(Levels()) != 3 {
		t.Error("Levels should return 3 classes")
	}
}

func TestFindWindow(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Days = 3
	cfg.Skies = []Sky{Clear, Clear, Clear}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peak := float64(cfg.Array.PeakAC())
	for _, level := range Levels() {
		at, err := FindWindow(tr, 30*time.Minute, level, peak)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		w := tr.Window(at, 30*time.Minute)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		frac := sum / float64(len(w)) / peak
		lo, hi := level.band()
		if frac < lo || frac > hi {
			t.Errorf("%v window mean fraction %v outside [%v,%v]", level, frac, lo, hi)
		}
	}
}

func TestFindWindowErrors(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Days = 1
	cfg.Skies = []Sky{Overcast}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peak := float64(cfg.Array.PeakAC())
	if _, err := FindWindow(tr, 30*time.Minute, Max, peak); err == nil {
		t.Error("overcast day should have no Max window")
	}
	if _, err := FindWindow(tr, 0, Max, peak); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := FindWindow(tr, time.Hour, Max, 0); err == nil {
		t.Error("zero peak should error")
	}
}

func TestSynthesize(t *testing.T) {
	const peak = 635.25
	d := 30 * time.Minute
	for _, level := range Levels() {
		tr := Synthesize(level, d, time.Minute, peak, 42)
		if tr.Len() != 30 {
			t.Fatalf("%v: len = %d", level, tr.Len())
		}
		mean := tr.Mean()
		lo, hi := level.band()
		frac := mean / peak
		// Synthesized traces should land in (or very near) the band.
		if frac < lo-0.1 || frac > hi+0.1 {
			t.Errorf("%v synthesized mean fraction = %v, band [%v,%v]", level, frac, lo, hi)
		}
		if tr.Max() > peak+1e-9 {
			t.Errorf("%v exceeds peak", level)
		}
	}
	// Degenerate arguments still produce at least one sample.
	tr := Synthesize(Min, 0, 0, peak, 1)
	if tr.Len() != 1 {
		t.Errorf("degenerate synthesize len = %d", tr.Len())
	}
}

// Property: generated power is always within [0, array peak], at any
// seed and sky mix.
func TestGenerateBoundedProperty(t *testing.T) {
	f := func(seed int64, skyRaw uint8) bool {
		cfg := DefaultGeneratorConfig()
		cfg.Days = 1
		cfg.Seed = seed
		cfg.Skies = []Sky{Sky(int(skyRaw) % 3)}
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		peak := float64(cfg.Array.PeakAC())
		st := tr.Stats()
		return st.Min >= 0 && st.Max <= peak+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: elevation is symmetric-ish around solar noon for the
// simple hour-angle model (within numerical tolerance).
func TestElevationSymmetryProperty(t *testing.T) {
	s := DefaultSite()
	f := func(offsetMin uint16) bool {
		off := time.Duration(int(offsetMin)%360) * time.Minute
		noon := time.Date(2018, 5, 10, 12, 0, 0, 0, time.UTC)
		a := s.Elevation(noon.Add(off))
		b := s.Elevation(noon.Add(-off))
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
