package solar

import (
	"fmt"
	"time"

	"greensprint/internal/trace"
)

// Availability is the renewable-energy availability class used by the
// paper's evaluation (the Min / Med / Max cases of Figures 5-10).
type Availability int

const (
	// Min availability: renewable output is (nearly) absent and
	// sprinting can only be powered by the batteries.
	Min Availability = iota
	// Med availability: renewable output covers roughly half of the
	// sprinting demand; batteries supplement the rest.
	Med
	// Max availability: renewable output alone can carry the
	// maximum sprinting intensity.
	Max
)

// String implements fmt.Stringer.
func (a Availability) String() string {
	switch a {
	case Min:
		return "Min"
	case Med:
		return "Med"
	case Max:
		return "Max"
	default:
		return fmt.Sprintf("Availability(%d)", int(a))
	}
}

// Levels lists the availability classes in evaluation order.
func Levels() []Availability { return []Availability{Min, Med, Max} }

// band returns the [lo,hi] fraction-of-peak band that defines an
// availability class for window classification.
func (a Availability) band() (lo, hi float64) {
	switch a {
	case Min:
		return 0, 0.05
	case Med:
		return 0.35, 0.65
	default: // Max
		return 0.90, 1.01
	}
}

// FindWindow scans tr for the first window of length d whose mean
// output, as a fraction of peakAC, falls inside the availability band
// of level. It returns the window start time. The scan advances in
// steps of d/4 for efficiency.
func FindWindow(tr *trace.Trace, d time.Duration, level Availability, peakAC float64) (time.Time, error) {
	if peakAC <= 0 {
		return time.Time{}, fmt.Errorf("solar: non-positive peak %v", peakAC)
	}
	if d <= 0 {
		return time.Time{}, fmt.Errorf("solar: non-positive window %v", d)
	}
	lo, hi := level.band()
	stride := d / 4
	if stride < tr.Step {
		stride = tr.Step
	}
	for at := tr.Start; !at.Add(d).After(tr.End()); at = at.Add(stride) {
		w := tr.Window(at, d)
		if len(w) == 0 {
			break
		}
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		frac := sum / float64(len(w)) / peakAC
		if frac >= lo && frac <= hi {
			return at, nil
		}
	}
	return time.Time{}, fmt.Errorf("solar: no %v-availability window of %v in trace %q", level, d, tr.Name)
}

// Synthesize produces a canonical supply trace for an availability
// class: Min is zero output, Med is a half-peak plateau with a mild
// diurnal slope and passing-cloud ripple, Max is a full-peak plateau.
// It is used when a scanned trace lacks a matching window, and by unit
// tests that need a deterministic supply shape.
func Synthesize(level Availability, d, step time.Duration, peakAC float64, seed int64) *trace.Trace {
	if step <= 0 {
		step = time.Minute
	}
	n := int(d / step)
	if n < 1 {
		n = 1
	}
	samples := make([]float64, n)
	switch level {
	case Min:
		// all zeros
	case Med:
		cl := newCloudProcess(PartlyCloudy, newSeededRand(seed))
		for i := range samples {
			// Plateau at ~55% of peak so that after cloud
			// attenuation the mean lands near half peak.
			samples[i] = 0.62 * peakAC * cl.next()
		}
	case Max:
		cl := newCloudProcess(Clear, newSeededRand(seed))
		for i := range samples {
			v := 1.04 * peakAC * cl.next()
			if v > peakAC {
				v = peakAC
			}
			samples[i] = v
		}
	}
	name := fmt.Sprintf("solar_synth_%s", level)
	return trace.New(name, time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC), step, samples)
}
