package solar

import "math/rand"

// newSeededRand centralizes RNG construction so every stochastic piece
// of the solar model is reproducible from an explicit seed.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
