package solar_test

import (
	"fmt"
	"time"

	"greensprint/internal/solar"
)

// Example reproduces the paper's array sizing: 275 W panels with a
// 0.77 DC→AC derate, three panels for the RE configuration and two for
// SRE.
func Example() {
	re := solar.Array{Panel: solar.DefaultPanel(), Panels: 3}
	sre := solar.Array{Panel: solar.DefaultPanel(), Panels: 2}
	fmt.Printf("panel peak AC: %s\n", solar.DefaultPanel().PeakAC())
	fmt.Printf("RE array:  %s\n", re.PeakAC())
	fmt.Printf("SRE array: %s\n", sre.PeakAC())
	// Output:
	// panel peak AC: 211.75W
	// RE array:  635.25W
	// SRE array: 423.5W
}

// ExampleGenerate synthesizes a one-day, one-minute NREL-style trace
// for the RE array and summarizes it.
func ExampleGenerate() {
	cfg := solar.DefaultGeneratorConfig()
	cfg.Days = 1
	cfg.Skies = []solar.Sky{solar.Clear}
	cfg.Seed = 42
	tr, err := solar.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d samples at %v\n", tr.Len(), tr.Step)
	fmt.Printf("night output: %v W\n", tr.At(cfg.Start.Add(2*time.Hour)))
	fmt.Printf("peak reaches nameplate: %v\n", tr.Max() > 0.9*float64(cfg.Array.PeakAC()))
	// Output:
	// 1440 samples at 1m0s
	// night output: 0 W
	// peak reaches nameplate: true
}
