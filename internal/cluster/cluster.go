// Package cluster describes the GreenSprint testbed topology (§II,
// Figure 2): a 10-server rack behind a PDU with a grid feed sized for
// Normal-mode operation, plus an on-site PV array attached at the PDU
// level that powers a green-provisioned subset of the servers through
// a separate green bus, each green server carrying a server-level
// battery. The four green-provisioning options of Table I are provided
// as constructors.
package cluster

import (
	"fmt"

	"greensprint/internal/battery"
	"greensprint/internal/solar"
	"greensprint/internal/units"
)

// DefaultServers is the prototype cluster size.
const DefaultServers = 10

// GreenConfig is one row of Table I: how many servers ride the green
// bus, how many PV panels feed it, and the per-server battery size.
type GreenConfig struct {
	// Name is the Table I label.
	Name string
	// GreenServers is the number of servers on the green bus (30%
	// of the cluster for RE, 20% for SRE).
	GreenServers int
	// Panels is the PV array size (3 for RE = 635.25 W peak AC,
	// 2 for SRE = 423.5 W).
	Panels int
	// BatteryAh is the per-server battery capacity (0 = no battery).
	BatteryAh units.AmpHour
	// MaxDoD optionally overrides the battery depth-of-discharge
	// limit (0 = the paper's default of 0.40). Used by the
	// DoD-vs-lifetime ablation.
	MaxDoD float64
}

// REBatt is Table I "RE-Batt": 30% servers, 3 panels, 10 Ah.
func REBatt() GreenConfig {
	return GreenConfig{Name: "RE-Batt", GreenServers: 3, Panels: 3, BatteryAh: 10}
}

// REOnly is Table I "REOnly": 30% servers, 3 panels, no battery.
func REOnly() GreenConfig {
	return GreenConfig{Name: "REOnly", GreenServers: 3, Panels: 3, BatteryAh: 0}
}

// RESBatt is Table I "RE-SBatt": 30% servers, 3 panels, 3.2 Ah.
func RESBatt() GreenConfig {
	return GreenConfig{Name: "RE-SBatt", GreenServers: 3, Panels: 3, BatteryAh: 3.2}
}

// SRESBatt is Table I "SRE-SBatt": 20% servers, 2 panels, 3.2 Ah.
func SRESBatt() GreenConfig {
	return GreenConfig{Name: "SRE-SBatt", GreenServers: 2, Panels: 2, BatteryAh: 3.2}
}

// TableI returns the four green-provisioning options in paper order.
func TableI() []GreenConfig {
	return []GreenConfig{REBatt(), REOnly(), RESBatt(), SRESBatt()}
}

// ByName finds a Table I configuration.
func ByName(name string) (GreenConfig, error) {
	for _, g := range TableI() {
		if g.Name == name {
			return g, nil
		}
	}
	return GreenConfig{}, fmt.Errorf("cluster: unknown green config %q", name)
}

// Validate reports configuration errors.
func (g GreenConfig) Validate() error {
	switch {
	case g.GreenServers < 0:
		return fmt.Errorf("cluster %s: negative green servers", g.Name)
	case g.Panels < 0:
		return fmt.Errorf("cluster %s: negative panels", g.Name)
	case g.BatteryAh < 0:
		return fmt.Errorf("cluster %s: negative battery capacity", g.Name)
	case g.MaxDoD < 0 || g.MaxDoD > 1:
		return fmt.Errorf("cluster %s: MaxDoD %v outside [0,1]", g.Name, g.MaxDoD)
	}
	return nil
}

// Array returns the PV array feeding the green bus.
func (g GreenConfig) Array() solar.Array {
	return solar.Array{Panel: solar.DefaultPanel(), Panels: g.Panels}
}

// PeakGreen returns the array's peak AC output.
func (g GreenConfig) PeakGreen() units.Watt { return g.Array().PeakAC() }

// NewBank builds the per-server battery bank for the green servers.
// A zero BatteryAh yields an empty (never-supplying) bank.
func (g GreenConfig) NewBank() (*battery.Bank, error) {
	if g.BatteryAh == 0 || g.GreenServers == 0 {
		return battery.NewBank(battery.ServerBattery(), 0)
	}
	cfg := battery.ServerBattery()
	cfg.Capacity = g.BatteryAh
	if g.MaxDoD > 0 {
		cfg.MaxDoD = g.MaxDoD
	}
	return battery.NewBank(cfg, g.GreenServers)
}

// Cluster is the full rack.
type Cluster struct {
	// Servers is the total server count (10 in the prototype).
	Servers int
	// GridBudget is the PDU's grid feed, sized for Normal mode
	// (10 × 100 W = 1000 W in the paper).
	GridBudget units.Watt
	// Green is the green-provisioning option in effect.
	Green GreenConfig
}

// New creates the paper's prototype cluster under a Table I option.
func New(green GreenConfig) (*Cluster, error) {
	if err := green.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Servers:    DefaultServers,
		GridBudget: units.Watt(DefaultServers) * 100,
		Green:      green,
	}
	if green.GreenServers > c.Servers {
		return nil, fmt.Errorf("cluster: %d green servers exceed cluster size %d",
			green.GreenServers, c.Servers)
	}
	return c, nil
}

// GridServers returns the number of servers fed only by the grid.
func (c *Cluster) GridServers() int { return c.Servers - c.Green.GreenServers }

// GridHeadroomPerGridServer returns the grid power available to each
// grid-fed server during a sprint, when the whole grid budget is
// dedicated to them (§IV: "the grid can conservatively support the
// other 7 servers sprinting at sub-optimal performance").
func (c *Cluster) GridHeadroomPerGridServer() units.Watt {
	n := c.GridServers()
	if n == 0 {
		return 0
	}
	return units.Watt(float64(c.GridBudget) / float64(n))
}
