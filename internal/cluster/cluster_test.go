package cluster

import (
	"testing"
	"time"

	"greensprint/internal/units"
)

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d", len(rows))
	}
	want := []struct {
		name    string
		servers int
		ah      units.AmpHour
		peak    float64
	}{
		{"RE-Batt", 3, 10, 635.25},
		{"REOnly", 3, 0, 635.25},
		{"RE-SBatt", 3, 3.2, 635.25},
		{"SRE-SBatt", 2, 3.2, 423.5},
	}
	for i, w := range want {
		g := rows[i]
		if g.Name != w.name || g.GreenServers != w.servers || g.BatteryAh != w.ah {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
		if got := float64(g.PeakGreen()); !units.NearlyEqual(got, w.peak, 1e-9) {
			t.Errorf("%s peak green = %v, want %v", g.Name, got, w.peak)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("RE-SBatt")
	if err != nil || g.BatteryAh != 3.2 {
		t.Errorf("ByName: %+v %v", g, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []GreenConfig{
		{Name: "a", GreenServers: -1},
		{Name: "b", Panels: -1},
		{Name: "c", BatteryAh: -1},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%s should fail validation", g.Name)
		}
	}
}

func TestNewBank(t *testing.T) {
	bank, err := REBatt().NewBank()
	if err != nil {
		t.Fatal(err)
	}
	if bank.Size() != 3 {
		t.Errorf("RE-Batt bank size = %d", bank.Size())
	}
	if got := bank.Unit(0).Config().Capacity; got != 10 {
		t.Errorf("capacity = %v", got)
	}
	// REOnly has no batteries.
	bank, err = REOnly().NewBank()
	if err != nil {
		t.Fatal(err)
	}
	if bank.Size() != 0 {
		t.Errorf("REOnly bank size = %d", bank.Size())
	}
	// Small battery config.
	bank, err = SRESBatt().NewBank()
	if err != nil {
		t.Fatal(err)
	}
	if bank.Size() != 2 || bank.Unit(0).Config().Capacity != 3.2 {
		t.Errorf("SRE-SBatt bank: size=%d", bank.Size())
	}
}

func TestNewCluster(t *testing.T) {
	c, err := New(REBatt())
	if err != nil {
		t.Fatal(err)
	}
	if c.Servers != 10 {
		t.Errorf("servers = %d", c.Servers)
	}
	if c.GridBudget != 1000 {
		t.Errorf("grid budget = %v", c.GridBudget)
	}
	if c.GridServers() != 7 {
		t.Errorf("grid servers = %d", c.GridServers())
	}
	// §IV: grid supports 7 servers sprinting sub-optimally at
	// ~143 W each.
	per := float64(c.GridHeadroomPerGridServer())
	if per < 140 || per > 145 {
		t.Errorf("per-grid-server headroom = %v, want ~142.9", per)
	}
	if _, err := New(GreenConfig{Name: "bad", GreenServers: -1}); err == nil {
		t.Error("invalid green config should fail")
	}
	if _, err := New(GreenConfig{Name: "huge", GreenServers: 11}); err == nil {
		t.Error("oversubscribed green servers should fail")
	}
}

func TestGridHeadroomAllGreen(t *testing.T) {
	c := &Cluster{Servers: 3, GridBudget: 300, Green: GreenConfig{GreenServers: 3}}
	if got := c.GridHeadroomPerGridServer(); got != 0 {
		t.Errorf("all-green headroom = %v", got)
	}
}

func TestBreakerWithinRating(t *testing.T) {
	b := NewBreaker(1000)
	for i := 0; i < 1000; i++ {
		if b.Step(1000, time.Second) {
			t.Fatal("breaker tripped at rated load")
		}
	}
	if b.Stress() != 0 {
		t.Errorf("stress at rating = %v", b.Stress())
	}
}

func TestBreakerMagneticTrip(t *testing.T) {
	b := NewBreaker(1000)
	if !b.Step(1300, time.Second) {
		t.Error("draw above the overload ceiling should trip immediately")
	}
	if !b.Tripped() {
		t.Error("Tripped should report true")
	}
	// Stays tripped.
	if !b.Step(0, time.Hour) {
		t.Error("breaker should remain open")
	}
	b.Reset()
	if b.Tripped() || b.Stress() != 0 {
		t.Error("Reset should close the breaker")
	}
}

func TestBreakerThermalTrip(t *testing.T) {
	b := NewBreaker(1000)
	// At the full overload ceiling (1250 W), trips after TripAfter.
	elapsed := time.Duration(0)
	for !b.Step(1250, 10*time.Second) {
		elapsed += 10 * time.Second
		if elapsed > 10*time.Minute {
			t.Fatal("never tripped")
		}
	}
	if elapsed < 90*time.Second || elapsed > 3*time.Minute {
		t.Errorf("tripped after %v, want ~2m", elapsed)
	}
}

func TestBreakerPartialOverloadSlower(t *testing.T) {
	fast := NewBreaker(1000)
	slow := NewBreaker(1000)
	for i := 0; i < 6; i++ {
		fast.Step(1250, 10*time.Second)
		slow.Step(1100, 10*time.Second)
	}
	if slow.Stress() >= fast.Stress() {
		t.Errorf("milder overload should stress less: %v vs %v", slow.Stress(), fast.Stress())
	}
}

func TestBreakerCoolsDown(t *testing.T) {
	b := NewBreaker(1000)
	b.Step(1250, time.Minute) // half the trip budget
	s := b.Stress()
	if s <= 0 {
		t.Fatal("no stress accumulated")
	}
	b.Step(500, 30*time.Second)
	if b.Stress() >= s {
		t.Error("stress should decay below rating")
	}
	b.Step(0, time.Hour)
	if b.Stress() != 0 {
		t.Errorf("stress should floor at 0, got %v", b.Stress())
	}
}

func TestBreakerDegenerate(t *testing.T) {
	b := &Breaker{}
	if b.Step(1e9, time.Hour) {
		t.Error("unrated breaker never trips")
	}
}

func TestEnergyAccount(t *testing.T) {
	a := EnergyAccount{Grid: 100, Green: 50, Battery: 25}
	if a.Total() != 175 {
		t.Errorf("total = %v", a.Total())
	}
	if got := a.GreenFraction(); !units.NearlyEqual(got, 50.0/175, 1e-12) {
		t.Errorf("green fraction = %v", got)
	}
	var zero EnergyAccount
	if zero.GreenFraction() != 0 {
		t.Error("empty account green fraction = 0")
	}
	a.Add(EnergyAccount{Grid: 10, Green: 20, Battery: 5, GreenCharged: 7, GridCharged: 3})
	if a.Grid != 110 || a.Green != 70 || a.Battery != 30 || a.GreenCharged != 7 || a.GridCharged != 3 {
		t.Errorf("after Add: %+v", a)
	}
}
