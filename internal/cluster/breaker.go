package cluster

import (
	"fmt"
	"time"

	"greensprint/internal/units"
)

// Breaker models a PDU circuit breaker with a thermal trip curve:
// sustained draw above the rating accumulates thermal stress and trips
// the breaker after a rating-dependent delay; draw at or below the
// rating lets it cool. The paper's PSS treats overloading the breaker
// as "the last resort to maintaining sprinting" and bounds the total
// downstream power to avoid tripping it (§III-A Case 3).
type Breaker struct {
	// Rated is the continuous rating.
	Rated units.Watt
	// MaxOverload is the largest tolerable draw as a multiple of
	// Rated (typical thermal-magnetic breakers pass ~1.25x briefly).
	MaxOverload float64
	// TripAfter is how long a draw at MaxOverload is sustained
	// before the breaker opens; smaller overloads last
	// proportionally longer.
	TripAfter time.Duration

	stress  float64 // accumulated thermal stress in [0,1]
	tripped bool
}

// NewBreaker returns a breaker with the paper-scale defaults: 25%
// overload tolerance for up to 2 minutes.
func NewBreaker(rated units.Watt) *Breaker {
	return &Breaker{Rated: rated, MaxOverload: 1.25, TripAfter: 2 * time.Minute}
}

// Tripped reports whether the breaker has opened.
func (b *Breaker) Tripped() bool { return b.tripped }

// Stress returns the accumulated thermal stress in [0,1]; 1 trips.
func (b *Breaker) Stress() float64 { return b.stress }

// Step advances the breaker by dt under the given draw and returns
// whether it is (now) tripped. Draw above Rated·MaxOverload trips
// immediately (magnetic trip); draw between Rated and the overload
// ceiling accumulates stress linearly; draw at or below Rated decays
// stress at the same rate.
func (b *Breaker) Step(draw units.Watt, dt time.Duration) bool {
	if b.tripped {
		return true
	}
	if b.Rated <= 0 || b.TripAfter <= 0 {
		return false
	}
	ceiling := units.Watt(float64(b.Rated) * b.MaxOverload)
	switch {
	case draw > ceiling:
		b.stress = 1
	case draw > b.Rated:
		// Fractional overload accumulates proportionally: full
		// overload (at the ceiling) costs dt/TripAfter.
		frac := float64(draw-b.Rated) / float64(ceiling-b.Rated)
		b.stress += frac * float64(dt) / float64(b.TripAfter)
	default:
		b.stress -= float64(dt) / float64(b.TripAfter)
		if b.stress < 0 {
			b.stress = 0
		}
	}
	if b.stress >= 1 {
		b.stress = 1
		b.tripped = true
	}
	return b.tripped
}

// Reset closes the breaker and clears the thermal state (a technician
// reclose: it recovers nuisance trips and organic thermal trips alike).
func (b *Breaker) Reset() {
	b.stress = 0
	b.tripped = false
}

// ForceTrip opens the breaker immediately regardless of load — the
// chaos nuisance trip. The thermal state saturates so a snapshot of a
// forced-open breaker restores as tripped.
func (b *Breaker) ForceTrip() {
	b.stress = 1
	b.tripped = true
}

// BreakerSnapshot is the serializable thermal state of a breaker; the
// trip-curve parameters (Rated, MaxOverload, TripAfter) come from the
// configuration the breaker is rebuilt with, not the snapshot.
type BreakerSnapshot struct {
	Stress  float64 `json:"stress"`
	Tripped bool    `json:"tripped"`
}

// Snapshot captures the breaker's mutable state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	return BreakerSnapshot{Stress: b.stress, Tripped: b.tripped}
}

// Restore replaces the breaker's thermal state with a snapshot.
func (b *Breaker) Restore(s BreakerSnapshot) error {
	if s.Stress < 0 || s.Stress > 1 || s.Stress != s.Stress {
		return fmt.Errorf("cluster: restore breaker: stress %v outside [0,1]", s.Stress)
	}
	b.stress = s.Stress
	b.tripped = s.Tripped
	return nil
}

// EnergyAccount accumulates energy delivered per source over a run; it
// feeds the evaluation's renewable-utilization and TCO analyses.
// The account rides inside PSS selector snapshots, so the json tags
// pin its historical wire names.
type EnergyAccount struct {
	Grid    units.WattHour `json:"Grid"`
	Green   units.WattHour `json:"Green"`
	Battery units.WattHour `json:"Battery"`
	// GreenCharged is green energy diverted into batteries (a
	// subset of neither Green nor Battery: it is banked, not
	// delivered to servers).
	GreenCharged units.WattHour `json:"GreenCharged"`
	// GridCharged is grid energy used to recharge batteries after
	// bursts.
	GridCharged units.WattHour `json:"GridCharged"`
}

// Total returns all energy delivered to the IT load.
func (a EnergyAccount) Total() units.WattHour { return a.Grid + a.Green + a.Battery }

// GreenFraction returns the share of delivered energy that came from
// the renewable source (0 when nothing was delivered).
func (a EnergyAccount) GreenFraction() float64 {
	t := a.Total()
	if t <= 0 {
		return 0
	}
	return float64(a.Green) / float64(t)
}

// Add merges another account.
func (a *EnergyAccount) Add(o EnergyAccount) {
	a.Grid += o.Grid
	a.Green += o.Green
	a.Battery += o.Battery
	a.GreenCharged += o.GreenCharged
	a.GridCharged += o.GridCharged
}
