package strategy

import (
	"bytes"
	"math"
	"testing"
	"time"

	"greensprint/internal/profile"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

var (
	specjbb  = workload.SPECjbb()
	specTab  *profile.Table
	webTab   *profile.Table
	memTab   *profile.Table
	webSrch  = workload.WebSearch()
	memcache = workload.Memcached()
)

func init() {
	var err error
	if specTab, err = profile.Build(specjbb, profile.DefaultLevels); err != nil {
		panic(err)
	}
	if webTab, err = profile.Build(webSrch, profile.DefaultLevels); err != nil {
		panic(err)
	}
	if memTab, err = profile.Build(memcache, profile.DefaultLevels); err != nil {
		panic(err)
	}
}

func inputs(tab *profile.Table, rate float64, budget units.Watt) Inputs {
	return Inputs{Table: tab, PredictedRate: rate, Budget: budget, Epoch: 5 * time.Minute}
}

func burstRate(p workload.Profile) float64 { return p.IntensityRate(12) }

func TestNormal(t *testing.T) {
	var s Normal
	if s.Name() != "Normal" {
		t.Error("name")
	}
	if got := s.Decide(inputs(specTab, burstRate(specjbb), 1000)); got != server.Normal() {
		t.Errorf("Normal decided %v", got)
	}
	s.Learn(Feedback{}) // no-op must not panic
}

func TestGreedyAbundantBudget(t *testing.T) {
	var s Greedy
	if got := s.Decide(inputs(specTab, burstRate(specjbb), 200)); got != server.MaxSprint() {
		t.Errorf("greedy with 200W = %v, want max sprint", got)
	}
}

func TestGreedyInsufficientBudgetFallsToNormal(t *testing.T) {
	var s Greedy
	// 140 W cannot carry the 155 W max sprint: Greedy has no middle
	// ground and returns to Normal — exactly why it "loses the
	// opportunity to utilize the lower green power supply periods".
	if got := s.Decide(inputs(specTab, burstRate(specjbb), 140)); got != server.Normal() {
		t.Errorf("greedy with 140W = %v, want Normal", got)
	}
	if got := s.Decide(Inputs{Budget: 500}); got != server.Normal() {
		t.Errorf("greedy without table = %v", got)
	}
}

func TestParallelScalesOnlyCores(t *testing.T) {
	var s Parallel
	for _, budget := range []units.Watt{100, 120, 140, 200} {
		got := s.Decide(inputs(specTab, burstRate(specjbb), budget))
		if got != server.Normal() && got.Freq != units.FreqMax {
			t.Errorf("budget %v: parallel chose %v (freq not pinned)", budget, got)
		}
	}
	// Abundant budget: all cores at max frequency.
	if got := s.Decide(inputs(specTab, burstRate(specjbb), 200)); got != server.MaxSprint() {
		t.Errorf("parallel at 200W = %v", got)
	}
	// Starved budget: Normal.
	if got := s.Decide(inputs(specTab, burstRate(specjbb), 50)); got != server.Normal() {
		t.Errorf("parallel at 50W = %v", got)
	}
}

func TestPacingScalesOnlyFrequency(t *testing.T) {
	var s Pacing
	for _, budget := range []units.Watt{120, 140, 200} {
		got := s.Decide(inputs(specTab, burstRate(specjbb), budget))
		if got != server.Normal() && got.Cores != server.MaxCores {
			t.Errorf("budget %v: pacing chose %v (cores not pinned)", budget, got)
		}
	}
	if got := s.Decide(inputs(specTab, burstRate(specjbb), 200)); got != server.MaxSprint() {
		t.Errorf("pacing at 200W = %v", got)
	}
}

func TestDecisionsRespectBudget(t *testing.T) {
	h, err := NewHybrid(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	rate := burstRate(specjbb)
	level := specTab.LevelFor(rate)
	for _, s := range []Strategy{Greedy{}, Parallel{}, Pacing{}, h} {
		for _, budget := range []units.Watt{90, 110, 130, 150, 170} {
			got := s.Decide(inputs(specTab, rate, budget))
			if got == server.Normal() {
				continue // grid fallback is always allowed
			}
			p, ok := specTab.LoadPower(level, got)
			if !ok {
				t.Fatalf("%s chose unprofiled %v", s.Name(), got)
			}
			if p > budget {
				t.Errorf("%s at %v chose %v drawing %v", s.Name(), budget, got, p)
			}
		}
	}
}

func TestPacingBeatsParallelForSPECjbb(t *testing.T) {
	// §IV-A: "Pacing slightly outperforms Parallel in all cases"
	// for SPECjbb (and Memcached).
	for _, tc := range []struct {
		p   workload.Profile
		tab *profile.Table
	}{{specjbb, specTab}, {memcache, memTab}} {
		rate := burstRate(tc.p)
		level := tc.tab.LevelFor(rate)
		for _, budget := range []units.Watt{120, 130, 140} {
			par := Parallel{}.Decide(inputs(tc.tab, rate, budget))
			pac := Pacing{}.Decide(inputs(tc.tab, rate, budget))
			ePar, _ := tc.tab.Lookup(level, par)
			ePac, _ := tc.tab.Lookup(level, pac)
			if ePac.Goodput < ePar.Goodput {
				t.Errorf("%s at %v: pacing %v < parallel %v", tc.p.Name, budget, ePac.Goodput, ePar.Goodput)
			}
		}
	}
}

func TestWebSearchKnobsComparable(t *testing.T) {
	// §IV-C: for Web-Search "Pacing shows no more benefits than
	// Parallel ... similar performance under varied conditions".
	rate := burstRate(webSrch)
	level := webTab.LevelFor(rate)
	for _, budget := range []units.Watt{120, 130, 140} {
		par := Parallel{}.Decide(inputs(webTab, rate, budget))
		pac := Pacing{}.Decide(inputs(webTab, rate, budget))
		ePar, _ := webTab.Lookup(level, par)
		ePac, _ := webTab.Lookup(level, pac)
		if ePar.Goodput == 0 {
			continue
		}
		if diff := math.Abs(ePac.Goodput-ePar.Goodput) / ePar.Goodput; diff > 0.15 {
			t.Errorf("budget %v: pacing %v vs parallel %v differ by %.0f%%",
				budget, ePac.Goodput, ePar.Goodput, diff*100)
		}
	}
}

func TestHybridDominates(t *testing.T) {
	// Hybrid "always performs the best": at every budget its chosen
	// setting delivers at least the goodput of every other strategy.
	h, err := NewHybrid(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	rate := burstRate(specjbb)
	level := specTab.LevelFor(rate)
	for _, budget := range []units.Watt{100, 115, 125, 135, 145, 160, 200} {
		in := inputs(specTab, rate, budget)
		hCfg := h.Decide(in)
		eH, _ := specTab.Lookup(level, hCfg)
		for _, s := range []Strategy{Greedy{}, Parallel{}, Pacing{}} {
			cfg := s.Decide(in)
			e, _ := specTab.Lookup(level, cfg)
			if e.Goodput > eH.Goodput+1e-9 {
				t.Errorf("budget %v: %s (%v, %v) beats Hybrid (%v, %v)",
					budget, s.Name(), cfg, e.Goodput, hCfg, eH.Goodput)
			}
		}
	}
}

func TestHybridPrefersFrugalAtLowIntensity(t *testing.T) {
	// Figure 10b: at Int=9 maximal sprinting is wasteful. Hybrid
	// should serve the load with a cheaper setting than max sprint.
	h, err := NewHybrid(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	rate := specjbb.IntensityRate(9)
	cfg := h.Decide(inputs(specTab, rate, 200))
	level := specTab.LevelFor(rate)
	chosen, _ := specTab.Lookup(level, cfg)
	maxE, _ := specTab.Lookup(level, server.MaxSprint())
	if chosen.Power >= maxE.Power {
		t.Errorf("hybrid at Int=9 chose %v (%v), not cheaper than max sprint (%v)",
			cfg, chosen.Power, maxE.Power)
	}
	// And it still serves the offered load.
	if chosen.Goodput < rate*0.99 {
		t.Errorf("hybrid at Int=9 sheds load: %v < %v", chosen.Goodput, rate)
	}
}

func TestHybridStarvedBudget(t *testing.T) {
	h, err := NewHybrid(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Decide(inputs(specTab, burstRate(specjbb), 40)); got != server.Normal() {
		t.Errorf("starved hybrid = %v", got)
	}
}

func TestHybridLearns(t *testing.T) {
	h, err := NewHybrid(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	in := inputs(specTab, burstRate(specjbb), 160)
	cfg := h.Decide(in)
	st := h.stateFor(in)
	var action int
	for ai, c := range h.table.Actions() {
		if c == cfg {
			action = ai
		}
	}
	before := h.table.Q(st, action)
	// Strongly negative outcome: power overdraw.
	h.Learn(Feedback{
		Chosen:  cfg,
		Supply:  100,
		Power:   155,
		Offered: burstRate(specjbb),
		Goodput: burstRate(specjbb),
		Latency: 0.4,
		Next:    in,
	})
	after := h.table.Q(st, action)
	if after >= before {
		t.Errorf("negative feedback should lower Q: %v -> %v", before, after)
	}
	// Learn without a prior decision is a no-op.
	h2, _ := NewHybrid(specjbb, specTab)
	h2.Learn(Feedback{Supply: 100, Power: 155})
}

func TestNewHybridErrors(t *testing.T) {
	if _, err := NewHybrid(workload.Profile{}, specTab); err == nil {
		t.Error("invalid profile should error")
	}
	if _, err := NewHybrid(specjbb, nil); err == nil {
		t.Error("nil table should error")
	}
}

func TestEffectiveLatency(t *testing.T) {
	p := specjbb
	c := server.MaxSprint()
	// Light load: the true percentile, well under the deadline.
	light := EffectiveLatency(p, c, p.MaxGoodput(c)/2)
	if light >= p.Deadline {
		t.Errorf("light latency = %v", light)
	}
	// Saturating load: inflated beyond the deadline, finite.
	heavy := EffectiveLatency(p, c, p.MaxGoodput(c)*2)
	if heavy <= p.Deadline || math.IsInf(heavy, 1) {
		t.Errorf("heavy latency = %v", heavy)
	}
	// Monotone in capacity: Normal mode is worse at the same load.
	normal := EffectiveLatency(p, server.Normal(), p.MaxGoodput(c)*2)
	if normal <= heavy {
		t.Errorf("normal %v should be worse than sprint %v", normal, heavy)
	}
	// Zero offered load is trivially fast.
	if got := EffectiveLatency(p, c, 0); got >= p.Deadline {
		t.Errorf("idle latency = %v", got)
	}
}

func TestEvaluatedAndByName(t *testing.T) {
	ss, err := Evaluated(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"Greedy", "Parallel", "Pacing", "Hybrid"}
	if len(ss) != len(wantOrder) {
		t.Fatalf("evaluated = %d", len(ss))
	}
	for i, s := range ss {
		if s.Name() != wantOrder[i] {
			t.Errorf("order[%d] = %s", i, s.Name())
		}
	}
	for _, n := range Names() {
		s, err := ByName(n, specjbb, specTab)
		if err != nil || s.Name() != n {
			t.Errorf("ByName(%q): %v %v", n, s, err)
		}
	}
	if _, err := ByName("nope", specjbb, specTab); err == nil {
		t.Error("unknown strategy should error")
	}
	if _, err := Evaluated(workload.Profile{}, specTab); err == nil {
		t.Error("invalid profile should error")
	}
}

func TestHybridQPersistence(t *testing.T) {
	h, err := NewHybrid(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	// Train a little so the table differs from a fresh bootstrap.
	in := inputs(specTab, burstRate(specjbb), 160)
	cfg := h.Decide(in)
	h.Learn(Feedback{Chosen: cfg, Supply: 100, Power: 155, Offered: burstRate(specjbb),
		Goodput: burstRate(specjbb) / 4, Latency: 2.0, Next: in})

	var buf bytes.Buffer
	if err := h.SaveQ(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := NewHybrid(specjbb, specTab)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.LoadQ(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The restored strategy makes the same decision as the trained one.
	if got, want := h2.Decide(in), h.Decide(in); got != want {
		t.Errorf("restored decision %v, trained %v", got, want)
	}
	if err := h2.LoadQ(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("corrupt table should fail to load")
	}
}

func TestNonLearningStrategiesIgnoreFeedback(t *testing.T) {
	// Learn is part of the Strategy contract; the static strategies
	// must accept (and ignore) feedback without side effects.
	for _, s := range []Strategy{Normal{}, Greedy{}, Parallel{}, Pacing{}} {
		in := inputs(specTab, burstRate(specjbb), 200)
		before := s.Decide(in)
		s.Learn(Feedback{Supply: 1, Power: 999, Latency: 99})
		if after := s.Decide(in); after != before {
			t.Errorf("%s changed decision after Learn: %v -> %v", s.Name(), before, after)
		}
	}
}

func TestInputsFractionClamping(t *testing.T) {
	in := Inputs{
		Budget:         100,
		SprintFraction: func(p units.Watt) float64 { return float64(p) },
	}
	if got := in.fraction(-5); got != 0 {
		t.Errorf("negative fraction = %v", got)
	}
	if got := in.fraction(5); got != 1 {
		t.Errorf("oversized fraction = %v", got)
	}
	if got := in.fraction(0.5); got != 0.5 {
		t.Errorf("plain fraction = %v", got)
	}
}

func TestNewHybridWithOptionsValidation(t *testing.T) {
	if _, err := NewHybridWithOptions(specjbb, specTab, HybridOptions{QuantizationStep: 1.5}); err == nil {
		t.Error("step > 1 should fail")
	}
	h, err := NewHybridWithOptions(specjbb, specTab, HybridOptions{QuantizationStep: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if h.QTable() == nil {
		t.Error("QTable accessor")
	}
	if _, err := NewHybridWithOptions(workload.Profile{}, specTab, HybridOptions{}); err == nil {
		t.Error("invalid profile should fail")
	}
	if _, err := NewHybridWithOptions(specjbb, nil, HybridOptions{}); err == nil {
		t.Error("nil table should fail")
	}
}

func TestHybridDisableBurnValue(t *testing.T) {
	h, err := NewHybridWithOptions(specjbb, specTab, strategyOptsPureQ())
	if err != nil {
		t.Fatal(err)
	}
	// With the burn path disabled and a starved budget, the pure-Q
	// policy falls back to Normal.
	if got := h.Decide(inputs(specTab, burstRate(specjbb), 40)); got != server.Normal() {
		t.Errorf("pure-Q starved = %v", got)
	}
	// With an abundant budget it still sprints (bootstrapped Q).
	if got := h.Decide(inputs(specTab, burstRate(specjbb), 200)); !got.IsSprinting() {
		t.Errorf("pure-Q abundant = %v", got)
	}
}

func strategyOptsPureQ() HybridOptions {
	return HybridOptions{DisableBurnValue: true}
}

func TestHybridLiteralRewardLearns(t *testing.T) {
	h, err := NewHybridWithOptions(specjbb, specTab, HybridOptions{LiteralReward: true})
	if err != nil {
		t.Fatal(err)
	}
	in := inputs(specTab, burstRate(specjbb), 160)
	cfg := h.Decide(in)
	// Learning with the literal reward must not panic and must
	// update the table.
	h.Learn(Feedback{Chosen: cfg, Supply: 100, Power: 155, Offered: 1,
		Goodput: 1, Latency: 0.1, Next: in})
}
