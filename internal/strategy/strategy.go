// Package strategy implements the paper's four power-management
// strategies (§III-B) plus the Normal baseline:
//
//	Normal   — never sprint: S0 (6 cores @ 1.2 GHz).
//	Greedy   — sprint at the maximum intensity whenever the supply can
//	           carry it; otherwise fall back to Normal.
//	Parallel — scale only the core count (frequency pinned at max).
//	Pacing   — scale only the frequency (all cores active).
//	Hybrid   — Q-learning over the joint core×frequency space,
//	           bootstrapped from the profiling table and updated each
//	           epoch with the reward mechanism.
//
// Every strategy decides a per-server setting for the next scheduling
// epoch from the profiling table (LoadPower(L,S)), the predicted
// workload level and the per-server power budget the PSS can commit —
// solving the paper's Eq. 2/3 power-mismatch problem by exhaustive
// search over the (small) knob space.
package strategy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"greensprint/internal/profile"
	"greensprint/internal/rl"
	"greensprint/internal/server"
	"greensprint/internal/units"
	"greensprint/internal/workload"
)

// Inputs carries everything a strategy may consult when choosing the
// next epoch's setting for one green server.
type Inputs struct {
	// Table is the workload's profiling table.
	Table *profile.Table
	// PredictedRate is the EWMA-predicted per-server offered rate
	// for the next epoch (L_pre in the paper).
	PredictedRate float64
	// Budget is the per-server power the PSS can commit for the
	// epoch (green prediction + Peukert-sustainable battery share).
	Budget units.Watt
	// Epoch is the scheduling-epoch length.
	Epoch time.Duration
	// SprintFraction estimates, for a per-server demand, the
	// fraction of the epoch the PSS can power it before the battery
	// floor ends the sprint (1 = the whole epoch). When nil, a
	// demand within Budget is treated as fully sustainable and
	// anything above it as unsustainable. Strategies use it to value
	// partial-epoch sprints: the paper's prototype burns the battery
	// at full intensity and lets the sprint end mid-epoch rather
	// than refusing to sprint at all.
	SprintFraction func(units.Watt) float64
	// AliveFraction is the share of green servers currently up (1
	// when no chaos is active) and BatteryHealth the bank's mean
	// capacity-fade multiplier. Failure-aware strategies fold them
	// into their state so degraded-capacity epochs are learned
	// separately from healthy ones. The zero value means "no
	// degradation signal" and is treated as fully healthy, so
	// callers that predate chaos keep their exact behaviour.
	AliveFraction float64
	BatteryHealth float64
}

// effectiveCapacity collapses the degradation signals into one
// capacity fraction, mapping unset (zero) fields to healthy.
func (in Inputs) effectiveCapacity() float64 {
	alive, health := in.AliveFraction, in.BatteryHealth
	if alive == 0 {
		alive = 1
	}
	if health == 0 {
		health = 1
	}
	return alive * health
}

// fraction returns the sustainable fraction of the epoch for a
// per-server demand.
func (in Inputs) fraction(p units.Watt) float64 {
	if in.SprintFraction != nil {
		f := in.SprintFraction(p)
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	if p <= in.Budget {
		return 1
	}
	return 0
}

// Feedback carries the measured outcome of the previous epoch, used by
// learning strategies.
type Feedback struct {
	// Chosen is the setting that ran.
	Chosen server.Config
	// Supply is the per-server power that was actually available.
	Supply units.Watt
	// Power is the per-server power actually drawn.
	Power units.Watt
	// Offered and Goodput are the per-server request rates.
	Offered float64
	Goodput float64
	// Latency is the measured SLA-percentile latency in seconds of
	// served requests (+Inf if overloaded).
	Latency float64
	// Next is the strategy input for the upcoming epoch (the MDP's
	// successor state).
	Next Inputs
}

// Strategy chooses a per-server sprinting intensity each epoch.
type Strategy interface {
	// Name returns the paper's strategy name.
	Name() string
	// Decide picks the setting for the next epoch.
	Decide(in Inputs) server.Config
	// Learn feeds back the measured outcome of the previous epoch.
	Learn(fb Feedback)
	// SnapshotState serializes the strategy's internal learning
	// state for checkpointing. Stateless strategies return nil.
	SnapshotState() (json.RawMessage, error)
	// RestoreState replaces the strategy's internal state with a
	// previously snapshotted one. Stateless strategies accept only
	// an empty state.
	RestoreState(raw json.RawMessage) error
}

// Stateless provides the no-op snapshot half of the Strategy interface
// for strategies without internal learning state; embed it.
type Stateless struct{}

// SnapshotState implements Strategy: nothing to capture.
func (Stateless) SnapshotState() (json.RawMessage, error) { return nil, nil }

// RestoreState implements Strategy: only an empty state is valid.
func (Stateless) RestoreState(raw json.RawMessage) error {
	if len(raw) > 0 {
		return fmt.Errorf("strategy: stateless strategy cannot restore %d bytes of state", len(raw))
	}
	return nil
}

// Normal is the non-sprinting baseline.
type Normal struct{ Stateless }

// Name implements Strategy.
func (Normal) Name() string { return "Normal" }

// Decide implements Strategy.
func (Normal) Decide(Inputs) server.Config { return server.Normal() }

// Learn implements Strategy.
func (Normal) Learn(Feedback) {}

// Greedy activates all cores at the highest frequency whenever the
// budget sustains it, with no prediction of future green production
// (§III-B); otherwise it returns to Normal.
type Greedy struct{ Stateless }

// Name implements Strategy.
func (Greedy) Name() string { return "Greedy" }

// Decide implements Strategy: Greedy demands the maximum intensity
// whenever any sprint-capable supply exists — even if the battery will
// end the sprint mid-epoch — and otherwise returns to Normal. It has
// no middle ground, which is why it wastes green supply periods that
// are too weak to carry the full sprint.
func (Greedy) Decide(in Inputs) server.Config {
	if in.Table == nil {
		return server.Normal()
	}
	level := in.Table.LevelFor(in.PredictedRate)
	if p, ok := in.Table.LoadPower(level, server.MaxSprint()); ok {
		if in.fraction(p) > 0.02 {
			return server.MaxSprint()
		}
	}
	return server.Normal()
}

// Learn implements Strategy.
func (Greedy) Learn(Feedback) {}

// Parallel scales only the core count, pinning the frequency at the
// maximum.
type Parallel struct{ Stateless }

// Name implements Strategy.
func (Parallel) Name() string { return "Parallel" }

// Decide implements Strategy.
func (Parallel) Decide(in Inputs) server.Config {
	return bestWithin(in, func(c server.Config) bool { return c.Freq == units.FreqMax })
}

// Learn implements Strategy.
func (Parallel) Learn(Feedback) {}

// Pacing scales only the frequency, keeping every core active.
type Pacing struct{ Stateless }

// Name implements Strategy.
func (Pacing) Name() string { return "Pacing" }

// Decide implements Strategy.
func (Pacing) Decide(in Inputs) server.Config {
	return bestWithin(in, func(c server.Config) bool { return c.Cores == server.MaxCores })
}

// Learn implements Strategy.
func (Pacing) Learn(Feedback) {}

// bestWithin picks the setting (among those admitted by filter) with
// the highest expected epoch goodput, valuing partial-epoch sprints:
// a setting the battery can only power for fraction f of the epoch
// delivers f·goodput(S) + (1−f)·goodput(Normal). Ties break toward
// lower power. Normal is always a candidate.
func bestWithin(in Inputs, filter func(server.Config) bool) server.Config {
	if in.Table == nil {
		return server.Normal()
	}
	level := in.Table.LevelFor(in.PredictedRate)
	normalGood := 0.0
	if e, ok := in.Table.Lookup(level, server.Normal()); ok {
		normalGood = e.Goodput
	}
	best := server.Normal()
	bestVal := normalGood
	bestPower := units.Watt(math.Inf(1))
	if e, ok := in.Table.Lookup(level, server.Normal()); ok {
		bestPower = e.Power
	}
	for _, e := range in.Table.LevelEntries(level) {
		c := e.Config()
		if filter != nil && !filter(c) {
			continue
		}
		f := in.fraction(e.Power)
		if f <= 0 {
			continue
		}
		val := f*e.Goodput + (1-f)*normalGood
		if val > bestVal+1e-9 || (val > bestVal-1e-9 && e.Power < bestPower) {
			best, bestVal, bestPower = c, val, e.Power
		}
	}
	return best
}

// Hybrid combines core-count and frequency scaling with tabular
// Q-learning (§III-B). Its state is the quantized per-server supply
// and the workload level; its actions are the full knob space; its
// reward is the shaped Algorithm 1 signal (see rl.ShapedReward). The
// table is bootstrapped from the profiling data so the very first
// decisions are already sensible, then refined online.
type Hybrid struct {
	table     *rl.Table
	quantizer rl.Quantizer
	profile   workload.Profile
	profTable *profile.Table
	opts      HybridOptions
	// cells is the profiling table flattened to a dense
	// (level × action) array so the per-epoch Decide loops index
	// instead of hashing a map key per action; normalIdx is
	// server.Normal()'s action index.
	cells     []actionCell
	normalIdx int
	// last links the previous decision to the next state for the
	// Q update.
	last struct {
		valid  bool
		state  rl.State
		action int
	}
}

type actionCell struct {
	ok bool
	e  profile.Entry
}

// HybridOptions tunes the Hybrid strategy away from the paper's
// defaults; the zero value reproduces the paper (5% quantization,
// shaped reward). Used by the ablation experiments.
type HybridOptions struct {
	// QuantizationStep overrides the 5% power-state step.
	QuantizationStep float64
	// LiteralReward switches learning to the verbatim Algorithm 1
	// reward instead of the shaped variant (see rl.ShapedReward for
	// why the default is shaped).
	LiteralReward bool
	// DisableBurnValue removes the expected-goodput comparison from
	// Decide, leaving a pure greedy-Q policy. With it disabled, the
	// policy's quality depends entirely on the reward signal — the
	// ablation that shows the literal Algorithm 1 reward collapsing
	// to Normal mode.
	DisableBurnValue bool
}

// NewHybrid builds a Hybrid strategy for one workload, bootstrapping
// the Q-table from its profiling table.
func NewHybrid(p workload.Profile, tab *profile.Table) (*Hybrid, error) {
	return NewHybridWithOptions(p, tab, HybridOptions{})
}

// NewHybridWithOptions builds a Hybrid with explicit tuning.
func NewHybridWithOptions(p workload.Profile, tab *profile.Table, opts HybridOptions) (*Hybrid, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tab == nil {
		return nil, fmt.Errorf("strategy: hybrid needs a profiling table")
	}
	qt, err := rl.NewTable(rl.DefaultLearningRate, rl.DefaultDiscount)
	if err != nil {
		return nil, err
	}
	quant := rl.NewQuantizer(server.IdlePower, p.PeakPower)
	if opts.QuantizationStep > 0 {
		if opts.QuantizationStep > 1 {
			return nil, fmt.Errorf("strategy: quantization step %v outside (0,1]", opts.QuantizationStep)
		}
		quant.Step = opts.QuantizationStep
	}
	h := &Hybrid{
		table:     qt,
		quantizer: quant,
		profile:   p,
		profTable: tab,
		opts:      opts,
		normalIdx: -1,
	}
	actions := qt.Actions()
	h.cells = make([]actionCell, tab.Levels*len(actions))
	for ai, cfg := range actions {
		if cfg == server.Normal() {
			h.normalIdx = ai
		}
		for ll := 0; ll < tab.Levels; ll++ {
			if e, ok := tab.Lookup(ll, cfg); ok {
				h.cells[ll*len(actions)+ai] = actionCell{ok: true, e: e}
			}
		}
	}
	h.bootstrap()
	return h, nil
}

// bootstrap seeds the Q-table with one-step shaped rewards estimated
// from the profiling data ("we learn the initial values of lookup
// table from the profiling data collected by Parallel and Pacing").
// The effective latency of a (level, action) cell does not depend on
// the power level, so it is computed once per cell and reused across
// all ~21 quantized power levels instead of re-running the sojourn
// bisection for each — the dominant cost of constructing a Hybrid.
func (h *Hybrid) bootstrap() {
	actions := h.table.Actions()
	na := len(actions)
	lats := make([]float64, len(h.cells))
	for ll := 0; ll < h.profTable.Levels; ll++ {
		for ai, cfg := range actions {
			if c := h.cells[ll*na+ai]; c.ok {
				lats[ll*na+ai] = EffectiveLatency(h.profile, cfg, c.e.OfferedRate)
			}
		}
	}
	for pl := 0; pl < h.quantizer.Levels(); pl++ {
		supply := h.supplyOf(pl)
		for ll := 0; ll < h.profTable.Levels; ll++ {
			st := rl.State{PowerLevel: pl, LoadLevel: ll}
			for ai := range actions {
				c := h.cells[ll*na+ai]
				if !c.ok {
					continue
				}
				r := h.reward(supply, c.e.Power, h.profile.Deadline, lats[ll*na+ai])
				h.table.Seed(st, ai, r)
			}
		}
	}
}

// supplyOf converts a power level back to the center of its bucket.
func (h *Hybrid) supplyOf(level int) units.Watt {
	frac := float64(level) * h.quantizer.Step
	return h.quantizer.Min + units.Watt(frac*float64(h.quantizer.Max-h.quantizer.Min))
}

// Name implements Strategy.
func (*Hybrid) Name() string { return "Hybrid" }

// stateFor derives the MDP state from strategy inputs. The degraded
// dimension is 0 for healthy epochs — every pre-chaos state lands in
// the bucket the bootstrap seeded — and rises with lost capacity, so
// fault-mode experience accumulates in its own rows instead of
// overwriting healthy-mode estimates (the RARE-style degraded-capacity
// state feature).
func (h *Hybrid) stateFor(in Inputs) rl.State {
	return rl.State{
		PowerLevel: h.quantizer.Level(in.Budget),
		LoadLevel:  h.profTable.LevelFor(in.PredictedRate),
		Degraded:   rl.DegradedLevel(in.effectiveCapacity()),
	}
}

// Decide implements Strategy. Among settings the PSS can power for the
// whole epoch, Hybrid takes the greedy Q action (power-provision
// safety plus learned QoS/efficiency trade-offs). It then compares
// that choice against the best partial-epoch "burn": a setting the
// battery can only sustain for part of the epoch may still deliver
// more total goodput (the paper's observation that maximal sprinting
// on batteries is the best policy for SPECjbb). The higher expected
// goodput wins; Normal remains the fallback when nothing is powerable.
func (h *Hybrid) Decide(in Inputs) server.Config {
	st := h.stateFor(in)
	level := h.profTable.LevelFor(in.PredictedRate)
	na := len(h.table.Actions())
	cells := h.cells[level*na : (level+1)*na]
	normalGood := 0.0
	if h.normalIdx >= 0 && cells[h.normalIdx].ok {
		normalGood = cells[h.normalIdx].e.Goodput
	}
	// Greedy Q action among fully sustainable settings. The row is
	// fetched once (nil for an unseen state, meaning all-zero
	// estimates) and the profiling cells are indexed densely, so the
	// loop does no map lookups.
	row := h.table.Row(st)
	bestIdx, bestQ, bestQGood := -1, math.Inf(-1), 0.0
	for ai := range cells {
		c := &cells[ai]
		if !c.ok || in.fraction(c.e.Power) < 0.999 {
			continue
		}
		q := 0.0
		if row != nil {
			q = row[ai]
		}
		if q > bestQ {
			bestIdx, bestQ, bestQGood = ai, q, c.e.Goodput
		}
	}
	if h.opts.DisableBurnValue {
		if bestIdx < 0 {
			h.last.valid = false
			return server.Normal()
		}
		h.last.valid = true
		h.last.state = st
		h.last.action = bestIdx
		return h.table.Actions()[bestIdx]
	}
	// Best partial-epoch burn by expected goodput.
	burnIdx, burnVal := -1, normalGood
	for ai := range cells {
		c := &cells[ai]
		if !c.ok {
			continue
		}
		f := in.fraction(c.e.Power)
		if f <= 0 {
			continue
		}
		if v := f*c.e.Goodput + (1-f)*normalGood; v > burnVal+1e-9 {
			burnIdx, burnVal = ai, v
		}
	}
	chosen := -1
	switch {
	case bestIdx >= 0 && bestQGood >= burnVal-1e-9:
		chosen = bestIdx
	case burnIdx >= 0:
		chosen = burnIdx
	}
	if chosen < 0 {
		h.last.valid = false
		return server.Normal()
	}
	h.last.valid = true
	h.last.state = st
	h.last.action = chosen
	return h.table.Actions()[chosen]
}

// Learn implements Strategy: updates R(c_t, a_t) from the measured
// epoch outcome using the shaped Algorithm 1 reward.
func (h *Hybrid) Learn(fb Feedback) {
	if !h.last.valid {
		return
	}
	lat := fb.Latency
	if fb.Goodput < fb.Offered*0.999 && fb.Offered > 0 {
		// Shedding: degrade the effective latency by the unserved
		// share, as EffectiveLatency does.
		lat = h.profile.Deadline * fb.Offered / math.Max(fb.Goodput, 1e-9)
	}
	r := h.reward(fb.Supply, fb.Power, h.profile.Deadline, lat)
	h.table.Update(h.last.state, h.last.action, r, h.stateFor(fb.Next))
	h.last.valid = false
}

// reward dispatches to the literal Algorithm 1 reward or the shaped
// default.
func (h *Hybrid) reward(supp, curr units.Watt, target, current float64) float64 {
	if h.opts.LiteralReward {
		return rl.Reward(supp, curr, target, current)
	}
	return rl.ShapedReward(supp, curr, target, current)
}

// QTable exposes the learned table for inspection and ablation.
func (h *Hybrid) QTable() *rl.Table { return h.table }

// EffectiveLatency returns the SLA-relevant latency of running profile
// p at config c under offered load: the SLA-percentile sojourn time
// when the load is fully served, or the deadline inflated by the
// unserved share when the setting sheds load. It is finite and
// monotone in the setting's capacity, which the learning layer needs.
// It delegates to the process-level memoized queueing kernel, so the
// QoS-capacity bisection behind Goodput runs once per (profile,
// config) instead of once per call; the cached values are exact, so
// results are bit-identical to the direct computation.
func EffectiveLatency(p workload.Profile, c server.Config, offered float64) float64 {
	return workload.SharedKernel(p).EffectiveLatency(c, offered)
}

// Evaluated returns the four sprinting strategies compared in every
// figure, in the paper's plotting order.
func Evaluated(p workload.Profile, tab *profile.Table) ([]Strategy, error) {
	h, err := NewHybrid(p, tab)
	if err != nil {
		return nil, err
	}
	return []Strategy{Greedy{}, Parallel{}, Pacing{}, h}, nil
}

// ByName builds a single strategy by its paper name.
func ByName(name string, p workload.Profile, tab *profile.Table) (Strategy, error) {
	switch name {
	case "Normal":
		return Normal{}, nil
	case "Greedy":
		return Greedy{}, nil
	case "Parallel":
		return Parallel{}, nil
	case "Pacing":
		return Pacing{}, nil
	case "Hybrid":
		return NewHybrid(p, tab)
	default:
		return nil, fmt.Errorf("strategy: unknown strategy %q", name)
	}
}

// Names lists all five strategies.
func Names() []string { return []string{"Normal", "Greedy", "Parallel", "Pacing", "Hybrid"} }

// SaveQ serializes the learned Q-table so a restarted controller can
// resume with its accumulated experience.
func (h *Hybrid) SaveQ(w io.Writer) error { return h.table.WriteJSON(w) }

// LoadQ replaces the Q-table with a previously saved one (validated
// against the current knob space).
func (h *Hybrid) LoadQ(r io.Reader) error {
	t, err := rl.ReadJSON(r)
	if err != nil {
		return err
	}
	h.table = t
	h.last.valid = false
	return nil
}

// hybridState is the serialized form of a Hybrid's mutable state: the
// learned Q-table (in the rl package's persisted format, which pins
// the knob space) plus the pending decision→feedback link when a
// snapshot is taken between Decide and Learn.
type hybridState struct {
	QTable json.RawMessage `json:"q_table"`
	Last   *hybridLast     `json:"last,omitempty"`
}

type hybridLast struct {
	State  rl.State `json:"state"`
	Action int      `json:"action"`
}

// SnapshotState implements Strategy by delegating to the rl package's
// JSON persistence.
func (h *Hybrid) SnapshotState() (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := h.table.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("strategy: snapshot hybrid: %w", err)
	}
	st := hybridState{QTable: buf.Bytes()}
	if h.last.valid {
		st.Last = &hybridLast{State: h.last.state, Action: h.last.action}
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("strategy: snapshot hybrid: %w", err)
	}
	return raw, nil
}

// RestoreState implements Strategy. The embedded Q-table is validated
// against the current knob space by rl.ReadJSON, so a snapshot from a
// different action space is rejected with a clear error.
func (h *Hybrid) RestoreState(raw json.RawMessage) error {
	if len(raw) == 0 {
		return fmt.Errorf("strategy: hybrid cannot restore an empty state")
	}
	var st hybridState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("strategy: restore hybrid: %w", err)
	}
	t, err := rl.ReadJSON(bytes.NewReader(st.QTable))
	if err != nil {
		return fmt.Errorf("strategy: restore hybrid: %w", err)
	}
	h.table = t
	if st.Last != nil {
		h.last.valid = true
		h.last.state = st.Last.State
		h.last.action = st.Last.Action
	} else {
		h.last.valid = false
	}
	return nil
}
