// Package power models the upstream power hierarchy of Figure 2: the
// utility substation feeding the PDU through an automatic transfer
// switch (ATS), with a diesel generator (DG) as the backup source, and
// the on-site green bus attached at the PDU level. GreenSprint's
// controller only sees the PDU-level supplies, but the evaluation's
// premise — that the grid side is capped and occasionally unavailable
// — lives here: the ATS switches the dirty feed between utility and
// diesel with a start-up gap that the distributed batteries ride
// through (the classic role of server-level UPS the paper builds on).
package power

import (
	"fmt"
	"time"

	"greensprint/internal/units"
)

// Source identifies the dirty-side feed selected by the ATS.
type Source int

const (
	// Utility is the normal substation feed.
	Utility Source = iota
	// Diesel is the backup generator.
	Diesel
	// None means the ATS has no live source (diesel still starting).
	None
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case Utility:
		return "utility"
	case Diesel:
		return "diesel"
	case None:
		return "none"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// ATSConfig describes the transfer switch and its diesel backup.
type ATSConfig struct {
	// UtilityCapacity is the substation feed available to this PDU.
	UtilityCapacity units.Watt
	// DieselCapacity is the generator's rating; generators are
	// typically sized for the critical (Normal-mode) load only.
	DieselCapacity units.Watt
	// DieselStart is the generator's start-up delay; the feed is
	// dead for this long after a utility failure (batteries bridge
	// it).
	DieselStart time.Duration
}

// DefaultATS sizes the hierarchy for the paper's 10-server rack: a
// 1000 W utility budget and a diesel generator that carries exactly
// the Normal-mode load, starting in 10 seconds.
func DefaultATS() ATSConfig {
	return ATSConfig{
		UtilityCapacity: 1000,
		DieselCapacity:  1000,
		DieselStart:     10 * time.Second,
	}
}

// Validate reports configuration errors.
func (c ATSConfig) Validate() error {
	switch {
	case c.UtilityCapacity <= 0:
		return fmt.Errorf("power: non-positive utility capacity %v", c.UtilityCapacity)
	case c.DieselCapacity < 0:
		return fmt.Errorf("power: negative diesel capacity %v", c.DieselCapacity)
	case c.DieselStart < 0:
		return fmt.Errorf("power: negative diesel start delay %v", c.DieselStart)
	}
	return nil
}

// ATS is the stateful transfer switch.
type ATS struct {
	cfg ATSConfig
	// utilityUp tracks the substation's state.
	utilityUp bool
	// dieselRunning and dieselReadyIn track the generator.
	dieselRunning bool
	dieselReadyIn time.Duration
}

// NewATS returns a switch on a healthy utility feed.
func NewATS(cfg ATSConfig) (*ATS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ATS{cfg: cfg, utilityUp: true}, nil
}

// Source returns the currently selected feed.
func (a *ATS) Source() Source {
	switch {
	case a.utilityUp:
		return Utility
	case a.dieselRunning:
		return Diesel
	default:
		return None
	}
}

// Capacity returns the dirty-side power available right now.
func (a *ATS) Capacity() units.Watt {
	switch a.Source() {
	case Utility:
		return a.cfg.UtilityCapacity
	case Diesel:
		return a.cfg.DieselCapacity
	default:
		return 0
	}
}

// FailUtility simulates a substation outage: the ATS drops the feed
// and cranks the diesel generator.
func (a *ATS) FailUtility() {
	if !a.utilityUp {
		return
	}
	a.utilityUp = false
	if !a.dieselRunning {
		a.dieselReadyIn = a.cfg.DieselStart
	}
}

// RestoreUtility returns the substation feed; the ATS transfers back
// and the generator spins down.
func (a *ATS) RestoreUtility() {
	a.utilityUp = true
	a.dieselRunning = false
	a.dieselReadyIn = 0
}

// Step advances time: a cranking generator comes online once its
// start-up delay has elapsed.
func (a *ATS) Step(dt time.Duration) {
	if a.utilityUp || a.dieselRunning {
		return
	}
	a.dieselReadyIn -= dt
	if a.dieselReadyIn <= 0 {
		a.dieselRunning = true
		a.dieselReadyIn = 0
	}
}

// Feed is the PDU's view of its supplies during one interval: the
// dirty side (utility or diesel through the ATS) plus the green bus.
type Feed struct {
	Source Source
	// Dirty is the grid-side power available.
	Dirty units.Watt
	// Green is the renewable bus power available.
	Green units.Watt
}

// Total returns all power available to the PDU.
func (f Feed) Total() units.Watt { return f.Dirty + f.Green }

// PDU couples the ATS with the green bus into the Figure 2 hierarchy.
type PDU struct {
	ATS *ATS
}

// NewPDU builds the hierarchy.
func NewPDU(cfg ATSConfig) (*PDU, error) {
	ats, err := NewATS(cfg)
	if err != nil {
		return nil, err
	}
	return &PDU{ATS: ats}, nil
}

// Feed advances the hierarchy by dt and reports the available
// supplies, given the green bus production over the interval.
func (p *PDU) Feed(green units.Watt, dt time.Duration) Feed {
	p.ATS.Step(dt)
	if green < 0 {
		green = 0
	}
	return Feed{Source: p.ATS.Source(), Dirty: p.ATS.Capacity(), Green: green}
}
