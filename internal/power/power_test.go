package power

import (
	"testing"
	"time"

	"greensprint/internal/battery"
	"greensprint/internal/units"
)

func TestValidate(t *testing.T) {
	if err := DefaultATS().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ATSConfig{
		{UtilityCapacity: 0, DieselCapacity: 100, DieselStart: time.Second},
		{UtilityCapacity: 100, DieselCapacity: -1, DieselStart: time.Second},
		{UtilityCapacity: 100, DieselCapacity: 100, DieselStart: -time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
		if _, err := NewATS(c); err == nil {
			t.Errorf("case %d: NewATS should reject", i)
		}
	}
}

func TestSourceString(t *testing.T) {
	if Utility.String() != "utility" || Diesel.String() != "diesel" || None.String() != "none" {
		t.Error("names")
	}
	if Source(9).String() != "Source(9)" {
		t.Error("unknown formatting")
	}
}

func TestHealthyFeed(t *testing.T) {
	a, err := NewATS(DefaultATS())
	if err != nil {
		t.Fatal(err)
	}
	if a.Source() != Utility || a.Capacity() != 1000 {
		t.Errorf("healthy: %v %v", a.Source(), a.Capacity())
	}
	a.Step(time.Hour)
	if a.Source() != Utility {
		t.Error("step should not change a healthy feed")
	}
}

func TestUtilityFailureTransfersToDiesel(t *testing.T) {
	a, _ := NewATS(DefaultATS())
	a.FailUtility()
	// The feed is dead until the generator starts.
	if a.Source() != None || a.Capacity() != 0 {
		t.Errorf("during crank: %v %v", a.Source(), a.Capacity())
	}
	a.Step(5 * time.Second)
	if a.Source() != None {
		t.Error("generator ready too early")
	}
	a.Step(5 * time.Second)
	if a.Source() != Diesel || a.Capacity() != 1000 {
		t.Errorf("after crank: %v %v", a.Source(), a.Capacity())
	}
	// Repeated failure signaling is idempotent.
	a.FailUtility()
	if a.Source() != Diesel {
		t.Error("repeated FailUtility should not reset the generator")
	}
	a.RestoreUtility()
	if a.Source() != Utility {
		t.Error("restore should transfer back")
	}
}

// TestBatteriesBridgeDieselStart verifies the classic UPS role the
// paper's distributed batteries inherit: the 10-second generator crank
// is a trivial draw for even the small 3.2 Ah units.
func TestBatteriesBridgeDieselStart(t *testing.T) {
	cfg := DefaultATS()
	b, err := battery.New(battery.SmallServerBattery())
	if err != nil {
		t.Fatal(err)
	}
	// One server at Normal-mode power for the crank duration.
	if sustain := b.RemainingTime(100); sustain < cfg.DieselStart {
		t.Errorf("battery bridges only %v of the %v crank", sustain, cfg.DieselStart)
	}
	took, err := b.Discharge(100, cfg.DieselStart)
	if err != nil || took != cfg.DieselStart {
		t.Errorf("bridge discharge: %v %v", took, err)
	}
	if b.DoD() > 0.02 {
		t.Errorf("bridging cost %.3f DoD, should be negligible", b.DoD())
	}
}

func TestPDUFeed(t *testing.T) {
	p, err := NewPDU(DefaultATS())
	if err != nil {
		t.Fatal(err)
	}
	f := p.Feed(635, time.Minute)
	if f.Source != Utility || f.Dirty != 1000 || f.Green != 635 {
		t.Errorf("feed = %+v", f)
	}
	if f.Total() != 1635 {
		t.Errorf("total = %v", f.Total())
	}
	// Outage: green keeps flowing while the dirty side cranks.
	p.ATS.FailUtility()
	f = p.Feed(635, time.Second)
	if f.Source != None || f.Dirty != 0 || f.Green != 635 {
		t.Errorf("outage feed = %+v", f)
	}
	f = p.Feed(-5, time.Minute) // long step finishes the crank; green clamps
	if f.Source != Diesel || f.Green != 0 {
		t.Errorf("diesel feed = %+v", f)
	}
	if _, err := NewPDU(ATSConfig{}); err == nil {
		t.Error("invalid config should fail")
	}
}

// TestSprintingSurvivesUtilityOutage ties the hierarchy to the green
// bus premise: with the dirty side on diesel (sized for Normal mode
// only), the green servers can still sprint because their power comes
// from the PDU-level renewable bus, not the ATS.
func TestSprintingSurvivesUtilityOutage(t *testing.T) {
	p, _ := NewPDU(DefaultATS())
	p.ATS.FailUtility()
	p.ATS.Step(time.Minute)
	f := p.Feed(635, time.Minute)
	// Diesel covers exactly the 10-server Normal load...
	if f.Dirty != 1000 {
		t.Fatalf("diesel = %v", f.Dirty)
	}
	// ...and the green bus still carries the 3-server max sprint.
	sprintDemand := units.Watt(3 * 155)
	if f.Green < sprintDemand {
		t.Errorf("green %v cannot carry the sprint %v", f.Green, sprintDemand)
	}
}
