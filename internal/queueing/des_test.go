package queueing

import (
	"math"
	"testing"
)

func TestSimulateValidation(t *testing.T) {
	s := Station{Servers: 2, ServiceRate: 10}
	if _, err := (Station{}).Simulate(1, 100, 1); err == nil {
		t.Error("invalid station should error")
	}
	if _, err := s.Simulate(0, 100, 1); err == nil {
		t.Error("zero lambda should error")
	}
	if _, err := s.Simulate(1, 0, 1); err == nil {
		t.Error("zero requests should error")
	}
}

func TestSimulateCompletesAll(t *testing.T) {
	s := Station{Servers: 4, ServiceRate: 20}
	res, err := s.Simulate(40, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5000 || len(res.Sojourns) != 5000 {
		t.Fatalf("completed %d, sojourns %d", res.Completed, len(res.Sojourns))
	}
	for _, v := range res.Sojourns {
		if v <= 0 {
			t.Fatal("non-positive sojourn")
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s := Station{Servers: 3, ServiceRate: 15}
	a, _ := s.Simulate(30, 1000, 42)
	b, _ := s.Simulate(30, 1000, 42)
	if a.MeanSojourn != b.MeanSojourn || a.MaxQueue != b.MaxQueue {
		t.Error("same seed should reproduce")
	}
	c, _ := s.Simulate(30, 1000, 43)
	if a.MeanSojourn == c.MeanSojourn {
		t.Error("different seeds should differ")
	}
}

// TestSimulateMatchesAnalyticMM1 cross-checks the discrete-event
// simulator against the exact M/M/1 sojourn distribution.
func TestSimulateMatchesAnalyticMM1(t *testing.T) {
	s := Station{Servers: 1, ServiceRate: 100}
	lambda := 60.0
	res, err := s.Simulate(lambda, 200000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Metrics(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if rel(res.MeanSojourn, m.MeanSojourn) > 0.03 {
		t.Errorf("mean: sim %v vs analytic %v", res.MeanSojourn, m.MeanSojourn)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		simP := res.Percentile(q)
		anaP := s.SojournPercentile(lambda, q)
		if rel(simP, anaP) > 0.06 {
			t.Errorf("p%v: sim %v vs analytic %v", q*100, simP, anaP)
		}
	}
}

// TestSimulateMatchesAnalyticMMc validates the M/M/c sojourn-tail
// decomposition the whole performance model rests on, at the knob
// space's actual shape (12 servers).
func TestSimulateMatchesAnalyticMMc(t *testing.T) {
	s := Station{Servers: 12, ServiceRate: 50}
	for _, rho := range []float64{0.5, 0.8, 0.95} {
		lambda := rho * s.Capacity()
		res, err := s.Simulate(lambda, 250000, 23)
		if err != nil {
			t.Fatal(err)
		}
		res.Discard(50000) // drop the empty-queue warm-up transient
		m, _ := s.Metrics(lambda)
		if rel(res.MeanSojourn, m.MeanSojourn) > 0.05 {
			t.Errorf("rho=%v mean: sim %v vs analytic %v", rho, res.MeanSojourn, m.MeanSojourn)
		}
		for _, q := range []float64{0.9, 0.99} {
			simP := res.Percentile(q)
			anaP := s.SojournPercentile(lambda, q)
			if rel(simP, anaP) > 0.08 {
				t.Errorf("rho=%v p%v: sim %v vs analytic %v", rho, q*100, simP, anaP)
			}
		}
		// Goodput fraction at the deadline equals the analytic CDF.
		d := s.SojournPercentile(lambda, 0.95)
		if got := res.GoodputFraction(d); math.Abs(got-0.95) > 0.01 {
			t.Errorf("rho=%v goodput fraction at p95 = %v", rho, got)
		}
	}
}

func TestSimulateQueueGrowsWithLoad(t *testing.T) {
	s := Station{Servers: 6, ServiceRate: 30}
	light, _ := s.Simulate(0.3*s.Capacity(), 20000, 5)
	heavy, _ := s.Simulate(0.95*s.Capacity(), 20000, 5)
	if heavy.MaxQueue <= light.MaxQueue {
		t.Errorf("queue should grow with load: %d vs %d", heavy.MaxQueue, light.MaxQueue)
	}
	if heavy.MeanSojourn <= light.MeanSojourn {
		t.Error("sojourn should grow with load")
	}
}

func TestSimResultEdges(t *testing.T) {
	var r SimResult
	if r.Percentile(0.99) != 0 {
		t.Error("empty percentile = 0")
	}
	if r.GoodputFraction(1) != 1 {
		t.Error("empty goodput fraction = 1")
	}
	r.Sojourns = []float64{1, 2, 3}
	if r.Percentile(0) != 1 || r.Percentile(1) != 3 {
		t.Error("percentile clamping")
	}
	if got := r.GoodputFraction(2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("goodput = %v", got)
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
