package queueing_test

import (
	"fmt"

	"greensprint/internal/queueing"
)

// ExampleStation_MaxRate computes the QoS-constrained throughput of a
// 12-core station against a 500 ms p99 SLA — the paper's performance
// metric.
func ExampleStation_MaxRate() {
	s := queueing.Station{Servers: 12, ServiceRate: 50}
	max := s.MaxRate(0.5, 0.99)
	fmt.Printf("capacity %.0f req/s, QoS-max %.0f req/s (%.0f%% utilization)\n",
		s.Capacity(), max, 100*max/s.Capacity())
	// Output:
	// capacity 600 req/s, QoS-max 590 req/s (98% utilization)
}
