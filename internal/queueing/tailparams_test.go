package queueing

import (
	"math"
	"testing"
)

// TestTailParamsMatchesSojournTail checks the hoisted-constant form
// against the one-shot SojournTail bit for bit across stable, unstable
// and degenerate stations: TailParams exists purely so SojournPercentile
// can reuse the Erlang-C terms across bisection probes, and any
// numerical drift would leak into the golden determinism suites.
func TestTailParamsMatchesSojournTail(t *testing.T) {
	stations := []Station{
		{Servers: 1, ServiceRate: 100},
		{Servers: 4, ServiceRate: 55.5},
		{Servers: 12, ServiceRate: 380},
	}
	ds := []float64{0, 1e-6, 1e-3, 0.01, 0.1, 1, 10}
	for _, s := range stations {
		for _, lf := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1, 1.5} {
			lambda := lf * s.Capacity()
			tp := s.TailParams(lambda)
			for _, d := range ds {
				got, want := tp.Tail(d), s.SojournTail(lambda, d)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("%+v λ=%v d=%v: TailParams %v, SojournTail %v", s, lambda, d, got, want)
				}
			}
		}
	}
	// Degenerate branch: drain rate a equals μ (single server at ~zero
	// load keeps a = c·μ - λ = μ).
	s := Station{Servers: 1, ServiceRate: 10}
	tp := s.TailParams(0)
	for _, d := range ds {
		got, want := tp.Tail(d), s.SojournTail(0, d)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("degenerate d=%v: TailParams %v, SojournTail %v", d, got, want)
		}
	}
}

// TestSojournPercentileHoistedStable re-runs the percentile bisection
// across a load sweep and compares with a reference implementation that
// calls SojournTail per probe, confirming the hoisting changed no
// probe's outcome.
func TestSojournPercentileHoistedStable(t *testing.T) {
	s := Station{Servers: 8, ServiceRate: 120}
	for _, lf := range []float64{0.1, 0.5, 0.8, 0.95, 0.99} {
		lambda := lf * s.Capacity()
		got := s.SojournPercentile(lambda, 0.99)
		want := referencePercentile(s, lambda, 0.99)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("λ=%v: hoisted %v, reference %v", lambda, got, want)
		}
	}
}

// referencePercentile is the pre-hoisting SojournPercentile: the same
// control flow as Station.SojournPercentile, but every probe recomputes
// the Erlang-C constants through SojournTail.
func referencePercentile(s Station, lambda, q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 || s.Utilization(lambda) >= 1 {
		return math.Inf(1)
	}
	target := 1 - q
	lo, hi := 0.0, 1/s.ServiceRate
	for s.SojournTail(lambda, hi) > target {
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if s.SojournTail(lambda, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
