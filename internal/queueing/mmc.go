// Package queueing provides M/M/c queueing machinery used to model the
// paper's interactive workloads (SPECjbb, Web-Search, Memcached). Each
// server runs an open-loop request stream; "performance" in the paper
// is QoS-constrained throughput (e.g. jops at a 99th-percentile 500 ms
// bound), which this package computes from the sojourn-time
// distribution of an M/M/c station.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned when a metric is requested for an overloaded
// station (λ ≥ c·μ).
var ErrUnstable = errors.New("queueing: overloaded station (rho >= 1)")

// ErlangB returns the Erlang-B blocking probability for offered load a
// (in erlangs) on c servers, computed with the numerically stable
// recurrence.
func ErlangB(c int, a float64) float64 {
	if c < 0 || a < 0 {
		return math.NaN()
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the probability that an arrival must wait in an
// M/M/c queue with offered load a = λ/μ erlangs. It returns 1 for
// saturated or overloaded stations.
func ErlangC(c int, a float64) float64 {
	if c <= 0 {
		return 1
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1
	}
	b := ErlangB(c, a)
	return b / (1 - rho*(1-b))
}

// Station describes an M/M/c service station.
type Station struct {
	// Servers is the number of parallel servers (cores serving
	// requests, in GreenSprint's use).
	Servers int
	// ServiceRate is the per-server service rate μ in requests per
	// second.
	ServiceRate float64
}

// Validate reports configuration errors.
func (s Station) Validate() error {
	if s.Servers <= 0 {
		return fmt.Errorf("queueing: servers must be positive, got %d", s.Servers)
	}
	if s.ServiceRate <= 0 || math.IsNaN(s.ServiceRate) || math.IsInf(s.ServiceRate, 0) {
		return fmt.Errorf("queueing: invalid service rate %v", s.ServiceRate)
	}
	return nil
}

// Capacity returns the raw service capacity c·μ.
func (s Station) Capacity() float64 { return float64(s.Servers) * s.ServiceRate }

// Utilization returns ρ = λ/(c·μ).
func (s Station) Utilization(lambda float64) float64 {
	return lambda / s.Capacity()
}

// Metrics summarizes steady-state behaviour at arrival rate λ.
type Metrics struct {
	Rho         float64 // utilization
	PWait       float64 // Erlang-C probability of queueing
	MeanWait    float64 // E[Wq], seconds
	MeanSojourn float64 // E[T] = E[Wq] + 1/μ, seconds
}

// Metrics computes steady-state metrics. It returns ErrUnstable for
// λ ≥ capacity.
func (s Station) Metrics(lambda float64) (Metrics, error) {
	if err := s.Validate(); err != nil {
		return Metrics{}, err
	}
	if lambda < 0 {
		return Metrics{}, fmt.Errorf("queueing: negative arrival rate %v", lambda)
	}
	rho := s.Utilization(lambda)
	if rho >= 1 {
		return Metrics{Rho: rho, PWait: 1}, ErrUnstable
	}
	a := lambda / s.ServiceRate
	pw := ErlangC(s.Servers, a)
	drain := s.Capacity() - lambda
	mw := 0.0
	if lambda > 0 {
		mw = pw / drain
	}
	return Metrics{
		Rho:         rho,
		PWait:       pw,
		MeanWait:    mw,
		MeanSojourn: mw + 1/s.ServiceRate,
	}, nil
}

// TailParams holds the λ-dependent constants of the sojourn-tail
// formula: the Erlang-C waiting probability (an O(c) recurrence), the
// service rate and the queue drain rate. They are invariant across
// deadlines, so bisections that probe many deadlines at one fixed λ —
// SojournPercentile, and the workload kernel's latency path — compute
// them once and evaluate Tail per probe, instead of re-running the
// Erlang-C recurrence on every probe.
type TailParams struct {
	mu, a, pw  float64
	degenerate bool // drain rate ≈ service rate: Erlang-2 tail
	unstable   bool // ρ ≥ 1: the tail is identically 1
}

// TailParams precomputes the sojourn-tail constants at arrival rate λ.
// TailParams(λ).Tail(d) is bit-identical to SojournTail(λ, d) for
// every d.
func (s Station) TailParams(lambda float64) TailParams {
	if s.Utilization(lambda) >= 1 {
		return TailParams{unstable: true}
	}
	mu := s.ServiceRate
	a := s.Capacity() - lambda // queue drain rate
	return TailParams{
		mu:         mu,
		a:          a,
		pw:         ErlangC(s.Servers, lambda/mu),
		degenerate: math.Abs(a-mu) < 1e-12*mu,
	}
}

// Tail returns P(T > d) for the station and arrival rate the params
// were computed from.
func (p TailParams) Tail(d float64) float64 {
	if d <= 0 || p.unstable {
		return 1
	}
	svcTail := math.Exp(-p.mu * d)
	var waitedTail float64
	if p.degenerate {
		// Degenerate hypoexponential: Erlang-2 tail.
		waitedTail = math.Exp(-p.mu*d) * (1 + p.mu*d)
	} else {
		waitedTail = (p.a*math.Exp(-p.mu*d) - p.mu*math.Exp(-p.a*d)) / (p.a - p.mu)
	}
	tail := (1-p.pw)*svcTail + p.pw*waitedTail
	return clamp01(tail)
}

// SojournTail returns P(T > d): the probability a request's total time
// in system (wait + service) exceeds d seconds, at arrival rate λ.
// It uses the exact M/M/c sojourn decomposition: with probability
// 1-PWait the sojourn is the exponential service time; with probability
// PWait it is the sum of an exponential wait (rate cμ-λ) and the
// service time. Overloaded stations return 1.
func (s Station) SojournTail(lambda, d float64) float64 {
	return s.TailParams(lambda).Tail(d)
}

// SojournPercentile returns the q-quantile (0 < q < 1) of the sojourn
// time in seconds at arrival rate λ, found by bisection on the tail.
// It returns +Inf for overloaded stations.
func (s Station) SojournPercentile(lambda, q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 || s.Utilization(lambda) >= 1 {
		return math.Inf(1)
	}
	target := 1 - q
	// λ is fixed across every probe of the bisection, so the Erlang-C
	// constants are computed once rather than ~90 times.
	tp := s.TailParams(lambda)
	lo, hi := 0.0, 1/s.ServiceRate
	for tp.Tail(hi) > target {
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if tp.Tail(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MaxRate returns the largest arrival rate λ such that the q-quantile
// of the sojourn time is at most deadline seconds — the QoS-constrained
// throughput (e.g. max jOPS under a 99th-percentile 500 ms SLA). It
// returns 0 when even an idle station misses the deadline (the service
// tail alone exceeds it).
func (s Station) MaxRate(deadline, q float64) float64 {
	if err := s.Validate(); err != nil {
		return 0
	}
	if deadline <= 0 || q <= 0 || q >= 1 {
		return 0
	}
	if s.SojournTail(0, deadline) > 1-q {
		return 0
	}
	lo, hi := 0.0, s.Capacity()
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if s.SojournTail(mid, deadline) <= 1-q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Goodput returns the QoS-compliant throughput at offered rate λ:
// min(λ, MaxRate). The paper reports workload "performance" as exactly
// this quantity (operations per second meeting the latency SLA).
func (s Station) Goodput(offered, deadline, q float64) float64 {
	max := s.MaxRate(deadline, q)
	return math.Min(math.Max(offered, 0), max)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
