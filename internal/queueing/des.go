package queueing

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file contains a discrete-event simulator for the same M/M/c
// station the analytic formulas describe. It exists for two reasons:
// (1) to validate the closed-form sojourn-tail model the whole
// reproduction rests on (the property tests cross-check simulated
// percentiles against SojournPercentile), and (2) to let experiments
// sample request-level latency traces when a distribution, not a
// summary, is needed.

// SimResult summarizes one request-level simulation.
type SimResult struct {
	// Completed is the number of requests that finished.
	Completed int
	// Sojourns holds each completed request's time in system
	// (seconds), in completion order.
	Sojourns []float64
	// MeanSojourn is the average time in system.
	MeanSojourn float64
	// MaxQueue is the largest queue length observed.
	MaxQueue int
}

// Percentile returns the q-quantile (0<q≤1) of the simulated sojourns.
func (r *SimResult) Percentile(q float64) float64 {
	if len(r.Sojourns) == 0 {
		return 0
	}
	s := make([]float64, len(r.Sojourns))
	copy(s, r.Sojourns)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Discard drops the first n sojourns (warm-up transient: a simulation
// started from an empty queue under-represents the steady-state tail
// at high utilization) and recomputes the mean. It returns the
// receiver for chaining.
func (r *SimResult) Discard(n int) *SimResult {
	if n <= 0 {
		return r
	}
	if n > len(r.Sojourns) {
		n = len(r.Sojourns)
	}
	r.Sojourns = r.Sojourns[n:]
	sum := 0.0
	for _, v := range r.Sojourns {
		sum += v
	}
	r.MeanSojourn = 0
	if len(r.Sojourns) > 0 {
		r.MeanSojourn = sum / float64(len(r.Sojourns))
	}
	return r
}

// GoodputFraction returns the fraction of completed requests with
// sojourn at or below deadline.
func (r *SimResult) GoodputFraction(deadline float64) float64 {
	if len(r.Sojourns) == 0 {
		return 1
	}
	n := 0
	for _, v := range r.Sojourns {
		if v <= deadline {
			n++
		}
	}
	return float64(n) / float64(len(r.Sojourns))
}

// event kinds for the simulator heap.
const (
	evArrival = iota
	evDeparture
)

type event struct {
	at     float64
	kind   int
	server int // departure only
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulate runs an open-loop Poisson arrival stream of `requests`
// requests against the station and returns per-request sojourn times.
// The simulation is deterministic for a given seed. It returns an
// error for invalid stations, non-positive rates or request counts.
func (s Station) Simulate(lambda float64, requests int, seed int64) (*SimResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("queueing: non-positive arrival rate %v", lambda)
	}
	if requests <= 0 {
		return nil, fmt.Errorf("queueing: non-positive request count %d", requests)
	}
	rng := rand.New(rand.NewSource(seed))
	mu := s.ServiceRate
	c := s.Servers

	var h eventHeap
	heap.Init(&h)
	heap.Push(&h, event{at: rng.ExpFloat64() / lambda, kind: evArrival})

	busy := make([]bool, c)
	idle := make([]int, 0, c)
	for i := 0; i < c; i++ {
		idle = append(idle, i)
	}
	var queue []float64 // arrival times of queued requests
	res := &SimResult{}
	arrived := 0
	sum := 0.0

	startService := func(arrivalAt, now float64) {
		srv := idle[len(idle)-1]
		idle = idle[:len(idle)-1]
		busy[srv] = true
		done := now + rng.ExpFloat64()/mu
		heap.Push(&h, event{at: done, kind: evDeparture, server: srv})
		soj := done - arrivalAt
		res.Sojourns = append(res.Sojourns, soj)
		sum += soj
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		switch e.kind {
		case evArrival:
			arrived++
			if arrived < requests {
				heap.Push(&h, event{at: e.at + rng.ExpFloat64()/lambda, kind: evArrival})
			}
			if len(idle) > 0 {
				startService(e.at, e.at)
			} else {
				queue = append(queue, e.at)
				if len(queue) > res.MaxQueue {
					res.MaxQueue = len(queue)
				}
			}
		case evDeparture:
			busy[e.server] = false
			idle = append(idle, e.server)
			res.Completed++
			if len(queue) > 0 {
				arrivalAt := queue[0]
				queue = queue[1:]
				startService(arrivalAt, e.at)
			}
		}
	}
	if res.Completed > 0 {
		res.MeanSojourn = sum / float64(res.Completed)
	}
	return res, nil
}
