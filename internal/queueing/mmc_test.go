package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestErlangB(t *testing.T) {
	// Known values: B(1, 1) = 0.5; B(2, 1) = 0.2.
	if got := ErlangB(1, 1); !near(got, 0.5, 1e-12) {
		t.Errorf("B(1,1) = %v", got)
	}
	if got := ErlangB(2, 1); !near(got, 0.2, 1e-12) {
		t.Errorf("B(2,1) = %v", got)
	}
	// Zero servers block everything.
	if got := ErlangB(0, 3); got != 1 {
		t.Errorf("B(0,3) = %v", got)
	}
	// Zero load blocks nothing (with servers).
	if got := ErlangB(4, 0); got != 0 {
		t.Errorf("B(4,0) = %v", got)
	}
	if !math.IsNaN(ErlangB(-1, 1)) || !math.IsNaN(ErlangB(1, -1)) {
		t.Error("negative arguments should be NaN")
	}
}

func TestErlangC(t *testing.T) {
	// M/M/1: C = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); !near(got, rho, 1e-12) {
			t.Errorf("C(1,%v) = %v", rho, got)
		}
	}
	// Known value: C(2, 1) (rho = 0.5) = 1/3.
	if got := ErlangC(2, 1); !near(got, 1.0/3, 1e-12) {
		t.Errorf("C(2,1) = %v", got)
	}
	// Saturated.
	if got := ErlangC(2, 2); got != 1 {
		t.Errorf("C at rho=1 should be 1, got %v", got)
	}
	if got := ErlangC(0, 1); got != 1 {
		t.Errorf("C with no servers = %v", got)
	}
}

func TestStationValidate(t *testing.T) {
	cases := []Station{
		{Servers: 0, ServiceRate: 1},
		{Servers: 2, ServiceRate: 0},
		{Servers: 2, ServiceRate: math.NaN()},
		{Servers: 2, ServiceRate: math.Inf(1)},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if err := (Station{Servers: 6, ServiceRate: 30}).Validate(); err != nil {
		t.Errorf("valid station rejected: %v", err)
	}
}

func TestMetricsMM1(t *testing.T) {
	// M/M/1 closed forms: Wq = rho/(mu-lambda), T = 1/(mu-lambda).
	s := Station{Servers: 1, ServiceRate: 10}
	m, err := s.Metrics(5)
	if err != nil {
		t.Fatal(err)
	}
	if !near(m.Rho, 0.5, 1e-12) {
		t.Errorf("rho = %v", m.Rho)
	}
	if !near(m.MeanWait, 0.5/(10-5), 1e-9) {
		t.Errorf("Wq = %v", m.MeanWait)
	}
	if !near(m.MeanSojourn, 1.0/(10-5), 1e-9) {
		t.Errorf("T = %v", m.MeanSojourn)
	}
}

func TestMetricsErrors(t *testing.T) {
	s := Station{Servers: 2, ServiceRate: 10}
	if _, err := s.Metrics(20); !errors.Is(err, ErrUnstable) {
		t.Errorf("overload err = %v", err)
	}
	if _, err := s.Metrics(-1); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := (Station{}).Metrics(1); err == nil {
		t.Error("invalid station should error")
	}
	// Idle station.
	m, err := s.Metrics(0)
	if err != nil || m.MeanWait != 0 {
		t.Errorf("idle: %+v %v", m, err)
	}
}

func TestSojournTailMM1(t *testing.T) {
	// For M/M/1 the sojourn is exactly exponential with rate mu-lambda.
	s := Station{Servers: 1, ServiceRate: 10}
	lambda := 6.0
	for _, d := range []float64{0.05, 0.1, 0.5, 1} {
		want := math.Exp(-(10 - lambda) * d)
		if got := s.SojournTail(lambda, d); !near(got, want, 1e-9) {
			t.Errorf("tail(%v) = %v, want %v", d, got, want)
		}
	}
}

func TestSojournTailProperties(t *testing.T) {
	s := Station{Servers: 6, ServiceRate: 30}
	if got := s.SojournTail(200, 0.5); got != 1 {
		t.Errorf("overloaded tail = %v, want 1", got)
	}
	if got := s.SojournTail(50, 0); got != 1 {
		t.Errorf("tail at d=0 = %v, want 1", got)
	}
	// Idle tail equals the service tail.
	if got, want := s.SojournTail(0, 0.1), math.Exp(-30*0.1); !near(got, want, 1e-9) {
		t.Errorf("idle tail = %v, want %v", got, want)
	}
}

func TestSojournTailDegenerateBranch(t *testing.T) {
	// Force a == mu: c*mu - lambda == mu, i.e. lambda = (c-1)*mu.
	s := Station{Servers: 2, ServiceRate: 10}
	got := s.SojournTail(10, 0.1)
	if got <= 0 || got >= 1 {
		t.Errorf("degenerate tail = %v", got)
	}
	// Compare against a nearby non-degenerate evaluation.
	near1 := s.SojournTail(10.0001, 0.1)
	if math.Abs(got-near1) > 1e-3 {
		t.Errorf("degenerate branch discontinuous: %v vs %v", got, near1)
	}
}

func TestSojournPercentile(t *testing.T) {
	s := Station{Servers: 1, ServiceRate: 10}
	// M/M/1 with lambda=6: T ~ exp(4); p99 = ln(100)/4.
	want := math.Log(100) / 4
	if got := s.SojournPercentile(6, 0.99); !near(got, want, 1e-6) {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	if got := s.SojournPercentile(6, 0); got != 0 {
		t.Errorf("q=0 percentile = %v", got)
	}
	if got := s.SojournPercentile(20, 0.99); !math.IsInf(got, 1) {
		t.Errorf("overloaded percentile = %v", got)
	}
}

func TestMaxRate(t *testing.T) {
	s := Station{Servers: 6, ServiceRate: 30}
	deadline, q := 0.5, 0.99
	max := s.MaxRate(deadline, q)
	if max <= 0 || max >= s.Capacity() {
		t.Fatalf("MaxRate = %v, capacity %v", max, s.Capacity())
	}
	// At MaxRate the percentile meets the deadline (within bisection
	// tolerance); 5% above it, it doesn't.
	if p := s.SojournPercentile(max*0.999, q); p > deadline*1.001 {
		t.Errorf("p99 at max = %v > %v", p, deadline)
	}
	if p := s.SojournPercentile(math.Min(max*1.05, s.Capacity()*0.9999), q); p < deadline {
		t.Errorf("p99 just above max = %v < %v: bound not tight", p, deadline)
	}
}

func TestMaxRateUnreachableDeadline(t *testing.T) {
	// Mean service 1s but deadline 100ms at p99: even idle misses.
	s := Station{Servers: 4, ServiceRate: 1}
	if got := s.MaxRate(0.1, 0.99); got != 0 {
		t.Errorf("unreachable deadline MaxRate = %v", got)
	}
	if got := s.MaxRate(0, 0.99); got != 0 {
		t.Errorf("zero deadline = %v", got)
	}
	if got := s.MaxRate(1, 0); got != 0 {
		t.Errorf("q=0 = %v", got)
	}
	if got := (Station{}).MaxRate(1, 0.99); got != 0 {
		t.Errorf("invalid station = %v", got)
	}
}

func TestGoodput(t *testing.T) {
	s := Station{Servers: 6, ServiceRate: 30}
	max := s.MaxRate(0.5, 0.99)
	if got := s.Goodput(max/2, 0.5, 0.99); !near(got, max/2, 1e-9) {
		t.Errorf("underload goodput = %v", got)
	}
	if got := s.Goodput(max*10, 0.5, 0.99); !near(got, max, 1e-9) {
		t.Errorf("overload goodput = %v, want %v", got, max)
	}
	if got := s.Goodput(-5, 0.5, 0.99); got != 0 {
		t.Errorf("negative offered = %v", got)
	}
}

// Property: more servers never reduce QoS-constrained throughput.
func TestMaxRateMonotoneInServersProperty(t *testing.T) {
	f := func(cRaw uint8) bool {
		c := int(cRaw)%12 + 1
		s1 := Station{Servers: c, ServiceRate: 30}
		s2 := Station{Servers: c + 1, ServiceRate: 30}
		return s2.MaxRate(0.5, 0.99) >= s1.MaxRate(0.5, 0.99)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the sojourn tail is non-increasing in the deadline and
// non-decreasing in load.
func TestSojournTailMonotoneProperty(t *testing.T) {
	s := Station{Servers: 6, ServiceRate: 30}
	f := func(l1, l2, d1, d2 uint16) bool {
		cap := s.Capacity() * 0.99
		la := float64(l1) / 65535 * cap
		lb := float64(l2) / 65535 * cap
		if la > lb {
			la, lb = lb, la
		}
		da := float64(d1)/65535*2 + 1e-3
		db := float64(d2)/65535*2 + 1e-3
		if da > db {
			da, db = db, da
		}
		// load monotonicity at fixed deadline
		if s.SojournTail(la, da) > s.SojournTail(lb, da)+1e-9 {
			return false
		}
		// deadline monotonicity at fixed load
		return s.SojournTail(la, db) <= s.SojournTail(la, da)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile and tail are consistent inverses.
func TestPercentileTailInverseProperty(t *testing.T) {
	s := Station{Servers: 4, ServiceRate: 25}
	f := func(lRaw, qRaw uint16) bool {
		lambda := float64(lRaw) / 65535 * s.Capacity() * 0.95
		q := 0.5 + float64(qRaw)/65535*0.49
		d := s.SojournPercentile(lambda, q)
		if math.IsInf(d, 1) {
			return true
		}
		return near(s.SojournTail(lambda, d), 1-q, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func near(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
