// Package predictor implements the Predictor component of the
// GreenSprint architecture (Figure 3): short-horizon forecasts of
// renewable-energy production and workload intensity. The paper uses
// an exponentially weighted moving average (Eq. 1):
//
//	RESupp(t) = α·RESupp(t−1) + (1−α)·Obs(t)
//
// with α = 0.3 chosen as the most consistent trade-off between
// stability and responsiveness.
package predictor

import (
	"fmt"
	"math"

	"greensprint/internal/trace"
)

// DefaultAlpha is the paper's smoothing factor for renewable-supply
// prediction.
const DefaultAlpha = 0.3

// Predictor forecasts the next epoch's value of a scalar signal.
type Predictor interface {
	// Observe feeds the value measured during the epoch that just
	// ended.
	Observe(v float64)
	// Predict returns the forecast for the next epoch.
	Predict() float64
}

// EWMA is the paper's exponentially weighted moving-average predictor.
// The zero value is not usable; construct with NewEWMA.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA creates an EWMA predictor. It panics when alpha lies outside
// [0,1], which is always a programming error.
func NewEWMA(alpha float64) *EWMA {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("predictor: alpha %v outside [0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe implements Predictor. The first observation primes the
// average.
func (e *EWMA) Observe(v float64) {
	if !e.primed {
		e.value, e.primed = v, true
		return
	}
	e.value = e.alpha*e.value + (1-e.alpha)*v
}

// Predict implements Predictor. An unprimed predictor forecasts 0.
func (e *EWMA) Predict() float64 { return e.value }

// Primed reports whether at least one observation has been made.
func (e *EWMA) Primed() bool { return e.primed }

// EWMASnapshot is the serializable state of an EWMA predictor. Alpha
// is carried so a restore into a differently-configured predictor (a
// checkpoint from another knob setting) fails loudly instead of
// silently changing the forecast dynamics.
type EWMASnapshot struct {
	Alpha  float64 `json:"alpha"`
	Value  float64 `json:"value"`
	Primed bool    `json:"primed"`
}

// Snapshot captures the predictor's mutable state.
func (e *EWMA) Snapshot() EWMASnapshot {
	return EWMASnapshot{Alpha: e.alpha, Value: e.value, Primed: e.primed}
}

// Restore replaces the predictor's state with a snapshot taken from a
// predictor with the same smoothing factor.
func (e *EWMA) Restore(s EWMASnapshot) error {
	if s.Alpha != e.alpha {
		return fmt.Errorf("predictor: restore: snapshot alpha %v does not match predictor alpha %v", s.Alpha, e.alpha)
	}
	if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
		return fmt.Errorf("predictor: restore: non-finite value %v", s.Value)
	}
	e.value, e.primed = s.Value, s.Primed
	return nil
}

// Alpha returns the smoothing factor.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Persistence forecasts the next value as the last observation
// (α = 0); it serves as the naive baseline when evaluating predictor
// accuracy.
type Persistence struct{ last float64 }

// Observe implements Predictor.
func (p *Persistence) Observe(v float64) { p.last = v }

// Predict implements Predictor.
func (p *Persistence) Predict() float64 { return p.last }

// Accuracy summarizes one-step-ahead prediction error over a signal.
type Accuracy struct {
	// MAPE is the mean absolute percentage error, computed only
	// over samples whose actual magnitude is at least 1% of the
	// signal's peak — percentage error against near-zero actuals
	// (solar dawn/dusk) is meaningless and would dominate the mean.
	MAPE float64
	// RMSE is the root mean squared error.
	RMSE float64
	// N is the number of evaluated predictions.
	N int
}

// Evaluate replays tr through p and scores the one-step-ahead
// forecasts. The first sample primes the predictor and is not scored.
func Evaluate(p Predictor, tr *trace.Trace) Accuracy {
	if tr.Len() < 2 {
		return Accuracy{}
	}
	floor := 0.01 * tr.Stats().Max
	p.Observe(tr.Samples[0])
	var sumAPE, sumSq float64
	nAPE, n := 0, 0
	for _, actual := range tr.Samples[1:] {
		pred := p.Predict()
		err := pred - actual
		sumSq += err * err
		if math.Abs(actual) > floor {
			sumAPE += math.Abs(err / actual)
			nAPE++
		}
		p.Observe(actual)
		n++
	}
	acc := Accuracy{N: n, RMSE: math.Sqrt(sumSq / float64(n))}
	if nAPE > 0 {
		acc.MAPE = sumAPE / float64(nAPE)
	}
	return acc
}

// SweepAlpha evaluates EWMA predictors over tr for each alpha and
// returns the per-alpha accuracies. This regenerates the paper's
// "when α varies, we find α = 0.3 to be the most consistent" analysis.
func SweepAlpha(tr *trace.Trace, alphas []float64) map[float64]Accuracy {
	out := make(map[float64]Accuracy, len(alphas))
	for _, a := range alphas {
		out[a] = Evaluate(NewEWMA(a), tr)
	}
	return out
}
