package predictor

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"greensprint/internal/solar"
	"greensprint/internal/trace"
)

func TestNewEWMAPanics(t *testing.T) {
	for _, a := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v should panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestEWMAPriming(t *testing.T) {
	e := NewEWMA(DefaultAlpha)
	if e.Primed() {
		t.Error("fresh predictor should be unprimed")
	}
	if e.Predict() != 0 {
		t.Error("unprimed forecast should be 0")
	}
	e.Observe(100)
	if !e.Primed() || e.Predict() != 100 {
		t.Errorf("first observation should prime: %v", e.Predict())
	}
	if e.Alpha() != DefaultAlpha {
		t.Errorf("alpha = %v", e.Alpha())
	}
}

func TestEWMAEquation(t *testing.T) {
	// Verify Eq. 1 literally: pred = 0.3*prev + 0.7*obs.
	e := NewEWMA(0.3)
	e.Observe(100)
	e.Observe(200)
	want := 0.3*100 + 0.7*200
	if got := e.Predict(); math.Abs(got-want) > 1e-12 {
		t.Errorf("pred = %v, want %v", got, want)
	}
	e.Observe(50)
	want = 0.3*want + 0.7*50
	if got := e.Predict(); math.Abs(got-want) > 1e-12 {
		t.Errorf("pred = %v, want %v", got, want)
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 50; i++ {
		e.Observe(42)
	}
	if got := e.Predict(); math.Abs(got-42) > 1e-9 {
		t.Errorf("constant input should converge: %v", got)
	}
}

func TestPersistence(t *testing.T) {
	var p Persistence
	if p.Predict() != 0 {
		t.Error("fresh persistence = 0")
	}
	p.Observe(7)
	p.Observe(13)
	if p.Predict() != 13 {
		t.Errorf("persistence = %v, want 13", p.Predict())
	}
}

func TestEvaluatePerfectSignal(t *testing.T) {
	// A constant signal is perfectly predictable.
	tr := trace.New("c", time.Now(), time.Minute, []float64{5, 5, 5, 5, 5})
	acc := Evaluate(NewEWMA(0.3), tr)
	if acc.N != 4 {
		t.Errorf("N = %d", acc.N)
	}
	if acc.MAPE != 0 || acc.RMSE != 0 {
		t.Errorf("constant signal should have zero error: %+v", acc)
	}
}

func TestEvaluateShortTrace(t *testing.T) {
	tr := trace.New("s", time.Now(), time.Minute, []float64{1})
	if acc := Evaluate(NewEWMA(0.3), tr); acc.N != 0 {
		t.Errorf("short trace N = %d", acc.N)
	}
}

func TestEvaluateZeroActuals(t *testing.T) {
	tr := trace.New("z", time.Now(), time.Minute, []float64{0, 0, 0})
	acc := Evaluate(NewEWMA(0.3), tr)
	if acc.MAPE != 0 {
		t.Errorf("MAPE with zero actuals = %v", acc.MAPE)
	}
	if acc.N != 2 {
		t.Errorf("N = %d", acc.N)
	}
}

func TestEWMABeatsNothingOnSolar(t *testing.T) {
	// On a stable (clear-sky) solar day the paper notes prediction
	// is accurate; verify the EWMA tracks a generated clear day with
	// low relative RMSE against the daytime mean.
	cfg := solar.DefaultGeneratorConfig()
	cfg.Days = 1
	cfg.Skies = []solar.Sky{solar.Clear}
	tr, err := solar.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day, err := tr.Slice(cfg.Start.Add(8*time.Hour), cfg.Start.Add(16*time.Hour)).Resample(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(NewEWMA(DefaultAlpha), day)
	if mean := day.Mean(); acc.RMSE/mean > 0.10 {
		t.Errorf("clear-day RMSE/mean = %v, want < 0.10", acc.RMSE/mean)
	}
}

func TestSweepAlpha(t *testing.T) {
	cfg := solar.DefaultGeneratorConfig()
	cfg.Days = 2
	tr, err := solar.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := tr.Resample(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	res := SweepAlpha(epochs, alphas)
	if len(res) != len(alphas) {
		t.Fatalf("results = %d", len(res))
	}
	// Heavier weighting toward the current observation (small alpha)
	// must beat near-frozen predictors (alpha 0.9) on a diurnal ramp
	// — the paper's rationale for α = 0.3.
	if res[0.3].RMSE >= res[0.9].RMSE {
		t.Errorf("alpha 0.3 RMSE %v should beat alpha 0.9 RMSE %v", res[0.3].RMSE, res[0.9].RMSE)
	}
	for a, acc := range res {
		if acc.N == 0 {
			t.Errorf("alpha %v evaluated no samples", a)
		}
	}
}

// Property: the EWMA forecast always lies within the range of observed
// values.
func TestEWMARangeProperty(t *testing.T) {
	f := func(vals []float64, alphaRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		e := NewEWMA(float64(alphaRaw) / 255)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = math.Mod(v, 1e6)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			e.Observe(v)
			if p := e.Predict(); p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
