package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tab := NewTable("Fig X", "strategy", "perf")
	tab.Add("Greedy", "4.8")
	tab.Add("Pacing") // short row pads
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X", "strategy", "Greedy", "4.8", "Pacing", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.AddFloats("x", 2, 1.5)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1.5\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		prec int
		want string
	}{
		{4.800, 2, "4.8"},
		{4.0, 2, "4"},
		{0.3333, 2, "0.33"},
		{math.Inf(1), 2, "inf"},
		{math.Inf(-1), 2, "-inf"},
		{math.NaN(), 2, "nan"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.v, tt.prec); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestBar(t *testing.T) {
	full := Bar("Hybrid", 4, 4, 10)
	if !strings.Contains(full, strings.Repeat("#", 10)) {
		t.Errorf("full bar = %q", full)
	}
	half := Bar("Greedy", 2, 4, 10)
	if !strings.Contains(half, "#####") || strings.Contains(half, "######") {
		t.Errorf("half bar = %q", half)
	}
	empty := Bar("x", 0, 4, 10)
	if strings.Contains(empty, "#") {
		t.Errorf("empty bar = %q", empty)
	}
	// Degenerate max and width.
	if got := Bar("x", 5, 0, 0); !strings.Contains(got, "|") {
		t.Errorf("degenerate bar = %q", got)
	}
	// Overflow clamps.
	over := Bar("x", 10, 4, 10)
	if strings.Count(over, "#") != 10 {
		t.Errorf("overflow bar = %q", over)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	a := Series{Name: "Greedy", X: []float64{10, 15}, Y: []float64{4.8, 4.2}}
	b := Series{Name: "Hybrid", X: []float64{10, 15}, Y: []float64{4.8, 4.5}}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "minutes", a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "minutes,Greedy,Hybrid" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Errorf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "10,4.8,") {
		t.Errorf("row = %q", lines[1])
	}
	// Errors.
	if err := WriteSeriesCSV(&buf, "x"); err == nil {
		t.Error("no series should error")
	}
	bad := Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}
	if err := WriteSeriesCSV(&buf, "x", bad); err == nil {
		t.Error("length mismatch should error")
	}
}
