// Package report renders experiment results as aligned text tables,
// CSV files and ASCII bar charts — the output layer of the
// greensprint-bench harness that regenerates every table and figure of
// the paper.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a simple titled table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; missing cells are padded empty, extras dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddFloats appends a row of a label plus formatted floats.
func (t *Table) AddFloats(label string, prec int, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, FormatFloat(v, prec))
	}
	t.Add(cells...)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header + rows, no title).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("report: write header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatFloat renders a float with the given precision, trimming
// trailing zeros.
func FormatFloat(v float64, prec int) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	if math.IsNaN(v) {
		return "nan"
	}
	s := strconv.FormatFloat(v, 'f', prec, 64)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Bar renders one ASCII bar of the given width for value scaled
// against max, e.g. `Hybrid  |██████████        | 3.42`.
func Bar(label string, value, max float64, width int) string {
	if width < 1 {
		width = 1
	}
	fill := 0
	if max > 0 {
		fill = int(math.Round(value / max * float64(width)))
	}
	if fill < 0 {
		fill = 0
	}
	if fill > width {
		fill = width
	}
	return fmt.Sprintf("%-10s |%s%s| %s",
		label,
		strings.Repeat("#", fill),
		strings.Repeat(" ", width-fill),
		FormatFloat(value, 2))
}

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WriteSeriesCSV writes aligned series as CSV: the first column is the
// shared X (taken from the first series), one column per series. All
// series must have equal length.
func WriteSeriesCSV(w io.Writer, xLabel string, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	n := len(series[0].X)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("report: series %q length mismatch", s.Name)
		}
	}
	cw := csv.NewWriter(w)
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := []string{FormatFloat(series[0].X[i], 6)}
		for _, s := range series {
			row = append(row, FormatFloat(s.Y[i], 6))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
