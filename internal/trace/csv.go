package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV layout (NREL MIDC-like): a header row followed by
// "timestamp,value" records where timestamp is RFC 3339. WriteCSV and
// ReadCSV round-trip a Trace through this format; ReadCSV validates
// that the records are evenly spaced.

// WriteCSV writes the trace to w.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", t.csvValueHeader()}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, v := range t.Samples {
		rec := []string{
			t.TimeAt(i).Format(time.RFC3339),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func (t *Trace) csvValueHeader() string {
	if t.Name == "" {
		return "value"
	}
	return t.Name
}

// ReadCSV parses a trace written by WriteCSV (or any two-column CSV
// with an RFC 3339 timestamp and a float value). The sampling step is
// inferred from the first two records and every subsequent record must
// follow it exactly.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(recs) < 3 { // header + at least two samples to infer the step
		return nil, fmt.Errorf("trace: csv needs a header and >=2 records, got %d rows", len(recs))
	}
	name := recs[0][1]
	body := recs[1:]
	times := make([]time.Time, len(body))
	samples := make([]float64, len(body))
	for i, rec := range body {
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad timestamp %q: %w", i+2, rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad value %q: %w", i+2, rec[1], err)
		}
		times[i], samples[i] = ts, v
	}
	step := times[1].Sub(times[0])
	if step <= 0 {
		return nil, fmt.Errorf("trace: non-increasing timestamps (%v then %v)", times[0], times[1])
	}
	for i := 2; i < len(times); i++ {
		if got := times[i].Sub(times[i-1]); got != step {
			return nil, fmt.Errorf("trace: irregular step at row %d: %v, want %v", i+2, got, step)
		}
	}
	return &Trace{Name: name, Start: times[0], Step: step, Samples: samples}, nil
}
