package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := New("solar_w", t0, time.Minute, []float64{0, 12.5, 211.75, 7})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "solar_w" {
		t.Errorf("name = %q", back.Name)
	}
	if back.Step != time.Minute {
		t.Errorf("step = %v", back.Step)
	}
	if !back.Start.Equal(t0) {
		t.Errorf("start = %v", back.Start)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len = %d", back.Len())
	}
	for i := range tr.Samples {
		if back.Samples[i] != tr.Samples[i] {
			t.Errorf("sample %d = %v, want %v", i, back.Samples[i], tr.Samples[i])
		}
	}
}

func TestCSVDefaultHeader(t *testing.T) {
	tr := New("", t0, time.Minute, []float64{1, 2})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "timestamp,value") {
		t.Errorf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"too short", "timestamp,value\n2018-05-01T00:00:00Z,1\n"},
		{"bad timestamp", "timestamp,value\nnot-a-time,1\n2018-05-01T00:01:00Z,2\n"},
		{"bad value", "timestamp,value\n2018-05-01T00:00:00Z,x\n2018-05-01T00:01:00Z,2\n"},
		{"irregular step", "timestamp,value\n2018-05-01T00:00:00Z,1\n2018-05-01T00:01:00Z,2\n2018-05-01T00:03:00Z,3\n"},
		{"non-increasing", "timestamp,value\n2018-05-01T00:01:00Z,1\n2018-05-01T00:00:00Z,2\n2018-05-01T00:02:00Z,2\n"},
		{"wrong columns", "timestamp,value,extra\n2018-05-01T00:00:00Z,1,9\n"},
	}
	for _, tt := range tests {
		if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}
