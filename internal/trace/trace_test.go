package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func mk(samples ...float64) *Trace {
	return New("test", t0, time.Minute, samples)
}

func TestNewPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero step")
		}
	}()
	New("bad", t0, 0, nil)
}

func TestBasics(t *testing.T) {
	tr := mk(1, 2, 3, 4)
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Duration() != 4*time.Minute {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if !tr.End().Equal(t0.Add(4 * time.Minute)) {
		t.Errorf("End = %v", tr.End())
	}
	if got := tr.TimeAt(2); !got.Equal(t0.Add(2 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
}

func TestAt(t *testing.T) {
	tr := mk(10, 20, 30)
	tests := []struct {
		at   time.Time
		want float64
	}{
		{t0, 10},
		{t0.Add(90 * time.Second), 20},
		{t0.Add(10 * time.Minute), 30}, // past end clamps
		{t0.Add(-time.Hour), 10},       // before start clamps
	}
	for _, tt := range tests {
		if got := tr.At(tt.at); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	var empty Trace
	empty.Step = time.Minute
	if got := empty.At(t0); got != 0 {
		t.Errorf("empty At = %v", got)
	}
	if got := empty.Index(t0); got != -1 {
		t.Errorf("empty Index = %v", got)
	}
}

func TestIndexClamping(t *testing.T) {
	tr := mk(1, 2, 3)
	if got := tr.Index(t0.Add(-time.Hour)); got != 0 {
		t.Errorf("before start: %d", got)
	}
	if got := tr.Index(t0.Add(time.Hour)); got != 2 {
		t.Errorf("after end: %d", got)
	}
	if got := tr.Index(t0.Add(time.Minute)); got != 1 {
		t.Errorf("middle: %d", got)
	}
}

func TestScaleAndClip(t *testing.T) {
	tr := mk(1, 2, 3)
	s := tr.Scale(2)
	want := []float64{2, 4, 6}
	for i, v := range s.Samples {
		if v != want[i] {
			t.Errorf("Scale[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Original untouched.
	if tr.Samples[0] != 1 {
		t.Error("Scale mutated the receiver")
	}
	c := tr.Clip(1.5, 2.5)
	wantC := []float64{1.5, 2, 2.5}
	for i, v := range c.Samples {
		if v != wantC[i] {
			t.Errorf("Clip[%d] = %v, want %v", i, v, wantC[i])
		}
	}
}

func TestScaleToPeak(t *testing.T) {
	tr := mk(1, 4, 2)
	p := tr.ScaleToPeak(211.75)
	if !nearly(p.Max(), 211.75) {
		t.Errorf("peak = %v", p.Max())
	}
	if !nearly(p.Samples[0], 211.75/4) {
		t.Errorf("sample0 = %v", p.Samples[0])
	}
	z := mk(0, 0).ScaleToPeak(100)
	if z.Max() != 0 {
		t.Errorf("zero trace should stay zero, got max %v", z.Max())
	}
}

func TestSliceAndWindow(t *testing.T) {
	tr := mk(0, 1, 2, 3, 4, 5)
	s := tr.Slice(t0.Add(time.Minute), t0.Add(3*time.Minute))
	if s.Len() != 2 || s.Samples[0] != 1 || s.Samples[1] != 2 {
		t.Errorf("Slice = %+v", s.Samples)
	}
	if !s.Start.Equal(t0.Add(time.Minute)) {
		t.Errorf("Slice start = %v", s.Start)
	}
	// Out-of-range slicing clamps.
	s2 := tr.Slice(t0.Add(-time.Hour), t0.Add(time.Hour))
	if s2.Len() != 6 {
		t.Errorf("clamped slice len = %d", s2.Len())
	}
	// Reversed range is empty.
	s3 := tr.Slice(t0.Add(3*time.Minute), t0)
	if s3.Len() != 0 {
		t.Errorf("reversed slice len = %d", s3.Len())
	}
	w := tr.Window(t0.Add(2*time.Minute), 2*time.Minute)
	if len(w) != 2 || w[0] != 2 || w[1] != 3 {
		t.Errorf("Window = %v", w)
	}
}

func TestResampleDown(t *testing.T) {
	tr := mk(1, 3, 5, 7)
	r, err := tr.Resample(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Samples[0] != 2 || r.Samples[1] != 6 {
		t.Errorf("Resample down = %+v", r.Samples)
	}
}

func TestResampleUp(t *testing.T) {
	tr := mk(10, 20)
	r, err := tr.Resample(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("Resample up len = %d", r.Len())
	}
	want := []float64{10, 10, 20, 20}
	for i, v := range r.Samples {
		if v != want[i] {
			t.Errorf("up[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestResampleErrors(t *testing.T) {
	tr := mk(1)
	if _, err := tr.Resample(0); err == nil {
		t.Error("expected error for zero step")
	}
	var empty Trace
	empty.Step = time.Minute
	if _, err := empty.Resample(time.Second); err == nil {
		t.Error("expected error for empty trace")
	}
	same, err := tr.Resample(time.Minute)
	if err != nil || same.Len() != 1 {
		t.Errorf("identity resample: %v %v", same, err)
	}
}

func TestRepeat(t *testing.T) {
	tr := mk(1, 2)
	r := tr.Repeat(3)
	if r.Len() != 6 {
		t.Errorf("Repeat len = %d", r.Len())
	}
	if r.Samples[4] != 1 || r.Samples[5] != 2 {
		t.Errorf("Repeat tail = %v", r.Samples[4:])
	}
	if tr.Repeat(0).Len() != 2 {
		t.Error("Repeat(0) should behave like Repeat(1)")
	}
}

func TestAdd(t *testing.T) {
	a := mk(1, 1, 1, 1)
	b := New("b", t0.Add(time.Minute), time.Minute, []float64{5, 5})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 6, 6, 1}
	for i, v := range sum.Samples {
		if v != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, v, want[i])
		}
	}
	c := New("c", t0, time.Second, []float64{1})
	if _, err := a.Add(c); err == nil {
		t.Error("expected step-mismatch error")
	}
}

func TestStats(t *testing.T) {
	tr := mk(2, 4, 4, 4, 5, 5, 7, 9)
	st := tr.Stats()
	if st.Min != 2 || st.Max != 9 || st.N != 8 {
		t.Errorf("Stats = %+v", st)
	}
	if !nearly(st.Mean, 5) {
		t.Errorf("Mean = %v", st.Mean)
	}
	if !nearly(st.Std, 2) {
		t.Errorf("Std = %v", st.Std)
	}
	var empty Trace
	if s := empty.Stats(); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestIntegral(t *testing.T) {
	// 60 W for two minutes = 2 Wh.
	tr := mk(60, 60)
	if got := tr.Integral(); !nearly(got, 2) {
		t.Errorf("Integral = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	tr := mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5}, {90, 9}, {99, 10},
	}
	for _, tt := range tests {
		if got := tr.Percentile(tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	var empty Trace
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestEWMA(t *testing.T) {
	tr := mk(10, 10, 10)
	e := tr.EWMA(0.3)
	for i, v := range e.Samples {
		if !nearly(v, 10) {
			t.Errorf("constant EWMA[%d] = %v", i, v)
		}
	}
	// Step input converges toward the new level.
	step := mk(0, 100, 100, 100, 100, 100, 100, 100)
	es := step.EWMA(0.3)
	if es.Samples[1] <= es.Samples[0] {
		t.Error("EWMA should rise after a step up")
	}
	last := es.Samples[es.Len()-1]
	if last < 99 {
		t.Errorf("EWMA should converge near 100, got %v", last)
	}
	// alpha=0 tracks the observation exactly.
	e0 := step.EWMA(0)
	for i := range step.Samples {
		if e0.Samples[i] != step.Samples[i] {
			t.Errorf("alpha=0 sample %d = %v", i, e0.Samples[i])
		}
	}
}

func nearly(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

// Property: Slice never yields samples outside the original value set
// bounds, and Integral is additive over a split.
func TestIntegralAdditiveProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n)%50 + 2
		s := make([]float64, m)
		for i := range s {
			s[i] = rng.Float64() * 500
		}
		tr := mk(s...)
		mid := t0.Add(time.Duration(m/2) * time.Minute)
		a := tr.Slice(t0, mid)
		b := tr.Slice(mid, tr.End())
		return nearly(a.Integral()+b.Integral(), tr.Integral())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EWMA output stays within the [min,max] envelope of the
// input for any alpha in [0,1].
func TestEWMABoundedProperty(t *testing.T) {
	f := func(seed int64, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := float64(alphaRaw) / 255
		s := make([]float64, 40)
		for i := range s {
			s[i] = rng.Float64()*200 - 100
		}
		tr := mk(s...)
		st := tr.Stats()
		e := tr.EWMA(alpha)
		for _, v := range e.Samples {
			if v < st.Min-1e-9 || v > st.Max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Resample preserves the integral when downsampling by an
// exact divisor of the length.
func TestResampleIntegralProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make([]float64, 60)
		for i := range s {
			s[i] = rng.Float64() * 300
		}
		tr := mk(s...)
		r, err := tr.Resample(5 * time.Minute)
		if err != nil {
			return false
		}
		return nearly(r.Integral(), tr.Integral())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
