package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser against malformed input: it
// must either return an error or a well-formed trace, never panic, and
// accepted traces must round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("timestamp,value\n2018-05-01T00:00:00Z,1\n2018-05-01T00:01:00Z,2\n")
	f.Add("timestamp,value\n2018-05-01T00:00:00Z,1\n")
	f.Add("timestamp,value\nnot-a-time,1\n2018-05-01T00:01:00Z,2\n")
	f.Add("a,b,c\n1,2,3\n4,5,6\n")
	f.Add("")
	f.Add("timestamp,solar\n2018-05-01T00:00:00Z,-5e300\n2018-05-01T00:30:00Z,1e300\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if tr.Step <= 0 {
			t.Fatalf("accepted trace with step %v", tr.Step)
		}
		if tr.Len() < 2 {
			t.Fatalf("accepted trace with %d samples", tr.Len())
		}
		// Accepted input round-trips through WriteCSV/ReadCSV.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("write back: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if back.Len() != tr.Len() || back.Step != tr.Step {
			t.Fatalf("round trip changed shape: %d/%v vs %d/%v",
				back.Len(), back.Step, tr.Len(), tr.Step)
		}
	})
}
