// Package trace provides fixed-step time series used throughout
// GreenSprint: renewable power production traces (NREL-style one-minute
// irradiance/power records), workload intensity traces and power-draw
// logs. A Trace is a start time, a sampling step and a slice of float64
// samples; the package supplies slicing, resampling, scaling,
// aggregation and CSV round-tripping.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Trace is a regularly sampled time series. The i-th sample covers the
// half-open interval [Start+i*Step, Start+(i+1)*Step).
type Trace struct {
	Name    string
	Start   time.Time
	Step    time.Duration
	Samples []float64
}

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("trace: empty trace")

// New creates a trace with the given name, start, step and samples.
// It panics if step is not positive, since a zero-step trace is always
// a programming error.
func New(name string, start time.Time, step time.Duration, samples []float64) *Trace {
	if step <= 0 {
		panic("trace: non-positive step")
	}
	return &Trace{Name: name, Start: start, Step: step, Samples: samples}
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Duration returns the total time covered by the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Step
}

// End returns the instant just past the last sample.
func (t *Trace) End() time.Time { return t.Start.Add(t.Duration()) }

// TimeAt returns the start time of sample i.
func (t *Trace) TimeAt(i int) time.Time {
	return t.Start.Add(time.Duration(i) * t.Step)
}

// At returns the sample covering instant ts. Instants before the trace
// return the first sample; instants past the end return the last. An
// empty trace returns 0.
func (t *Trace) At(ts time.Time) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	i := int(ts.Sub(t.Start) / t.Step)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Samples) {
		i = len(t.Samples) - 1
	}
	return t.Samples[i]
}

// Index returns the sample index covering instant ts, clamped to the
// valid range. An empty trace returns -1.
func (t *Trace) Index(ts time.Time) int {
	if len(t.Samples) == 0 {
		return -1
	}
	i := int(ts.Sub(t.Start) / t.Step)
	if i < 0 {
		return 0
	}
	if i >= len(t.Samples) {
		return len(t.Samples) - 1
	}
	return i
}

// Clone returns a deep copy.
func (t *Trace) Clone() *Trace {
	s := make([]float64, len(t.Samples))
	copy(s, t.Samples)
	return &Trace{Name: t.Name, Start: t.Start, Step: t.Step, Samples: s}
}

// Scale multiplies every sample by k and returns a new trace.
func (t *Trace) Scale(k float64) *Trace {
	out := t.Clone()
	for i := range out.Samples {
		out.Samples[i] *= k
	}
	return out
}

// ScaleToPeak rescales the trace so that its maximum equals peak. A
// trace whose maximum is zero is returned unchanged (cloned).
func (t *Trace) ScaleToPeak(peak float64) *Trace {
	max := t.Max()
	if max == 0 {
		return t.Clone()
	}
	return t.Scale(peak / max)
}

// Clip limits each sample to [lo, hi] and returns a new trace.
func (t *Trace) Clip(lo, hi float64) *Trace {
	out := t.Clone()
	for i, v := range out.Samples {
		out.Samples[i] = math.Min(math.Max(v, lo), hi)
	}
	return out
}

// Slice returns the sub-trace covering [from, to). Times are clamped to
// the trace bounds. The returned trace shares no storage with t.
func (t *Trace) Slice(from, to time.Time) *Trace {
	i := int(from.Sub(t.Start) / t.Step)
	j := int((to.Sub(t.Start) + t.Step - 1) / t.Step)
	if i < 0 {
		i = 0
	}
	if j > len(t.Samples) {
		j = len(t.Samples)
	}
	if j < i {
		j = i
	}
	s := make([]float64, j-i)
	copy(s, t.Samples[i:j])
	return &Trace{Name: t.Name, Start: t.TimeAt(i), Step: t.Step, Samples: s}
}

// Window returns the samples covering [from, from+d) without copying
// time metadata; convenient for statistics over an epoch.
func (t *Trace) Window(from time.Time, d time.Duration) []float64 {
	i := int(from.Sub(t.Start) / t.Step)
	j := int(from.Add(d).Sub(t.Start) / t.Step)
	if i < 0 {
		i = 0
	}
	if j > len(t.Samples) {
		j = len(t.Samples)
	}
	if j < i {
		j = i
	}
	return t.Samples[i:j]
}

// Resample converts the trace to a new step by averaging (downsampling)
// or sample-holding (upsampling). The result covers the same period.
func (t *Trace) Resample(step time.Duration) (*Trace, error) {
	if step <= 0 {
		return nil, errors.New("trace: non-positive resample step")
	}
	if len(t.Samples) == 0 {
		return nil, ErrEmpty
	}
	if step == t.Step {
		return t.Clone(), nil
	}
	n := int(math.Ceil(float64(t.Duration()) / float64(step)))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		winFrom := t.Start.Add(time.Duration(i) * step)
		w := t.Window(winFrom, step)
		if len(w) == 0 {
			// Upsampling: hold the covering sample.
			out[i] = t.At(winFrom)
			continue
		}
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		out[i] = sum / float64(len(w))
	}
	return &Trace{Name: t.Name, Start: t.Start, Step: step, Samples: out}, nil
}

// Repeat tiles the trace n times end to end.
func (t *Trace) Repeat(n int) *Trace {
	if n < 1 {
		n = 1
	}
	s := make([]float64, 0, n*len(t.Samples))
	for i := 0; i < n; i++ {
		s = append(s, t.Samples...)
	}
	return &Trace{Name: t.Name, Start: t.Start, Step: t.Step, Samples: s}
}

// Add returns the pointwise sum of t and o. Both traces must share the
// same step; the result covers t's period and treats o as zero outside
// its own bounds.
func (t *Trace) Add(o *Trace) (*Trace, error) {
	if t.Step != o.Step {
		return nil, fmt.Errorf("trace: step mismatch %v vs %v", t.Step, o.Step)
	}
	out := t.Clone()
	for i := range out.Samples {
		ts := t.TimeAt(i)
		if ts.Before(o.Start) || !ts.Before(o.End()) {
			continue
		}
		out.Samples[i] += o.At(ts)
	}
	return out, nil
}

// Stats summarizes a trace.
type Stats struct {
	Min, Max, Mean, Std float64
	N                   int
}

// Stats computes summary statistics. An empty trace yields zeros.
func (t *Trace) Stats() Stats {
	return computeStats(t.Samples)
}

func computeStats(s []float64) Stats {
	if len(s) == 0 {
		return Stats{}
	}
	st := Stats{Min: s[0], Max: s[0], N: len(s)}
	sum := 0.0
	for _, v := range s {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	st.Mean = sum / float64(len(s))
	var sq float64
	for _, v := range s {
		d := v - st.Mean
		sq += d * d
	}
	st.Std = math.Sqrt(sq / float64(len(s)))
	return st
}

// Max returns the maximum sample, or 0 for an empty trace.
func (t *Trace) Max() float64 { return t.Stats().Max }

// Mean returns the mean sample, or 0 for an empty trace.
func (t *Trace) Mean() float64 { return t.Stats().Mean }

// Integral returns the time integral of the trace in value-hours
// (e.g. a power trace in watts yields watt-hours).
func (t *Trace) Integral() float64 {
	h := t.Step.Hours()
	sum := 0.0
	for _, v := range t.Samples {
		sum += v * h
	}
	return sum
}

// Percentile returns the p-quantile (0 ≤ p ≤ 100) of the samples using
// nearest-rank on a sorted copy. Empty traces return 0.
func (t *Trace) Percentile(p float64) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	s := make([]float64, len(t.Samples))
	copy(s, t.Samples)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// EWMA returns the exponentially weighted moving average of the trace
// with smoothing factor alpha in [0,1], following the paper's Eq. 1:
//
//	pred(t) = alpha*pred(t-1) + (1-alpha)*obs(t)
//
// The first prediction equals the first observation.
func (t *Trace) EWMA(alpha float64) *Trace {
	out := t.Clone()
	if len(out.Samples) == 0 {
		return out
	}
	prev := out.Samples[0]
	for i, v := range t.Samples {
		prev = alpha*prev + (1-alpha)*v
		out.Samples[i] = prev
	}
	return out
}
