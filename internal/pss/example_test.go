package pss_test

import (
	"fmt"
	"time"

	"greensprint/internal/cluster"
	"greensprint/internal/pss"
)

// Example walks the paper's three supply cases for a 3-server
// maximal-sprint demand (465 W) on the RE-Batt rack.
func Example() {
	bank, err := cluster.REBatt().NewBank()
	if err != nil {
		panic(err)
	}
	s := pss.New(bank)
	epoch := 5 * time.Minute

	// Case 1: abundant green power; the surplus charges batteries.
	fmt.Println(s.Classify(465, 600, epoch))
	// Case 2: green covers part of the demand; batteries supplement.
	fmt.Println(s.Classify(465, 300, epoch))
	// Case 3: no green at all; batteries alone carry the sprint.
	fmt.Println(s.Classify(465, 0, epoch))
	// Exhausted: after draining the bank, only the grid remains.
	bank.Discharge(465, time.Hour)
	fmt.Println(s.Classify(465, 0, epoch))
	// Output:
	// green-only
	// green+battery
	// battery-only
	// grid-fallback
}
