// Package pss implements GreenSprint's Power Source Selector (§III-A):
// the per-epoch decision of which power sources (green, battery, grid)
// feed the green-provisioned servers, following the paper's three
// cases:
//
//	Case 1: renewable supply covers the demand; surplus charges the
//	        battery.
//	Case 2: renewable supply is insufficient; the battery discharges
//	        to cover the shortfall.
//	Case 3: renewable supply is absent; the battery alone sustains
//	        sprinting, and once it reaches the DoD floor the servers
//	        fall back to grid power (or, as a last resort, bounded
//	        circuit-breaker overdraw).
//
// The PSS also owns the renewable-supply EWMA predictor and the
// Peukert-aware remaining-time recalculation performed after every
// scheduling epoch.
package pss

import (
	"fmt"
	"time"

	"greensprint/internal/battery"
	"greensprint/internal/cluster"
	"greensprint/internal/predictor"
	"greensprint/internal/units"
)

// Case identifies which of the paper's three supply cases an epoch
// falls into.
type Case int

const (
	// CaseGreenOnly is Case 1: renewable power alone sustains the
	// demand.
	CaseGreenOnly Case = iota + 1
	// CaseGreenPlusBattery is Case 2: battery supplements green.
	CaseGreenPlusBattery
	// CaseBatteryOnly is Case 3: battery alone (green unavailable).
	CaseBatteryOnly
	// CaseGridFallback is the exhausted end of Case 3: neither green
	// nor battery can carry the demand and servers return to the
	// grid at Normal mode.
	CaseGridFallback
	// CaseBreakerOverdraw is the paper's last resort: the sprint
	// continues on grid power drawn above the budget, tolerated
	// briefly by the circuit breaker's thermal margin.
	CaseBreakerOverdraw
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseGreenOnly:
		return "green-only"
	case CaseGreenPlusBattery:
		return "green+battery"
	case CaseBatteryOnly:
		return "battery-only"
	case CaseGridFallback:
		return "grid-fallback"
	case CaseBreakerOverdraw:
		return "breaker-overdraw"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// greenFloor is the supply below which green power is treated as
// unavailable (sensor noise floor).
const greenFloor units.Watt = 1

// Selector is the stateful PSS for one green rack.
type Selector struct {
	bank battery.Store
	pred *predictor.EWMA
	acct cluster.EnergyAccount
	// stuck models a transfer switch welded to the utility (source)
	// side: the green bus cannot deliver to the servers, so every
	// epoch is grid-fed Normal mode until the switch is freed. The
	// PV feed stays on the green bus, so battery charging from green
	// surplus continues.
	stuck bool
}

// New creates a Selector over a battery store — the paper's per-unit
// Bank or a fleet-scale ClassBank — with the paper's EWMA smoothing
// (α = 0.3).
func New(bank battery.Store) *Selector {
	return &Selector{bank: bank, pred: predictor.NewEWMA(predictor.DefaultAlpha)}
}

// Bank exposes the underlying battery store (read-mostly; the
// simulator inspects SoC and wear).
func (s *Selector) Bank() battery.Store { return s.bank }

// Account returns the cumulative energy accounting.
func (s *Selector) Account() cluster.EnergyAccount { return s.acct }

// SetStuck forces (or releases) the stuck-at-source failure mode.
func (s *Selector) SetStuck(stuck bool) { s.stuck = stuck }

// Stuck reports whether the switch is currently welded to the source.
func (s *Selector) Stuck() bool { return s.stuck }

// ObserveSupply feeds the renewable production measured over the epoch
// that just ended (Eq. 1's Obs(t)).
func (s *Selector) ObserveSupply(w units.Watt) { s.pred.Observe(float64(w)) }

// PredictedSupply returns RESupp(t): the EWMA forecast for the next
// epoch.
func (s *Selector) PredictedSupply() units.Watt {
	return units.Watt(s.pred.Predict())
}

// BatterySustainable returns the aggregate power the battery bank can
// hold for the given horizon without breaching its DoD floors —
// BattSupp in the paper, recomputed Peukert-aware each epoch. A stuck
// switch disconnects the bank from the servers, so it contributes 0.
func (s *Selector) BatterySustainable(horizon time.Duration) units.Watt {
	if s.stuck {
		return 0
	}
	return s.bank.MaxSustainablePower(horizon)
}

// AvailablePower returns PowerSupp(t) = RESupp(t) + BattSupp(t): the
// total power the green bus can commit for the next epoch of the given
// length. A stuck switch can commit nothing.
func (s *Selector) AvailablePower(horizon time.Duration) units.Watt {
	if s.stuck {
		return 0
	}
	return s.PredictedSupply() + s.BatterySustainable(horizon)
}

// SustainFraction returns the fraction of an epoch the green bus can
// power `demand` given a green supply of `green`: 1 when green alone
// (or green plus a battery that lasts the epoch) covers it, otherwise
// the Peukert-limited fraction before the battery floor ends the
// sprint.
func (s *Selector) SustainFraction(demand, green units.Watt, epoch time.Duration) float64 {
	if s.stuck {
		if demand <= 0 {
			return 1
		}
		return 0
	}
	if demand <= green {
		return 1
	}
	if epoch <= 0 {
		return 0
	}
	sustain := s.bank.RemainingTime(demand - green)
	if sustain >= epoch {
		return 1
	}
	return float64(sustain) / float64(epoch)
}

// Classify returns the supply case for a demand against an observed
// green supply, given the battery's current ability to cover the
// shortfall for the epoch.
func (s *Selector) Classify(demand, green units.Watt, epoch time.Duration) Case {
	if s.stuck {
		return CaseGridFallback
	}
	if green >= demand {
		return CaseGreenOnly
	}
	shortfall := demand - green
	covered := s.bank.MaxSustainablePower(epoch) >= shortfall
	switch {
	case green > greenFloor && covered:
		return CaseGreenPlusBattery
	case green <= greenFloor && covered:
		return CaseBatteryOnly
	default:
		return CaseGridFallback
	}
}

// Allocation describes how one epoch's demand was actually powered.
type Allocation struct {
	Case Case
	// Green, Battery and Grid are the average powers drawn from
	// each source over the epoch (time-weighted when the sprint
	// ends mid-epoch).
	Green   units.Watt
	Battery units.Watt
	Grid    units.Watt
	// Charged is the green surplus banked into the batteries.
	Charged units.Watt
	// SprintFraction is the fraction of the epoch during which the
	// requested demand was powered; the remainder ran grid-powered
	// Normal mode. Sprinting "ends when the workload requests are
	// finished or batteries join back in power supply" (§III-A), so
	// a battery that empties mid-epoch ends the sprint there rather
	// than at the epoch boundary.
	SprintFraction float64
	// Sustained reports whether the demand was powered for the
	// whole epoch.
	Sustained bool
}

// Total returns the average power delivered to the servers.
func (a Allocation) Total() units.Watt { return a.Green + a.Battery + a.Grid }

// Allocate powers `demand` for one epoch from the green bus, mutating
// battery state and energy accounting. gridFallback is the power the
// servers draw when they must return to the grid (Normal mode); it
// applies to whatever part of the epoch green+battery cannot carry.
func (s *Selector) Allocate(demand, green units.Watt, epoch time.Duration, gridFallback units.Watt) Allocation {
	if demand < 0 {
		demand = 0
	}
	if green < 0 {
		green = 0
	}
	if s.stuck {
		// Welded to the utility side: the whole epoch runs grid-fed
		// Normal mode. The PV feed still reaches the batteries, so
		// green output is banked rather than lost.
		al := Allocation{Case: CaseGridFallback, Grid: gridFallback}
		if green > 0 {
			in := s.bank.Charge(green, epoch)
			al.Charged = in.Power(epoch)
			s.acct.GreenCharged += in
		}
		s.acct.Grid += al.Grid.Energy(epoch)
		return al
	}
	greenUsed := green
	if greenUsed > demand {
		greenUsed = demand
	}
	shortfall := demand - greenUsed
	frac := 1.0
	if shortfall > 0 {
		sustain := s.bank.RemainingTime(shortfall)
		if sustain < epoch {
			frac = float64(sustain) / float64(epoch)
		}
		if frac > 0 {
			s.bank.Discharge(shortfall, time.Duration(frac*float64(epoch)))
		}
	}
	al := Allocation{SprintFraction: frac, Sustained: frac >= 1}
	switch {
	case shortfall == 0:
		al.Case = CaseGreenOnly
		al.Green = greenUsed
		if surplus := green - demand; surplus > 0 {
			in := s.bank.Charge(surplus, epoch)
			al.Charged = in.Power(epoch)
			s.acct.GreenCharged += in
		}
	case frac <= 0:
		al.Case = CaseGridFallback
	case green > greenFloor:
		al.Case = CaseGreenPlusBattery
	default:
		al.Case = CaseBatteryOnly
	}
	if al.Case != CaseGreenOnly {
		// Sprint portion: green trickle + battery carry the demand.
		al.Green = units.Watt(float64(greenUsed) * frac)
		al.Battery = units.Watt(float64(shortfall) * frac)
		// Fallback portion: Normal mode on the grid, with any green
		// output offsetting grid draw.
		if frac < 1 {
			gridGreen := green
			if gridGreen > gridFallback {
				gridGreen = gridFallback
			}
			al.Green += units.Watt(float64(gridGreen) * (1 - frac))
			al.Grid = units.Watt(float64(gridFallback-gridGreen) * (1 - frac))
		}
	}
	s.acct.Green += al.Green.Energy(epoch)
	s.acct.Battery += al.Battery.Energy(epoch)
	s.acct.Grid += al.Grid.Energy(epoch)
	return al
}

// AllocateOverdraw powers `demand` for one epoch with green output
// plus grid power drawn above the budget — the breaker-tolerated last
// resort. The caller is responsible for checking the breaker first.
func (s *Selector) AllocateOverdraw(demand, green units.Watt, epoch time.Duration) Allocation {
	if demand < 0 {
		demand = 0
	}
	if green < 0 {
		green = 0
	}
	greenUsed := green
	if greenUsed > demand {
		greenUsed = demand
	}
	al := Allocation{
		Case:           CaseBreakerOverdraw,
		Green:          greenUsed,
		Grid:           demand - greenUsed,
		SprintFraction: 1,
		Sustained:      true,
	}
	s.acct.Green += al.Green.Energy(epoch)
	s.acct.Grid += al.Grid.Energy(epoch)
	return al
}

// NeedsRecharge reports whether the bank has reached the recharge
// trigger (the paper recharges once depth of discharge hits the 40%
// goal; we trigger when mean SoC is at or below the floor plus a small
// hysteresis band).
func (s *Selector) NeedsRecharge() bool {
	if s.bank.Size() == 0 {
		return false
	}
	floor := 1 - s.bank.MaxDoD()
	return s.bank.SoC() <= floor+0.02
}

// RechargeFromGrid charges the bank from the grid during non-sprinting
// epochs (§III-A Case 3: "we charge the battery with grid power in
// anticipation of future sprints"). maxPower caps the grid draw; the
// energy accepted is accounted as GridCharged and returned.
func (s *Selector) RechargeFromGrid(maxPower units.Watt, epoch time.Duration) units.WattHour {
	in := s.bank.Charge(maxPower, epoch)
	s.acct.GridCharged += in
	return in
}

// RechargeFromGreen banks surplus green power outside bursts.
func (s *Selector) RechargeFromGreen(available units.Watt, epoch time.Duration) units.WattHour {
	in := s.bank.Charge(available, epoch)
	s.acct.GreenCharged += in
	return in
}

// SelectorSnapshot is the serializable state of the PSS: the battery
// bank's charge and wear, the supply predictor's EWMA state, and the
// cumulative energy accounting.
type SelectorSnapshot struct {
	Bank      battery.BankSnapshot   `json:"bank"`
	Predictor predictor.EWMASnapshot `json:"predictor"`
	Account   cluster.EnergyAccount  `json:"account"`
	// Stuck is the chaos stuck-at-source flag; omitted while false so
	// fault-free snapshots keep their pre-chaos wire format.
	Stuck bool `json:"stuck,omitempty"`
}

// Snapshot captures the selector's mutable state.
func (s *Selector) Snapshot() SelectorSnapshot {
	return SelectorSnapshot{
		Bank:      s.bank.Snapshot(),
		Predictor: s.pred.Snapshot(),
		Account:   s.acct,
		Stuck:     s.stuck,
	}
}

// Restore replaces the selector's state with a snapshot taken from a
// selector over an identically configured bank.
func (s *Selector) Restore(snap SelectorSnapshot) error {
	if err := s.bank.Restore(snap.Bank); err != nil {
		return fmt.Errorf("pss: %w", err)
	}
	if err := s.pred.Restore(snap.Predictor); err != nil {
		return fmt.Errorf("pss: %w", err)
	}
	s.acct = snap.Account
	s.stuck = snap.Stuck
	return nil
}
